/// \file ftdiag.hpp
/// \brief Umbrella header for the ftdiag public API.
///
/// Pulls in the Session facade (the recommended entry point) together with
/// the supporting surfaces an application typically needs: the benchmark
/// circuit registry, netlist parsing, fault injection for what-if studies,
/// and the report renderers.
///
///   #include "ftdiag.hpp"
///
///   auto session = ftdiag::SessionBuilder::from_registry("tow_thomas")
///                      .fitness(ftdiag::FitnessKind::kHybrid)
///                      .build();
///   auto program = session.generate_tests();
///   auto verdict = session.diagnose(session.measure(some_fault));
#pragma once

#include "session.hpp"

#include "circuits/registry.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_simulator.hpp"
#include "io/dictionary_io.hpp"
#include "io/mapped_file.hpp"
#include "io/report.hpp"
#include "io/run_report.hpp"
#include "mna/ac_analysis.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "netlist/parser.hpp"
#include "service/diagnosis_service.hpp"
#include "service/dictionary_store.hpp"
