/// \file chaos.hpp
/// \brief `ftdiag::chaos` — a process-wide fault-injection harness.
///
/// Resilience claims are only as good as the faults they were tested
/// under, so the injector lives in the library itself: the hot paths of
/// `net` (socket reads/writes), `io` (durable store writes) and the
/// service solve loop each carry a *named injection point* that is a
/// single relaxed atomic load when chaos is disabled — zero-cost in
/// production, and a deterministic fault source under test.
///
/// Configuration is a comma-separated spec, from the `FTDIAG_CHAOS`
/// environment variable or programmatically (tests, the CLI `--chaos`
/// flag):
///
/// ```
/// FTDIAG_CHAOS=net.recv_delay:50ms,io.torn_write:0.1,net.drop_conn:0.02
/// ```
///
/// Each entry is `point:value` where the value is either a duration
/// (`50ms`, `200us`, `1.5s` — the point sleeps that long every time it is
/// hit) or a probability in [0, 1] (the point *fires* on that fraction of
/// hits; what firing means is defined at the injection site).  A
/// duration-valued point fires on every hit.  Sampling uses a splitmix64
/// stream seeded from `FTDIAG_CHAOS_SEED` (default 0) so runs are
/// reproducible.
///
/// Points wired into the library (see the call sites for exact semantics):
///
/// | point               | value       | effect at the call site          |
/// |---------------------|-------------|----------------------------------|
/// | `net.recv_delay`    | duration    | sleep before every socket read   |
/// | `net.send_delay`    | duration    | sleep before every socket write  |
/// | `net.drop_conn`     | probability | shut the socket down mid-call    |
/// | `io.torn_write`     | probability | truncate a durable write's bytes |
/// | `engine.solve_delay`| duration    | sleep before a batch solve       |
/// | `engine.solve_fail` | probability | fail the batch with NumericError |
///
/// Every fired injection increments `ftdiag_chaos_injections_total`
/// with a `point` label in `obs::Registry::global()`, so a chaos run's
/// blast radius is visible in the same stats endpoint as its effects.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ftdiag::chaos {

/// One configured injection: fire with `probability`, then apply `delay`.
struct Injection {
  double probability = 1.0;
  std::chrono::microseconds delay{0};
};

/// The process-wide injection table.  `configure`/`clear` are rare and
/// serialized; `hit()` is wait-free when no spec is loaded.
class Injector {
public:
  /// The singleton, configured once from `FTDIAG_CHAOS` on first access.
  [[nodiscard]] static Injector& global();

  /// Replace the table from a spec string ("" clears).  \throws
  /// ConfigError on a malformed entry; the previous table is kept.
  void configure(const std::string& spec);

  /// Drop every injection (chaos off).
  void clear();

  /// True when at least one injection is configured (one relaxed load).
  [[nodiscard]] bool enabled() const noexcept;

  /// Evaluate the point: sample its probability, apply its delay inline,
  /// count the firing.  Returns true when the point fired — the call site
  /// then applies the point's failure semantics.  Unknown points never
  /// fire.  Never throws.
  bool hit(const char* point) noexcept;

  /// How often \p point has fired since configure (testing aid).
  [[nodiscard]] std::uint64_t fired(const std::string& point) const;

  /// Reseed the sampling stream (defaults to `FTDIAG_CHAOS_SEED` or 0).
  void reseed(std::uint64_t seed);

private:
  Injector() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// Convenience for call sites: `if (chaos::hit("net.drop_conn")) ...`.
inline bool hit(const char* point) noexcept {
  return Injector::global().hit(point);
}

/// Parse one spec value: `"50ms"`-style durations (suffix `us`, `ms`,
/// `s`; integer or decimal) or a bare probability in [0, 1].  Exposed for
/// tests.  \throws ConfigError on anything else.
[[nodiscard]] Injection parse_injection_value(const std::string& value);

}  // namespace ftdiag::chaos
