#include "chaos/chaos.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ftdiag::chaos {

namespace {

/// splitmix64: tiny, seedable, and statistically fine for fault sampling.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double to_unit_interval(std::uint64_t bits) {
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

Injection parse_injection_value(const std::string& value) {
  const std::string v(str::trim(value));
  if (v.empty()) {
    throw ConfigError("chaos injection has an empty value");
  }
  // Trailing alphabetic characters mark a duration suffix.
  std::size_t suffix_begin = v.size();
  while (suffix_begin > 0 &&
         ((v[suffix_begin - 1] >= 'a' && v[suffix_begin - 1] <= 'z') ||
          (v[suffix_begin - 1] >= 'A' && v[suffix_begin - 1] <= 'Z'))) {
    --suffix_begin;
  }
  const std::string number = v.substr(0, suffix_begin);
  const std::string suffix = str::to_lower(v.substr(suffix_begin));
  std::size_t consumed = 0;
  double magnitude = 0.0;
  try {
    magnitude = std::stod(number, &consumed);
  } catch (const std::exception&) {
    throw ConfigError("chaos injection value '" + v + "' is not a number");
  }
  if (consumed != number.size() || magnitude < 0.0) {
    throw ConfigError("chaos injection value '" + v +
                      "' must be a non-negative number");
  }

  Injection injection;
  if (suffix.empty()) {
    if (magnitude > 1.0) {
      throw ConfigError("chaos probability '" + v + "' must be in [0, 1]");
    }
    injection.probability = magnitude;
    return injection;
  }
  double scale_us = 0.0;
  if (suffix == "us") {
    scale_us = 1.0;
  } else if (suffix == "ms") {
    scale_us = 1e3;
  } else if (suffix == "s") {
    scale_us = 1e6;
  } else {
    throw ConfigError("chaos duration '" + v +
                      "' has an unknown suffix (use us, ms or s)");
  }
  injection.delay =
      std::chrono::microseconds(static_cast<std::int64_t>(magnitude * scale_us));
  return injection;
}

struct Injector::Impl {
  struct Entry {
    Injection injection;
    obs::Counter* fired = nullptr;  ///< registry-owned, never null
  };

  std::atomic<bool> enabled{false};
  mutable std::mutex mutex;  ///< guards table + rng (chaos paths only)
  std::map<std::string, Entry, std::less<>> table;
  std::uint64_t rng_state = 0;
};

Injector::Impl& Injector::impl() const {
  static Impl instance;
  return instance;
}

Injector& Injector::global() {
  static Injector* injector = [] {
    auto* created = new Injector();
    if (const char* seed = std::getenv("FTDIAG_CHAOS_SEED")) {
      created->reseed(std::strtoull(seed, nullptr, 10));
    }
    if (const char* spec = std::getenv("FTDIAG_CHAOS")) {
      try {
        created->configure(spec);
      } catch (const Error& e) {
        log::warn("chaos: ignoring invalid FTDIAG_CHAOS spec",
                  {{"error", e.what()}});
      }
    }
    return created;
  }();
  return *injector;
}

void Injector::configure(const std::string& spec) {
  std::map<std::string, Impl::Entry, std::less<>> table;
  for (const std::string& raw : str::split(spec, ',')) {
    const std::string entry(str::trim(raw));
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw ConfigError("chaos entry '" + entry +
                        "' is not of the form point:value");
    }
    const std::string point(str::trim(entry.substr(0, colon)));
    Impl::Entry configured;
    configured.injection = parse_injection_value(entry.substr(colon + 1));
    configured.fired = &obs::Registry::global().counter(
        "ftdiag_chaos_injections_total", {{"point", point}},
        "chaos injections fired at this point");
    table.insert_or_assign(point, configured);
  }

  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.table = std::move(table);
  state.enabled.store(!state.table.empty(), std::memory_order_release);
  if (!state.table.empty()) {
    log::info("chaos: fault injection armed",
              {{"points", state.table.size()}, {"spec", spec}});
  }
}

void Injector::clear() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.table.clear();
  state.enabled.store(false, std::memory_order_release);
}

bool Injector::enabled() const noexcept {
  return impl().enabled.load(std::memory_order_acquire);
}

bool Injector::hit(const char* point) noexcept {
  Impl& state = impl();
  if (!state.enabled.load(std::memory_order_acquire)) return false;
  Injection injection;
  obs::Counter* fired = nullptr;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.table.find(std::string_view(point));
    if (it == state.table.end()) return false;
    if (it->second.injection.probability < 1.0 &&
        to_unit_interval(splitmix64(state.rng_state)) >=
            it->second.injection.probability) {
      return false;
    }
    injection = it->second.injection;
    fired = it->second.fired;
  }
  // The sleep happens outside the table lock so slow injections at one
  // point never serialize other points.
  if (injection.delay.count() > 0) {
    std::this_thread::sleep_for(injection.delay);
  }
  fired->inc();
  return true;
}

std::uint64_t Injector::fired(const std::string& point) const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.table.find(point);
  return it == state.table.end() ? 0 : it->second.fired->value();
}

void Injector::reseed(std::uint64_t seed) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.rng_state = seed;
}

}  // namespace ftdiag::chaos
