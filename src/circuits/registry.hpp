/// \file registry.hpp
/// \brief Name-indexed registry of all benchmark circuits, used by the
/// cross-circuit benchmarks and examples.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

/// Factory entry: builds the CUT with its default design.
struct RegistryEntry {
  std::string name;
  std::string description;
  std::function<CircuitUnderTest()> make;
};

/// All registered benchmark circuits, in a stable order.  The paper CUT
/// ("tow_thomas") is always first.
[[nodiscard]] const std::vector<RegistryEntry>& registry();

/// Build a CUT by registry name. \throws ConfigError for unknown names.
[[nodiscard]] CircuitUnderTest make_by_name(const std::string& name);

/// Registry names in order.
[[nodiscard]] std::vector<std::string> registry_names();

}  // namespace ftdiag::circuits
