/// \file mfb.hpp
/// \brief Multiple-feedback (Rauch) second-order filters — the classic
/// "infinite-gain negative feedback" single-amplifier biquads.
///
/// Low-pass:  vin --R1-- a;  a --R2-- out;  a --R3-- n (inverting input);
///            C1 from a to gnd;  C2 from n to out.
///   H(0) = -R2/R1,  w0 = 1/sqrt(R2*R3*C1*C2),
///   w0/Q = (1/R1 + 1/R2 + 1/R3)/C1.
///
/// Band-pass (Delyiannis):  vin --R1-- a;  C1 a->n;  C2 a->out;
///            R2 out->n;  R3 a->gnd.
#pragma once

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

struct MfbDesign {
  double f0_hz = 1.0e3;
  double q = 0.70710678;
  double gain = 1.0;       ///< |H(0)| (LP) or |H(f0)| (BP)
  double r_base = 10.0e3;
  bool ideal_opamps = true;
  netlist::OpAmpModel opamp_model{};
};

/// MFB low-pass.  Testable: {R1, R2, R3, C1, C2}.
[[nodiscard]] CircuitUnderTest make_mfb_lowpass(const MfbDesign& design = {});

/// MFB (Delyiannis) band-pass.  Testable: {R1, R2, R3, C1, C2}.
[[nodiscard]] CircuitUnderTest make_mfb_bandpass(const MfbDesign& design = {});

}  // namespace ftdiag::circuits
