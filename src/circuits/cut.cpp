#include "circuits/cut.hpp"

#include "util/error.hpp"

namespace ftdiag::circuits {

void CircuitUnderTest::check() const {
  if (name.empty()) throw ConfigError("CUT has no name");
  if (!circuit.has_component(input_source)) {
    throw ConfigError("CUT '" + name + "': input source '" + input_source +
                      "' not in circuit");
  }
  const auto& src = circuit.component(input_source);
  if (src.kind != netlist::ComponentKind::kVoltageSource &&
      src.kind != netlist::ComponentKind::kCurrentSource) {
    throw ConfigError("CUT '" + name + "': input '" + input_source +
                      "' is not an independent source");
  }
  if (src.ac_magnitude == 0.0) {
    throw ConfigError("CUT '" + name + "': input source has no AC magnitude");
  }
  if (!circuit.has_node(output_node)) {
    throw ConfigError("CUT '" + name + "': output node '" + output_node +
                      "' not in circuit");
  }
  if (testable.empty()) {
    throw ConfigError("CUT '" + name + "': empty testable set");
  }
  for (const auto& t : testable) {
    if (!circuit.has_component(t)) {
      throw ConfigError("CUT '" + name + "': testable component '" + t +
                        "' not in circuit");
    }
  }
  if (!(band_low_hz > 0.0) || !(band_high_hz > band_low_hz)) {
    throw ConfigError("CUT '" + name + "': invalid test-frequency band");
  }
  circuit.validate_or_throw();
}

}  // namespace ftdiag::circuits
