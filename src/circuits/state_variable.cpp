#include "circuits/state_variable.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag::circuits {

CircuitUnderTest make_state_variable(const StateVariableDesign& design) {
  if (!(design.f0_hz > 0.0) || !(design.r_base > 0.0)) {
    throw ConfigError("state_variable: design parameters must be positive");
  }
  if (!(design.q > 1.0 / 3.0)) {
    throw ConfigError("state_variable: KHN divider requires Q > 1/3");
  }
  const double w0 = 2.0 * std::numbers::pi * design.f0_hz;
  const double r = design.r_base;
  const double cap = 1.0 / (w0 * r);          // integrator tau = 1/w0
  const double r5 = r;
  const double r4 = (3.0 * design.q - 1.0) * r5;

  CircuitUnderTest cut;
  cut.name = "state_variable";
  cut.description = "KHN state-variable filter (LP output observed)";
  netlist::Circuit& c = cut.circuit;
  c.set_title("khn state-variable filter");
  c.add_vsource("vin", "in", "0", 0.0, 1.0);

  // Summer OA1.
  c.add_resistor("R1", "in", "na", r);
  c.add_resistor("R2", "lp", "na", r);
  c.add_resistor("R3", "hp", "na", r);
  c.add_resistor("R4", "bp", "nb", r4);
  c.add_resistor("R5", "nb", "0", r5);

  // Integrators.
  c.add_resistor("R6", "hp", "n1", r);
  c.add_capacitor("C1", "bp", "n1", cap);
  c.add_resistor("R7", "bp", "n2", r);
  c.add_capacitor("C2", "lp", "n2", cap);

  if (design.ideal_opamps) {
    c.add_ideal_opamp("OA1", "nb", "na", "hp");
    c.add_ideal_opamp("OA2", "0", "n1", "bp");
    c.add_ideal_opamp("OA3", "0", "n2", "lp");
  } else {
    c.add_opamp("OA1", "nb", "na", "hp", design.opamp_model);
    c.add_opamp("OA2", "0", "n1", "bp", design.opamp_model);
    c.add_opamp("OA3", "0", "n2", "lp", design.opamp_model);
  }

  cut.input_source = "vin";
  cut.output_node = "lp";
  cut.testable = {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.f0_hz / 100.0, design.f0_hz * 100.0, 240);
  cut.band_low_hz = design.f0_hz / 100.0;
  cut.band_high_hz = design.f0_hz * 100.0;
  cut.check();
  return cut;
}

}  // namespace ftdiag::circuits
