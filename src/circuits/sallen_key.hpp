/// \file sallen_key.hpp
/// \brief Sallen-Key second-order filters (unity-gain buffer form).
///
/// Low-pass:  vin --R1-- a --R2-- b --(C2 to gnd);  C1 from a to out;
///            buffer: in+ = b, out fed back to in-.
///   f0 = 1/(2*pi*sqrt(R1*R2*C1*C2)),
///   Q  = sqrt(R1*R2*C1*C2) / (C2*(R1+R2)).
///
/// High-pass is the RC/CR dual.  Band-pass uses the standard single-amp
/// Sallen-Key BP with an inner damping resistor.
#pragma once

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

struct SallenKeyDesign {
  double f0_hz = 1.0e3;
  double q = 0.70710678;
  double r_base = 10.0e3;  ///< R2 value; R1 follows from Q
  bool ideal_opamps = true;
  netlist::OpAmpModel opamp_model{};
};

/// Unity-gain Sallen-Key low-pass.  Testable: {R1, R2, C1, C2}.
[[nodiscard]] CircuitUnderTest make_sallen_key_lowpass(
    const SallenKeyDesign& design = {});

/// Unity-gain Sallen-Key high-pass.  Testable: {R1, R2, C1, C2}.
[[nodiscard]] CircuitUnderTest make_sallen_key_highpass(
    const SallenKeyDesign& design = {});

}  // namespace ftdiag::circuits
