/// \file nf_biquad.hpp
/// \brief The paper CUT: a normalized negative-feedback biquad low-pass
/// with exactly seven testable passives.
///
/// The paper describes its CUT (from Calvano et al., ref [7]) only as a
/// "normalized biquad negative feedback low-pass filter" whose seven
/// passive components are the fault targets; the schematic is not
/// reproduced.  We realize it as the classic infinite-gain multiple-
/// feedback (Rauch) biquad — *the* negative-feedback biquad — driven
/// through a resistive source divider:
///
/// ```
///   vin --Ra--+--R1-- a --R2-------+---- out
///             |        |           |
///             Rb       +--R3-- n --C2
///             |        |       |
///            gnd      C1      [OA: inv = n, non-inv = gnd, out = out]
///                      |
///                     gnd
/// ```
///
/// Seven passives: {Ra, Rb, R1, R2, R3, C1, C2}.  Unlike a Tow-Thomas
/// observed at its LP output (see tow_thomas.hpp), none of the seven is
/// structurally degenerate with another: their first-order sensitivity
/// directions in coefficient space are pairwise independent, so a suitable
/// frequency pair can separate all seven trajectories — the property the
/// paper's GA searches for.
///
/// With alpha = Rb/(Ra+Rb) and R1eff = R1 + Ra||Rb:
///
///   H(s) = -alpha * (1/(R1eff*R3*C1*C2))
///          / (s^2 + s*(1/R1eff + 1/R2 + 1/R3)/C1 + 1/(R2*R3*C1*C2))
#pragma once

#include <complex>

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

struct NfBiquadDesign {
  double f0_hz = 1.0e3;     ///< pole frequency
  double q = 0.70710678;    ///< quality factor
  double dc_gain = 1.0;     ///< overall |H(0)| including the divider
  double r_base = 10.0e3;   ///< impedance level (R2 = R3 = r_base)
  bool ideal_opamps = true;
  netlist::OpAmpModel opamp_model{};
};

/// Build the CUT.  Uses Ra = Rb (alpha = 1/2), R2 = R3 = r_base, C1/C2
/// from Q; requires dc_gain < alpha * r_base / (Ra||Rb) so R1 > 0.
[[nodiscard]] CircuitUnderTest make_nf_biquad(const NfBiquadDesign& design);

/// The paper configuration: f0 = 1 kHz, Q = 1/sqrt(2), unity DC gain,
/// ideal op-amp, the seven passives testable, sweep 10 Hz - 100 kHz.
[[nodiscard]] CircuitUnderTest make_paper_cut();

/// Analytic transfer function (for verification tests).
[[nodiscard]] std::complex<double> nf_biquad_transfer(
    const NfBiquadDesign& design, double frequency_hz);

}  // namespace ftdiag::circuits
