/// \file state_variable.hpp
/// \brief KHN (Kerwin-Huelsman-Newcomb) state-variable filter with
/// simultaneous HP / BP / LP outputs.
///
/// Summer OA1: inverting input nA takes vin via R1, v_lp via R2, and the
/// v_hp feedback via R3; non-inverting input nB takes v_bp via R4 with R5
/// to ground.  Two inverting integrators (R6/C1, R7/C2) produce BP and LP.
///
/// With R1 = R2 = R3 = R and integrators R6 = R7 = Ri, C1 = C2 = C:
///   w0 = 1/(Ri*C),  Q = (R4 + R5) / (3*R5),
/// so the design uses R4 = (3Q - 1)*R5, which requires Q > 1/3.
/// The LP output realizes H(0) = -1.
#pragma once

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

struct StateVariableDesign {
  double f0_hz = 1.0e3;
  double q = 1.0;
  double r_base = 10.0e3;
  bool ideal_opamps = true;
  netlist::OpAmpModel opamp_model{};
};

/// KHN filter observed at the LP output.
/// Testable: {R1, R2, R3, R4, R5, R6, R7, C1, C2} (nine components).
[[nodiscard]] CircuitUnderTest make_state_variable(
    const StateVariableDesign& design = {});

}  // namespace ftdiag::circuits
