/// \file ladders.hpp
/// \brief Passive ladder networks: N-section RC low-pass chains (solver
/// scalability workloads) and doubly-terminated LC Butterworth ladders.
#pragma once

#include <cstdint>

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

struct RcLadderDesign {
  std::size_t sections = 5;   ///< number of RC sections
  double r = 1.0e3;
  double c = 100.0e-9;
  /// Sections whose R and C join the testable list: every k-th (1 = all).
  /// Ladders in the 10^3..10^4-node range use a sparse sample so the fault
  /// universe — and the engine's per-site working set — stays bounded
  /// while the solve dimension scales.
  std::size_t testable_stride = 1;
};

/// vin -- [R -- node -- C-to-gnd] x N -- out.
/// Testable: every testable_stride-th section's R and C.
[[nodiscard]] CircuitUnderTest make_rc_ladder(const RcLadderDesign& design = {});

struct LcLadderDesign {
  std::size_t order = 5;       ///< odd Butterworth order, 3..9
  double cutoff_hz = 10.0e3;
  double termination = 1.0e3;  ///< source and load resistance
};

/// Doubly-terminated Butterworth LC low-pass ladder (shunt-C first).
/// Element values from g_k = 2*sin((2k-1)*pi/(2n)).
/// Testable: all Ls and Cs.
[[nodiscard]] CircuitUnderTest make_lc_ladder(const LcLadderDesign& design = {});

struct TwinTDesign {
  double notch_hz = 1.0e3;
  double r = 10.0e3;
  double load_r = 1.0e6;  ///< light load so the notch stays deep
};

/// Passive twin-T notch: series arm R-R with 2C to ground, shunt arm C-C
/// with R/2 to ground.  Testable: {R1, R2, R3, C1, C2, C3}.
[[nodiscard]] CircuitUnderTest make_twin_t(const TwinTDesign& design = {});

struct RcMeshDesign {
  std::size_t rows = 10;  ///< grid height (nodes)
  std::size_t cols = 10;  ///< grid width (nodes)
  double r = 1.0e3;
  double c = 10.0e-9;
  /// Nodes whose parts join the testable list: every k-th in row-major
  /// order (1 = all); see RcLadderDesign::testable_stride.
  std::size_t testable_stride = 1;
};

/// rows x cols resistive grid with a capacitor to ground at every node:
/// the 2-D sparse-solver workload (bandwidth ~cols, unlike the tridiagonal
/// ladder).  Driven at the (0,0) corner, observed at the far corner,
/// lightly loaded there so DC stays defined.  Testable: each sampled
/// node's shunt C and right-neighbour R.
[[nodiscard]] CircuitUnderTest make_rc_mesh(const RcMeshDesign& design = {});

struct RandomNetworkDesign {
  std::size_t nodes = 100;    ///< non-ground node count
  std::size_t chords = 150;   ///< extra random R/C links over the spine
  std::uint64_t seed = 1;     ///< deterministic draw
  /// Spine resistors that join the testable list: every k-th (1 = all).
  std::size_t testable_stride = 1;
};

/// Random connected RC network: a resistive spine n0..n{N-1} guarantees
/// connectivity and a DC path, random R/C chords add meshes with an
/// irregular sparsity pattern (the adversarial counterpart to the banded
/// ladder/mesh workloads).  Deterministic in the seed.
[[nodiscard]] CircuitUnderTest make_random_network(
    const RandomNetworkDesign& design = {});

}  // namespace ftdiag::circuits
