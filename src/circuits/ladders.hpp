/// \file ladders.hpp
/// \brief Passive ladder networks: N-section RC low-pass chains (solver
/// scalability workloads) and doubly-terminated LC Butterworth ladders.
#pragma once

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

struct RcLadderDesign {
  std::size_t sections = 5;   ///< number of RC sections
  double r = 1.0e3;
  double c = 100.0e-9;
};

/// vin -- [R -- node -- C-to-gnd] x N -- out.
/// Testable: every R and C ("R1".."RN", "C1".."CN").
[[nodiscard]] CircuitUnderTest make_rc_ladder(const RcLadderDesign& design = {});

struct LcLadderDesign {
  std::size_t order = 5;       ///< odd Butterworth order, 3..9
  double cutoff_hz = 10.0e3;
  double termination = 1.0e3;  ///< source and load resistance
};

/// Doubly-terminated Butterworth LC low-pass ladder (shunt-C first).
/// Element values from g_k = 2*sin((2k-1)*pi/(2n)).
/// Testable: all Ls and Cs.
[[nodiscard]] CircuitUnderTest make_lc_ladder(const LcLadderDesign& design = {});

struct TwinTDesign {
  double notch_hz = 1.0e3;
  double r = 10.0e3;
  double load_r = 1.0e6;  ///< light load so the notch stays deep
};

/// Passive twin-T notch: series arm R-R with 2C to ground, shunt arm C-C
/// with R/2 to ground.  Testable: {R1, R2, R3, C1, C2, C3}.
[[nodiscard]] CircuitUnderTest make_twin_t(const TwinTDesign& design = {});

}  // namespace ftdiag::circuits
