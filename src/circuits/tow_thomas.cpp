#include "circuits/tow_thomas.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag::circuits {

namespace {

/// Component values solved from the design equations with R3 = R6 = r_base,
/// C1 = C2 = C and k = R5/R4 = 1.
struct Values {
  double r1, r2, r3, r4, r5, r6, c1, c2;
};

Values solve_design(const TowThomasDesign& d) {
  if (!(d.f0_hz > 0.0) || !(d.q > 0.0) || !(d.dc_gain > 0.0) ||
      !(d.r_base > 0.0)) {
    throw ConfigError("tow_thomas: design parameters must be positive");
  }
  const double w0 = 2.0 * std::numbers::pi * d.f0_hz;
  Values v{};
  v.r3 = d.r_base;
  v.r6 = d.r_base;
  v.r4 = d.r_base;
  v.r5 = d.r_base;  // k = 1
  // w0 = 1/(C*sqrt(R3*R6)) = 1/(C*r_base)  =>  C = 1/(w0*r_base)
  v.c1 = 1.0 / (w0 * d.r_base);
  v.c2 = v.c1;
  // Q = w0*R2*C1  =>  R2 = Q/(w0*C1) = Q*r_base
  v.r2 = d.q * d.r_base;
  // H(0) = R6/(R1*k)  =>  R1 = R6/H0
  v.r1 = v.r6 / d.dc_gain;
  return v;
}

}  // namespace

CircuitUnderTest make_tow_thomas(const TowThomasDesign& design) {
  const Values v = solve_design(design);

  CircuitUnderTest cut;
  cut.name = "tow_thomas";
  cut.description =
      "Tow-Thomas two-integrator-loop biquad low-pass (the paper CUT)";

  netlist::Circuit& c = cut.circuit;
  c.set_title("tow-thomas biquad low-pass");
  c.add_vsource("vin", "in", "0", /*dc=*/0.0, /*ac_magnitude=*/1.0);

  // OA1: lossy inverting integrator.  Summing node "n1".
  c.add_resistor("R1", "in", "n1", v.r1);
  c.add_resistor("R2", "bp", "n1", v.r2);
  c.add_capacitor("C1", "bp", "n1", v.c1);

  // OA2: inverting integrator bp -> lp.
  c.add_resistor("R3", "bp", "n2", v.r3);
  c.add_capacitor("C2", "lp", "n2", v.c2);

  // OA3: inverter lp -> inv.
  c.add_resistor("R4", "lp", "n3", v.r4);
  c.add_resistor("R5", "inv", "n3", v.r5);

  // Loop feedback into the summing node.
  c.add_resistor("R6", "inv", "n1", v.r6);

  if (design.ideal_opamps) {
    c.add_ideal_opamp("OA1", "0", "n1", "bp");
    c.add_ideal_opamp("OA2", "0", "n2", "lp");
    c.add_ideal_opamp("OA3", "0", "n3", "inv");
  } else {
    c.add_opamp("OA1", "0", "n1", "bp", design.opamp_model);
    c.add_opamp("OA2", "0", "n2", "lp", design.opamp_model);
    c.add_opamp("OA3", "0", "n3", "inv", design.opamp_model);
  }

  cut.input_source = "vin";
  cut.output_node = "lp";
  cut.testable = {"R1", "R2", "R3", "R4", "R6", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(10.0, 100.0e3, 240);
  cut.band_low_hz = 10.0;
  cut.band_high_hz = 100.0e3;
  cut.check();
  return cut;
}

std::complex<double> tow_thomas_transfer(const TowThomasDesign& design,
                                         double frequency_hz) {
  const Values v = solve_design(design);
  const std::complex<double> s(0.0, 2.0 * std::numbers::pi * frequency_hz);
  const double k = v.r5 / v.r4;
  const std::complex<double> num(1.0 / (v.r1 * v.r3 * v.c1 * v.c2), 0.0);
  const std::complex<double> den =
      s * s + s / (v.r2 * v.c1) +
      std::complex<double>(k / (v.r3 * v.r6 * v.c1 * v.c2), 0.0);
  return num / den;
}

}  // namespace ftdiag::circuits
