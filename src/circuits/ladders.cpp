#include "circuits/ladders.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ftdiag::circuits {

CircuitUnderTest make_rc_ladder(const RcLadderDesign& design) {
  if (design.sections == 0) {
    throw ConfigError("rc_ladder needs at least one section");
  }
  if (!(design.r > 0.0) || !(design.c > 0.0)) {
    throw ConfigError("rc_ladder element values must be positive");
  }
  if (design.testable_stride == 0 ||
      design.testable_stride > design.sections) {
    throw ConfigError("rc_ladder testable_stride must be in [1, sections]");
  }

  CircuitUnderTest cut;
  cut.name = "rc_ladder";
  cut.description =
      str::format("%zu-section passive RC low-pass ladder", design.sections);
  netlist::Circuit& c = cut.circuit;
  c.set_title(cut.description);
  c.add_vsource("vin", "n0", "0", 0.0, 1.0);

  for (std::size_t k = 1; k <= design.sections; ++k) {
    const std::string prev = str::format("n%zu", k - 1);
    const std::string here = str::format("n%zu", k);
    c.add_resistor(str::format("R%zu", k), prev, here, design.r);
    c.add_capacitor(str::format("C%zu", k), here, "0", design.c);
    if (k % design.testable_stride == 0) {
      cut.testable.push_back(str::format("R%zu", k));
      cut.testable.push_back(str::format("C%zu", k));
    }
  }

  const double f_section =
      1.0 / (2.0 * std::numbers::pi * design.r * design.c);
  cut.input_source = "vin";
  cut.output_node = str::format("n%zu", design.sections);
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      f_section / 1000.0, f_section * 10.0, 240);
  cut.band_low_hz = f_section / 1000.0;
  cut.band_high_hz = f_section * 10.0;
  cut.check();
  return cut;
}

CircuitUnderTest make_lc_ladder(const LcLadderDesign& design) {
  if (design.order < 3 || design.order > 9 || design.order % 2 == 0) {
    throw ConfigError("lc_ladder order must be odd, 3..9");
  }
  if (!(design.cutoff_hz > 0.0) || !(design.termination > 0.0)) {
    throw ConfigError("lc_ladder design values must be positive");
  }
  const double w_c = 2.0 * std::numbers::pi * design.cutoff_hz;
  const double r0 = design.termination;

  CircuitUnderTest cut;
  cut.name = "lc_ladder";
  cut.description = str::format(
      "order-%zu doubly-terminated Butterworth LC low-pass", design.order);
  netlist::Circuit& c = cut.circuit;
  c.set_title(cut.description);
  c.add_vsource("vin", "src", "0", 0.0, 1.0);
  c.add_resistor("RS", "src", "n1", r0);

  // Shunt-C first prototype: odd k are shunt capacitors, even k series
  // inductors.  Denormalization: C = g/(w_c*R0), L = g*R0/w_c.
  std::size_t node_index = 1;
  for (std::size_t k = 1; k <= design.order; ++k) {
    const double g =
        2.0 * std::sin((2.0 * static_cast<double>(k) - 1.0) *
                       std::numbers::pi / (2.0 * static_cast<double>(design.order)));
    if (k % 2 == 1) {
      const std::string here = str::format("n%zu", node_index);
      const std::string name = str::format("C%zu", (k + 1) / 2);
      c.add_capacitor(name, here, "0", g / (w_c * r0));
      cut.testable.push_back(name);
    } else {
      const std::string here = str::format("n%zu", node_index);
      const std::string next = str::format("n%zu", node_index + 1);
      const std::string name = str::format("L%zu", k / 2);
      c.add_inductor(name, here, next, g * r0 / w_c);
      cut.testable.push_back(name);
      ++node_index;
    }
  }
  const std::string out = str::format("n%zu", node_index);
  c.add_resistor("RL", out, "0", r0);

  cut.input_source = "vin";
  cut.output_node = out;
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.cutoff_hz / 100.0, design.cutoff_hz * 10.0, 240);
  cut.band_low_hz = design.cutoff_hz / 100.0;
  cut.band_high_hz = design.cutoff_hz * 10.0;
  cut.check();
  return cut;
}

CircuitUnderTest make_twin_t(const TwinTDesign& design) {
  if (!(design.notch_hz > 0.0) || !(design.r > 0.0) || !(design.load_r > 0.0)) {
    throw ConfigError("twin_t design values must be positive");
  }
  const double cap =
      1.0 / (2.0 * std::numbers::pi * design.notch_hz * design.r);

  CircuitUnderTest cut;
  cut.name = "twin_t";
  cut.description = "passive twin-T notch filter";
  netlist::Circuit& c = cut.circuit;
  c.set_title(cut.description);
  c.add_vsource("vin", "in", "0", 0.0, 1.0);

  // Resistive arm: R1, R2 in series with C3 = 2C to ground at the tap.
  c.add_resistor("R1", "in", "t1", design.r);
  c.add_resistor("R2", "t1", "out", design.r);
  c.add_capacitor("C3", "t1", "0", 2.0 * cap);

  // Capacitive arm: C1, C2 in series with R3 = R/2 to ground at the tap.
  c.add_capacitor("C1", "in", "t2", cap);
  c.add_capacitor("C2", "t2", "out", cap);
  c.add_resistor("R3", "t2", "0", design.r / 2.0);

  c.add_resistor("RLOAD", "out", "0", design.load_r);

  cut.input_source = "vin";
  cut.output_node = "out";
  cut.testable = {"R1", "R2", "R3", "C1", "C2", "C3"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.notch_hz / 100.0, design.notch_hz * 100.0, 300);
  cut.band_low_hz = design.notch_hz / 100.0;
  cut.band_high_hz = design.notch_hz * 100.0;
  cut.check();
  return cut;
}

CircuitUnderTest make_rc_mesh(const RcMeshDesign& design) {
  if (design.rows < 2 || design.cols < 2) {
    throw ConfigError("rc_mesh needs at least a 2x2 grid");
  }
  if (!(design.r > 0.0) || !(design.c > 0.0)) {
    throw ConfigError("rc_mesh element values must be positive");
  }
  const std::size_t node_count = design.rows * design.cols;
  if (design.testable_stride == 0 || design.testable_stride > node_count) {
    throw ConfigError("rc_mesh testable_stride must be in [1, rows*cols]");
  }

  CircuitUnderTest cut;
  cut.name = "rc_mesh";
  cut.description = str::format("%zux%zu RC grid", design.rows, design.cols);
  netlist::Circuit& c = cut.circuit;
  c.set_title(cut.description);
  auto node = [](std::size_t i, std::size_t j) {
    return str::format("m%zu_%zu", i, j);
  };
  c.add_vsource("vin", node(0, 0), "0", 0.0, 1.0);

  for (std::size_t i = 0; i < design.rows; ++i) {
    for (std::size_t j = 0; j < design.cols; ++j) {
      const std::string here = node(i, j);
      if (j + 1 < design.cols) {
        c.add_resistor(str::format("RH%zu_%zu", i, j), here, node(i, j + 1),
                       design.r);
      }
      if (i + 1 < design.rows) {
        c.add_resistor(str::format("RV%zu_%zu", i, j), here, node(i + 1, j),
                       design.r);
      }
      c.add_capacitor(str::format("C%zu_%zu", i, j), here, "0", design.c);
      const std::size_t linear = i * design.cols + j;
      if (linear % design.testable_stride == 0) {
        cut.testable.push_back(str::format("C%zu_%zu", i, j));
        if (j + 1 < design.cols) {
          cut.testable.push_back(str::format("RH%zu_%zu", i, j));
        }
      }
    }
  }
  const std::string out = node(design.rows - 1, design.cols - 1);
  c.add_resistor("RL", out, "0", 10.0 * design.r);

  // Corner-to-corner RC time scale sets the band of interest.
  const double f_node = 1.0 / (2.0 * std::numbers::pi * design.r * design.c);
  cut.input_source = "vin";
  cut.output_node = out;
  cut.dictionary_grid =
      mna::FrequencyGrid::log_sweep(f_node / 1000.0, f_node * 10.0, 240);
  cut.band_low_hz = f_node / 1000.0;
  cut.band_high_hz = f_node * 10.0;
  cut.check();
  return cut;
}

CircuitUnderTest make_random_network(const RandomNetworkDesign& design) {
  if (design.nodes < 2) {
    throw ConfigError("random_network needs at least two nodes");
  }
  if (design.testable_stride == 0 ||
      design.testable_stride >= design.nodes) {
    throw ConfigError(
        "random_network testable_stride must be in [1, nodes-1]");
  }

  CircuitUnderTest cut;
  cut.name = "random_network";
  cut.description = str::format("random RC network, %zu nodes + %zu chords",
                                design.nodes, design.chords);
  netlist::Circuit& c = cut.circuit;
  c.set_title(cut.description);
  c.add_vsource("vin", "n0", "0", 0.0, 1.0);

  Rng rng(design.seed);
  // Spine: n0 - n1 - ... guarantees connectivity and a DC path.
  for (std::size_t i = 1; i < design.nodes; ++i) {
    c.add_resistor(str::format("RS%zu", i), str::format("n%zu", i - 1),
                   str::format("n%zu", i), rng.uniform(100.0, 50e3));
    if (i % design.testable_stride == 0) {
      cut.testable.push_back(str::format("RS%zu", i));
    }
  }
  c.add_resistor("RL", str::format("n%zu", design.nodes - 1), "0",
                 rng.uniform(1e3, 100e3));
  // Chords between random nodes (including ground) give the matrix an
  // irregular, non-banded sparsity pattern.
  for (std::size_t k = 0; k < design.chords; ++k) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(design.nodes) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(design.nodes) - 1));
    const std::string node_a = str::format("n%zu", a);
    const std::string node_b =
        rng.bernoulli(0.25) ? "0" : str::format("n%zu", b);
    if (node_a == node_b) continue;
    const std::string name = str::format("P%zu", k);
    if (rng.bernoulli(0.7)) {
      c.add_resistor(name, node_a, node_b, rng.uniform(100.0, 100e3));
    } else {
      c.add_capacitor(name, node_a, node_b, rng.uniform(1e-10, 1e-6));
    }
  }

  cut.input_source = "vin";
  cut.output_node = str::format("n%zu", design.nodes - 1);
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(10.0, 1e6, 240);
  cut.band_low_hz = 10.0;
  cut.band_high_hz = 1e6;
  cut.check();
  return cut;
}

}  // namespace ftdiag::circuits
