#include "circuits/mfb.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag::circuits {

namespace {

void check_design(const MfbDesign& d) {
  if (!(d.f0_hz > 0.0) || !(d.q > 0.0) || !(d.gain > 0.0) ||
      !(d.r_base > 0.0)) {
    throw ConfigError("mfb: design parameters must be positive");
  }
}

void add_amp(CircuitUnderTest& cut, const MfbDesign& d, const std::string& inv,
             const std::string& out) {
  if (d.ideal_opamps) {
    cut.circuit.add_ideal_opamp("OA1", "0", inv, out);
  } else {
    cut.circuit.add_opamp("OA1", "0", inv, out, d.opamp_model);
  }
}

}  // namespace

CircuitUnderTest make_mfb_lowpass(const MfbDesign& design) {
  check_design(design);
  const double w0 = 2.0 * std::numbers::pi * design.f0_hz;
  // R2 = R3 = r_base; R1 sets the gain; C1/C2 ratio sets Q.
  const double r = design.r_base;
  const double r1 = r / design.gain;
  const double h0_plus_2 = design.gain + 2.0;
  const double c1 = design.q * h0_plus_2 / (w0 * r);
  const double c2 = 1.0 / (design.q * h0_plus_2 * w0 * r);

  CircuitUnderTest cut;
  cut.name = "mfb_lp";
  cut.description = "Multiple-feedback (Rauch) second-order low-pass";
  netlist::Circuit& c = cut.circuit;
  c.set_title("mfb low-pass");
  c.add_vsource("vin", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "a", r1);
  c.add_resistor("R2", "a", "out", r);
  c.add_resistor("R3", "a", "n", r);
  c.add_capacitor("C1", "a", "0", c1);
  c.add_capacitor("C2", "n", "out", c2);
  add_amp(cut, design, "n", "out");

  cut.input_source = "vin";
  cut.output_node = "out";
  cut.testable = {"R1", "R2", "R3", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.f0_hz / 100.0, design.f0_hz * 100.0, 240);
  cut.band_low_hz = design.f0_hz / 100.0;
  cut.band_high_hz = design.f0_hz * 100.0;
  cut.check();
  return cut;
}

CircuitUnderTest make_mfb_bandpass(const MfbDesign& design) {
  check_design(design);
  if (2.0 * design.q * design.q <= design.gain) {
    throw ConfigError(
        "mfb bandpass requires 2*Q^2 > gain (R3 would be non-positive)");
  }
  const double w0 = 2.0 * std::numbers::pi * design.f0_hz;
  // Equal-C design.
  const double cap = 1.0 / (w0 * design.r_base);
  const double r2 = 2.0 * design.q / (w0 * cap);
  const double r1 = design.q / (design.gain * w0 * cap);
  const double r3 =
      1.0 / (w0 * cap * (2.0 * design.q - design.gain / design.q));

  CircuitUnderTest cut;
  cut.name = "mfb_bp";
  cut.description = "Multiple-feedback (Delyiannis) second-order band-pass";
  netlist::Circuit& c = cut.circuit;
  c.set_title("mfb band-pass");
  c.add_vsource("vin", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "a", r1);
  c.add_resistor("R3", "a", "0", r3);
  c.add_capacitor("C1", "a", "n", cap);
  c.add_capacitor("C2", "a", "out", cap);
  c.add_resistor("R2", "out", "n", r2);
  add_amp(cut, design, "n", "out");

  cut.input_source = "vin";
  cut.output_node = "out";
  cut.testable = {"R1", "R2", "R3", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.f0_hz / 100.0, design.f0_hz * 100.0, 240);
  cut.band_low_hz = design.f0_hz / 100.0;
  cut.band_high_hz = design.f0_hz * 100.0;
  cut.check();
  return cut;
}

}  // namespace ftdiag::circuits
