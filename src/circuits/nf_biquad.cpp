#include "circuits/nf_biquad.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag::circuits {

namespace {

struct Values {
  double ra, rb, r1, r2, r3, c1, c2;
  double alpha, r1eff;
};

Values solve_design(const NfBiquadDesign& d) {
  if (!(d.f0_hz > 0.0) || !(d.q > 0.0) || !(d.dc_gain > 0.0) ||
      !(d.r_base > 0.0)) {
    throw ConfigError("nf_biquad: design parameters must be positive");
  }
  if (!(d.dc_gain < 2.0)) {
    throw ConfigError(
        "nf_biquad: dc_gain must be < 2 with the alpha = 1/2 divider");
  }
  const double w0 = 2.0 * std::numbers::pi * d.f0_hz;
  const double r = d.r_base;
  Values v{};
  v.ra = r / 2.0;
  v.rb = r / 2.0;
  v.alpha = 0.5;
  v.r2 = r;
  v.r3 = r;
  // Overall DC gain g = alpha * R2 / R1eff  =>  R1eff = alpha * R2 / g.
  v.r1eff = v.alpha * v.r2 / d.dc_gain;
  const double r_thevenin = v.ra * v.rb / (v.ra + v.rb);  // r/4
  v.r1 = v.r1eff - r_thevenin;
  FTDIAG_ASSERT(v.r1 > 0.0, "nf_biquad design yielded non-positive R1");
  // w0^2 = 1/(R2*R3*C1*C2); w0/Q = (1/R1eff + 1/R2 + 1/R3)/C1.
  const double sum_g = 1.0 / v.r1eff + 1.0 / v.r2 + 1.0 / v.r3;
  v.c1 = d.q * sum_g / w0;
  v.c2 = 1.0 / (w0 * w0 * v.r2 * v.r3 * v.c1);
  return v;
}

}  // namespace

CircuitUnderTest make_nf_biquad(const NfBiquadDesign& design) {
  const Values v = solve_design(design);

  CircuitUnderTest cut;
  cut.name = "nf_biquad";
  cut.description =
      "negative-feedback (MFB) biquad low-pass with source divider "
      "(the paper CUT, 7 testable passives)";
  netlist::Circuit& c = cut.circuit;
  c.set_title("negative-feedback biquad low-pass (paper CUT)");
  c.add_vsource("vin", "in", "0", /*dc=*/0.0, /*ac_magnitude=*/1.0);

  c.add_resistor("Ra", "in", "d", v.ra);
  c.add_resistor("Rb", "d", "0", v.rb);
  c.add_resistor("R1", "d", "a", v.r1);
  c.add_resistor("R2", "a", "out", v.r2);
  c.add_resistor("R3", "a", "n", v.r3);
  c.add_capacitor("C1", "a", "0", v.c1);
  c.add_capacitor("C2", "n", "out", v.c2);

  if (design.ideal_opamps) {
    c.add_ideal_opamp("OA1", "0", "n", "out");
  } else {
    c.add_opamp("OA1", "0", "n", "out", design.opamp_model);
  }

  cut.input_source = "vin";
  cut.output_node = "out";
  cut.testable = {"Ra", "Rb", "R1", "R2", "R3", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(10.0, 100.0e3, 240);
  cut.band_low_hz = 10.0;
  cut.band_high_hz = 100.0e3;
  cut.check();
  return cut;
}

CircuitUnderTest make_paper_cut() { return make_nf_biquad(NfBiquadDesign{}); }

std::complex<double> nf_biquad_transfer(const NfBiquadDesign& design,
                                        double frequency_hz) {
  const Values v = solve_design(design);
  const std::complex<double> s(0.0, 2.0 * std::numbers::pi * frequency_hz);
  const double num = v.alpha / (v.r1eff * v.r3 * v.c1 * v.c2);
  const std::complex<double> den =
      s * s +
      s * ((1.0 / v.r1eff + 1.0 / v.r2 + 1.0 / v.r3) / v.c1) +
      std::complex<double>(1.0 / (v.r2 * v.r3 * v.c1 * v.c2), 0.0);
  return -num / den;
}

}  // namespace ftdiag::circuits
