/// \file cut.hpp
/// \brief Circuit-under-test descriptor: a circuit plus the test access
/// information the diagnosis flow needs (stimulus source, observation node,
/// testable component set, recommended frequency band).
#pragma once

#include <string>
#include <vector>

#include "mna/frequency_grid.hpp"
#include "netlist/circuit.hpp"

namespace ftdiag::circuits {

/// Everything the ATPG flow needs to know about one benchmark circuit.
struct CircuitUnderTest {
  std::string name;         ///< registry key, e.g. "tow_thomas"
  std::string description;  ///< one-line summary for listings

  netlist::Circuit circuit;

  std::string input_source;  ///< name of the AC stimulus source
  std::string output_node;   ///< observed node (test point)

  /// Component names whose parametric faults the dictionary covers.
  std::vector<std::string> testable;

  /// Default AC sweep for dictionary construction.
  mna::FrequencyGrid dictionary_grid;

  /// Recommended band [lo, hi] for test-frequency search (Hz).
  double band_low_hz = 10.0;
  double band_high_hz = 100.0e3;

  /// Sanity-check the descriptor against its own circuit:
  /// source/output/testable names must exist, band must be ordered.
  /// \throws ftdiag::ConfigError describing the first problem.
  void check() const;
};

}  // namespace ftdiag::circuits
