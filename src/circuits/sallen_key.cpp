#include "circuits/sallen_key.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag::circuits {

namespace {

void check_design(const SallenKeyDesign& d) {
  if (!(d.f0_hz > 0.0) || !(d.q > 0.0) || !(d.r_base > 0.0)) {
    throw ConfigError("sallen_key: design parameters must be positive");
  }
}

void add_buffer(CircuitUnderTest& cut, const SallenKeyDesign& d,
                const std::string& in_plus, const std::string& out) {
  if (d.ideal_opamps) {
    cut.circuit.add_ideal_opamp("OA1", in_plus, out, out);
  } else {
    cut.circuit.add_opamp("OA1", in_plus, out, out, d.opamp_model);
  }
}

}  // namespace

CircuitUnderTest make_sallen_key_lowpass(const SallenKeyDesign& design) {
  check_design(design);
  const double w0 = 2.0 * std::numbers::pi * design.f0_hz;
  // Equal-R design: R1 = R2 = r_base; C1/C2 = 4 Q^2 sets Q.
  const double r = design.r_base;
  const double c1 = 2.0 * design.q / (w0 * r);
  const double c2 = 1.0 / (2.0 * design.q * w0 * r);

  CircuitUnderTest cut;
  cut.name = "sallen_key_lp";
  cut.description = "Sallen-Key unity-gain second-order low-pass";
  netlist::Circuit& c = cut.circuit;
  c.set_title("sallen-key low-pass");
  c.add_vsource("vin", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "a", r);
  c.add_resistor("R2", "a", "b", r);
  c.add_capacitor("C1", "a", "out", c1);
  c.add_capacitor("C2", "b", "0", c2);
  add_buffer(cut, design, "b", "out");

  cut.input_source = "vin";
  cut.output_node = "out";
  cut.testable = {"R1", "R2", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.f0_hz / 100.0, design.f0_hz * 100.0, 240);
  cut.band_low_hz = design.f0_hz / 100.0;
  cut.band_high_hz = design.f0_hz * 100.0;
  cut.check();
  return cut;
}

CircuitUnderTest make_sallen_key_highpass(const SallenKeyDesign& design) {
  check_design(design);
  const double w0 = 2.0 * std::numbers::pi * design.f0_hz;
  // Equal-C design: C1 = C2 = C; R2/R1 = 4 Q^2 sets Q.
  const double cap = 1.0 / (w0 * design.r_base);
  const double r1 = design.r_base / (2.0 * design.q);
  const double r2 = 2.0 * design.q * design.r_base;

  CircuitUnderTest cut;
  cut.name = "sallen_key_hp";
  cut.description = "Sallen-Key unity-gain second-order high-pass";
  netlist::Circuit& c = cut.circuit;
  c.set_title("sallen-key high-pass");
  c.add_vsource("vin", "in", "0", 0.0, 1.0);
  c.add_capacitor("C1", "in", "a", cap);
  c.add_capacitor("C2", "a", "b", cap);
  c.add_resistor("R1", "a", "out", r1);
  c.add_resistor("R2", "b", "0", r2);
  add_buffer(cut, design, "b", "out");

  cut.input_source = "vin";
  cut.output_node = "out";
  cut.testable = {"R1", "R2", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      design.f0_hz / 100.0, design.f0_hz * 100.0, 240);
  cut.band_low_hz = design.f0_hz / 100.0;
  cut.band_high_hz = design.f0_hz * 100.0;
  cut.check();
  return cut;
}

}  // namespace ftdiag::circuits
