/// \file tow_thomas.hpp
/// \brief The paper's CUT: a Tow-Thomas two-integrator-loop biquad
/// low-pass filter (negative-feedback biquad).
///
/// Topology (all op-amps ideal by default):
///
/// ```
///   vin --R1--+--[OA1: C1 || R2 feedback]-- bp --R3--[OA2: C2 fb]-- lp(out)
///             |                                                      |
///             +-----------------R6------- inv <--[OA3: R4/R5]--------+
/// ```
///
/// Transfer function to the LP output (k = R5/R4):
///
///   H(s) = (1/(R1*R3*C1*C2)) / (s^2 + s/(R2*C1) + k/(R3*R6*C1*C2))
///
/// giving w0 = sqrt(k/(R3*R6*C1*C2)), Q = w0*R2*C1, H(0) = R6/(R1*k).
///
/// The testable set is the seven passives {R1,R2,R3,R4,R6,C1,C2}.  R5 is
/// excluded: only the ratio R5/R4 enters H(s), so R5 deviations retrace the
/// R4 trajectory with the opposite sign.
///
/// NOTE — this topology is the library's worked example of *structural
/// ambiguity groups*: at the LP output, R4 and R6 enter H(s) only through
/// k/R6 (their trajectories coincide exactly), and R3 and C2 only through
/// the product R3*C2.  No test-frequency choice can separate components
/// inside such a group; see core/ambiguity.hpp, which detects them, and the
/// ablation benchmark that quantifies the accuracy ceiling they impose.
/// The paper CUT used for the headline reproduction is circuits/nf_biquad.
#pragma once

#include <complex>

#include "circuits/cut.hpp"

namespace ftdiag::circuits {

/// Design parameters of the Tow-Thomas CUT.
struct TowThomasDesign {
  double f0_hz = 1.0e3;     ///< pole frequency
  double q = 0.70710678;    ///< quality factor (Butterworth by default)
  double dc_gain = 1.0;     ///< |H(0)|
  double r_base = 10.0e3;   ///< impedance level (R3 = R6 = r_base)
  bool ideal_opamps = true; ///< false: single-pole macro models
  netlist::OpAmpModel opamp_model{};  ///< used when !ideal_opamps
};

/// Build the CUT with the given design.  Component values follow from the
/// design equations above with R3 = R6 = r_base and C1 = C2.
[[nodiscard]] CircuitUnderTest make_tow_thomas(const TowThomasDesign& design = {});

/// Analytic transfer function of the design (for verification tests).
[[nodiscard]] std::complex<double> tow_thomas_transfer(
    const TowThomasDesign& design, double frequency_hz);

}  // namespace ftdiag::circuits
