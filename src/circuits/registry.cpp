#include "circuits/registry.hpp"

#include "circuits/ladders.hpp"
#include "circuits/mfb.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/sallen_key.hpp"
#include "circuits/state_variable.hpp"
#include "circuits/tow_thomas.hpp"
#include "util/error.hpp"

namespace ftdiag::circuits {

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> kEntries = {
      {"nf_biquad",
       "negative-feedback biquad low-pass (the paper CUT, 7 testable "
       "passives)",
       [] { return make_paper_cut(); }},
      {"tow_thomas",
       "Tow-Thomas biquad low-pass (ambiguity-group case study)",
       [] { return make_tow_thomas(); }},
      {"sallen_key_lp", "Sallen-Key unity-gain low-pass",
       [] { return make_sallen_key_lowpass(); }},
      {"sallen_key_hp", "Sallen-Key unity-gain high-pass",
       [] { return make_sallen_key_highpass(); }},
      {"mfb_lp", "Multiple-feedback (Rauch) low-pass",
       [] { return make_mfb_lowpass(); }},
      {"mfb_bp", "Multiple-feedback (Delyiannis) band-pass",
       [] {
         MfbDesign design;
         design.q = 2.0;  // 2*Q^2 > gain keeps R3 realizable
         return make_mfb_bandpass(design);
       }},
      {"state_variable", "KHN state-variable filter (LP output)",
       [] { return make_state_variable(); }},
      {"rc_ladder", "5-section passive RC low-pass ladder",
       [] { return make_rc_ladder(); }},
      {"lc_ladder", "5th-order doubly-terminated Butterworth LC low-pass",
       [] { return make_lc_ladder(); }},
      {"twin_t", "passive twin-T notch",
       [] { return make_twin_t(); }},
  };
  return kEntries;
}

CircuitUnderTest make_by_name(const std::string& name) {
  for (const auto& entry : registry()) {
    if (entry.name == name) return entry.make();
  }
  throw ConfigError("unknown benchmark circuit '" + name + "'");
}

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  for (const auto& entry : registry()) names.push_back(entry.name);
  return names;
}

}  // namespace ftdiag::circuits
