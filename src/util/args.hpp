/// \file args.hpp
/// \brief Minimal command-line argument parser for the CLI tools.
///
/// Supports `--flag`, `--key value`, `--key=value` and positional
/// arguments.  Unknown options are an error so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftdiag::args {

/// Declaration of one accepted option.
struct OptionSpec {
  std::string name;         ///< without the leading "--"
  std::string help;
  bool is_flag = false;     ///< true: no value expected
  std::string default_value;  ///< used when absent (non-flags)
};

class Parser {
public:
  /// \param program for the usage line; \param description one-liner.
  Parser(std::string program, std::string description);

  /// Register an option taking a value.
  Parser& option(const std::string& name, const std::string& help,
                 const std::string& default_value = "");

  /// Register a boolean flag.
  Parser& flag(const std::string& name, const std::string& help);

  /// Register a named positional argument (required, in order).
  Parser& positional(const std::string& name, const std::string& help);

  /// Parse argv.  \throws ftdiag::ParseError on unknown options, missing
  /// values or missing positionals.  "--help" is recognized and sets
  /// help_requested() instead of throwing.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const { return help_requested_; }

  /// Usage text.
  [[nodiscard]] std::string usage() const;

  /// Value of an option (default when absent).  \throws ParseError for
  /// undeclared names (programming error surfaced loudly).
  [[nodiscard]] std::string get(const std::string& name) const;

  /// Value parsed as double via units::parse ("10k" works).
  [[nodiscard]] double get_double(const std::string& name) const;

  /// Value parsed as a non-negative integer.
  [[nodiscard]] std::size_t get_size(const std::string& name) const;

  /// True if a flag was given.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Positional value by declared name.
  [[nodiscard]] const std::string& positional_value(
      const std::string& name) const;

private:
  std::string program_;
  std::string description_;
  std::vector<OptionSpec> specs_;
  std::vector<std::string> positional_names_;
  std::vector<std::string> positional_help_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::map<std::string, std::string> positionals_;
  bool help_requested_ = false;

  [[nodiscard]] const OptionSpec* find_spec(const std::string& name) const;
};

}  // namespace ftdiag::args
