/// \file strings.hpp
/// \brief Small string utilities shared by the parsers and reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ftdiag::str {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Upper-case an ASCII string.
[[nodiscard]] std::string to_upper(std::string_view s);

/// Split on a delimiter character.  Empty fields are kept;
/// splitting the empty string yields one empty field.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace.  Never yields empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// True if \p s begins with \p prefix (case-sensitive).
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// True if \p s ends with \p suffix (case-sensitive).
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Join \p parts with \p sep.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// printf-style formatting into std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ftdiag::str
