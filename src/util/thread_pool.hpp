/// \file thread_pool.hpp
/// \brief Persistent work-stealing thread pool behind par::parallel_for.
///
/// The fork/join loop this replaces spawned and joined raw std::threads on
/// every call — measurably slower than serial for the service's
/// micro-batches.  This pool starts its workers once (lazily, on the first
/// parallel call) and keeps them parked on a condition variable between
/// calls, so the steady-state cost of a parallel_for is one mutex hop and
/// zero heap allocations (jobs live on the caller's stack and are linked
/// into an intrusive list).
///
/// Scheduling: a job's index range is cut into contiguous blocks (block
/// partition, not strided, so adjacent result slots are written by one
/// thread and false sharing dies at block boundaries).  Workers and the
/// calling thread steal the next unclaimed block from a shared atomic
/// cursor until the range is drained — idle lanes steal work instead of
/// idling behind a static partition.  The partition only ever decides
/// *who* computes an item, never *what* is computed, so results are
/// bit-identical for any worker count (the determinism contract of
/// parallel.hpp).
///
/// Nested parallel calls from inside a job run inline on the calling
/// lane: when the engine's sweep runs inside a DiagnosisService worker the
/// inner loops must not oversubscribe the machine.
///
/// Exceptions thrown by items are caught, the first one is rethrown on the
/// calling thread after the job drains; remaining blocks still run (items
/// are independent).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ftdiag::par {

class ThreadPool {
public:
  /// The process-wide pool, started on first use.  Its worker count is
  /// util::resolve_threads(0) - 1 (the calling thread is the extra lane),
  /// so FTDIAG_THREADS sizes it; a single-core resolution yields zero
  /// workers and every parallel call runs inline.
  static ThreadPool& global();

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// True while the current thread is executing items of some job (its
  /// own or a stolen one).  Nested parallel calls observe this and run
  /// inline.
  [[nodiscard]] static bool in_parallel_region();

  /// True once the process-wide pool has been destroyed (static
  /// teardown).  Callers racing exit fall back to inline loops instead of
  /// touching the dead pool.
  [[nodiscard]] static bool global_torn_down();

  /// Run fn(i) for every i in [0, count), on up to \p max_lanes lanes
  /// (the caller plus up to max_lanes - 1 pool workers).  Runs inline
  /// when max_lanes <= 1, count <= 1, the pool has no workers, or the
  /// call is nested inside another job.
  template <typename Fn>
  void for_each(std::size_t count, std::size_t max_lanes, Fn&& fn) {
    for_each_lane(count, max_lanes,
                  [&fn](std::size_t /*lane*/, std::size_t i) { fn(i); });
  }

  /// Same, with the executing lane id passed to fn(lane, i).  Lane ids
  /// are dense in [0, max_lanes): the caller is lane 0 and each attaching
  /// worker takes the next id, so fn can index per-lane workspaces
  /// without locking.  Lane assignment never affects which items a lane
  /// computes deterministically — it only names the scratch space.
  template <typename Fn>
  void for_each_lane(std::size_t count, std::size_t max_lanes, Fn&& fn) {
    if (count == 0) return;
    if (max_lanes > count) max_lanes = count;
    if (max_lanes <= 1 || count <= 1 || workers_.empty() ||
        in_parallel_region()) {
      const RegionGuard guard;
      for (std::size_t i = 0; i < count; ++i) fn(0, i);
      return;
    }

    using Func = std::remove_reference_t<Fn>;
    Job job;
    job.ctx = const_cast<void*>(static_cast<const void*>(&fn));
    job.run = [](void* ctx, std::size_t lane, std::size_t begin,
                 std::size_t end) {
      Func& f = *static_cast<Func*>(ctx);
      for (std::size_t i = begin; i < end; ++i) f(lane, i);
    };
    job.count = count;
    job.max_lanes = max_lanes;
    // A few blocks per lane so a slow block doesn't strand the others
    // behind a static split; contiguous ranges keep slot writes local.
    job.block_count = std::min(count, max_lanes * kBlocksPerLane);
    run(job);
  }

private:
  static constexpr std::size_t kBlocksPerLane = 4;

  /// One parallel loop, stack-allocated by the caller and linked into the
  /// pool's intrusive pending list until its range is drained.
  struct Job {
    void (*run)(void*, std::size_t lane, std::size_t begin,
                std::size_t end) = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    std::size_t block_count = 0;
    std::size_t max_lanes = 0;
    std::atomic<std::size_t> next_block{0};
    std::size_t lane_ticket = 1;  ///< next lane id (0 is the caller); guarded by pool mutex
    std::size_t active = 0;       ///< attached workers still running; guarded by pool mutex
    std::exception_ptr error;     ///< first item exception; guarded by error_mutex
    std::mutex error_mutex;
    Job* next = nullptr;          ///< intrusive pending-list link
  };

  /// Marks the current thread as inside a parallel region for the guard's
  /// lifetime (nested calls then run inline).
  struct RegionGuard {
    RegionGuard();
    ~RegionGuard();
  };

  void run(Job& job);
  void worker_loop();
  void work_on(Job& job, std::size_t lane);
  [[nodiscard]] Job* find_attachable_locked();
  void enqueue_locked(Job& job);
  void dequeue_locked(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers park here between jobs
  std::condition_variable done_cv_;  ///< callers wait here for their job
  Job* head_ = nullptr;
  Job* tail_ = nullptr;
  bool stop_ = false;
};

}  // namespace ftdiag::par
