#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::csv {

std::size_t Table::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ParseError("csv column '" + name + "' not found");
}

Writer::Writer(std::ostream& os, char sep) : os_(os), sep_(sep) {}

void Writer::cell(const std::string& value, bool first) {
  if (!first) os_ << sep_;
  const bool needs_quotes =
      value.find_first_of(std::string{sep_, '"', '\n', '\r'}) !=
      std::string::npos;
  if (!needs_quotes) {
    os_ << value;
    return;
  }
  os_ << '"';
  for (char c : value) {
    if (c == '"') os_ << '"';
    os_ << c;
  }
  os_ << '"';
}

void Writer::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) cell(cells[i], i == 0);
  os_ << '\n';
}

void Writer::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(str::format("%.10g", v));
  row(text);
}

Table parse(const std::string& text, char sep) {
  Table table;
  std::vector<std::string> current_row;
  std::string current_cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    current_row.push_back(current_cell);
    current_cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    if (table.header.empty()) {
      table.header = current_row;
    } else {
      table.rows.push_back(current_row);
    }
    current_row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current_cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current_cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !current_row.empty() || !current_cell.empty()) {
          end_row();
        }
        break;
      default:
        if (c == sep) {
          end_cell();
          row_has_content = true;
        } else {
          current_cell += c;
          row_has_content = true;
        }
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted csv field");
  if (row_has_content || !current_row.empty() || !current_cell.empty()) {
    end_row();
  }
  return table;
}

Table read_file(const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open csv file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), sep);
}

}  // namespace ftdiag::csv
