/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation (xoshiro256++).
///
/// Every stochastic component of the library (GA, Monte-Carlo tolerance
/// sampling, noise injection) draws from an explicitly-seeded Rng so that
/// experiments are bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace ftdiag {

/// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion of a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Index drawn proportionally to non-negative weights (roulette wheel).
  /// A zero-sum weight vector falls back to a uniform choice.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fork a statistically independent child stream (for per-thread or
  /// per-component use) without disturbing this stream more than one draw.
  Rng fork();

private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ftdiag
