/// \file table.hpp
/// \brief ASCII table printer for benchmark and example output.
///
/// The benchmark binaries reproduce the paper's figures as numeric tables;
/// this formatter keeps that output aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftdiag {

/// Column-aligned ASCII table with optional title and rule lines.
class AsciiTable {
public:
  /// \param headers column titles; fixes the column count.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Append a row of preformatted cells.  Shorter rows are padded with "".
  /// Rows longer than the header are truncated.
  void add_row(std::vector<std::string> cells);

  /// Append a row of doubles formatted with %.4g.
  void add_numeric_row(const std::vector<double>& cells);

  /// Append a row whose first cell is a label and the rest doubles.
  void add_labeled_row(const std::string& label,
                       const std::vector<double>& cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with `|` separators and a rule under the header.
  [[nodiscard]] std::string str() const;

  /// Convenience: render with a title line above the table.
  void print(std::ostream& os, const std::string& title = "") const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftdiag
