/// \file error.hpp
/// \brief Exception hierarchy and contract-checking macros for ftdiag.
///
/// Recoverable failures (bad netlist, singular matrix, malformed CSV, ...)
/// throw an exception derived from ftdiag::Error.  Programming errors
/// (contract violations) abort via FTDIAG_ASSERT in all build types, so the
/// library behaves identically in Release and Debug.
#pragma once

#include <stdexcept>
#include <string>

namespace ftdiag {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: netlists, unit strings, CSV files, option values.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Structurally invalid circuit (dangling node, duplicate name, ...).
class CircuitError : public Error {
public:
  explicit CircuitError(const std::string& what) : Error("circuit error: " + what) {}
};

/// Numerical failure: singular MNA matrix, non-convergence, overflow.
class NumericError : public Error {
public:
  explicit NumericError(const std::string& what) : Error("numeric error: " + what) {}
};

/// Invalid configuration of an analysis, fault universe or optimizer.
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// The serving layer shed this request to protect itself (queue depth over
/// the high-water mark).  Retryable by construction: the request was never
/// admitted, so nothing was computed or partially applied.
class OverloadError : public Error {
public:
  explicit OverloadError(const std::string& what) : Error("overloaded: " + what) {}
};

/// The request's deadline expired before an answer could be produced.  The
/// work was skipped (never half-done), but the caller's budget is gone —
/// request-level, not retryable.
class DeadlineError : public Error {
public:
  explicit DeadlineError(const std::string& what)
      : Error("deadline exceeded: " + what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace ftdiag

/// Contract check, active in every build type.  On failure prints
/// expression + location and aborts.
#define FTDIAG_ASSERT(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ftdiag::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)
