#include "util/args.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::args {

Parser::Parser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Parser& Parser::option(const std::string& name, const std::string& help,
                       const std::string& default_value) {
  specs_.push_back({name, help, false, default_value});
  return *this;
}

Parser& Parser::flag(const std::string& name, const std::string& help) {
  specs_.push_back({name, help, true, ""});
  return *this;
}

Parser& Parser::positional(const std::string& name, const std::string& help) {
  positional_names_.push_back(name);
  positional_help_.push_back(help);
  return *this;
}

const OptionSpec* Parser::find_spec(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

void Parser::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional_seen;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      return;
    }
    if (str::starts_with(token, "--")) {
      std::string name = token.substr(2);
      std::string inline_value;
      bool has_inline = false;
      if (const auto pos = name.find('='); pos != std::string::npos) {
        inline_value = name.substr(pos + 1);
        name = name.substr(0, pos);
        has_inline = true;
      }
      const OptionSpec* spec = find_spec(name);
      if (spec == nullptr) {
        throw ParseError("unknown option '--" + name + "'");
      }
      if (spec->is_flag) {
        if (has_inline) {
          throw ParseError("flag '--" + name + "' takes no value");
        }
        flags_[name] = true;
      } else if (has_inline) {
        values_[name] = inline_value;
      } else {
        if (i + 1 >= argc) {
          throw ParseError("option '--" + name + "' needs a value");
        }
        values_[name] = argv[++i];
      }
    } else {
      positional_seen.push_back(std::move(token));
    }
  }
  if (positional_seen.size() != positional_names_.size()) {
    throw ParseError(str::format("expected %zu positional argument(s), got %zu",
                                 positional_names_.size(),
                                 positional_seen.size()));
  }
  for (std::size_t i = 0; i < positional_names_.size(); ++i) {
    positionals_[positional_names_[i]] = positional_seen[i];
  }
}

std::string Parser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const auto& name : positional_names_) os << " <" << name << ">";
  os << " [options]\n\n" << description_ << "\n\n";
  for (std::size_t i = 0; i < positional_names_.size(); ++i) {
    os << "  <" << positional_names_[i] << ">  " << positional_help_[i]
       << "\n";
  }
  os << "\noptions:\n";
  for (const auto& spec : specs_) {
    os << "  --" << spec.name;
    if (!spec.is_flag) {
      os << " <value>";
      if (!spec.default_value.empty()) {
        os << " (default: " << spec.default_value << ")";
      }
    }
    os << "\n      " << spec.help << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

std::string Parser::get(const std::string& name) const {
  const OptionSpec* spec = find_spec(name);
  if (spec == nullptr || spec->is_flag) {
    throw ParseError("get() on undeclared option '" + name + "'");
  }
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->default_value;
}

double Parser::get_double(const std::string& name) const {
  return units::parse(get(name));
}

std::size_t Parser::get_size(const std::string& name) const {
  const double v = get_double(name);
  if (v < 0.0) throw ParseError("option '--" + name + "' must be >= 0");
  return static_cast<std::size_t>(v);
}

bool Parser::has(const std::string& name) const {
  const OptionSpec* spec = find_spec(name);
  if (spec == nullptr || !spec->is_flag) {
    throw ParseError("has() on undeclared flag '" + name + "'");
  }
  return flags_.contains(name);
}

const std::string& Parser::positional_value(const std::string& name) const {
  const auto it = positionals_.find(name);
  if (it == positionals_.end()) {
    throw ParseError("missing positional '" + name + "'");
  }
  return it->second;
}

}  // namespace ftdiag::args
