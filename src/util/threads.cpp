#include "util/threads.hpp"

#include <cstdlib>
#include <thread>

namespace ftdiag::util {

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("FTDIAG_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value <= 4096) {
      return static_cast<std::size_t>(value);
    }
  }
  return hardware_threads();
}

}  // namespace ftdiag::util
