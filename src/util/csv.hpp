/// \file csv.hpp
/// \brief Minimal RFC-4180-ish CSV writer and reader.
///
/// Used to export fault dictionaries, trajectories and benchmark series for
/// external plotting, and to round-trip them in tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftdiag::csv {

/// One parsed CSV table: a header row plus data rows of strings.
struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for a header name. \throws ftdiag::ParseError if missing.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Streaming CSV writer with proper quoting of separators/quotes/newlines.
class Writer {
public:
  explicit Writer(std::ostream& os, char sep = ',');

  /// Write one row of string cells.
  void row(const std::vector<std::string>& cells);

  /// Write one row of doubles using %.10g.
  void row_numeric(const std::vector<double>& cells);

private:
  void cell(const std::string& value, bool first);
  std::ostream& os_;
  char sep_;
};

/// Parse CSV text (first row is the header).
/// Handles quoted fields with embedded separators, quotes and newlines.
/// \throws ftdiag::ParseError on unterminated quotes.
[[nodiscard]] Table parse(const std::string& text, char sep = ',');

/// Read and parse a CSV file. \throws ftdiag::ParseError if unreadable.
[[nodiscard]] Table read_file(const std::string& path, char sep = ',');

}  // namespace ftdiag::csv
