#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::units {

namespace {

/// Map a SPICE suffix (already lower-cased) starting at `tail` to a scale.
/// Returns 1.0 when no suffix is recognized and the tail is empty.
std::optional<double> suffix_scale(std::string_view tail) {
  if (tail.empty()) return 1.0;
  // `meg` and `mil` must be matched before single-letter `m`.
  if (str::starts_with(tail, "meg")) return 1e6;
  if (str::starts_with(tail, "mil")) return 25.4e-6;
  switch (tail.front()) {
    case 't': return 1e12;
    case 'g': return 1e9;
    case 'k': return 1e3;
    case 'm': return 1e-3;
    case 'u': return 1e-6;
    case 'n': return 1e-9;
    case 'p': return 1e-12;
    case 'f': return 1e-15;
    default: break;
  }
  // Unknown first character: only acceptable when it begins a pure unit
  // name (letters only), which SPICE ignores -- e.g. "10Ohm", "5V".
  for (char c : tail) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
  }
  return 1.0;
}

}  // namespace

std::optional<double> try_parse(std::string_view text) {
  const std::string s = str::to_lower(std::string(str::trim(text)));
  if (s.empty()) return std::nullopt;
  const char* begin = s.c_str();
  char* end = nullptr;
  const double mantissa = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  if (!std::isfinite(mantissa)) return std::nullopt;
  std::string_view tail(end);
  // A suffix directly follows the number; anything alphabetic after the
  // suffix is a unit name and is ignored (SPICE behaviour).
  const auto scale = suffix_scale(tail);
  if (!scale) return std::nullopt;
  return mantissa * *scale;
}

double parse(std::string_view text) {
  const auto v = try_parse(text);
  if (!v) {
    throw ParseError("invalid engineering value '" + std::string(text) + "'");
  }
  return *v;
}

std::string format_si(double value) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  const double mag = std::fabs(value);
  // "meg" (not "M") for 1e6: SPICE suffixes are case-insensitive and a
  // leading 'm' always means milli, so format/parse round-trips.
  static constexpr struct {
    double scale;
    const char* suffix;
  } kTable[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "meg"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  for (const auto& entry : kTable) {
    if (mag >= entry.scale * 0.99999) {
      return str::format("%.4g%s", value / entry.scale, entry.suffix);
    }
  }
  return str::format("%g", value);
}

std::string format_hz(double hz) { return format_si(hz) + "Hz"; }

}  // namespace ftdiag::units
