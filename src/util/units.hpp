/// \file units.hpp
/// \brief SPICE-style engineering-unit parsing and SI formatting.
///
/// Component values in netlists use SPICE suffixes: `2.2u`, `10k`, `1meg`,
/// `4.7n`.  Suffixes are case-insensitive; trailing unit names after the
/// suffix (`10kOhm`, `100nF`) are tolerated and ignored, matching SPICE.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace ftdiag::units {

/// Parse a SPICE-style value such as `1.5k`, `2.2u`, `3meg`, `10`, `1e-9`.
/// \throws ftdiag::ParseError on malformed input.
[[nodiscard]] double parse(std::string_view text);

/// Non-throwing variant of parse().
[[nodiscard]] std::optional<double> try_parse(std::string_view text);

/// Format with an SI suffix and ~4 significant digits: 1500 -> "1.5k",
/// 2.2e-6 -> "2.2u".  Values outside [1e-18, 1e18) fall back to %g.
[[nodiscard]] std::string format_si(double value);

/// Format a frequency in engineering units with a trailing "Hz".
[[nodiscard]] std::string format_hz(double hz);

}  // namespace ftdiag::units
