#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ftdiag::log {

namespace {

Level env_level() {
  const char* v = std::getenv("FTDIAG_LOG");
  if (v == nullptr) return Level::kWarn;
  Level parsed = Level::kWarn;
  if (!parse_level(v, parsed)) {
    std::fprintf(stderr, "[ftdiag warn] ignoring unknown FTDIAG_LOG=%s\n", v);
    return Level::kWarn;
  }
  return parsed;
}

// Resolved lazily so FTDIAG_LOG set by a test harness before first use
// is honoured; an explicit set_level() marks the level resolved and
// wins regardless of the environment.
std::atomic<Level>& level_slot() {
  static std::atomic<Level> g_level{Level::kWarn};
  return g_level;
}

std::once_flag g_env_once;

void resolve_env_once() {
  std::call_once(g_env_once, [] { level_slot().store(env_level()); });
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

void append_fields(std::string& line, const Fields& fields) {
  for (const Field& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    const bool quote =
        f.value.empty() || f.value.find(' ') != std::string::npos;
    if (quote) line += '"';
    line += f.value;
    if (quote) line += '"';
  }
}

}  // namespace

Field::Field(std::string k, double v) : key(std::move(k)) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  value = buf;
}

bool parse_level(const std::string& name, Level& out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") out = Level::kDebug;
  else if (lower == "info") out = Level::kInfo;
  else if (lower == "warn" || lower == "warning") out = Level::kWarn;
  else if (lower == "error") out = Level::kError;
  else if (lower == "off" || lower == "none") out = Level::kOff;
  else return false;
  return true;
}

void set_level(Level level) {
  // Mark the env as resolved first so a concurrent first logger call
  // cannot overwrite the explicit choice afterwards.
  std::call_once(g_env_once, [] {});
  level_slot().store(level, std::memory_order_relaxed);
}

Level level() {
  resolve_env_once();
  return level_slot().load(std::memory_order_relaxed);
}

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::fprintf(stderr, "[ftdiag %s] %s\n", level_name(lvl), message.c_str());
  std::fflush(stderr);
}

void emit(Level lvl, const std::string& message, const Fields& fields) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::string line = message;
  append_fields(line, fields);
  std::fprintf(stderr, "[ftdiag %s] %s\n", level_name(lvl), line.c_str());
  std::fflush(stderr);
}

void debug(const std::string& message) { emit(Level::kDebug, message); }
void info(const std::string& message) { emit(Level::kInfo, message); }
void warn(const std::string& message) { emit(Level::kWarn, message); }
void error(const std::string& message) { emit(Level::kError, message); }
void debug(const std::string& message, const Fields& fields) {
  emit(Level::kDebug, message, fields);
}
void info(const std::string& message, const Fields& fields) {
  emit(Level::kInfo, message, fields);
}
void warn(const std::string& message, const Fields& fields) {
  emit(Level::kWarn, message, fields);
}
void error(const std::string& message, const Fields& fields) {
  emit(Level::kError, message, fields);
}

}  // namespace ftdiag::log
