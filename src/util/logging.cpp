#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace ftdiag::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::fprintf(stderr, "[ftdiag %s] %s\n", level_name(lvl), message.c_str());
  std::fflush(stderr);
}

void debug(const std::string& message) { emit(Level::kDebug, message); }
void info(const std::string& message) { emit(Level::kInfo, message); }
void warn(const std::string& message) { emit(Level::kWarn, message); }
void error(const std::string& message) { emit(Level::kError, message); }

}  // namespace ftdiag::log
