#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FTDIAG_ASSERT(lo <= hi, "uniform: lo must not exceed hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FTDIAG_ASSERT(lo <= hi, "uniform_int: lo must not exceed hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 must be strictly positive.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  FTDIAG_ASSERT(!weights.empty(), "weighted_index: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    FTDIAG_ASSERT(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: target == total
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace ftdiag
