/// \file threads.hpp
/// \brief The one place thread counts are resolved.
///
/// Every "threads = 0 means auto" knob in the code base (SimOptions,
/// SearchOptions / PipelineOptions, ServiceOptions) funnels through
/// resolve_threads() so they all agree on what "auto" means: the
/// FTDIAG_THREADS environment override when set to a positive integer,
/// otherwise the hardware concurrency.  An explicit (non-zero) request
/// always wins over the environment.
#pragma once

#include <cstddef>

namespace ftdiag::util {

/// The machine's hardware concurrency, at least 1.
[[nodiscard]] std::size_t hardware_threads();

/// Resolve a "0 = auto" thread-count knob: \p requested when non-zero,
/// otherwise the FTDIAG_THREADS environment variable (positive integers
/// only; anything else is ignored), otherwise hardware_threads().  The
/// environment is re-read on every call so tests (and long-running
/// services restarted via exec) observe changes; the lookup is far off
/// any hot path.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

}  // namespace ftdiag::util
