#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace ftdiag {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(str::format("%.4g", v));
  add_row(std::move(text));
}

void AsciiTable::add_labeled_row(const std::string& label,
                                 const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size() + 1);
  text.push_back(label);
  for (double v : cells) text.push_back(str::format("%.4g", v));
  add_row(std::move(text));
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << (i == 0 ? "| " : " ");
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << (i == 0 ? "|-" : "-") << std::string(widths[i], '-') << "-|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void AsciiTable::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  os << str();
}

}  // namespace ftdiag
