#include "util/thread_pool.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "util/threads.hpp"

namespace ftdiag::par {

namespace {

/// Process-wide pool metrics (`ftdiag_pool_*`).  Sharded counters: every
/// lane of every parallel region bumps them, so per-thread shards keep
/// the hot path free of shared cache lines.
struct PoolMetrics {
  obs::Counter& jobs;
  obs::ShardedCounter& stolen_blocks;
  obs::ShardedCounter& busy_us;

  static PoolMetrics& get() {
    static PoolMetrics* m = [] {
      obs::Registry& reg = obs::Registry::global();
      return new PoolMetrics{
          reg.counter("ftdiag_pool_jobs_total", {},
                      "parallel jobs submitted to the work-stealing pool"),
          reg.sharded_counter("ftdiag_pool_stolen_blocks_total", {},
                              "work blocks executed by a lane other than "
                              "the submitting thread"),
          reg.sharded_counter("ftdiag_pool_busy_us_total", {},
                              "cumulative microseconds lanes spent "
                              "attached to jobs"),
      };
    }();
    return *m;
  }
};

/// Depth of parallel-region nesting on this thread (caller lanes and pool
/// workers both count themselves while running items).
thread_local std::size_t t_region_depth = 0;

/// Set once the process-wide pool has been destroyed.  Static destructors
/// that run after teardown must fall back to inline execution instead of
/// touching a destroyed object.
std::atomic<bool> g_global_destroyed{false};

}  // namespace

ThreadPool::RegionGuard::RegionGuard() { ++t_region_depth; }
ThreadPool::RegionGuard::~RegionGuard() { --t_region_depth; }

bool ThreadPool::in_parallel_region() { return t_region_depth > 0; }

bool ThreadPool::global_torn_down() {
  return g_global_destroyed.load(std::memory_order_acquire);
}

ThreadPool& ThreadPool::global() {
  struct GlobalPool {
    ThreadPool pool;
    GlobalPool()
        : pool(util::resolve_threads(0) >= 2 ? util::resolve_threads(0) - 1
                                             : 0) {}
    ~GlobalPool() {
      g_global_destroyed.store(true, std::memory_order_release);
    }
  };
  static GlobalPool instance;
  return instance.pool;
}

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue_locked(Job& job) {
  job.next = nullptr;
  if (tail_ == nullptr) {
    head_ = tail_ = &job;
  } else {
    tail_->next = &job;
    tail_ = &job;
  }
}

void ThreadPool::dequeue_locked(Job& job) {
  Job** link = &head_;
  Job* prev = nullptr;
  while (*link != nullptr) {
    if (*link == &job) {
      *link = job.next;
      if (tail_ == &job) tail_ = prev;
      job.next = nullptr;
      return;
    }
    prev = *link;
    link = &prev->next;
  }
}

ThreadPool::Job* ThreadPool::find_attachable_locked() {
  for (Job* job = head_; job != nullptr; job = job->next) {
    if (job->lane_ticket < job->max_lanes &&
        job->next_block.load(std::memory_order_relaxed) < job->block_count) {
      return job;
    }
  }
  return nullptr;
}

void ThreadPool::work_on(Job& job, std::size_t lane) {
  const RegionGuard guard;
  const bool timed = obs::enabled();
  const auto attach_start = timed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  const std::size_t blocks = job.block_count;
  std::size_t executed = 0;
  for (;;) {
    const std::size_t b = job.next_block.fetch_add(1);
    if (b >= blocks) break;
    ++executed;
    const std::size_t begin = b * job.count / blocks;
    const std::size_t end = (b + 1) * job.count / blocks;
    try {
      job.run(job.ctx, lane, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
  }
  if (lane != 0 && executed > 0) {
    PoolMetrics::get().stolen_blocks.inc(executed);
  }
  if (timed && executed > 0) {
    PoolMetrics::get().busy_us.inc(static_cast<std::uint64_t>(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - attach_start)
            .count()));
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Job* job = find_attachable_locked();
    if (job == nullptr) {
      if (stop_) return;
      work_cv_.wait(lock);
      continue;
    }
    const std::size_t lane = job->lane_ticket++;
    ++job->active;
    lock.unlock();
    work_on(*job, lane);
    lock.lock();
    if (--job->active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run(Job& job) {
  PoolMetrics::get().jobs.inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enqueue_locked(job);
  }
  work_cv_.notify_all();
  work_on(job, /*lane=*/0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // No new workers may attach once the job leaves the list; the ones
    // already attached are counted in `active` and drain their blocks
    // before detaching, so active == 0 means the whole range completed.
    dequeue_locked(job);
    done_cv_.wait(lock, [&] { return job.active == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace ftdiag::par
