/// \file parallel.hpp
/// \brief Parallel loop over an index range on the persistent thread pool.
///
/// The simulation engine, the evaluation pipeline and the serving layer
/// fan independent work items (faults, frequencies, genomes, diagnosis
/// points) across the process-wide util::ThreadPool.  Determinism
/// contract: every item i writes only to its own output slot, so the
/// result is bit-identical for any thread count — scheduling only decides
/// *who* computes an item, never *what* is computed.
///
/// Nested calls (a parallel_for issued from inside another parallel_for's
/// item) run inline on the issuing lane, so the engine never oversubscribes
/// the machine when it executes inside DiagnosisService workers.
#pragma once

#include <cstddef>

#include "util/thread_pool.hpp"
#include "util/threads.hpp"

namespace ftdiag::par {

/// Run fn(i) for every i in [0, count) on up to \p threads lanes of the
/// process-wide pool (contiguous block partition, work-stealing cursor).
/// Runs inline when threads <= 1 or count <= 1.  The first exception
/// thrown by any item is rethrown on the calling thread after the join.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t threads, Fn&& fn) {
  if (threads <= 1 || count <= 1 || ThreadPool::global_torn_down()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::global().for_each(count, threads, fn);
}

/// Same, passing the executing lane id to fn(lane, i).  Lane ids are
/// dense in [0, threads), lane 0 is the calling thread; use them to index
/// per-lane workspaces without locking.  Which lane computes an item is
/// scheduling, not semantics: fn must produce identical slot writes for
/// any lane assignment.
template <typename Fn>
void parallel_for_lanes(std::size_t count, std::size_t threads, Fn&& fn) {
  if (threads <= 1 || count <= 1 || ThreadPool::global_torn_down()) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  ThreadPool::global().for_each_lane(count, threads, fn);
}

/// The pool size used when a configuration leaves the thread count at 0
/// ("auto"): util::resolve_threads(0) — the FTDIAG_THREADS override when
/// set, otherwise the hardware concurrency.
[[nodiscard]] inline std::size_t default_thread_count() {
  return util::resolve_threads(0);
}

}  // namespace ftdiag::par
