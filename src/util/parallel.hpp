/// \file parallel.hpp
/// \brief Minimal fork/join parallel loop over an index range.
///
/// The simulation engine fans independent work items (faults, frequencies)
/// across a small std::thread pool.  Determinism contract: every item i
/// writes only to its own output slot, so the result is bit-identical for
/// any thread count — the partition below only decides *who* computes an
/// item, never *what* is computed.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ftdiag::par {

/// Run fn(i) for every i in [0, count) on up to \p threads threads
/// (strided partition: thread t handles i = t, t + threads, ...).
/// Runs inline when threads <= 1 or count <= 1.  The first exception
/// thrown by any item is rethrown on the calling thread after the join.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t threads, Fn&& fn) {
  if (threads == 0) threads = 1;
  if (threads > count) threads = count;
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&](std::size_t t) {
    try {
      for (std::size_t i = t; i < count; i += threads) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// The pool size used when a configuration leaves the thread count at 0
/// ("auto"): the hardware concurrency, at least 1.
[[nodiscard]] inline std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace ftdiag::par
