/// \file logging.hpp
/// \brief Tiny leveled logger used by the long-running flows (fault
/// simulation, GA, serving) to report progress without pulling in a
/// dependency.
///
/// The threshold can be set programmatically with `set_level` or from
/// the environment via `FTDIAG_LOG={debug,info,warn,error,off}`
/// (mirroring `FTDIAG_THREADS` / `FTDIAG_SIMD`).  An explicit
/// `set_level` call always wins over the environment.
///
/// Messages may carry structured `key=value` fields appended after the
/// text, e.g.
///
///   log::info("net: listening", {{"host", "0.0.0.0"}, {"port", 4815}});
///   // -> [ftdiag info] net: listening host=0.0.0.0 port=4815
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace ftdiag::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// One structured `key=value` field; values with spaces are quoted when
/// rendered.  Numeric/bool constructors format the value for you.
struct Field {
  Field(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Field(std::string k, const char* v) : key(std::move(k)), value(v) {}
  Field(std::string k, bool v) : key(std::move(k)), value(v ? "true" : "false") {}
  Field(std::string k, double v);
  /// One integral constructor template instead of per-width overloads so
  /// int / unsigned / size_t / int64_t all format without ambiguity.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool> &&
                                        !std::is_same_v<T, char>>>
  Field(std::string k, T v) : key(std::move(k)), value(std::to_string(v)) {}

  std::string key;
  std::string value;
};
using Fields = std::vector<Field>;

/// Set the global threshold; messages below it are dropped.  Default:
/// kWarn (library is silent in tests unless something is wrong), unless
/// `FTDIAG_LOG` overrides it.  An explicit call here beats the env var.
void set_level(Level level);

/// Current threshold (resolves `FTDIAG_LOG` on first use).
[[nodiscard]] Level level();

/// Parse a level name ("debug", "info", ...).  Returns false on unknown
/// input and leaves `out` untouched.
[[nodiscard]] bool parse_level(const std::string& name, Level& out);

/// Emit a message at the given level to stderr (flushed per line).
void emit(Level level, const std::string& message);
void emit(Level level, const std::string& message, const Fields& fields);

void debug(const std::string& message);
void info(const std::string& message);
void warn(const std::string& message);
void error(const std::string& message);
void debug(const std::string& message, const Fields& fields);
void info(const std::string& message, const Fields& fields);
void warn(const std::string& message, const Fields& fields);
void error(const std::string& message, const Fields& fields);

}  // namespace ftdiag::log
