/// \file logging.hpp
/// \brief Tiny leveled logger used by the long-running flows (fault
/// simulation, GA) to report progress without pulling in a dependency.
#pragma once

#include <string>

namespace ftdiag::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global threshold; messages below it are dropped. Default: kWarn,
/// so the library is silent in tests unless something is wrong.
void set_level(Level level);

/// Current threshold.
[[nodiscard]] Level level();

/// Emit a message at the given level to stderr (flushed per line).
void emit(Level level, const std::string& message);

void debug(const std::string& message);
void info(const std::string& message);
void warn(const std::string& message);
void error(const std::string& message);

}  // namespace ftdiag::log
