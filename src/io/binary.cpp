#include "io/binary.hpp"

#include <bit>

#include "util/error.hpp"

namespace ftdiag::io {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  for (int shift = 0; shift < 16; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void pad_to(std::string& out, std::size_t alignment) {
  while ((out.size() & (alignment - 1)) != 0) out.push_back('\0');
}

void seal_block(std::string& out, std::size_t begin) {
  put_u64(out, fnv1a(std::string_view(out).substr(begin)));
}

const char* ByteReader::need(std::size_t n) {
  if (bytes_.size() - pos_ < n || pos_ > bytes_.size()) {
    throw ParseError(context_ + " is truncated");
  }
  const char* p = bytes_.data() + pos_;
  pos_ += n;
  return p;
}

void ByteReader::require(std::size_t n, const char* what) const {
  if (bytes_.size() - pos_ < n || pos_ > bytes_.size()) {
    throw ParseError(context_ + " is too short for its declared " + what);
  }
}

std::uint8_t ByteReader::get_u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint16_t ByteReader::get_u16() {
  const char* p = need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(static_cast<unsigned char>(p[i]))
                << (8 * i));
  }
  return v;
}

std::uint32_t ByteReader::get_u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

double ByteReader::get_f64() {
  return std::bit_cast<double>(get_u64());
}

std::string ByteReader::get_str() {
  const std::uint32_t size = get_u32();
  require(size, "string length");
  const char* p = need(size);
  return std::string(p, size);
}

void ByteReader::align_to(std::size_t alignment) {
  const std::size_t aligned = (pos_ + alignment - 1) & ~(alignment - 1);
  (void)need(aligned - pos_);
}

void ByteReader::check_block(std::size_t begin, const char* what) {
  const std::uint64_t expected =
      fnv1a(bytes_.substr(begin, pos_ - begin));
  if (get_u64() != expected) {
    throw ParseError(context_ + " " + what + " block failed its checksum");
  }
}

}  // namespace ftdiag::io
