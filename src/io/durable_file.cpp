#include "io/durable_file.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "chaos/chaos.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FTDIAG_HAS_POSIX_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#else
#define FTDIAG_HAS_POSIX_FSYNC 0
#endif

namespace ftdiag::io {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Apply the `io.torn_write` chaos point: keep only a pseudo-random
/// prefix of the image, torn inside the data (never empty, never whole).
std::string_view maybe_tear(std::string_view bytes) {
  if (bytes.size() < 2 || !chaos::hit("io.torn_write")) return bytes;
  // Derive the tear offset from the content so it is reproducible for a
  // given image without consuming more injector randomness.
  std::size_t mix = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes.size(); i += 97) {
    mix = (mix ^ static_cast<unsigned char>(bytes[i])) * 0x100000001b3ULL;
  }
  const std::size_t keep = 1 + mix % (bytes.size() - 1);
  log::warn("io: tearing durable write (chaos)",
            {{"bytes", bytes.size()}, {"kept", keep}});
  return bytes.substr(0, keep);
}

#if FTDIAG_HAS_POSIX_FSYNC

void write_and_fsync(const std::string& path, std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot open '" + path + "' for writing");
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("failed writing '" + path + "'");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync failed for '" + path + "'");
  }
  if (::close(fd) != 0) throw_errno("close failed for '" + path + "'");
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

#else  // !FTDIAG_HAS_POSIX_FSYNC

void write_and_fsync(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("failed writing '" + path + "'");
}

void fsync_directory(const std::string&) {}

#endif  // FTDIAG_HAS_POSIX_FSYNC

}  // namespace

void write_file_durable(const std::string& path, std::string_view bytes) {
  const std::string_view image = maybe_tear(bytes);
  const std::string tmp = path + ".tmp";
  write_and_fsync(tmp, image);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error("cannot rename '" + tmp + "' to '" + path + "': " +
                ec.message());
  }
  fsync_directory(std::filesystem::path(path).parent_path().string());
}

std::size_t remove_stale_tmp_files(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".tmp") continue;
    if (std::filesystem::remove(p, ec) && !ec) {
      log::info("io: removed stale tmp file", {{"path", p.string()}});
      ++removed;
    }
  }
  return removed;
}

}  // namespace ftdiag::io
