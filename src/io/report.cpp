#include "io/report.hpp"

#include <ostream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace ftdiag::io {

void print_atpg_report(std::ostream& os, const core::AtpgResult& result) {
  os << "test vector : " << result.best.vector.label() << '\n'
     << str::format("fitness     : %.4f  (intersections I = %zu)",
                    result.best.fitness, result.best.intersections)
     << '\n'
     << str::format("separation  : %.4f (normalized min margin)",
                    result.best.separation_margin)
     << '\n'
     << str::format("dictionary  : %zu faults, %zu objective evaluations",
                    result.dictionary_faults, result.search.evaluations)
     << '\n';
  AsciiTable table({"generation", "best", "mean", "worst", "evaluations"});
  for (const auto& g : result.search.history) {
    table.add_row({std::to_string(g.generation), str::format("%.4f", g.best),
                   str::format("%.4f", g.mean), str::format("%.4f", g.worst),
                   std::to_string(g.evaluations)});
  }
  table.print(os, "search convergence");
}

void print_diagnosis(std::ostream& os, const core::Diagnosis& diagnosis,
                     std::size_t max_candidates) {
  const auto& best = diagnosis.best();
  os << str::format(
            "diagnosis: %s, estimated deviation %+.1f%% (confidence %.2f)",
            best.site.c_str(), best.estimated_deviation * 100.0,
            diagnosis.confidence())
     << '\n';
  AsciiTable table({"rank", "site", "distance", "est. deviation"});
  for (std::size_t i = 0;
       i < diagnosis.ranking.size() && i < max_candidates; ++i) {
    const auto& m = diagnosis.ranking[i];
    table.add_row({std::to_string(i + 1), m.site,
                   str::format("%.3e", m.distance),
                   str::format("%+.1f%%", m.estimated_deviation * 100.0)});
  }
  table.print(os);
}

void print_accuracy_report(std::ostream& os,
                           const core::AccuracyReport& report) {
  os << str::format(
            "trials=%zu  site accuracy=%.1f%%  group accuracy=%.1f%%  "
            "top-2=%.1f%%",
            report.trials, report.site_accuracy * 100.0,
            report.group_accuracy * 100.0, report.top2_accuracy * 100.0)
     << '\n'
     << str::format(
            "mean |deviation error|=%.2f%%  mean confidence=%.2f",
            report.mean_deviation_error * 100.0, report.mean_confidence)
     << '\n';
  os << "ambiguity groups:";
  for (const auto& g : report.ambiguity_groups) os << " [" << g << "]";
  os << '\n';

  AsciiTable table([&] {
    std::vector<std::string> header = {"truth \\ predicted"};
    for (const auto& label : report.confusion.labels) header.push_back(label);
    header.push_back("recall");
    return header;
  }());
  for (std::size_t i = 0; i < report.confusion.labels.size(); ++i) {
    std::vector<std::string> row = {report.confusion.labels[i]};
    for (std::size_t j = 0; j < report.confusion.labels.size(); ++j) {
      row.push_back(std::to_string(report.confusion.counts[i][j]));
    }
    row.push_back(str::format(
        "%.2f", report.confusion.recall(report.confusion.labels[i])));
    table.add_row(std::move(row));
  }
  table.print(os, "confusion matrix");
}

}  // namespace ftdiag::io
