/// \file mapped_file.hpp
/// \brief Read-only memory-mapped files and zero-copy `.fdx` views.
///
/// The `.fdx` format stores its bulk data (frequency grid, golden and
/// faulty responses) as contiguous little-endian f64 runs that the v2
/// writer 8-byte aligns.  Mapping the file therefore lets a server
/// *attach* to a dictionary instead of parsing it: `DictionaryView`
/// validates the image once and then serves signature data as in-place
/// `std::span` views over the mapped pages.  Warm attaches cost
/// microseconds (no per-value decode, no per-entry vectors), and because
/// the kernel page cache backs the mapping, every server process on the
/// machine shares one physical copy of each dictionary.
///
/// On platforms without mmap (or for pathological files — v1 images with
/// unaligned runs, big-endian hosts) everything transparently falls back
/// to the buffered read path; `DictionaryView::zero_copy()` reports which
/// mode a view runs in, and `materialize()` always produces a classic
/// FaultDictionary bit-identical to io::load_dictionary_binary.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "faults/dictionary.hpp"
#include "io/dictionary_io.hpp"

namespace ftdiag::io {

/// True when this build maps files with mmap; false on the buffered-read
/// fallback (the API is identical either way).
[[nodiscard]] bool mmap_supported();

/// An immutable byte view of a whole file.  With mmap support the bytes
/// are the kernel's page cache (shared across processes, ~0 copies); on
/// the fallback they are a private heap buffer.  Move-only RAII.
class MappedFile {
public:
  /// Map (or read) \p path.  \throws ParseError when the file cannot be
  /// opened or mapped.
  [[nodiscard]] static MappedFile open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::string_view bytes() const { return {data_, size_}; }

  /// True when the bytes are a live mmap (false: fallback heap buffer).
  [[nodiscard]] bool is_mapped() const { return mapped_; }

private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< owns the bytes when !mapped_
};

/// A validated, read-only view of one `.fdx` image that serves signature
/// data without copying it.  The view owns its MappedFile; spans stay
/// valid for the view's lifetime.  Copy cost is one shared_ptr (views are
/// cheap shared handles, safe to use from many threads concurrently).
class DictionaryView {
public:
  /// Map \p path and validate the whole image (header negotiation, block
  /// size validation, checksums unless \p verify_checksums is false).
  /// \throws ParseError exactly like load_dictionary_binary.
  [[nodiscard]] static DictionaryView map(const std::string& path,
                                          bool verify_checksums = true);

  /// Same, over bytes the caller keeps alive (testing / in-memory use).
  [[nodiscard]] static DictionaryView over(std::string bytes,
                                           bool verify_checksums = true);

  [[nodiscard]] const BinaryDictionaryHeader& header() const {
    return state_->layout.header;
  }
  [[nodiscard]] std::size_t frequency_count() const {
    return state_->layout.header.frequency_count;
  }
  [[nodiscard]] std::size_t fault_count() const {
    return state_->layout.header.fault_count;
  }
  [[nodiscard]] const std::vector<faults::ParametricFault>& faults() const {
    return state_->layout.faults;
  }

  /// True when the spans alias the mapped image directly; false when this
  /// view had to decode into a private buffer (v1 unaligned layout or a
  /// big-endian host).  Either way the spans' *values* are identical.
  [[nodiscard]] bool zero_copy() const { return state_->zero_copy; }

  /// The shared frequency grid, ascending.
  [[nodiscard]] std::span<const double> frequencies() const;

  /// The golden response values on that grid.
  [[nodiscard]] std::span<const mna::Complex> golden() const;

  /// Fault \p entry's response values (entry order == faults() order).
  [[nodiscard]] std::span<const mna::Complex> response(
      std::size_t entry) const;

  /// Copy out a classic FaultDictionary, bit-identical to
  /// load_dictionary_binary on the same image.
  [[nodiscard]] faults::FaultDictionary materialize() const;

private:
  struct State {
    MappedFile file;
    std::string owned_bytes;  ///< when constructed via over()
    BinaryDictionaryLayout layout;
    bool zero_copy = false;
    /// Decoded doubles for the fallback path (empty when zero_copy).
    std::vector<double> decoded_frequencies;
    std::vector<mna::Complex> decoded_values;  ///< golden then responses
    [[nodiscard]] std::string_view bytes() const {
      return file.size() > 0 ? file.bytes() : std::string_view(owned_bytes);
    }
  };

  explicit DictionaryView(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  [[nodiscard]] static DictionaryView finish(std::shared_ptr<State> state,
                                             bool verify_checksums);

  std::shared_ptr<const State> state_;
};

}  // namespace ftdiag::io
