/// \file run_report.hpp
/// \brief Self-contained markdown report of a full ATPG-for-diagnosis run:
/// configuration, dictionary summary, ambiguity groups, chosen test vector
/// with convergence history, and the diagnosis-accuracy evaluation.  The
/// artefact a test engineer files with the test program.
#pragma once

#include <string>

#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "session.hpp"

namespace ftdiag::io {

struct RunReportOptions {
  /// Run the Monte-Carlo accuracy evaluation and include it.
  bool include_evaluation = true;
  core::EvaluationOptions evaluation{};
  /// Include the per-point trajectory table (verbose).
  bool include_trajectories = false;
};

/// Render the full run as markdown.
[[nodiscard]] std::string render_run_report(const Session& session,
                                            const TestGenResult& result,
                                            const RunReportOptions& options = {});

/// \deprecated Legacy overload; forwards to the Session-based renderer.
[[nodiscard]] std::string render_run_report(const core::AtpgFlow& flow,
                                            const core::AtpgResult& result,
                                            const RunReportOptions& options = {});

}  // namespace ftdiag::io
