#include "io/dictionary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "io/binary.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::io {

namespace {

constexpr const char* kValueTarget = "value";
constexpr const char* kOpAmpTarget = "opamp";

/// max_digits10 for IEEE double: every finite value round-trips exactly
/// through text at this precision, which is what makes the CSV format
/// genuinely lossless.
constexpr const char* kDoubleFmt = "%.17g";

void write_response(csv::Writer& writer, const std::string& site,
                    const std::string& target, const std::string& param,
                    double deviation, const mna::AcResponse& response) {
  for (std::size_t i = 0; i < response.size(); ++i) {
    writer.row({site, target, param, str::format(kDoubleFmt, deviation),
                str::format(kDoubleFmt, response.frequency(i)),
                str::format(kDoubleFmt, response.value(i).real()),
                str::format(kDoubleFmt, response.value(i).imag())});
  }
}

netlist::OpAmpParam parse_param(const std::string& name) {
  for (auto param : {netlist::OpAmpParam::kDcGain, netlist::OpAmpParam::kGbw,
                     netlist::OpAmpParam::kRin, netlist::OpAmpParam::kRout}) {
    if (name == netlist::opamp_param_name(param)) return param;
  }
  throw ParseError("unknown op-amp parameter '" + name + "'");
}

// ------------------------------------------------ binary primitives
//
// All emit/read primitives live in io/binary.hpp (shared with the
// ftdiag::net wire protocol).

/// Fault-site targets as stable wire bytes (do not renumber: the values
/// are part of the v1 format).
constexpr std::uint8_t kWireTargetValue = 0;
constexpr std::uint8_t kWireTargetOpAmp = 1;

std::uint8_t wire_param(netlist::OpAmpParam param) {
  return static_cast<std::uint8_t>(param);
}

netlist::OpAmpParam param_from_wire(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kDcGain):
      return netlist::OpAmpParam::kDcGain;
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kGbw):
      return netlist::OpAmpParam::kGbw;
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kRin):
      return netlist::OpAmpParam::kRin;
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kRout):
      return netlist::OpAmpParam::kRout;
    default:
      throw ParseError("binary dictionary has an unknown op-amp parameter");
  }
}

/// Shared header walk: magic + version (+ flags from v2) + key + counts +
/// checksum.  The header is sealed like every block, so a flipped count
/// byte is a clean ParseError — not a multi-terabyte vector allocation
/// downstream.
BinaryDictionaryHeader parse_header(ByteReader& reader,
                                    std::size_t total_bytes) {
  const char* magic = reader.need(sizeof(kBinaryDictionaryMagic));
  if (std::memcmp(magic, kBinaryDictionaryMagic,
                  sizeof(kBinaryDictionaryMagic)) != 0) {
    throw ParseError("not a binary fault dictionary (bad magic)");
  }
  BinaryDictionaryHeader header;
  header.version = reader.get_u32();
  if (header.version == 0 || header.version > kBinaryDictionaryVersion) {
    throw ParseError(str::format(
        "binary dictionary major version %u is not supported (this build "
        "reads versions 1..%u; rebuild the artifact or upgrade ftdiag)",
        header.version, kBinaryDictionaryVersion));
  }
  if (header.version >= 2) {
    header.flags = reader.get_u32();
    if ((header.flags & ~kBinaryDictionarySupportedFlags) != 0) {
      throw ParseError(str::format(
          "binary dictionary uses unknown feature flags 0x%08x (this build "
          "understands 0x%08x)",
          header.flags, kBinaryDictionarySupportedFlags));
    }
  }
  header.key = reader.get_str();
  header.frequency_count = static_cast<std::size_t>(reader.get_u64());
  header.fault_count = static_cast<std::size_t>(reader.get_u64());
  reader.check_block(0, "header");
  // Belt and braces on top of the checksum: the counts must fit the file
  // before anything is allocated from them (8 bytes per double, 16 per
  // complex sample).
  if (header.frequency_count > total_bytes / 8 ||
      header.fault_count > total_bytes / 16 ||
      (header.frequency_count > 0 &&
       header.fault_count > total_bytes / 16 / header.frequency_count)) {
    throw ParseError("binary dictionary header counts exceed the file size");
  }
  return header;
}

/// Little-endian f64 at a byte offset whose bounds were already validated
/// by parse_binary_dictionary_layout.  memcpy keeps it legal for any
/// alignment; the byte swap is compiled out on little-endian hosts.
double load_f64_at(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, bytes.data() + at, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[at + i]))
           << (8 * i);
    }
  }
  return std::bit_cast<double>(v);
}

}  // namespace

DictionaryFormat parse_dictionary_format(const std::string& name) {
  const std::string lower = str::to_lower(name);
  if (lower == "csv") return DictionaryFormat::kCsv;
  if (lower == "binary" || lower == "fdx") return DictionaryFormat::kBinary;
  if (lower == "auto") return DictionaryFormat::kAuto;
  throw ParseError("unknown dictionary format '" + name +
                   "' (expected csv, binary or auto)");
}

// ------------------------------------------------------------------ CSV

void save_dictionary(std::ostream& os,
                     const faults::FaultDictionary& dictionary) {
  csv::Writer writer(os);
  writer.row({"site", "target", "param", "deviation", "freq_hz", "re", "im"});
  write_response(writer, "", "", "", 0.0, dictionary.golden());
  for (const auto& entry : dictionary.entries()) {
    const auto& site = entry.fault.site;
    const bool is_value =
        site.target == faults::FaultSite::Target::kComponentValue;
    write_response(writer, site.component,
                   is_value ? kValueTarget : kOpAmpTarget,
                   is_value ? "" : netlist::opamp_param_name(site.param),
                   entry.fault.deviation, entry.response);
  }
}

faults::FaultDictionary load_dictionary(const std::string& text) {
  const csv::Table table = csv::parse(text);
  const std::size_t c_site = table.column("site");
  const std::size_t c_target = table.column("target");
  const std::size_t c_param = table.column("param");
  const std::size_t c_dev = table.column("deviation");
  const std::size_t c_freq = table.column("freq_hz");
  const std::size_t c_re = table.column("re");
  const std::size_t c_im = table.column("im");

  // Group rows by (site, target, param, deviation), keeping file order of
  // first appearance.
  struct Series {
    faults::ParametricFault fault;
    bool is_golden = false;
    std::vector<double> freqs;
    std::vector<mna::Complex> values;
  };
  std::vector<Series> series;
  std::map<std::string, std::size_t> index;

  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      throw ParseError("dictionary row has wrong field count");
    }
    const std::string key = row[c_site] + "|" + row[c_target] + "|" +
                            row[c_param] + "|" + row[c_dev];
    auto it = index.find(key);
    if (it == index.end()) {
      Series s;
      if (row[c_site].empty()) {
        s.is_golden = true;
      } else if (row[c_target] == kValueTarget) {
        s.fault.site = faults::FaultSite::value_of(row[c_site]);
        s.fault.deviation = units::parse(row[c_dev]);
      } else if (row[c_target] == kOpAmpTarget) {
        s.fault.site =
            faults::FaultSite::opamp_param_of(row[c_site],
                                              parse_param(row[c_param]));
        s.fault.deviation = units::parse(row[c_dev]);
      } else {
        throw ParseError("unknown fault target '" + row[c_target] + "'");
      }
      it = index.emplace(key, series.size()).first;
      series.push_back(std::move(s));
    }
    Series& s = series[it->second];
    s.freqs.push_back(units::parse(row[c_freq]));
    s.values.emplace_back(units::parse(row[c_re]), units::parse(row[c_im]));
  }

  mna::AcResponse golden;
  std::vector<faults::DictionaryEntry> entries;
  bool have_golden = false;
  for (auto& s : series) {
    mna::AcResponse response(std::move(s.freqs), std::move(s.values));
    if (s.is_golden) {
      if (have_golden) throw ParseError("duplicate golden series");
      golden = std::move(response);
      have_golden = true;
    } else {
      entries.push_back({s.fault, std::move(response)});
    }
  }
  if (!have_golden) throw ParseError("dictionary file has no golden series");
  return faults::FaultDictionary::from_parts(std::move(golden),
                                             std::move(entries));
}

// --------------------------------------------------------------- binary

bool is_binary_dictionary(std::string_view bytes) {
  return bytes.size() >= sizeof(kBinaryDictionaryMagic) &&
         std::memcmp(bytes.data(), kBinaryDictionaryMagic,
                     sizeof(kBinaryDictionaryMagic)) == 0;
}

void save_dictionary_binary(std::ostream& os,
                            const faults::FaultDictionary& dictionary,
                            const std::string& key) {
  const auto& freqs = dictionary.frequencies();
  const auto& entries = dictionary.entries();

  std::string out;
  // Header + four checksummed blocks; sized generously up front so the
  // whole image is built with a handful of allocations.
  out.reserve(64 + key.size() + 8 * freqs.size() +
              16 * freqs.size() * (entries.size() + 1) + 64 * entries.size());

  out.append(kBinaryDictionaryMagic, sizeof(kBinaryDictionaryMagic));
  put_u32(out, kBinaryDictionaryVersion);
  put_u32(out, 0);  // feature flags (v2+): none yet, reserved
  put_str(out, key);
  put_u64(out, freqs.size());
  put_u64(out, entries.size());
  seal_block(out, 0);  // the header is checksummed like every block

  // v2: every fixed-width block starts 8-byte aligned within the image so
  // a mapped file can serve the doubles as in-place spans.  The zero pad
  // bytes sit between blocks, outside every checksum.
  pad_to(out, 8);

  // Block 1: the shared frequency grid.
  std::size_t begin = out.size();
  for (double f : freqs) put_f64(out, f);
  seal_block(out, begin);

  // Block 2: the golden response values.
  begin = out.size();
  for (const auto& v : dictionary.golden().values()) {
    put_f64(out, v.real());
    put_f64(out, v.imag());
  }
  seal_block(out, begin);

  // Block 3: the fault list (site + deviation per entry, in entry order).
  begin = out.size();
  for (const auto& entry : entries) {
    const auto& site = entry.fault.site;
    const bool is_value =
        site.target == faults::FaultSite::Target::kComponentValue;
    out.push_back(static_cast<char>(is_value ? kWireTargetValue
                                             : kWireTargetOpAmp));
    put_str(out, site.component);
    out.push_back(static_cast<char>(is_value ? 0 : wire_param(site.param)));
    put_f64(out, entry.fault.deviation);
  }
  seal_block(out, begin);
  pad_to(out, 8);  // block 3 is variable-length; realign for block 4

  // Block 4: every faulty response, one contiguous little-endian run of
  // (re, im) pairs in entry-major order.
  begin = out.size();
  for (const auto& entry : entries) {
    for (const auto& v : entry.response.values()) {
      put_f64(out, v.real());
      put_f64(out, v.imag());
    }
  }
  seal_block(out, begin);

  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

BinaryDictionaryHeader read_binary_dictionary_header(std::string_view bytes) {
  ByteReader reader(bytes, "binary dictionary");
  return parse_header(reader, bytes.size());
}

BinaryDictionaryLayout parse_binary_dictionary_layout(std::string_view bytes,
                                                      bool verify_checksums) {
  ByteReader reader(bytes, "binary dictionary");
  BinaryDictionaryLayout layout;
  layout.header = parse_header(reader, bytes.size());
  const std::size_t n_freqs = layout.header.frequency_count;
  const std::size_t n_entries = layout.header.fault_count;
  const bool padded = layout.header.version >= 2;
  if (padded) reader.align_to(8);

  // Validate every block's declared size against the remaining bytes
  // *before* allocating anything from the counts.  The guards in
  // parse_header bound n_freqs <= size/8 and n_freqs*n_entries <= size/16,
  // so none of these products can overflow for a real image.
  const std::size_t fault_list_min = n_entries * (1 + 4 + 1 + 8) + 8;
  const std::size_t fixed_blocks =
      (8 * n_freqs + 8) + (16 * n_freqs + 8) + (16 * n_freqs * n_entries + 8);
  if (reader.remaining() < fixed_blocks ||
      reader.remaining() - fixed_blocks < fault_list_min) {
    throw ParseError(
        "binary dictionary block sizes exceed the remaining file bytes");
  }

  auto finish_block = [&](std::size_t begin, const char* what) {
    if (verify_checksums) {
      reader.check_block(begin, what);
    } else {
      (void)reader.need(8);  // skip the checksum
    }
  };

  // Block 1: frequency grid.
  layout.frequencies_offset = reader.position();
  (void)reader.need(8 * n_freqs);
  finish_block(layout.frequencies_offset, "frequency");

  // Block 2: golden values.
  layout.golden_offset = reader.position();
  (void)reader.need(16 * n_freqs);
  finish_block(layout.golden_offset, "golden");

  // Block 3: fault list (always decoded — it is small and the walk is
  // what finds block 4).
  const std::size_t fault_list_begin = reader.position();
  layout.faults.resize(n_entries);
  for (auto& fault : layout.faults) {
    const std::uint8_t target = reader.get_u8();
    std::string component = reader.get_str();
    const std::uint8_t raw_param = reader.get_u8();
    const double deviation = reader.get_f64();
    if (target == kWireTargetValue) {
      fault.site = faults::FaultSite::value_of(std::move(component));
    } else if (target == kWireTargetOpAmp) {
      fault.site = faults::FaultSite::opamp_param_of(
          std::move(component), param_from_wire(raw_param));
    } else {
      throw ParseError("binary dictionary has an unknown fault target");
    }
    fault.deviation = deviation;
  }
  finish_block(fault_list_begin, "fault-list");
  if (padded) reader.align_to(8);

  // Block 4: all responses in one contiguous run.
  layout.responses_offset = reader.position();
  reader.require(16 * n_freqs * n_entries + 8, "response block");
  (void)reader.need(16 * n_freqs * n_entries);
  finish_block(layout.responses_offset, "response");
  layout.end_offset = reader.position();

  layout.runs_aligned = (layout.frequencies_offset % 8 == 0) &&
                        (layout.golden_offset % 8 == 0) &&
                        (layout.responses_offset % 8 == 0);
  return layout;
}

faults::FaultDictionary load_dictionary_binary(std::string_view bytes) {
  BinaryDictionaryLayout layout = parse_binary_dictionary_layout(bytes);
  const std::size_t n_freqs = layout.header.frequency_count;
  const std::size_t n_entries = layout.header.fault_count;

  std::vector<double> freqs(n_freqs);
  for (std::size_t i = 0; i < n_freqs; ++i) {
    freqs[i] = load_f64_at(bytes, layout.frequencies_offset + 8 * i);
  }

  std::vector<mna::Complex> golden_values(n_freqs);
  for (std::size_t i = 0; i < n_freqs; ++i) {
    golden_values[i] = {load_f64_at(bytes, layout.golden_offset + 16 * i),
                        load_f64_at(bytes, layout.golden_offset + 16 * i + 8)};
  }

  std::vector<faults::DictionaryEntry> entries;
  entries.reserve(n_entries);
  for (std::size_t e = 0; e < n_entries; ++e) {
    const std::size_t run = layout.responses_offset + 16 * n_freqs * e;
    std::vector<mna::Complex> values(n_freqs);
    for (std::size_t i = 0; i < n_freqs; ++i) {
      values[i] = {load_f64_at(bytes, run + 16 * i),
                   load_f64_at(bytes, run + 16 * i + 8)};
    }
    entries.push_back(
        {layout.faults[e], mna::AcResponse(freqs, std::move(values))});
  }

  return faults::FaultDictionary::from_parts(
      mna::AcResponse(std::move(freqs), std::move(golden_values)),
      std::move(entries));
}

// ----------------------------------------------------------------- files

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

void save_dictionary_file(const std::string& path,
                          const faults::FaultDictionary& dictionary,
                          DictionaryFormat format, const std::string& key) {
  if (format == DictionaryFormat::kAuto) {
    format = str::ends_with(str::to_lower(path), ".fdx")
                 ? DictionaryFormat::kBinary
                 : DictionaryFormat::kCsv;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  if (format == DictionaryFormat::kBinary) {
    save_dictionary_binary(out, dictionary, key);
  } else {
    save_dictionary(out, dictionary);
  }
  if (!out) throw Error("failed writing '" + path + "'");
}

faults::FaultDictionary load_dictionary_file(const std::string& path,
                                             DictionaryFormat format) {
  const std::string bytes = read_file_bytes(path);
  if (format == DictionaryFormat::kAuto) {
    format = is_binary_dictionary(bytes) ? DictionaryFormat::kBinary
                                         : DictionaryFormat::kCsv;
  }
  if (format == DictionaryFormat::kBinary) {
    return load_dictionary_binary(bytes);
  }
  return load_dictionary(bytes);
}

}  // namespace ftdiag::io
