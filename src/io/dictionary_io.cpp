#include "io/dictionary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::io {

namespace {

constexpr const char* kValueTarget = "value";
constexpr const char* kOpAmpTarget = "opamp";

/// max_digits10 for IEEE double: every finite value round-trips exactly
/// through text at this precision, which is what makes the CSV format
/// genuinely lossless.
constexpr const char* kDoubleFmt = "%.17g";

void write_response(csv::Writer& writer, const std::string& site,
                    const std::string& target, const std::string& param,
                    double deviation, const mna::AcResponse& response) {
  for (std::size_t i = 0; i < response.size(); ++i) {
    writer.row({site, target, param, str::format(kDoubleFmt, deviation),
                str::format(kDoubleFmt, response.frequency(i)),
                str::format(kDoubleFmt, response.value(i).real()),
                str::format(kDoubleFmt, response.value(i).imag())});
  }
}

netlist::OpAmpParam parse_param(const std::string& name) {
  for (auto param : {netlist::OpAmpParam::kDcGain, netlist::OpAmpParam::kGbw,
                     netlist::OpAmpParam::kRin, netlist::OpAmpParam::kRout}) {
    if (name == netlist::opamp_param_name(param)) return param;
  }
  throw ParseError("unknown op-amp parameter '" + name + "'");
}

// ------------------------------------------------ binary primitives

/// FNV-1a over a byte span (the block checksum).
std::uint64_t fnv1a_bytes(const char* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Little-endian emit, independent of host byte order.
void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian cursor over an in-memory image.  Every
/// read throws ParseError("...truncated") instead of running off the end,
/// so a short file can never be misinterpreted as valid data.
class ByteReader {
public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t position() const { return pos_; }

  [[nodiscard]] const char* need(std::size_t n) {
    if (bytes_.size() - pos_ < n || pos_ > bytes_.size()) {
      throw ParseError("binary dictionary is truncated");
    }
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] std::uint32_t get_u32() {
    const char* p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    const char* p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  [[nodiscard]] double get_f64() {
    return std::bit_cast<double>(get_u64());
  }

  [[nodiscard]] std::string get_str() {
    const std::uint32_t size = get_u32();
    const char* p = need(size);
    return std::string(p, size);
  }

  /// Verify the trailing checksum of the block that started at \p begin.
  void check_block(std::size_t begin, const char* what) {
    const std::uint64_t expected = fnv1a_bytes(bytes_.data() + begin,
                                               pos_ - begin);
    if (get_u64() != expected) {
      throw ParseError(std::string("binary dictionary ") + what +
                       " block failed its checksum");
    }
  }

private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

/// Append the checksum of everything written since \p begin.
void seal_block(std::string& out, std::size_t begin) {
  put_u64(out, fnv1a_bytes(out.data() + begin, out.size() - begin));
}

/// Fault-site targets as stable wire bytes (do not renumber: the values
/// are part of the v1 format).
constexpr std::uint8_t kWireTargetValue = 0;
constexpr std::uint8_t kWireTargetOpAmp = 1;

std::uint8_t wire_param(netlist::OpAmpParam param) {
  return static_cast<std::uint8_t>(param);
}

netlist::OpAmpParam param_from_wire(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kDcGain):
      return netlist::OpAmpParam::kDcGain;
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kGbw):
      return netlist::OpAmpParam::kGbw;
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kRin):
      return netlist::OpAmpParam::kRin;
    case static_cast<std::uint8_t>(netlist::OpAmpParam::kRout):
      return netlist::OpAmpParam::kRout;
    default:
      throw ParseError("binary dictionary has an unknown op-amp parameter");
  }
}

/// Shared header walk: magic + version + key + counts + checksum.  The
/// header is sealed like every block, so a flipped count byte is a clean
/// ParseError — not a multi-terabyte vector allocation downstream.
BinaryDictionaryHeader parse_header(ByteReader& reader,
                                    std::size_t total_bytes) {
  const char* magic = reader.need(sizeof(kBinaryDictionaryMagic));
  if (std::memcmp(magic, kBinaryDictionaryMagic,
                  sizeof(kBinaryDictionaryMagic)) != 0) {
    throw ParseError("not a binary fault dictionary (bad magic)");
  }
  BinaryDictionaryHeader header;
  header.version = reader.get_u32();
  if (header.version != kBinaryDictionaryVersion) {
    throw ParseError(str::format(
        "unsupported binary dictionary version %u (this build reads %u)",
        header.version, kBinaryDictionaryVersion));
  }
  header.key = reader.get_str();
  header.frequency_count = static_cast<std::size_t>(reader.get_u64());
  header.fault_count = static_cast<std::size_t>(reader.get_u64());
  reader.check_block(0, "header");
  // Belt and braces on top of the checksum: the counts must fit the file
  // before anything is allocated from them (8 bytes per double, 16 per
  // complex sample).
  if (header.frequency_count > total_bytes / 8 ||
      header.fault_count > total_bytes / 16 ||
      (header.frequency_count > 0 &&
       header.fault_count > total_bytes / 16 / header.frequency_count)) {
    throw ParseError("binary dictionary header counts exceed the file size");
  }
  return header;
}

}  // namespace

DictionaryFormat parse_dictionary_format(const std::string& name) {
  const std::string lower = str::to_lower(name);
  if (lower == "csv") return DictionaryFormat::kCsv;
  if (lower == "binary" || lower == "fdx") return DictionaryFormat::kBinary;
  if (lower == "auto") return DictionaryFormat::kAuto;
  throw ParseError("unknown dictionary format '" + name +
                   "' (expected csv, binary or auto)");
}

// ------------------------------------------------------------------ CSV

void save_dictionary(std::ostream& os,
                     const faults::FaultDictionary& dictionary) {
  csv::Writer writer(os);
  writer.row({"site", "target", "param", "deviation", "freq_hz", "re", "im"});
  write_response(writer, "", "", "", 0.0, dictionary.golden());
  for (const auto& entry : dictionary.entries()) {
    const auto& site = entry.fault.site;
    const bool is_value =
        site.target == faults::FaultSite::Target::kComponentValue;
    write_response(writer, site.component,
                   is_value ? kValueTarget : kOpAmpTarget,
                   is_value ? "" : netlist::opamp_param_name(site.param),
                   entry.fault.deviation, entry.response);
  }
}

faults::FaultDictionary load_dictionary(const std::string& text) {
  const csv::Table table = csv::parse(text);
  const std::size_t c_site = table.column("site");
  const std::size_t c_target = table.column("target");
  const std::size_t c_param = table.column("param");
  const std::size_t c_dev = table.column("deviation");
  const std::size_t c_freq = table.column("freq_hz");
  const std::size_t c_re = table.column("re");
  const std::size_t c_im = table.column("im");

  // Group rows by (site, target, param, deviation), keeping file order of
  // first appearance.
  struct Series {
    faults::ParametricFault fault;
    bool is_golden = false;
    std::vector<double> freqs;
    std::vector<mna::Complex> values;
  };
  std::vector<Series> series;
  std::map<std::string, std::size_t> index;

  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      throw ParseError("dictionary row has wrong field count");
    }
    const std::string key = row[c_site] + "|" + row[c_target] + "|" +
                            row[c_param] + "|" + row[c_dev];
    auto it = index.find(key);
    if (it == index.end()) {
      Series s;
      if (row[c_site].empty()) {
        s.is_golden = true;
      } else if (row[c_target] == kValueTarget) {
        s.fault.site = faults::FaultSite::value_of(row[c_site]);
        s.fault.deviation = units::parse(row[c_dev]);
      } else if (row[c_target] == kOpAmpTarget) {
        s.fault.site =
            faults::FaultSite::opamp_param_of(row[c_site],
                                              parse_param(row[c_param]));
        s.fault.deviation = units::parse(row[c_dev]);
      } else {
        throw ParseError("unknown fault target '" + row[c_target] + "'");
      }
      it = index.emplace(key, series.size()).first;
      series.push_back(std::move(s));
    }
    Series& s = series[it->second];
    s.freqs.push_back(units::parse(row[c_freq]));
    s.values.emplace_back(units::parse(row[c_re]), units::parse(row[c_im]));
  }

  mna::AcResponse golden;
  std::vector<faults::DictionaryEntry> entries;
  bool have_golden = false;
  for (auto& s : series) {
    mna::AcResponse response(std::move(s.freqs), std::move(s.values));
    if (s.is_golden) {
      if (have_golden) throw ParseError("duplicate golden series");
      golden = std::move(response);
      have_golden = true;
    } else {
      entries.push_back({s.fault, std::move(response)});
    }
  }
  if (!have_golden) throw ParseError("dictionary file has no golden series");
  return faults::FaultDictionary::from_parts(std::move(golden),
                                             std::move(entries));
}

// --------------------------------------------------------------- binary

bool is_binary_dictionary(const std::string& bytes) {
  return bytes.size() >= sizeof(kBinaryDictionaryMagic) &&
         std::memcmp(bytes.data(), kBinaryDictionaryMagic,
                     sizeof(kBinaryDictionaryMagic)) == 0;
}

void save_dictionary_binary(std::ostream& os,
                            const faults::FaultDictionary& dictionary,
                            const std::string& key) {
  const auto& freqs = dictionary.frequencies();
  const auto& entries = dictionary.entries();

  std::string out;
  // Header + four checksummed blocks; sized generously up front so the
  // whole image is built with a handful of allocations.
  out.reserve(64 + key.size() + 8 * freqs.size() +
              16 * freqs.size() * (entries.size() + 1) + 64 * entries.size());

  out.append(kBinaryDictionaryMagic, sizeof(kBinaryDictionaryMagic));
  put_u32(out, kBinaryDictionaryVersion);
  put_str(out, key);
  put_u64(out, freqs.size());
  put_u64(out, entries.size());
  seal_block(out, 0);  // the header is checksummed like every block

  // Block 1: the shared frequency grid.
  std::size_t begin = out.size();
  for (double f : freqs) put_f64(out, f);
  seal_block(out, begin);

  // Block 2: the golden response values.
  begin = out.size();
  for (const auto& v : dictionary.golden().values()) {
    put_f64(out, v.real());
    put_f64(out, v.imag());
  }
  seal_block(out, begin);

  // Block 3: the fault list (site + deviation per entry, in entry order).
  begin = out.size();
  for (const auto& entry : entries) {
    const auto& site = entry.fault.site;
    const bool is_value =
        site.target == faults::FaultSite::Target::kComponentValue;
    out.push_back(static_cast<char>(is_value ? kWireTargetValue
                                             : kWireTargetOpAmp));
    put_str(out, site.component);
    out.push_back(static_cast<char>(is_value ? 0 : wire_param(site.param)));
    put_f64(out, entry.fault.deviation);
  }
  seal_block(out, begin);

  // Block 4: every faulty response, one contiguous little-endian run of
  // (re, im) pairs in entry-major order.
  begin = out.size();
  for (const auto& entry : entries) {
    for (const auto& v : entry.response.values()) {
      put_f64(out, v.real());
      put_f64(out, v.imag());
    }
  }
  seal_block(out, begin);

  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

BinaryDictionaryHeader read_binary_dictionary_header(
    const std::string& bytes) {
  ByteReader reader(bytes);
  return parse_header(reader, bytes.size());
}

faults::FaultDictionary load_dictionary_binary(const std::string& bytes) {
  ByteReader reader(bytes);
  const BinaryDictionaryHeader header = parse_header(reader, bytes.size());
  const std::size_t n_freqs = header.frequency_count;
  const std::size_t n_entries = header.fault_count;

  // Block 1: frequency grid.
  std::size_t begin = reader.position();
  std::vector<double> freqs(n_freqs);
  for (double& f : freqs) f = reader.get_f64();
  reader.check_block(begin, "frequency");

  // Block 2: golden values.
  begin = reader.position();
  std::vector<mna::Complex> golden_values(n_freqs);
  for (auto& v : golden_values) {
    const double re = reader.get_f64();
    const double im = reader.get_f64();
    v = {re, im};
  }
  reader.check_block(begin, "golden");

  // Block 3: fault list.
  begin = reader.position();
  std::vector<faults::ParametricFault> faults(n_entries);
  for (auto& fault : faults) {
    const std::uint8_t target =
        static_cast<std::uint8_t>(*reader.need(1));
    std::string component = reader.get_str();
    const std::uint8_t raw_param =
        static_cast<std::uint8_t>(*reader.need(1));
    const double deviation = reader.get_f64();
    if (target == kWireTargetValue) {
      fault.site = faults::FaultSite::value_of(std::move(component));
    } else if (target == kWireTargetOpAmp) {
      fault.site = faults::FaultSite::opamp_param_of(
          std::move(component), param_from_wire(raw_param));
    } else {
      throw ParseError("binary dictionary has an unknown fault target");
    }
    fault.deviation = deviation;
  }
  reader.check_block(begin, "fault-list");

  // Block 4: all responses in one contiguous run, split per entry onto
  // the shared grid.
  begin = reader.position();
  std::vector<faults::DictionaryEntry> entries;
  entries.reserve(n_entries);
  for (std::size_t e = 0; e < n_entries; ++e) {
    std::vector<mna::Complex> values(n_freqs);
    for (auto& v : values) {
      const double re = reader.get_f64();
      const double im = reader.get_f64();
      v = {re, im};
    }
    entries.push_back(
        {faults[e], mna::AcResponse(freqs, std::move(values))});
  }
  reader.check_block(begin, "response");

  return faults::FaultDictionary::from_parts(
      mna::AcResponse(std::move(freqs), std::move(golden_values)),
      std::move(entries));
}

// ----------------------------------------------------------------- files

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

void save_dictionary_file(const std::string& path,
                          const faults::FaultDictionary& dictionary,
                          DictionaryFormat format, const std::string& key) {
  if (format == DictionaryFormat::kAuto) {
    format = str::ends_with(str::to_lower(path), ".fdx")
                 ? DictionaryFormat::kBinary
                 : DictionaryFormat::kCsv;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  if (format == DictionaryFormat::kBinary) {
    save_dictionary_binary(out, dictionary, key);
  } else {
    save_dictionary(out, dictionary);
  }
  if (!out) throw Error("failed writing '" + path + "'");
}

faults::FaultDictionary load_dictionary_file(const std::string& path,
                                             DictionaryFormat format) {
  const std::string bytes = read_file_bytes(path);
  if (format == DictionaryFormat::kAuto) {
    format = is_binary_dictionary(bytes) ? DictionaryFormat::kBinary
                                         : DictionaryFormat::kCsv;
  }
  if (format == DictionaryFormat::kBinary) {
    return load_dictionary_binary(bytes);
  }
  return load_dictionary(bytes);
}

}  // namespace ftdiag::io
