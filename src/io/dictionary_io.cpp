#include "io/dictionary_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::io {

namespace {

constexpr const char* kValueTarget = "value";
constexpr const char* kOpAmpTarget = "opamp";

void write_response(csv::Writer& writer, const std::string& site,
                    const std::string& target, const std::string& param,
                    double deviation, const mna::AcResponse& response) {
  for (std::size_t i = 0; i < response.size(); ++i) {
    writer.row({site, target, param, str::format("%.10g", deviation),
                str::format("%.10g", response.frequency(i)),
                str::format("%.12g", response.value(i).real()),
                str::format("%.12g", response.value(i).imag())});
  }
}

netlist::OpAmpParam parse_param(const std::string& name) {
  for (auto param : {netlist::OpAmpParam::kDcGain, netlist::OpAmpParam::kGbw,
                     netlist::OpAmpParam::kRin, netlist::OpAmpParam::kRout}) {
    if (name == netlist::opamp_param_name(param)) return param;
  }
  throw ParseError("unknown op-amp parameter '" + name + "'");
}

}  // namespace

void save_dictionary(std::ostream& os,
                     const faults::FaultDictionary& dictionary) {
  csv::Writer writer(os);
  writer.row({"site", "target", "param", "deviation", "freq_hz", "re", "im"});
  write_response(writer, "", "", "", 0.0, dictionary.golden());
  for (const auto& entry : dictionary.entries()) {
    const auto& site = entry.fault.site;
    const bool is_value =
        site.target == faults::FaultSite::Target::kComponentValue;
    write_response(writer, site.component,
                   is_value ? kValueTarget : kOpAmpTarget,
                   is_value ? "" : netlist::opamp_param_name(site.param),
                   entry.fault.deviation, entry.response);
  }
}

void save_dictionary_file(const std::string& path,
                          const faults::FaultDictionary& dictionary) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  save_dictionary(out, dictionary);
  if (!out) throw Error("failed writing '" + path + "'");
}

faults::FaultDictionary load_dictionary(const std::string& text) {
  const csv::Table table = csv::parse(text);
  const std::size_t c_site = table.column("site");
  const std::size_t c_target = table.column("target");
  const std::size_t c_param = table.column("param");
  const std::size_t c_dev = table.column("deviation");
  const std::size_t c_freq = table.column("freq_hz");
  const std::size_t c_re = table.column("re");
  const std::size_t c_im = table.column("im");

  // Group rows by (site, target, param, deviation), keeping file order of
  // first appearance.
  struct Series {
    faults::ParametricFault fault;
    bool is_golden = false;
    std::vector<double> freqs;
    std::vector<mna::Complex> values;
  };
  std::vector<Series> series;
  std::map<std::string, std::size_t> index;

  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      throw ParseError("dictionary row has wrong field count");
    }
    const std::string key = row[c_site] + "|" + row[c_target] + "|" +
                            row[c_param] + "|" + row[c_dev];
    auto it = index.find(key);
    if (it == index.end()) {
      Series s;
      if (row[c_site].empty()) {
        s.is_golden = true;
      } else if (row[c_target] == kValueTarget) {
        s.fault.site = faults::FaultSite::value_of(row[c_site]);
        s.fault.deviation = units::parse(row[c_dev]);
      } else if (row[c_target] == kOpAmpTarget) {
        s.fault.site =
            faults::FaultSite::opamp_param_of(row[c_site],
                                              parse_param(row[c_param]));
        s.fault.deviation = units::parse(row[c_dev]);
      } else {
        throw ParseError("unknown fault target '" + row[c_target] + "'");
      }
      it = index.emplace(key, series.size()).first;
      series.push_back(std::move(s));
    }
    Series& s = series[it->second];
    s.freqs.push_back(units::parse(row[c_freq]));
    s.values.emplace_back(units::parse(row[c_re]), units::parse(row[c_im]));
  }

  mna::AcResponse golden;
  std::vector<faults::DictionaryEntry> entries;
  bool have_golden = false;
  for (auto& s : series) {
    mna::AcResponse response(std::move(s.freqs), std::move(s.values));
    if (s.is_golden) {
      if (have_golden) throw ParseError("duplicate golden series");
      golden = std::move(response);
      have_golden = true;
    } else {
      entries.push_back({s.fault, std::move(response)});
    }
  }
  if (!have_golden) throw ParseError("dictionary file has no golden series");
  return faults::FaultDictionary::from_parts(std::move(golden),
                                             std::move(entries));
}

faults::FaultDictionary load_dictionary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open dictionary file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return load_dictionary(ss.str());
}

}  // namespace ftdiag::io
