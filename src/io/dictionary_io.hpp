/// \file dictionary_io.hpp
/// \brief Lossless fault-dictionary serialization.
///
/// Building a dictionary is the expensive part of the flow (one AC sweep
/// per fault); saving it lets the CLI and test programs split the
/// "simulate once" and "search/diagnose many times" phases.  The format is
/// long-form CSV with full complex values:
///
/// ```
/// site,target,param,deviation,freq_hz,re,im
/// ,,,0,10,0.9999,-0.0123          <- empty site = the golden response
/// R3,value,,-0.4,10,0.9983,-0.0119
/// OA1,opamp,gbw,0.1,10,...
/// ```
#pragma once

#include <iosfwd>
#include <string>

#include "faults/dictionary.hpp"

namespace ftdiag::io {

/// Write the full dictionary (golden + every fault response).
void save_dictionary(std::ostream& os,
                     const faults::FaultDictionary& dictionary);

/// Convenience: save to a file. \throws ftdiag::Error on I/O failure.
void save_dictionary_file(const std::string& path,
                          const faults::FaultDictionary& dictionary);

/// Parse a dictionary previously written by save_dictionary.
/// \throws ParseError / ConfigError on malformed content.
[[nodiscard]] faults::FaultDictionary load_dictionary(const std::string& text);

/// Convenience: load from a file.
[[nodiscard]] faults::FaultDictionary load_dictionary_file(
    const std::string& path);

}  // namespace ftdiag::io
