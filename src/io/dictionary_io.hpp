/// \file dictionary_io.hpp
/// \brief Lossless fault-dictionary serialization (CSV and binary `.fdx`).
///
/// Building a dictionary is the expensive part of the flow (one AC sweep
/// per fault); saving it lets the CLI, the service layer and test programs
/// split the "simulate once" and "diagnose many times" phases.  Two formats
/// round-trip a FaultDictionary bit-identically:
///
/// **CSV** — long-form text with full `max_digits10` precision, one row per
/// fault x frequency (human-inspectable, diff-able):
///
/// ```
/// site,target,param,deviation,freq_hz,re,im
/// ,,,0,10,0.9999,-0.0123          <- empty site = the golden response
/// R3,value,,-0.4,10,0.9983,-0.0119
/// OA1,opamp,gbw,0.1,10,...
/// ```
///
/// **Binary `.fdx`** — the serving format: magic + version + metadata +
/// checksummed little-endian blocks, loaded with one contiguous read per
/// block straight into the FaultDictionary layout (see
/// src/service/README.md for the full spec).  ~10-100x faster to load than
/// the CSV and byte-stable across platforms.
///
/// `load_dictionary_file` auto-detects the format by magic bytes, so both
/// kinds load through one entry point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "faults/dictionary.hpp"

namespace ftdiag::io {

/// On-disk dictionary representations accepted by the file entry points.
enum class DictionaryFormat : std::uint8_t {
  kCsv,     ///< long-form text (the original format)
  kBinary,  ///< `.fdx` checksummed little-endian blocks
  kAuto,    ///< saving: by file extension; loading: by magic bytes
};

/// Parse "csv" / "binary" / "auto" (the CLI's --dict-format values).
/// \throws ParseError for anything else.
[[nodiscard]] DictionaryFormat parse_dictionary_format(const std::string& name);

// ----------------------------------------------------------------- CSV

/// Write the full dictionary (golden + every fault response) as CSV.
/// Numeric fields use max_digits10, so a save -> load -> save cycle is
/// byte-identical and every double survives exactly.
void save_dictionary(std::ostream& os,
                     const faults::FaultDictionary& dictionary);

/// Parse a dictionary previously written by save_dictionary.
/// \throws ParseError / ConfigError on malformed content.
[[nodiscard]] faults::FaultDictionary load_dictionary(const std::string& text);

// -------------------------------------------------------------- binary

/// The `.fdx` magic bytes ("FDX1") and the format version this build
/// writes.  Version negotiation: readers accept any version <= the build's
/// own and reject newer files with a message naming both versions, so a
/// future block type (e.g. ROADMAP's compressed signatures) bumps the
/// version without another magic break.  v1 files (the original layout)
/// load forever.
inline constexpr char kBinaryDictionaryMagic[4] = {'F', 'D', 'X', '1'};
inline constexpr std::uint32_t kBinaryDictionaryVersion = 2;

/// Feature-flag bits this build understands (v2+ headers carry a u32 flag
/// word; a reader rejects any set bit it does not know, so an old build
/// can never silently misread a file using a newer encoding).
inline constexpr std::uint32_t kBinaryDictionarySupportedFlags = 0;

/// Fixed-size facts parsed from a `.fdx` header without touching the data
/// blocks — enough for a store to validate a file before paying for the
/// full load.
struct BinaryDictionaryHeader {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;  ///< reserved feature bits (v2+; 0 in v1)
  std::string key;  ///< the writer's cache key ("" when saved standalone)
  std::size_t frequency_count = 0;
  std::size_t fault_count = 0;
};

/// Structural map of a validated `.fdx` image: where each contiguous
/// little-endian data run starts, plus the decoded (small) fault list.
/// Shared by the copying loader and the zero-copy io::DictionaryView, so
/// both paths validate identically.
struct BinaryDictionaryLayout {
  BinaryDictionaryHeader header;
  std::size_t frequencies_offset = 0;  ///< n_freqs x f64
  std::size_t golden_offset = 0;       ///< n_freqs x (re, im)
  std::size_t responses_offset = 0;    ///< n_entries x n_freqs x (re, im)
  std::size_t end_offset = 0;          ///< one past the last block
  /// Every f64 run starts 8-byte aligned within the image (guaranteed by
  /// the v2 writer's padding; false for v1 files with odd-length keys).
  bool runs_aligned = false;
  std::vector<faults::ParametricFault> faults;  ///< block 3, decoded
};

/// True if \p bytes begin with the `.fdx` magic.
[[nodiscard]] bool is_binary_dictionary(std::string_view bytes);

/// Serialize as `.fdx`.  \p key is stored in the header so a dictionary
/// store can verify a file matches the (circuit, universe, grid, sim)
/// signature it was indexed under; pass "" for standalone saves.
void save_dictionary_binary(std::ostream& os,
                            const faults::FaultDictionary& dictionary,
                            const std::string& key = "");

/// Parse a `.fdx` image.  \throws ParseError on bad magic, an unsupported
/// version or feature flag, a truncated block or a checksum mismatch.
/// Every block's size is validated against the remaining image bytes
/// *before* anything is allocated from its counts.
[[nodiscard]] faults::FaultDictionary load_dictionary_binary(
    std::string_view bytes);

/// Parse only the header of a `.fdx` image.  \throws ParseError as above.
[[nodiscard]] BinaryDictionaryHeader read_binary_dictionary_header(
    std::string_view bytes);

/// Walk and validate a whole `.fdx` image without copying the data runs:
/// header negotiation, pre-allocation size validation, block 3 decode,
/// and (unless \p verify_checksums is false) every block checksum.
/// \throws ParseError exactly like load_dictionary_binary.
[[nodiscard]] BinaryDictionaryLayout parse_binary_dictionary_layout(
    std::string_view bytes, bool verify_checksums = true);

// --------------------------------------------------------------- files

/// Save to a file.  kAuto picks kBinary for a `.fdx` extension and kCsv
/// otherwise.  \throws ftdiag::Error on I/O failure.
void save_dictionary_file(const std::string& path,
                          const faults::FaultDictionary& dictionary,
                          DictionaryFormat format = DictionaryFormat::kAuto,
                          const std::string& key = "");

/// Load from a file.  kAuto sniffs the magic bytes, so CSV and `.fdx`
/// both load through this one entry point.  \throws ParseError.
[[nodiscard]] faults::FaultDictionary load_dictionary_file(
    const std::string& path, DictionaryFormat format = DictionaryFormat::kAuto);

/// Slurp a whole file (shared by the loaders and the dictionary store).
/// \throws ParseError if the file cannot be opened.
[[nodiscard]] std::string read_file_bytes(const std::string& path);

}  // namespace ftdiag::io
