/// \file dictionary_io.hpp
/// \brief Lossless fault-dictionary serialization (CSV and binary `.fdx`).
///
/// Building a dictionary is the expensive part of the flow (one AC sweep
/// per fault); saving it lets the CLI, the service layer and test programs
/// split the "simulate once" and "diagnose many times" phases.  Two formats
/// round-trip a FaultDictionary bit-identically:
///
/// **CSV** — long-form text with full `max_digits10` precision, one row per
/// fault x frequency (human-inspectable, diff-able):
///
/// ```
/// site,target,param,deviation,freq_hz,re,im
/// ,,,0,10,0.9999,-0.0123          <- empty site = the golden response
/// R3,value,,-0.4,10,0.9983,-0.0119
/// OA1,opamp,gbw,0.1,10,...
/// ```
///
/// **Binary `.fdx`** — the serving format: magic + version + metadata +
/// checksummed little-endian blocks, loaded with one contiguous read per
/// block straight into the FaultDictionary layout (see
/// src/service/README.md for the full spec).  ~10-100x faster to load than
/// the CSV and byte-stable across platforms.
///
/// `load_dictionary_file` auto-detects the format by magic bytes, so both
/// kinds load through one entry point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "faults/dictionary.hpp"

namespace ftdiag::io {

/// On-disk dictionary representations accepted by the file entry points.
enum class DictionaryFormat : std::uint8_t {
  kCsv,     ///< long-form text (the original format)
  kBinary,  ///< `.fdx` checksummed little-endian blocks
  kAuto,    ///< saving: by file extension; loading: by magic bytes
};

/// Parse "csv" / "binary" / "auto" (the CLI's --dict-format values).
/// \throws ParseError for anything else.
[[nodiscard]] DictionaryFormat parse_dictionary_format(const std::string& name);

// ----------------------------------------------------------------- CSV

/// Write the full dictionary (golden + every fault response) as CSV.
/// Numeric fields use max_digits10, so a save -> load -> save cycle is
/// byte-identical and every double survives exactly.
void save_dictionary(std::ostream& os,
                     const faults::FaultDictionary& dictionary);

/// Parse a dictionary previously written by save_dictionary.
/// \throws ParseError / ConfigError on malformed content.
[[nodiscard]] faults::FaultDictionary load_dictionary(const std::string& text);

// -------------------------------------------------------------- binary

/// The `.fdx` magic bytes ("FDX1") and current format version.
inline constexpr char kBinaryDictionaryMagic[4] = {'F', 'D', 'X', '1'};
inline constexpr std::uint32_t kBinaryDictionaryVersion = 1;

/// Fixed-size facts parsed from a `.fdx` header without touching the data
/// blocks — enough for a store to validate a file before paying for the
/// full load.
struct BinaryDictionaryHeader {
  std::uint32_t version = 0;
  std::string key;  ///< the writer's cache key ("" when saved standalone)
  std::size_t frequency_count = 0;
  std::size_t fault_count = 0;
};

/// True if \p bytes begin with the `.fdx` magic.
[[nodiscard]] bool is_binary_dictionary(const std::string& bytes);

/// Serialize as `.fdx`.  \p key is stored in the header so a dictionary
/// store can verify a file matches the (circuit, universe, grid, sim)
/// signature it was indexed under; pass "" for standalone saves.
void save_dictionary_binary(std::ostream& os,
                            const faults::FaultDictionary& dictionary,
                            const std::string& key = "");

/// Parse a `.fdx` image.  \throws ParseError on bad magic, an unsupported
/// version, a truncated block or a checksum mismatch.
[[nodiscard]] faults::FaultDictionary load_dictionary_binary(
    const std::string& bytes);

/// Parse only the header of a `.fdx` image.  \throws ParseError as above.
[[nodiscard]] BinaryDictionaryHeader read_binary_dictionary_header(
    const std::string& bytes);

// --------------------------------------------------------------- files

/// Save to a file.  kAuto picks kBinary for a `.fdx` extension and kCsv
/// otherwise.  \throws ftdiag::Error on I/O failure.
void save_dictionary_file(const std::string& path,
                          const faults::FaultDictionary& dictionary,
                          DictionaryFormat format = DictionaryFormat::kAuto,
                          const std::string& key = "");

/// Load from a file.  kAuto sniffs the magic bytes, so CSV and `.fdx`
/// both load through this one entry point.  \throws ParseError.
[[nodiscard]] faults::FaultDictionary load_dictionary_file(
    const std::string& path, DictionaryFormat format = DictionaryFormat::kAuto);

/// Slurp a whole file (shared by the loaders and the dictionary store).
/// \throws ParseError if the file cannot be opened.
[[nodiscard]] std::string read_file_bytes(const std::string& path);

}  // namespace ftdiag::io
