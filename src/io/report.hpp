/// \file report.hpp
/// \brief Human-readable reports of ATPG runs and diagnosis evaluations
/// (shared by the examples and benchmark binaries).
#pragma once

#include <iosfwd>

#include "core/atpg.hpp"
#include "core/diagnosis.hpp"
#include "core/evaluation.hpp"

namespace ftdiag::io {

/// Print the test vector, fitness, intersection count and GA convergence.
void print_atpg_report(std::ostream& os, const core::AtpgResult& result);

/// Print a ranked diagnosis ("fault is on N, deviation about +23%...").
void print_diagnosis(std::ostream& os, const core::Diagnosis& diagnosis,
                     std::size_t max_candidates = 3);

/// Print the accuracy report including the confusion matrix.
void print_accuracy_report(std::ostream& os,
                           const core::AccuracyReport& report);

}  // namespace ftdiag::io
