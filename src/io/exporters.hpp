/// \file exporters.hpp
/// \brief CSV / gnuplot export of responses, dictionaries and trajectories
/// so the figure benches can dump plot-ready data next to their tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trajectory.hpp"
#include "faults/dictionary.hpp"
#include "mna/response.hpp"

namespace ftdiag::io {

/// Columns: freq_hz, mag, mag_db, phase_deg.
void write_response_csv(std::ostream& os, const mna::AcResponse& response);

/// Columns: freq_hz, re, im — a complex measured response at full
/// max_digits10 precision.  This is the serve-batch interchange format:
/// one file per board measurement, loaded back losslessly by
/// load_measurement_csv.
void write_measurement_csv(std::ostream& os, const mna::AcResponse& measured);

/// Convenience: write_measurement_csv to a file.  \throws ftdiag::Error.
void write_measurement_csv_file(const std::string& path,
                                const mna::AcResponse& measured);

/// Parse a measurement written by write_measurement_csv.
/// \throws ParseError on malformed content.
[[nodiscard]] mna::AcResponse load_measurement_csv(const std::string& text);

/// Convenience: load a measurement CSV file.  \throws ParseError.
[[nodiscard]] mna::AcResponse load_measurement_csv_file(
    const std::string& path);

/// Columns: freq_hz, golden_mag, then one magnitude column per fault
/// (header = fault label).  This is the Fig. 1 data file.
void write_dictionary_csv(std::ostream& os,
                          const faults::FaultDictionary& dictionary);

/// Columns: site, deviation, then x0..x{d-1} signature coordinates.
/// This is the Fig. 3 data file.
void write_trajectories_csv(std::ostream& os,
                            const std::vector<core::FaultTrajectory>& trajectories);

/// A self-contained gnuplot script plotting 2-D trajectories (one line per
/// site, origin marked) from the CSV written by write_trajectories_csv.
/// \throws ConfigError if the trajectories are not 2-D.
[[nodiscard]] std::string trajectory_gnuplot_script(
    const std::vector<core::FaultTrajectory>& trajectories,
    const std::string& csv_path, const std::string& title);

/// Write a string to a file. \throws ftdiag::Error on I/O failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace ftdiag::io
