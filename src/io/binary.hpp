/// \file binary.hpp
/// \brief Shared little-endian binary primitives: bounds-checked reading,
/// appending emitters, FNV-1a block checksums.
///
/// Every on-wire and on-disk binary format in ftdiag (the `.fdx`
/// dictionary format, the `ftdiag::net` frame protocol) is built from the
/// same vocabulary: little-endian fixed-width integers independent of host
/// byte order, IEEE-754 doubles as u64 bit patterns (bit-exact round
/// trips), `u32 length + bytes` strings, and optional FNV-1a sealed
/// blocks.  Readers are bounds-checked on every access — a truncated or
/// hostile image produces a clean ParseError, never an out-of-bounds read
/// or a giant allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ftdiag::io {

/// FNV-1a over a byte span (the block checksum used by `.fdx`).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

// ------------------------------------------------------------- emitters
//
// All emitters append to a std::string image; callers reserve() up front
// when the size is predictable.

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);

/// u32 length + raw bytes.
void put_str(std::string& out, std::string_view s);

/// Pad with zero bytes until out.size() is a multiple of \p alignment
/// (power of two).  Used by `.fdx` v2 so fixed-width blocks start 8-byte
/// aligned and can be served as in-place spans from a mapped file.
void pad_to(std::string& out, std::size_t alignment);

/// Append the FNV-1a checksum of everything written since \p begin.
void seal_block(std::string& out, std::size_t begin);

// --------------------------------------------------------------- reader

/// Bounds-checked little-endian cursor over an in-memory image.  Every
/// read throws ParseError("<context> is truncated") instead of running
/// off the end, so a short image can never be misinterpreted as valid
/// data.  The reader does not own the bytes; keep them alive.
class ByteReader {
public:
  explicit ByteReader(std::string_view bytes,
                      std::string context = "binary image")
      : bytes_(bytes), context_(std::move(context)) {}

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Advance past \p n bytes and return a pointer to them.
  /// \throws ParseError when fewer remain.
  [[nodiscard]] const char* need(std::size_t n);

  /// Require at least \p n bytes left without consuming them.
  void require(std::size_t n, const char* what) const;

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_str();

  /// Skip forward to the next multiple of \p alignment (power of two).
  void align_to(std::size_t alignment);

  /// Verify the trailing u64 checksum of the block that started at
  /// \p begin.  \throws ParseError on a mismatch.
  void check_block(std::size_t begin, const char* what);

private:
  std::string_view bytes_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace ftdiag::io
