/// \file durable_file.hpp
/// \brief Crash-safe atomic file publication: write-tmp, fsync, rename,
/// fsync the directory.
///
/// `std::filesystem::rename` after a buffered write gives *atomic
/// visibility* (readers never see half a file) but not *durability*: a
/// power cut after the rename can leave the final name pointing at pages
/// that never reached the disk — a torn artifact published under a name
/// readers trust.  The durable sequence closes that window:
///
///   1. write `path + ".tmp"`, 2. fsync the tmp file, 3. rename over
///   `path`, 4. fsync the parent directory (the rename itself is metadata
///   that must also survive).
///
/// On platforms without POSIX file descriptors the helper degrades to
/// plain write + rename (atomic visibility only).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace ftdiag::io {

/// Publish \p bytes at \p path via the durable tmp/fsync/rename/fsync
/// sequence above.  The parent directory must exist.  Honors the
/// `io.torn_write` chaos injection point (the write is truncated at a
/// pseudo-random byte, simulating a crash mid-write *after* the rename
/// was somehow observed — the worst case a store must recover from).
/// \throws Error when any step fails.
void write_file_durable(const std::string& path, std::string_view bytes);

/// Delete leftover `*.tmp` files under \p dir — the debris of writers
/// that crashed between step 1 and 3.  Returns how many were removed.
/// A missing or unreadable directory is not an error (returns 0).
std::size_t remove_stale_tmp_files(const std::string& dir);

}  // namespace ftdiag::io
