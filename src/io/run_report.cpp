#include "io/run_report.hpp"

#include <sstream>

#include "core/ambiguity.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::io {

std::string render_run_report(const Session& session,
                              const TestGenResult& result,
                              const RunReportOptions& options) {
  std::ostringstream os;
  const auto& cut = session.cut();
  const auto& config = session.options();
  const auto dictionary = session.dictionary();

  os << "# Fault-trajectory test program: " << cut.name << "\n\n";
  os << cut.description << "\n\n";

  os << "## Configuration\n\n";
  os << "| parameter | value |\n|---|---|\n";
  os << "| stimulus source | " << cut.input_source << " |\n";
  os << "| observed node | " << cut.output_node << " |\n";
  os << "| testable components | " << str::join(cut.testable, ", ") << " |\n";
  os << str::format("| deviation grid | %.0f%%..%.0f%% step %.0f%% |\n",
                    config.deviations.min_fraction * 100,
                    config.deviations.max_fraction * 100,
                    config.deviations.step_fraction * 100);
  os << str::format("| search band | %s .. %s |\n",
                    units::format_hz(cut.band_low_hz).c_str(),
                    units::format_hz(cut.band_high_hz).c_str());
  os << "| fitness | " << core::to_string(config.search.fitness) << " |\n";
  os << str::format("| GA | %zu individuals x %zu generations, seed %llu |\n",
                    config.search.ga.population_size,
                    config.search.ga.generations,
                    static_cast<unsigned long long>(config.search.seed));

  os << "\n## Fault dictionary\n\n";
  os << str::format("%zu faults over %zu sites, %zu-point frequency grid.\n",
                    dictionary->fault_count(),
                    dictionary->site_labels().size(),
                    dictionary->frequencies().size());
  const auto groups = core::find_ambiguity_groups(*dictionary);
  os << "\nStructural ambiguity groups: ";
  for (std::size_t i = 0; i < groups.size(); ++i) {
    os << (i ? ", " : "") << "`" << groups[i].label() << "`";
  }
  os << "\n";

  os << "\n## Selected test vector\n\n";
  os << "**" << result.best.vector.label() << "**\n\n";
  os << str::format(
      "fitness %.4f, %zu trajectory intersections, separation margin %.4f, "
      "%zu objective evaluations.\n",
      result.best.fitness, result.best.intersections,
      result.best.separation_margin, result.search.evaluations);

  os << "\n| generation | best | mean |\n|---|---|---|\n";
  for (const auto& g : result.search.history) {
    os << str::format("| %zu | %.4f | %.4f |\n", g.generation, g.best, g.mean);
  }

  if (options.include_trajectories) {
    os << "\n## Trajectories\n\n| site | deviation | coordinates |\n|---|---|---|\n";
    for (const auto& t :
         session.evaluator().trajectories(result.best.vector)) {
      for (const auto& p : t.points()) {
        std::string coords;
        for (std::size_t d = 0; d < p.coords.size(); ++d) {
          coords += str::format("%s%+.5f", d ? ", " : "", p.coords[d]);
        }
        os << str::format("| %s | %+.0f%% | (%s) |\n", t.site().c_str(),
                          p.deviation * 100, coords.c_str());
      }
    }
  }

  if (options.include_evaluation) {
    const auto report = core::evaluate_diagnosis(
        cut, *dictionary, result.best.vector, config.sampling,
        options.evaluation);
    os << "\n## Diagnosis evaluation\n\n";
    os << str::format(
        "%zu random off-grid faults: site accuracy **%.1f%%**, "
        "group accuracy **%.1f%%**, top-2 %.1f%%, mean |deviation error| "
        "%.2f%%, mean confidence %.2f.\n",
        report.trials, report.site_accuracy * 100,
        report.group_accuracy * 100, report.top2_accuracy * 100,
        report.mean_deviation_error * 100, report.mean_confidence);

    os << "\n| truth \\ predicted |";
    for (const auto& label : report.confusion.labels) os << " " << label << " |";
    os << "\n|---|";
    for (std::size_t i = 0; i < report.confusion.labels.size(); ++i) os << "---|";
    os << "\n";
    for (std::size_t i = 0; i < report.confusion.labels.size(); ++i) {
      os << "| " << report.confusion.labels[i] << " |";
      for (std::size_t j = 0; j < report.confusion.labels.size(); ++j) {
        os << " " << report.confusion.counts[i][j] << " |";
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string render_run_report(const core::AtpgFlow& flow,
                              const core::AtpgResult& result,
                              const RunReportOptions& options) {
  return render_run_report(flow.session(), result, options);
}

}  // namespace ftdiag::io
