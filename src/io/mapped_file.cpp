#include "io/mapped_file.hpp"

#include <bit>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FTDIAG_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FTDIAG_HAS_MMAP 0
#endif

namespace ftdiag::io {

bool mmap_supported() { return FTDIAG_HAS_MMAP != 0; }

MappedFile MappedFile::open(const std::string& path) {
  MappedFile file;
#if FTDIAG_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw ParseError("cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw ParseError("cannot stat '" + path + "'");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // nothing to map; empty view
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    throw ParseError("cannot mmap '" + path + "'");
  }
  file.data_ = static_cast<const char*>(base);
  file.size_ = size;
  file.mapped_ = true;
#else
  file.fallback_ = read_file_bytes(path);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
#endif
  return file;
}

MappedFile::~MappedFile() {
#if FTDIAG_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    new (this) MappedFile(std::move(other));
  }
  return *this;
}

// -------------------------------------------------------- DictionaryView

namespace {

/// In-place span serving is only sound when the stored little-endian bit
/// patterns are the host's and the run is suitably aligned in memory.
bool can_alias(const void* base, std::size_t offset) {
  if constexpr (std::endian::native != std::endian::little) return false;
  return (reinterpret_cast<std::uintptr_t>(base) + offset) % 8 == 0;
}

double decode_f64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  }
  return std::bit_cast<double>(v);
}

}  // namespace

DictionaryView DictionaryView::map(const std::string& path,
                                   bool verify_checksums) {
  auto state = std::make_shared<State>();
  state->file = MappedFile::open(path);
  return finish(std::move(state), verify_checksums);
}

DictionaryView DictionaryView::over(std::string bytes,
                                    bool verify_checksums) {
  auto state = std::make_shared<State>();
  state->owned_bytes = std::move(bytes);
  return finish(std::move(state), verify_checksums);
}

DictionaryView DictionaryView::finish(std::shared_ptr<State> state,
                                      bool verify_checksums) {
  const std::string_view bytes = state->bytes();
  state->layout = parse_binary_dictionary_layout(bytes, verify_checksums);
  const auto& layout = state->layout;

  state->zero_copy =
      layout.runs_aligned && can_alias(bytes.data(), 0) &&
      can_alias(bytes.data(), layout.frequencies_offset) &&
      can_alias(bytes.data(), layout.golden_offset) &&
      can_alias(bytes.data(), layout.responses_offset);

  if (!state->zero_copy) {
    // Decode once into private buffers; the span API is unchanged.
    const std::size_t n_freqs = layout.header.frequency_count;
    const std::size_t n_entries = layout.header.fault_count;
    state->decoded_frequencies.resize(n_freqs);
    for (std::size_t i = 0; i < n_freqs; ++i) {
      state->decoded_frequencies[i] =
          decode_f64(bytes, layout.frequencies_offset + 8 * i);
    }
    state->decoded_values.resize(n_freqs * (1 + n_entries));
    for (std::size_t i = 0; i < n_freqs; ++i) {
      state->decoded_values[i] = {
          decode_f64(bytes, layout.golden_offset + 16 * i),
          decode_f64(bytes, layout.golden_offset + 16 * i + 8)};
    }
    for (std::size_t e = 0; e < n_entries; ++e) {
      const std::size_t run = layout.responses_offset + 16 * n_freqs * e;
      for (std::size_t i = 0; i < n_freqs; ++i) {
        state->decoded_values[n_freqs * (1 + e) + i] = {
            decode_f64(bytes, run + 16 * i),
            decode_f64(bytes, run + 16 * i + 8)};
      }
    }
  }
  return DictionaryView(std::move(state));
}

std::span<const double> DictionaryView::frequencies() const {
  const auto& layout = state_->layout;
  if (!state_->zero_copy) {
    return state_->decoded_frequencies;
  }
  return {reinterpret_cast<const double*>(state_->bytes().data() +
                                          layout.frequencies_offset),
          layout.header.frequency_count};
}

std::span<const mna::Complex> DictionaryView::golden() const {
  const auto& layout = state_->layout;
  if (!state_->zero_copy) {
    return {state_->decoded_values.data(), layout.header.frequency_count};
  }
  return {reinterpret_cast<const mna::Complex*>(state_->bytes().data() +
                                                layout.golden_offset),
          layout.header.frequency_count};
}

std::span<const mna::Complex> DictionaryView::response(
    std::size_t entry) const {
  const auto& layout = state_->layout;
  FTDIAG_ASSERT(entry < layout.header.fault_count,
                "dictionary view entry index out of range");
  const std::size_t n_freqs = layout.header.frequency_count;
  if (!state_->zero_copy) {
    return {state_->decoded_values.data() + n_freqs * (1 + entry), n_freqs};
  }
  return {reinterpret_cast<const mna::Complex*>(
              state_->bytes().data() + layout.responses_offset +
              16 * n_freqs * entry),
          n_freqs};
}

faults::FaultDictionary DictionaryView::materialize() const {
  const auto freqs_span = frequencies();
  std::vector<double> freqs(freqs_span.begin(), freqs_span.end());
  const auto golden_span = golden();
  std::vector<mna::Complex> golden_values(golden_span.begin(),
                                          golden_span.end());
  std::vector<faults::DictionaryEntry> entries;
  entries.reserve(fault_count());
  for (std::size_t e = 0; e < fault_count(); ++e) {
    const auto values_span = response(e);
    entries.push_back(
        {state_->layout.faults[e],
         mna::AcResponse(freqs, std::vector<mna::Complex>(
                                    values_span.begin(), values_span.end()))});
  }
  return faults::FaultDictionary::from_parts(
      mna::AcResponse(std::move(freqs), std::move(golden_values)),
      std::move(entries));
}

}  // namespace ftdiag::io
