#include "mna/sweep_solver.hpp"

#include "linalg/complex_utils.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

std::shared_ptr<const SweepSolver::Context> SweepSolver::analyze(
    const SweepAssembler& assembler, SolverBackend backend,
    double reference_hz) {
  auto ctx = std::make_shared<Context>();
  const std::size_t n = assembler.size();
  ctx->sparse = backend == SolverBackend::kSparse ||
                (backend == SolverBackend::kAuto &&
                 n > SweepAssembler::kDenseLimit);
  if (ctx->sparse) {
    linalg::CooMatrix<Complex> coo(n, n);
    assembler.assemble(linalg::s_of_hz(reference_hz), coo);
    try {
      ctx->prototype = linalg::SparseFactorization<Complex>(coo);
    } catch (const NumericError&) {
      // Singular (or empty) at the reference point: leave the prototype
      // unanalyzed and let every lane analyze per frequency instead.
    }
  } else if (n > SweepAssembler::kDenseLimit) {
    // Forced dense past the assembler's premerge limit: merge G here, in
    // stamp order, exactly as prepare_sweep() does below the limit.
    ctx->g_dense = linalg::Matrix<Complex>(n, n);
    for (const auto& e : assembler.static_entries()) {
      ctx->g_dense(e.row, e.col) += e.value;
    }
  }
  return ctx;
}

SweepSolver::SweepSolver(const SweepAssembler& assembler,
                         std::shared_ptr<const Context> context)
    : assembler_(&assembler), context_(std::move(context)) {
  FTDIAG_ASSERT(context_ != nullptr, "sweep solver needs an analyzed context");
  if (context_->sparse) {
    coo_ = linalg::CooMatrix<Complex>(assembler.size(), assembler.size());
    reused_ = context_->prototype;  // shares the immutable symbolic phase
  }
}

void SweepSolver::factor(Complex s) {
  if (!context_->sparse) {
    if (size() <= SweepAssembler::kDenseLimit) {
      assembler_->assemble(s, a_);
    } else {
      a_ = context_->g_dense;
      for (const auto& e : assembler_->reactive_entries()) {
        a_(e.row, e.col) += s * e.coefficient;
      }
    }
    lu_.factor_in_place(a_);
    return;
  }
  assembler_->assemble(s, coo_);
  use_fresh_ = false;
  if (reused_.analyzed()) {
    try {
      reused_.refactor(coo_);
      return;
    } catch (const NumericError&) {
      // Frozen pivot order is numerically unusable here — analyze fresh
      // for this point only.  The shared context stays untouched, so the
      // fallback never leaks into other frequencies or lanes.
    }
  }
  fresh_ = linalg::SparseFactorization<Complex>(coo_);
  use_fresh_ = true;
}

void SweepSolver::solve_into(std::span<const Complex> b,
                             std::span<Complex> x) const {
  if (!context_->sparse) {
    lu_.solve_into(b, x);
  } else if (use_fresh_) {
    fresh_.solve_into(b, x);
  } else {
    reused_.solve_into(b, x);
  }
}

void SweepSolver::solve_into(const linalg::Matrix<Complex>& b,
                             linalg::Matrix<Complex>& x) const {
  if (!context_->sparse) {
    lu_.solve_into(b, x);
  } else if (use_fresh_) {
    fresh_.solve_into(b, x);
  } else {
    reused_.solve_into(b, x);
  }
}

}  // namespace ftdiag::mna
