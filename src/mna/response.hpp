/// \file response.hpp
/// \brief Frequency-response container with interpolation helpers.
///
/// An AcResponse is what fault simulation stores per circuit: the complex
/// transfer value at each grid frequency.  The spectral sampler evaluates
/// responses at arbitrary (GA-chosen) frequencies via log-frequency
/// interpolation, so the dictionary does not need to be rebuilt per GA step.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/complex_utils.hpp"
#include "linalg/simd.hpp"

namespace ftdiag::mna {

using linalg::Complex;

/// Complex response samples over an ascending frequency grid.
///
/// Storage is structure-of-arrays: contiguous 64-byte-aligned re/im
/// planes (frequency-major), which is what the SIMD sweep and scoring
/// kernels read and what the simulation engine writes pack-at-a-time.
/// The interleaved values() vector is kept alongside as the API/wire
/// view (serialization, interpolation and every legacy caller); both
/// views always hold identical values.
class AcResponse {
public:
  AcResponse() = default;
  AcResponse(std::vector<double> frequencies_hz, std::vector<Complex> values);

  /// Build directly from split re/im planes (the engine's native output —
  /// no interleave round-trip on the hot path's side).
  AcResponse(std::vector<double> frequencies_hz,
             linalg::simd::AlignedVector re, linalg::simd::AlignedVector im);

  [[nodiscard]] std::size_t size() const { return freq_hz_.size(); }
  [[nodiscard]] bool empty() const { return freq_hz_.empty(); }

  [[nodiscard]] const std::vector<double>& frequencies() const {
    return freq_hz_;
  }
  [[nodiscard]] const std::vector<Complex>& values() const { return values_; }

  /// The SoA planes: re/im of the sample at grid index i, 64-byte aligned.
  [[nodiscard]] std::span<const double> reals() const { return re_; }
  [[nodiscard]] std::span<const double> imags() const { return im_; }

  [[nodiscard]] double frequency(std::size_t i) const { return freq_hz_[i]; }
  [[nodiscard]] const Complex& value(std::size_t i) const { return values_[i]; }

  /// Linear magnitude at grid index i.
  [[nodiscard]] double magnitude(std::size_t i) const;

  /// Magnitude in dB at grid index i.
  [[nodiscard]] double magnitude_db(std::size_t i) const;

  /// Phase in degrees at grid index i.
  [[nodiscard]] double phase_deg(std::size_t i) const;

  /// Where an arbitrary frequency falls on a response grid: the bracketing
  /// indices and the log-frequency interpolation parameter.  lo == hi
  /// marks an exact grid hit or an out-of-band clamp.  Responses sharing
  /// one grid (every dictionary entry) can locate once and interpolate
  /// many — see interpolate(const GridPosition&).
  struct GridPosition {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double t = 0.0;
  };

  /// Locate \p frequency_hz on this grid.  \throws NumericError if empty.
  [[nodiscard]] GridPosition locate(double frequency_hz) const;

  /// Complex value at an arbitrary frequency by interpolating magnitude
  /// (log-log) and unwrapped phase (linear in log f) between neighbouring
  /// grid points.  Clamps outside the grid.  \throws NumericError if empty.
  /// Exactly interpolate(locate(f)).
  [[nodiscard]] Complex interpolate(double frequency_hz) const;

  /// Interpolate at a precomputed position (valid for any response on the
  /// same grid).  Bit-identical to interpolate(frequency).
  [[nodiscard]] Complex interpolate(const GridPosition& position) const;

  /// Linear magnitude at an arbitrary frequency (via interpolate()).
  [[nodiscard]] double magnitude_at(double frequency_hz) const;

  /// Magnitude in dB at an arbitrary frequency.
  [[nodiscard]] double magnitude_db_at(double frequency_hz) const;

  /// Largest |difference| to another response on the common grid.
  /// \throws NumericError if grids differ.
  [[nodiscard]] double max_deviation(const AcResponse& other) const;

  /// Index of the maximum-magnitude sample.
  [[nodiscard]] std::size_t peak_index() const;

private:
  std::vector<double> freq_hz_;
  std::vector<Complex> values_;          ///< interleaved API/wire view
  linalg::simd::AlignedVector re_, im_;  ///< SoA planes (kernel view)
};

}  // namespace ftdiag::mna
