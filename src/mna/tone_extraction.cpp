#include "mna/tone_extraction.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftdiag::mna {

double ToneEstimate::phase_deg() const {
  return std::arg(phasor) * 180.0 / std::numbers::pi;
}

ToneEstimate extract_tone(const std::vector<double>& time_s,
                          const std::vector<double>& samples,
                          double frequency_hz, double window_fraction) {
  if (time_s.size() != samples.size()) {
    throw ConfigError("tone extraction: time/sample length mismatch");
  }
  if (time_s.size() < 8) {
    throw ConfigError("tone extraction: too few samples");
  }
  if (!(frequency_hz > 0.0)) {
    throw ConfigError("tone extraction: frequency must be positive");
  }
  if (!(window_fraction > 0.0) || window_fraction > 1.0) {
    throw ConfigError("tone extraction: window fraction must be in (0, 1]");
  }

  const double dt = time_s[1] - time_s[0];
  if (!(dt > 0.0)) throw ConfigError("tone extraction: non-increasing time");
  // Uniformity check on every sample (tolerates accumulated rounding).
  const double span = time_s.back() - time_s.front();
  for (std::size_t i = 0; i < time_s.size(); ++i) {
    const double expected = time_s.front() + dt * static_cast<double>(i);
    if (std::fabs(time_s[i] - expected) > 1e-6 * span + 1e-15) {
      throw ConfigError("tone extraction: non-uniform sampling");
    }
  }
  if (frequency_hz >= 0.5 / dt) {
    throw ConfigError("tone extraction: frequency above Nyquist");
  }

  // Window: whole periods fitting in the record tail.
  const std::size_t tail = static_cast<std::size_t>(
      window_fraction * static_cast<double>(time_s.size()));
  const double period_samples = 1.0 / (frequency_hz * dt);
  const std::size_t whole_periods =
      static_cast<std::size_t>(static_cast<double>(tail) / period_samples);
  if (whole_periods == 0) {
    throw ConfigError(
        "tone extraction: window shorter than one period of the tone");
  }
  const std::size_t window = static_cast<std::size_t>(
      std::llround(static_cast<double>(whole_periods) * period_samples));
  const std::size_t begin = time_s.size() - window;

  const double w = 2.0 * std::numbers::pi * frequency_hz;
  std::complex<double> acc{};
  for (std::size_t i = begin; i < time_s.size(); ++i) {
    const double angle = w * time_s[i];
    acc += samples[i] * std::complex<double>(std::cos(angle), -std::sin(angle));
  }
  acc *= 2.0 / static_cast<double>(window);

  ToneEstimate estimate;
  estimate.frequency_hz = frequency_hz;
  // For x(t) = Im(P * e^{jwt}) the correlation yields -jP; undo it.
  estimate.phasor = std::complex<double>(0.0, 1.0) * acc;
  return estimate;
}

std::vector<ToneEstimate> extract_tones(
    const std::vector<double>& time_s, const std::vector<double>& samples,
    const std::vector<double>& frequencies_hz, double window_fraction) {
  std::vector<ToneEstimate> out;
  out.reserve(frequencies_hz.size());
  for (double f : frequencies_hz) {
    out.push_back(extract_tone(time_s, samples, f, window_fraction));
  }
  return out;
}

}  // namespace ftdiag::mna
