/// \file transfer_function.hpp
/// \brief Measurement utilities on frequency responses: DC gain, cutoff,
/// peak/Q extraction.  Used by the circuit tests to verify each registry
/// filter against its analytic design values.
#pragma once

#include <optional>

#include "mna/response.hpp"

namespace ftdiag::mna {

/// Summary numbers of a low-pass-like response.
struct LowPassSummary {
  double dc_gain = 0.0;        ///< |H| at the lowest grid frequency
  double dc_gain_db = 0.0;
  double f_3db_hz = 0.0;       ///< -3 dB cutoff (0 when not crossed)
  double stop_gain_db = 0.0;   ///< |H| in dB at the highest grid frequency
};

/// Summary numbers of a band-pass-like response.
struct BandPassSummary {
  double f_peak_hz = 0.0;   ///< frequency of maximum magnitude
  double peak_gain = 0.0;
  double bandwidth_hz = 0.0;  ///< -3 dB bandwidth around the peak (0 if open)
  double q = 0.0;             ///< f_peak / bandwidth (0 if bandwidth is 0)
};

/// Measure low-pass characteristics.  The -3 dB point is located by
/// bisection on the interpolated response between the bracketing samples.
[[nodiscard]] LowPassSummary measure_lowpass(const AcResponse& response);

/// Measure band-pass characteristics (peak + half-power bandwidth).
[[nodiscard]] BandPassSummary measure_bandpass(const AcResponse& response);

/// Frequency (Hz) where |H| crosses \p target_db relative to \p ref_db,
/// searching upward from the first sample.  nullopt when never crossed.
[[nodiscard]] std::optional<double> find_crossing_db(
    const AcResponse& response, double ref_db, double drop_db);

/// Notch summary: minimum-magnitude frequency and depth.
struct NotchSummary {
  double f_notch_hz = 0.0;
  double depth_db = 0.0;  ///< min gain in dB relative to the passband
};

[[nodiscard]] NotchSummary measure_notch(const AcResponse& response);

}  // namespace ftdiag::mna
