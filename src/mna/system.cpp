#include "mna/system.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::mna {

using netlist::Component;
using netlist::ComponentKind;
using netlist::NodeId;

namespace {

/// Kinds that introduce an auxiliary branch-current unknown.
bool needs_branch_current(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kVoltageSource:
    case ComponentKind::kVcvs:
    case ComponentKind::kCcvs:
    case ComponentKind::kInductor:
    case ComponentKind::kIdealOpAmp:
      return true;
    default:
      return false;
  }
}

}  // namespace

MnaSystem::MnaSystem(const netlist::Circuit& circuit)
    : circuit_(circuit.elaborated()) {
  circuit_.validate_or_throw();

  node_to_unknown_.assign(circuit_.node_count(), kNoUnknown);
  std::size_t next = 0;
  for (NodeId n = 1; n < circuit_.node_count(); ++n) {
    node_to_unknown_[n] = next++;
  }
  for (const auto& c : circuit_.components()) {
    if (needs_branch_current(c.kind)) {
      branch_of_component_.emplace(c.name, next++);
    }
  }
  unknown_count_ = next;
  if (unknown_count_ == 0) {
    throw CircuitError("circuit has no unknowns (only ground?)");
  }
}

std::size_t MnaSystem::node_unknown(NodeId node) const {
  FTDIAG_ASSERT(node < node_to_unknown_.size(), "node id out of range");
  return node_to_unknown_[node];
}

std::size_t MnaSystem::node_unknown(const std::string& node_name) const {
  return node_unknown(circuit_.node_index(node_name));
}

std::size_t MnaSystem::branch_unknown(const std::string& name) const {
  const auto it = branch_of_component_.find(name);
  if (it == branch_of_component_.end()) {
    throw CircuitError("component '" + name +
                                "' has no branch-current unknown");
  }
  return it->second;
}

template <typename T>
void MnaSystem::stamp_all(Complex s, bool ac_excitation,
                          linalg::CooMatrix<T>& matrix,
                          std::vector<T>& rhs) const {
  FTDIAG_ASSERT(matrix.rows() == unknown_count_ &&
                    matrix.cols() == unknown_count_,
                "assembly matrix has the wrong shape");
  FTDIAG_ASSERT(rhs.size() == unknown_count_, "rhs has the wrong size");

  // add() helpers that skip ground (kNoUnknown) rows/columns.
  auto add = [&](std::size_t r, std::size_t c, const T& v) {
    if (r == kNoUnknown || c == kNoUnknown) return;
    matrix.add(r, c, v);
  };
  auto add_rhs = [&](std::size_t r, const T& v) {
    if (r == kNoUnknown) return;
    rhs[r] += v;
  };
  // Convert a complex admittance/impedance coefficient to T.
  auto coeff = [](const Complex& z) -> T {
    if constexpr (std::is_same_v<T, Complex>) {
      return z;
    } else {
      return z.real();
    }
  };
  // Excitation value of an independent source.
  auto excitation = [&](const Component& c) -> T {
    if constexpr (std::is_same_v<T, Complex>) {
      if (ac_excitation) {
        const double ph = c.ac_phase_deg * std::numbers::pi / 180.0;
        return Complex(c.ac_magnitude * std::cos(ph),
                       c.ac_magnitude * std::sin(ph));
      }
      return Complex(c.dc, 0.0);
    } else {
      (void)ac_excitation;
      return c.dc;
    }
  };

  for (const auto& c : circuit_.components()) {
    switch (c.kind) {
      case ComponentKind::kResistor: {
        const T g = coeff(Complex(1.0 / c.value, 0.0));
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        add(a, a, g);
        add(b, b, g);
        add(a, b, -g);
        add(b, a, -g);
        break;
      }
      case ComponentKind::kCapacitor: {
        const T y = coeff(s * c.value);
        if (y == T{}) break;  // DC: open circuit
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        add(a, a, y);
        add(b, b, y);
        add(a, b, -y);
        add(b, a, -y);
        break;
      }
      case ComponentKind::kInductor: {
        // Branch formulation: v_a - v_b - s*L*i = 0; KCL gets +/- i.
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(a, i, T{1});
        add(b, i, T{-1});
        add(i, a, T{1});
        add(i, b, T{-1});
        const T z = coeff(s * c.value);
        if (z != T{}) add(i, i, -z);
        break;
      }
      case ComponentKind::kVoltageSource: {
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(a, i, T{1});
        add(b, i, T{-1});
        add(i, a, T{1});
        add(i, b, T{-1});
        add_rhs(i, excitation(c));
        break;
      }
      case ComponentKind::kCurrentSource: {
        // Positive current flows from node+ through the source to node-.
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        const T value = excitation(c);
        add_rhs(a, -value);
        add_rhs(b, value);
        break;
      }
      case ComponentKind::kVcvs: {
        // v_p - v_n - gain*(v_cp - v_cn) = 0
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t cp = node_unknown(c.nodes[2]);
        const std::size_t cn = node_unknown(c.nodes[3]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(p, i, T{1});
        add(n, i, T{-1});
        add(i, p, T{1});
        add(i, n, T{-1});
        add(i, cp, coeff(Complex(-c.value, 0.0)));
        add(i, cn, coeff(Complex(c.value, 0.0)));
        break;
      }
      case ComponentKind::kVccs: {
        // i(p->n) = g * (v_cp - v_cn)
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t cp = node_unknown(c.nodes[2]);
        const std::size_t cn = node_unknown(c.nodes[3]);
        const T g = coeff(Complex(c.value, 0.0));
        add(p, cp, g);
        add(p, cn, -g);
        add(n, cp, -g);
        add(n, cn, g);
        break;
      }
      case ComponentKind::kCccs: {
        // i(p->n) = gain * i_control
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t j = branch_of_component_.at(c.control);
        const T gain = coeff(Complex(c.value, 0.0));
        add(p, j, gain);
        add(n, j, -gain);
        break;
      }
      case ComponentKind::kCcvs: {
        // v_p - v_n - r * i_control = 0
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t j = branch_of_component_.at(c.control);
        const std::size_t i = branch_of_component_.at(c.name);
        add(p, i, T{1});
        add(n, i, T{-1});
        add(i, p, T{1});
        add(i, n, T{-1});
        add(i, j, coeff(Complex(-c.value, 0.0)));
        break;
      }
      case ComponentKind::kIdealOpAmp: {
        // Nullor: output current unknown enforces v_in+ = v_in-.
        const std::size_t inp = node_unknown(c.nodes[0]);
        const std::size_t inn = node_unknown(c.nodes[1]);
        const std::size_t out = node_unknown(c.nodes[2]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(out, i, T{1});
        add(i, inp, T{1});
        add(i, inn, T{-1});
        break;
      }
      case ComponentKind::kOpAmp:
        FTDIAG_ASSERT(false,
                      "macro op-amp reached the stamper without elaboration");
        break;
    }
  }
}

void MnaSystem::assemble_ac(Complex s, linalg::CooMatrix<Complex>& matrix,
                            std::vector<Complex>& rhs) const {
  stamp_all<Complex>(s, /*ac_excitation=*/true, matrix, rhs);
}

void MnaSystem::assemble_dc(linalg::CooMatrix<double>& matrix,
                            std::vector<double>& rhs) const {
  stamp_all<double>(Complex(0.0, 0.0), /*ac_excitation=*/false, matrix, rhs);
}

}  // namespace ftdiag::mna
