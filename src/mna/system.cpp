#include "mna/system.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::mna {

using netlist::Component;
using netlist::ComponentKind;
using netlist::NodeId;

namespace {

/// Kinds that introduce an auxiliary branch-current unknown.
bool needs_branch_current(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kVoltageSource:
    case ComponentKind::kVcvs:
    case ComponentKind::kCcvs:
    case ComponentKind::kInductor:
    case ComponentKind::kIdealOpAmp:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ------------------------------------------------------- SweepAssembler

void SweepAssembler::assemble(Complex s, linalg::Matrix<Complex>& a) const {
  FTDIAG_ASSERT(!g_dense_.empty(),
                "dense sweep assembly beyond SweepAssembler::kDenseLimit");
  // Copy-assign reuses a's buffer when the shape already matches, so the
  // per-frequency cost is one memcpy-like pass plus the reactive scatter.
  a = g_dense_;
  for (const auto& e : c_entries_) {
    a(e.row, e.col) += s * e.coefficient;
  }
}

void SweepAssembler::assemble(Complex s,
                              linalg::CooMatrix<Complex>& coo) const {
  FTDIAG_ASSERT(coo.rows() == n_ && coo.cols() == n_,
                "sweep COO accumulator has the wrong shape");
  coo.clear();
  for (const auto& e : g_entries_) coo.add(e.row, e.col, e.value);
  for (const auto& e : c_entries_) coo.add(e.row, e.col, s * e.coefficient);
}

// ------------------------------------------------------------ MnaSystem

MnaSystem::MnaSystem(const netlist::Circuit& circuit)
    : circuit_(circuit.elaborated()) {
  circuit_.validate_or_throw();

  node_to_unknown_.assign(circuit_.node_count(), kNoUnknown);
  std::size_t next = 0;
  for (NodeId n = 1; n < circuit_.node_count(); ++n) {
    node_to_unknown_[n] = next++;
  }
  for (const auto& c : circuit_.components()) {
    if (needs_branch_current(c.kind)) {
      branch_of_component_.emplace(c.name, next++);
    }
  }
  unknown_count_ = next;
  if (unknown_count_ == 0) {
    throw CircuitError("circuit has no unknowns (only ground?)");
  }
}

std::size_t MnaSystem::node_unknown(NodeId node) const {
  FTDIAG_ASSERT(node < node_to_unknown_.size(), "node id out of range");
  return node_to_unknown_[node];
}

std::size_t MnaSystem::node_unknown(const std::string& node_name) const {
  return node_unknown(circuit_.node_index(node_name));
}

std::size_t MnaSystem::branch_unknown(const std::string& name) const {
  const auto it = branch_of_component_.find(name);
  if (it == branch_of_component_.end()) {
    throw CircuitError("component '" + name +
                                "' has no branch-current unknown");
  }
  return it->second;
}

template <typename T, typename GSink, typename CSink, typename RhsSink>
void MnaSystem::visit_stamps(bool ac_excitation, GSink&& g_sink,
                             CSink&& c_sink, RhsSink&& rhs_sink) const {
  // Sink wrappers that skip ground (kNoUnknown) rows/columns.
  auto add = [&](std::size_t r, std::size_t c, const T& v) {
    if (r == kNoUnknown || c == kNoUnknown) return;
    g_sink(r, c, v);
  };
  auto add_reactive = [&](std::size_t r, std::size_t c, double coefficient) {
    if (r == kNoUnknown || c == kNoUnknown) return;
    c_sink(r, c, coefficient);
  };
  auto add_rhs = [&](std::size_t r, const T& v) {
    if (r == kNoUnknown) return;
    rhs_sink(r, v);
  };
  // Convert a complex admittance/impedance coefficient to T.
  auto coeff = [](const Complex& z) -> T {
    if constexpr (std::is_same_v<T, Complex>) {
      return z;
    } else {
      return z.real();
    }
  };
  // Excitation value of an independent source.
  auto excitation = [&](const Component& c) -> T {
    if constexpr (std::is_same_v<T, Complex>) {
      if (ac_excitation) {
        const double ph = c.ac_phase_deg * std::numbers::pi / 180.0;
        return Complex(c.ac_magnitude * std::cos(ph),
                       c.ac_magnitude * std::sin(ph));
      }
      return Complex(c.dc, 0.0);
    } else {
      (void)ac_excitation;
      return c.dc;
    }
  };

  for (const auto& c : circuit_.components()) {
    switch (c.kind) {
      case ComponentKind::kResistor: {
        const T g = coeff(Complex(1.0 / c.value, 0.0));
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        add(a, a, g);
        add(b, b, g);
        add(a, b, -g);
        add(b, a, -g);
        break;
      }
      case ComponentKind::kCapacitor: {
        if (c.value == 0.0) break;  // no stamp at any frequency
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        add_reactive(a, a, c.value);
        add_reactive(b, b, c.value);
        add_reactive(a, b, -c.value);
        add_reactive(b, a, -c.value);
        break;
      }
      case ComponentKind::kInductor: {
        // Branch formulation: v_a - v_b - s*L*i = 0; KCL gets +/- i.
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(a, i, T{1});
        add(b, i, T{-1});
        add(i, a, T{1});
        add(i, b, T{-1});
        if (c.value != 0.0) add_reactive(i, i, -c.value);
        break;
      }
      case ComponentKind::kVoltageSource: {
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(a, i, T{1});
        add(b, i, T{-1});
        add(i, a, T{1});
        add(i, b, T{-1});
        add_rhs(i, excitation(c));
        break;
      }
      case ComponentKind::kCurrentSource: {
        // Positive current flows from node+ through the source to node-.
        const std::size_t a = node_unknown(c.nodes[0]);
        const std::size_t b = node_unknown(c.nodes[1]);
        const T value = excitation(c);
        add_rhs(a, -value);
        add_rhs(b, value);
        break;
      }
      case ComponentKind::kVcvs: {
        // v_p - v_n - gain*(v_cp - v_cn) = 0
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t cp = node_unknown(c.nodes[2]);
        const std::size_t cn = node_unknown(c.nodes[3]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(p, i, T{1});
        add(n, i, T{-1});
        add(i, p, T{1});
        add(i, n, T{-1});
        add(i, cp, coeff(Complex(-c.value, 0.0)));
        add(i, cn, coeff(Complex(c.value, 0.0)));
        break;
      }
      case ComponentKind::kVccs: {
        // i(p->n) = g * (v_cp - v_cn)
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t cp = node_unknown(c.nodes[2]);
        const std::size_t cn = node_unknown(c.nodes[3]);
        const T g = coeff(Complex(c.value, 0.0));
        add(p, cp, g);
        add(p, cn, -g);
        add(n, cp, -g);
        add(n, cn, g);
        break;
      }
      case ComponentKind::kCccs: {
        // i(p->n) = gain * i_control
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t j = branch_of_component_.at(c.control);
        const T gain = coeff(Complex(c.value, 0.0));
        add(p, j, gain);
        add(n, j, -gain);
        break;
      }
      case ComponentKind::kCcvs: {
        // v_p - v_n - r * i_control = 0
        const std::size_t p = node_unknown(c.nodes[0]);
        const std::size_t n = node_unknown(c.nodes[1]);
        const std::size_t j = branch_of_component_.at(c.control);
        const std::size_t i = branch_of_component_.at(c.name);
        add(p, i, T{1});
        add(n, i, T{-1});
        add(i, p, T{1});
        add(i, n, T{-1});
        add(i, j, coeff(Complex(-c.value, 0.0)));
        break;
      }
      case ComponentKind::kIdealOpAmp: {
        // Nullor: output current unknown enforces v_in+ = v_in-.
        const std::size_t inp = node_unknown(c.nodes[0]);
        const std::size_t inn = node_unknown(c.nodes[1]);
        const std::size_t out = node_unknown(c.nodes[2]);
        const std::size_t i = branch_of_component_.at(c.name);
        add(out, i, T{1});
        add(i, inp, T{1});
        add(i, inn, T{-1});
        break;
      }
      case ComponentKind::kOpAmp:
        FTDIAG_ASSERT(false,
                      "macro op-amp reached the stamper without elaboration");
        break;
    }
  }
}

SweepAssembler MnaSystem::prepare_sweep() const {
  SweepAssembler sweep;
  sweep.n_ = unknown_count_;
  sweep.rhs_.assign(unknown_count_, Complex{});
  visit_stamps<Complex>(
      /*ac_excitation=*/true,
      [&](std::size_t r, std::size_t c, const Complex& v) {
        sweep.g_entries_.push_back({r, c, v});
      },
      [&](std::size_t r, std::size_t c, double coefficient) {
        sweep.c_entries_.push_back({r, c, coefficient});
      },
      [&](std::size_t r, const Complex& v) { sweep.rhs_[r] += v; });
  if (unknown_count_ <= SweepAssembler::kDenseLimit) {
    // Premerge G densely, in stamp order, exactly as CooMatrix::to_dense
    // historically accumulated it.
    sweep.g_dense_ = linalg::Matrix<Complex>(unknown_count_, unknown_count_);
    for (const auto& e : sweep.g_entries_) {
      sweep.g_dense_(e.row, e.col) += e.value;
    }
  }
  return sweep;
}

void MnaSystem::assemble_ac(Complex s, linalg::CooMatrix<Complex>& matrix,
                            std::vector<Complex>& rhs) const {
  FTDIAG_ASSERT(matrix.rows() == unknown_count_ &&
                    matrix.cols() == unknown_count_,
                "assembly matrix has the wrong shape");
  FTDIAG_ASSERT(rhs.size() == unknown_count_, "rhs has the wrong size");
  visit_stamps<Complex>(
      /*ac_excitation=*/true,
      [&](std::size_t r, std::size_t c, const Complex& v) {
        matrix.add(r, c, v);
      },
      [&](std::size_t r, std::size_t c, double coefficient) {
        matrix.add(r, c, s * coefficient);
      },
      [&](std::size_t r, const Complex& v) { rhs[r] += v; });
}

void MnaSystem::assemble_dc(linalg::CooMatrix<double>& matrix,
                            std::vector<double>& rhs) const {
  FTDIAG_ASSERT(matrix.rows() == unknown_count_ &&
                    matrix.cols() == unknown_count_,
                "assembly matrix has the wrong shape");
  FTDIAG_ASSERT(rhs.size() == unknown_count_, "rhs has the wrong size");
  visit_stamps<double>(
      /*ac_excitation=*/false,
      [&](std::size_t r, std::size_t c, double v) { matrix.add(r, c, v); },
      [](std::size_t, std::size_t, double) {
        // s = 0: reactive stamps vanish (capacitors open, inductor branch
        // rows reduce to shorts), matching the historical DC assembly.
      },
      [&](std::size_t r, double v) { rhs[r] += v; });
}

}  // namespace ftdiag::mna
