#include "mna/frequency_grid.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

std::vector<double> FrequencyGrid::frequencies() const {
  if (points == 0) throw ConfigError("frequency grid needs at least 1 point");
  if (!(start_hz > 0.0) && kind != SweepKind::kLinear) {
    throw ConfigError("log sweeps require a positive start frequency");
  }
  if (!(stop_hz >= start_hz)) {
    throw ConfigError("sweep stop frequency below start frequency");
  }
  switch (kind) {
    case SweepKind::kLinear:
      return linalg::linspace(start_hz, stop_hz, points);
    case SweepKind::kLog:
      return linalg::logspace(start_hz, stop_hz, points);
    case SweepKind::kDecade: {
      const double decades = std::log10(stop_hz / start_hz);
      const std::size_t total = static_cast<std::size_t>(
          std::ceil(decades * static_cast<double>(points))) + 1;
      return linalg::logspace(start_hz, stop_hz, total < 2 ? 2 : total);
    }
  }
  throw ConfigError("unknown sweep kind");
}

}  // namespace ftdiag::mna
