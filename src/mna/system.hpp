/// \file system.hpp
/// \brief Modified Nodal Analysis system: unknown numbering and element
/// stamps.
///
/// Unknowns are the non-ground node voltages followed by auxiliary branch
/// currents (voltage sources, VCVS, CCVS, inductors, ideal op-amps).  The
/// same structure assembles the complex AC system at any Laplace point
/// s = jw and the real DC system (s = 0, DC source values).
#pragma once

#include <complex>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/complex_utils.hpp"
#include "linalg/sparse.hpp"
#include "netlist/circuit.hpp"

namespace ftdiag::mna {

using linalg::Complex;

/// Index value meaning "ground / no unknown".
inline constexpr std::size_t kNoUnknown = static_cast<std::size_t>(-1);

class MnaSystem {
public:
  /// Builds the unknown map for \p circuit.  Macro op-amps are elaborated
  /// internally; the elaborated circuit is retained and queryable.
  /// \throws CircuitError if the circuit fails structural validation.
  explicit MnaSystem(const netlist::Circuit& circuit);

  /// The elaborated circuit the stamps operate on.
  [[nodiscard]] const netlist::Circuit& circuit() const { return circuit_; }

  /// Total unknown count (node voltages + branch currents).
  [[nodiscard]] std::size_t unknown_count() const { return unknown_count_; }

  /// Number of node-voltage unknowns.
  [[nodiscard]] std::size_t node_unknown_count() const {
    return circuit_.node_count() - 1;
  }

  /// Unknown index of a node id (kNoUnknown for ground).
  [[nodiscard]] std::size_t node_unknown(netlist::NodeId node) const;

  /// Unknown index of a node referenced by name.
  [[nodiscard]] std::size_t node_unknown(const std::string& node_name) const;

  /// Unknown index of the branch current of a component (voltage source,
  /// VCVS, CCVS, inductor, ideal op-amp). \throws CircuitError if the
  /// component has no branch unknown.
  [[nodiscard]] std::size_t branch_unknown(const std::string& name) const;

  /// Assemble the complex MNA system at Laplace point \p s with AC phasor
  /// excitation (magnitude/phase of each source's AC spec).
  void assemble_ac(Complex s, linalg::CooMatrix<Complex>& matrix,
                   std::vector<Complex>& rhs) const;

  /// Assemble the real DC system: capacitors open, inductors short,
  /// sources at their DC values.
  void assemble_dc(linalg::CooMatrix<double>& matrix,
                   std::vector<double>& rhs) const;

private:
  template <typename T>
  void stamp_all(Complex s, bool ac_excitation,
                 linalg::CooMatrix<T>& matrix, std::vector<T>& rhs) const;

  netlist::Circuit circuit_;
  std::vector<std::size_t> node_to_unknown_;  ///< by NodeId
  std::unordered_map<std::string, std::size_t> branch_of_component_;
  std::size_t unknown_count_ = 0;
};

}  // namespace ftdiag::mna
