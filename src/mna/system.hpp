/// \file system.hpp
/// \brief Modified Nodal Analysis system: unknown numbering and element
/// stamps.
///
/// Unknowns are the non-ground node voltages followed by auxiliary branch
/// currents (voltage sources, VCVS, CCVS, inductors, ideal op-amps).  The
/// same structure assembles the complex AC system at any Laplace point
/// s = jw and the real DC system (s = 0, DC source values).
///
/// Every linear AC stamp in this formulation is affine in s, so the whole
/// system splits as A(s) = G + s*C with a frequency-invariant right-hand
/// side.  prepare_sweep() captures that split once; the per-frequency
/// assembly is then an O(n^2) buffer copy plus an O(nnz(C)) scatter into
/// caller-owned storage — no component traversal, no allocation — which is
/// what the sweep hot paths (AcAnalysis, SimulationEngine) run on.
#pragma once

#include <complex>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/batch_lu.hpp"
#include "linalg/complex_utils.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "linalg/sparse.hpp"
#include "netlist/circuit.hpp"

namespace ftdiag::mna {

using linalg::Complex;

/// Index value meaning "ground / no unknown".
inline constexpr std::size_t kNoUnknown = static_cast<std::size_t>(-1);

/// The frequency-invariant split A(s) = G + s*C of one MNA system, with
/// the constant AC-excitation right-hand side.  Built once per circuit by
/// MnaSystem::prepare_sweep(); assemble() recombines at any Laplace point
/// into a caller-owned buffer with zero allocations once the buffer is
/// warm.  Immutable after construction, so one assembler serves any
/// number of concurrent sweep threads.
class SweepAssembler {
public:
  /// Unknown count above which the premerged dense G is not materialized
  /// (use the COO overload and a sparse solver instead).  Kept equal to
  /// AcAnalysis::kDenseLimit.
  static constexpr std::size_t kDenseLimit = 150;

  SweepAssembler() = default;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// The constant AC right-hand side (phasor source excitations).
  [[nodiscard]] const std::vector<Complex>& rhs() const { return rhs_; }

  /// Number of s-dependent (reactive) scatter entries.
  [[nodiscard]] std::size_t reactive_entry_count() const {
    return c_entries_.size();
  }

  /// One s-proportional stamp entry: A(row, col) += s * coefficient.  The
  /// coefficient is real for every supported element (C and L values), so
  /// the scatter is one complex-times-double multiply-add per entry.
  struct ReactiveEntry {
    std::size_t row = 0;
    std::size_t col = 0;
    double coefficient = 0.0;
  };
  /// One frequency-invariant stamp entry (kept unmerged, in stamp order,
  /// for the sparse path; the dense path uses the premerged g_dense_).
  struct StaticEntry {
    std::size_t row = 0;
    std::size_t col = 0;
    Complex value;
  };

  /// The raw stamp-order entry lists, for backends that need their own
  /// merge (e.g. a forced-dense solver past kDenseLimit).
  [[nodiscard]] const std::vector<StaticEntry>& static_entries() const {
    return g_entries_;
  }
  [[nodiscard]] const std::vector<ReactiveEntry>& reactive_entries() const {
    return c_entries_;
  }

  /// Dense combine \p a = G + s*C.  \p a is reshaped on first use and its
  /// buffer reused afterwards (zero allocations in steady state).  Only
  /// valid when size() <= kDenseLimit.
  void assemble(Complex s, linalg::Matrix<Complex>& a) const;

  /// Sparse combine into a caller-owned COO accumulator (cleared first,
  /// capacity retained).  \p coo must be size() x size().
  void assemble(Complex s, linalg::CooMatrix<Complex>& coo) const;

  /// Batched dense combine: lane l of \p out receives G + s_l*C, where
  /// s_l is lane l of the Laplace-point pack \p s.  G is broadcast into
  /// every lane and the reactive entries scattered as one
  /// pack-times-real multiply-add each — the G + s*C combine as an
  /// explicit SIMD kernel.  Uses the premerged dense G below kDenseLimit;
  /// above it the caller must supply its own merge via \p g_override
  /// (the forced-dense SweepSolver context does).
  template <typename P>
  void assemble_batch(const linalg::simd::CPack<P>& s,
                      linalg::BatchLu<P>& out,
                      const linalg::Matrix<Complex>* g_override
                      = nullptr) const {
    constexpr std::size_t kW = P::width;
    const linalg::Matrix<Complex>& g =
        g_dense_.empty() ? *g_override : g_dense_;
    FTDIAG_ASSERT(!g.empty(), "batched dense assembly needs a merged G");
    out.reshape(n_);
    for (std::size_t r = 0; r < n_; ++r) {
      const Complex* src = g.row_data(r);
      double* re = out.re_at(r, 0);
      double* im = out.im_at(r, 0);
      for (std::size_t c = 0; c < n_; ++c) {
        P::broadcast(src[c].real()).store(re + c * kW);
        P::broadcast(src[c].imag()).store(im + c * kW);
      }
    }
    for (const auto& e : c_entries_) {
      const P coef = P::broadcast(e.coefficient);
      double* re = out.re_at(e.row, e.col);
      double* im = out.im_at(e.row, e.col);
      (P::load(re) + s.re * coef).store(re);
      (P::load(im) + s.im * coef).store(im);
    }
  }

private:
  friend class MnaSystem;

  std::size_t n_ = 0;
  linalg::Matrix<Complex> g_dense_;  ///< premerged G; empty when n_ > kDenseLimit
  std::vector<StaticEntry> g_entries_;
  std::vector<ReactiveEntry> c_entries_;
  std::vector<Complex> rhs_;
};

class MnaSystem {
public:
  /// Builds the unknown map for \p circuit.  Macro op-amps are elaborated
  /// internally; the elaborated circuit is retained and queryable.
  /// \throws CircuitError if the circuit fails structural validation.
  explicit MnaSystem(const netlist::Circuit& circuit);

  /// The elaborated circuit the stamps operate on.
  [[nodiscard]] const netlist::Circuit& circuit() const { return circuit_; }

  /// Total unknown count (node voltages + branch currents).
  [[nodiscard]] std::size_t unknown_count() const { return unknown_count_; }

  /// Number of node-voltage unknowns.
  [[nodiscard]] std::size_t node_unknown_count() const {
    return circuit_.node_count() - 1;
  }

  /// Unknown index of a node id (kNoUnknown for ground).
  [[nodiscard]] std::size_t node_unknown(netlist::NodeId node) const;

  /// Unknown index of a node referenced by name.
  [[nodiscard]] std::size_t node_unknown(const std::string& node_name) const;

  /// Unknown index of the branch current of a component (voltage source,
  /// VCVS, CCVS, inductor, ideal op-amp). \throws CircuitError if the
  /// component has no branch unknown.
  [[nodiscard]] std::size_t branch_unknown(const std::string& name) const;

  /// Capture the G + s*C split of the AC system (one component traversal).
  /// The returned assembler is immutable and self-contained.
  [[nodiscard]] SweepAssembler prepare_sweep() const;

  /// Assemble the complex MNA system at Laplace point \p s with AC phasor
  /// excitation (magnitude/phase of each source's AC spec).
  void assemble_ac(Complex s, linalg::CooMatrix<Complex>& matrix,
                   std::vector<Complex>& rhs) const;

  /// Assemble the real DC system: capacitors open, inductors short,
  /// sources at their DC values.
  void assemble_dc(linalg::CooMatrix<double>& matrix,
                   std::vector<double>& rhs) const;

private:
  /// Walk every component stamp once, reporting frequency-invariant
  /// entries to \p g(row, col, T), s-proportional entries to
  /// \p c(row, col, double) and source excitations to \p rhs(row, T).
  /// Ground rows/columns are skipped before the sinks see them.  Entries
  /// are emitted in component order, g before c within one component —
  /// the exact order the one-shot assemblers historically stamped in.
  template <typename T, typename GSink, typename CSink, typename RhsSink>
  void visit_stamps(bool ac_excitation, GSink&& g, CSink&& c,
                    RhsSink&& rhs) const;

  netlist::Circuit circuit_;
  std::vector<std::size_t> node_to_unknown_;  ///< by NodeId
  std::unordered_map<std::string, std::size_t> branch_of_component_;
  std::size_t unknown_count_ = 0;
};

}  // namespace ftdiag::mna
