/// \file frequency_grid.hpp
/// \brief Frequency grids for AC sweeps (linear / logarithmic / per-decade).
#pragma once

#include <cstdint>
#include <vector>

namespace ftdiag::mna {

enum class SweepKind : std::uint8_t { kLinear, kLog, kDecade };

/// Description of an AC sweep axis.
struct FrequencyGrid {
  SweepKind kind = SweepKind::kLog;
  double start_hz = 10.0;
  double stop_hz = 100.0e3;
  /// kLinear / kLog: total number of points.  kDecade: points per decade.
  std::size_t points = 200;

  /// Materialize the grid (ascending, inclusive endpoints).
  /// \throws ftdiag::ConfigError on invalid ranges.
  [[nodiscard]] std::vector<double> frequencies() const;

  [[nodiscard]] static FrequencyGrid log_sweep(double start_hz, double stop_hz,
                                               std::size_t points) {
    return {SweepKind::kLog, start_hz, stop_hz, points};
  }
  [[nodiscard]] static FrequencyGrid linear_sweep(double start_hz,
                                                  double stop_hz,
                                                  std::size_t points) {
    return {SweepKind::kLinear, start_hz, stop_hz, points};
  }
  [[nodiscard]] static FrequencyGrid per_decade(double start_hz,
                                                double stop_hz,
                                                std::size_t points_per_decade) {
    return {SweepKind::kDecade, start_hz, stop_hz, points_per_decade};
  }
};

}  // namespace ftdiag::mna
