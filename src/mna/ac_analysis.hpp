/// \file ac_analysis.hpp
/// \brief Small-signal AC analysis (frequency sweep) on an MNA system.
///
/// The solver picks a dense or sparse complex LU automatically based on the
/// unknown count.  Results are node voltages relative to the AC excitation
/// defined by the circuit's sources (phasor superposition is handled by the
/// single linear solve).
///
/// Construction captures the G + s*C split once (MnaSystem::prepare_sweep);
/// every solve is then an O(n^2) combine + factor instead of a component
/// traversal, and sweep() reuses one workspace across the whole grid so the
/// steady-state loop performs no heap allocations on the dense path.
#pragma once

#include <string>
#include <vector>

#include "mna/frequency_grid.hpp"
#include "mna/response.hpp"
#include "mna/sweep_solver.hpp"
#include "mna/system.hpp"

namespace ftdiag::mna {

class AcAnalysis {
public:
  /// \throws CircuitError if the circuit is invalid or has no AC source.
  explicit AcAnalysis(const netlist::Circuit& circuit);

  /// Solve the full unknown vector at one frequency.
  /// \throws NumericError if the MNA matrix is singular at that frequency.
  [[nodiscard]] std::vector<Complex> solve(double frequency_hz) const;

  /// Voltage phasor of a named node at one frequency.
  [[nodiscard]] Complex node_voltage(double frequency_hz,
                                     const std::string& node) const;

  /// Sweep a node over a grid.
  [[nodiscard]] AcResponse sweep(const FrequencyGrid& grid,
                                 const std::string& node) const;

  /// Sweep a node over explicit frequencies (ascending).
  [[nodiscard]] AcResponse sweep(const std::vector<double>& frequencies_hz,
                                 const std::string& node) const;

  [[nodiscard]] const MnaSystem& system() const { return system_; }

  /// The shared G + s*C split (immutable; safe to use from any number of
  /// threads).  The simulation engine drives its zero-allocation sweep
  /// off this instead of preparing its own.
  [[nodiscard]] const SweepAssembler& sweep_assembler() const {
    return assembler_;
  }

  /// The per-circuit solver preparation (backend choice + sparse symbolic
  /// analysis), shared with any number of sweep lanes.  Built once at
  /// construction with the auto backend.
  [[nodiscard]] const std::shared_ptr<const SweepSolver::Context>&
  solver_context() const {
    return context_;
  }

  /// Unknown count above which the sparse path is used.
  static constexpr std::size_t kDenseLimit = 150;

private:
  MnaSystem system_;
  SweepAssembler assembler_;
  std::shared_ptr<const SweepSolver::Context> context_;
};

}  // namespace ftdiag::mna
