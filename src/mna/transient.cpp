#include "mna/transient.hpp"

#include <cmath>
#include <numbers>

#include "linalg/lu.hpp"
#include "mna/dc_analysis.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

using netlist::Component;
using netlist::ComponentKind;

double SourceWaveform::at(double time_s) const {
  double v = offset;
  for (const auto& tone : tones) {
    const double phase = tone.phase_deg * std::numbers::pi / 180.0;
    v += tone.amplitude *
         std::sin(2.0 * std::numbers::pi * tone.frequency_hz * time_s + phase);
  }
  return v;
}

SourceWaveform SourceWaveform::sine(double amplitude, double frequency_hz,
                                    double phase_deg, double offset) {
  SourceWaveform w;
  w.offset = offset;
  w.tones.push_back({amplitude, frequency_hz, phase_deg});
  return w;
}

SourceWaveform SourceWaveform::tone_set(
    const std::vector<double>& frequencies_hz, double amplitude) {
  SourceWaveform w;
  for (double f : frequencies_hz) w.tones.push_back({amplitude, f, 0.0});
  return w;
}

const std::vector<double>& TransientResult::node(
    const std::string& name) const {
  const auto it = node_voltages.find(name);
  if (it == node_voltages.end()) {
    throw ConfigError("node '" + name + "' was not recorded");
  }
  return it->second;
}

TransientAnalysis::TransientAnalysis(const netlist::Circuit& circuit)
    : system_(circuit) {}

TransientResult TransientAnalysis::run(
    const TransientSpec& spec, const std::vector<std::string>& nodes) const {
  if (!(spec.dt > 0.0)) throw ConfigError("transient dt must be positive");
  if (!(spec.t_stop > spec.dt)) {
    throw ConfigError("transient t_stop must exceed dt");
  }
  for (const auto& [name, waveform] : spec.waveforms) {
    (void)waveform;
    const auto& c = system_.circuit().component(name);
    if (c.kind != ComponentKind::kVoltageSource &&
        c.kind != ComponentKind::kCurrentSource) {
      throw ConfigError("waveform target '" + name +
                        "' is not an independent source");
    }
  }

  const netlist::Circuit& circuit = system_.circuit();
  const std::size_t n = system_.unknown_count();
  const double h = spec.dt;
  const bool trapezoid = spec.method == IntegrationMethod::kTrapezoidal;

  // --- constant system matrix (companion conductances included) ----------
  linalg::CooMatrix<double> matrix(n, n);
  {
    std::vector<double> dummy_rhs(n, 0.0);
    // Start from the DC stamps, then overwrite reactive elements with their
    // companion conductances.  assemble_dc stamps capacitors as open and
    // inductors with a zero-impedance branch row, so only additions needed.
    system_.assemble_dc(matrix, dummy_rhs);
  }
  for (const auto& c : circuit.components()) {
    if (c.kind == ComponentKind::kCapacitor) {
      const double geq = (trapezoid ? 2.0 : 1.0) * c.value / h;
      const std::size_t a = system_.node_unknown(c.nodes[0]);
      const std::size_t b = system_.node_unknown(c.nodes[1]);
      if (a != kNoUnknown) matrix.add(a, a, geq);
      if (b != kNoUnknown) matrix.add(b, b, geq);
      if (a != kNoUnknown && b != kNoUnknown) {
        matrix.add(a, b, -geq);
        matrix.add(b, a, -geq);
      }
    } else if (c.kind == ComponentKind::kInductor) {
      // Branch row from assemble_dc is: v_a - v_b = 0.  Add the
      // discretized back-term: v_a - v_b - (L/k) * i = rhs_history, where
      // k = h (BE) or h/2 (trapezoidal).
      const double k = trapezoid ? h / 2.0 : h;
      const std::size_t i = system_.branch_unknown(c.name);
      matrix.add(i, i, -c.value / k);
    }
  }
  const linalg::LuFactorization<double> lu(matrix.to_dense());

  // --- state --------------------------------------------------------------
  std::vector<double> x(n, 0.0);
  if (spec.start_from_dc) {
    x = DcAnalysis(circuit).solve();
  }
  auto voltage_of = [&](netlist::NodeId node,
                        const std::vector<double>& state) {
    const std::size_t u = system_.node_unknown(node);
    return u == kNoUnknown ? 0.0 : state[u];
  };

  // Capacitor branch currents (needed by the trapezoidal history term).
  std::vector<double> cap_current(circuit.component_count(), 0.0);

  const std::size_t steps =
      static_cast<std::size_t>(std::llround(spec.t_stop / h));

  TransientResult result;
  result.time_s.reserve(steps + 1);
  std::vector<std::size_t> observed;
  for (const auto& name : nodes) {
    observed.push_back(system_.node_unknown(name));
    result.node_voltages.emplace(name, std::vector<double>{});
    result.node_voltages[name].reserve(steps + 1);
  }
  auto record = [&](double t) {
    result.time_s.push_back(t);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double v = observed[i] == kNoUnknown ? 0.0 : x[observed[i]];
      result.node_voltages[nodes[i]].push_back(v);
    }
  };
  record(0.0);

  std::vector<double> rhs(n);
  std::vector<double> x_next(n);  // reused every step (no per-step allocs)
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;
    std::fill(rhs.begin(), rhs.end(), 0.0);

    std::size_t comp_idx = 0;
    for (const auto& c : circuit.components()) {
      const std::size_t my_idx = comp_idx++;
      switch (c.kind) {
        case ComponentKind::kVoltageSource: {
          const std::size_t i = system_.branch_unknown(c.name);
          const auto it = spec.waveforms.find(c.name);
          rhs[i] += it != spec.waveforms.end() ? it->second.at(t) : c.dc;
          break;
        }
        case ComponentKind::kCurrentSource: {
          const auto it = spec.waveforms.find(c.name);
          const double value =
              it != spec.waveforms.end() ? it->second.at(t) : c.dc;
          const std::size_t a = system_.node_unknown(c.nodes[0]);
          const std::size_t b = system_.node_unknown(c.nodes[1]);
          if (a != kNoUnknown) rhs[a] -= value;
          if (b != kNoUnknown) rhs[b] += value;
          break;
        }
        case ComponentKind::kCapacitor: {
          const double v_prev =
              voltage_of(c.nodes[0], x) - voltage_of(c.nodes[1], x);
          const double geq = (trapezoid ? 2.0 : 1.0) * c.value / h;
          const double ieq =
              trapezoid ? geq * v_prev + cap_current[my_idx] : geq * v_prev;
          const std::size_t a = system_.node_unknown(c.nodes[0]);
          const std::size_t b = system_.node_unknown(c.nodes[1]);
          if (a != kNoUnknown) rhs[a] += ieq;
          if (b != kNoUnknown) rhs[b] -= ieq;
          break;
        }
        case ComponentKind::kInductor: {
          const double k = trapezoid ? h / 2.0 : h;
          const std::size_t i = system_.branch_unknown(c.name);
          const double i_prev = x[i];
          const double v_prev =
              voltage_of(c.nodes[0], x) - voltage_of(c.nodes[1], x);
          // (L/k) * i_{n+1} - (v_a - v_b) = (L/k) i_n + [trap] v_n
          // matches the matrix row sign convention (row: v_a - v_b - (L/k) i).
          double hist = -(c.value / k) * i_prev;
          if (trapezoid) hist -= v_prev;
          rhs[i] += hist;
          break;
        }
        default:
          break;  // static elements contribute nothing per step
      }
    }

    lu.solve_into(rhs, x_next);

    // Update capacitor currents for the trapezoidal history.
    if (trapezoid) {
      comp_idx = 0;
      for (const auto& c : circuit.components()) {
        const std::size_t my_idx = comp_idx++;
        if (c.kind != ComponentKind::kCapacitor) continue;
        const double v_prev =
            voltage_of(c.nodes[0], x) - voltage_of(c.nodes[1], x);
        const double v_next =
            voltage_of(c.nodes[0], x_next) - voltage_of(c.nodes[1], x_next);
        const double geq = 2.0 * c.value / h;
        cap_current[my_idx] =
            geq * (v_next - v_prev) - cap_current[my_idx];
      }
    }
    std::swap(x, x_next);
    record(t);
  }
  return result;
}

}  // namespace ftdiag::mna
