#include "mna/ac_analysis.hpp"

#include <algorithm>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

namespace {

bool has_ac_source(const netlist::Circuit& circuit) {
  for (const auto& c : circuit.components()) {
    if ((c.kind == netlist::ComponentKind::kVoltageSource ||
         c.kind == netlist::ComponentKind::kCurrentSource) &&
        c.ac_magnitude != 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace

AcAnalysis::AcAnalysis(const netlist::Circuit& circuit) : system_(circuit) {
  if (!has_ac_source(system_.circuit())) {
    throw CircuitError(
        "AC analysis requires at least one source with a non-zero AC "
        "magnitude");
  }
}

std::vector<Complex> AcAnalysis::solve(double frequency_hz) const {
  const std::size_t n = system_.unknown_count();
  linalg::CooMatrix<Complex> matrix(n, n);
  std::vector<Complex> rhs(n, Complex{});
  system_.assemble_ac(linalg::s_of_hz(frequency_hz), matrix, rhs);
  if (n <= kDenseLimit) {
    return linalg::LuFactorization<Complex>(matrix.to_dense()).solve(rhs);
  }
  return linalg::SparseLu<Complex>(matrix).solve(rhs);
}

Complex AcAnalysis::node_voltage(double frequency_hz,
                                 const std::string& node) const {
  const std::size_t unknown = system_.node_unknown(node);
  if (unknown == kNoUnknown) return Complex{};  // ground
  return solve(frequency_hz)[unknown];
}

AcResponse AcAnalysis::sweep(const FrequencyGrid& grid,
                             const std::string& node) const {
  return sweep(grid.frequencies(), node);
}

AcResponse AcAnalysis::sweep(const std::vector<double>& frequencies_hz,
                             const std::string& node) const {
  FTDIAG_ASSERT(std::is_sorted(frequencies_hz.begin(), frequencies_hz.end()),
                "sweep frequencies must ascend");
  const std::size_t unknown = system_.node_unknown(node);
  std::vector<Complex> values;
  values.reserve(frequencies_hz.size());
  for (double f : frequencies_hz) {
    if (unknown == kNoUnknown) {
      values.emplace_back(0.0, 0.0);
    } else {
      values.push_back(solve(f)[unknown]);
    }
  }
  return AcResponse(frequencies_hz, std::move(values));
}

}  // namespace ftdiag::mna
