#include "mna/ac_analysis.hpp"

#include <algorithm>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

namespace {

bool has_ac_source(const netlist::Circuit& circuit) {
  for (const auto& c : circuit.components()) {
    if ((c.kind == netlist::ComponentKind::kVoltageSource ||
         c.kind == netlist::ComponentKind::kCurrentSource) &&
        c.ac_magnitude != 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace

static_assert(SweepAssembler::kDenseLimit == AcAnalysis::kDenseLimit,
              "the sweep assembler and the AC analysis must agree on where "
              "the dense path ends");

AcAnalysis::AcAnalysis(const netlist::Circuit& circuit)
    : system_(circuit),
      assembler_(system_.prepare_sweep()),
      context_(SweepSolver::analyze(assembler_, SolverBackend::kAuto)) {
  if (!has_ac_source(system_.circuit())) {
    throw CircuitError(
        "AC analysis requires at least one source with a non-zero AC "
        "magnitude");
  }
}

std::vector<Complex> AcAnalysis::solve(double frequency_hz) const {
  const std::size_t n = system_.unknown_count();
  SweepSolver solver(assembler_, context_);
  solver.factor(linalg::s_of_hz(frequency_hz));
  std::vector<Complex> x(n);
  solver.solve_into(assembler_.rhs(), x);
  return x;
}

Complex AcAnalysis::node_voltage(double frequency_hz,
                                 const std::string& node) const {
  const std::size_t unknown = system_.node_unknown(node);
  if (unknown == kNoUnknown) return Complex{};  // ground
  return solve(frequency_hz)[unknown];
}

AcResponse AcAnalysis::sweep(const FrequencyGrid& grid,
                             const std::string& node) const {
  return sweep(grid.frequencies(), node);
}

AcResponse AcAnalysis::sweep(const std::vector<double>& frequencies_hz,
                             const std::string& node) const {
  FTDIAG_ASSERT(std::is_sorted(frequencies_hz.begin(), frequencies_hz.end()),
                "sweep frequencies must ascend");
  const std::size_t n = system_.unknown_count();
  const std::size_t unknown = system_.node_unknown(node);
  std::vector<Complex> values;
  values.reserve(frequencies_hz.size());
  if (unknown == kNoUnknown) {
    values.assign(frequencies_hz.size(), Complex{});
    return AcResponse(frequencies_hz, std::move(values));
  }
  // One solver for the whole grid: on the dense backend the matrix buffer
  // ping-pongs between the assembler and the factorization, on the sparse
  // backend the symbolic analysis is refilled per frequency — either way
  // the steady-state loop allocates nothing.  Operation-for-operation each
  // point is solve(), which keeps sweeps bit-identical to point solves.
  SweepSolver solver(assembler_, context_);
  std::vector<Complex> x(n);
  for (double f : frequencies_hz) {
    solver.factor(linalg::s_of_hz(f));
    solver.solve_into(assembler_.rhs(), x);
    values.push_back(x[unknown]);
  }
  return AcResponse(frequencies_hz, std::move(values));
}

}  // namespace ftdiag::mna
