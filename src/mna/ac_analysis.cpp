#include "mna/ac_analysis.hpp"

#include <algorithm>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

namespace {

bool has_ac_source(const netlist::Circuit& circuit) {
  for (const auto& c : circuit.components()) {
    if ((c.kind == netlist::ComponentKind::kVoltageSource ||
         c.kind == netlist::ComponentKind::kCurrentSource) &&
        c.ac_magnitude != 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace

static_assert(SweepAssembler::kDenseLimit == AcAnalysis::kDenseLimit,
              "the sweep assembler and the AC analysis must agree on where "
              "the dense path ends");

AcAnalysis::AcAnalysis(const netlist::Circuit& circuit)
    : system_(circuit), assembler_(system_.prepare_sweep()) {
  if (!has_ac_source(system_.circuit())) {
    throw CircuitError(
        "AC analysis requires at least one source with a non-zero AC "
        "magnitude");
  }
}

std::vector<Complex> AcAnalysis::solve(double frequency_hz) const {
  const std::size_t n = system_.unknown_count();
  const Complex s = linalg::s_of_hz(frequency_hz);
  if (n <= kDenseLimit) {
    linalg::Matrix<Complex> a;
    assembler_.assemble(s, a);
    linalg::LuFactorization<Complex> lu;
    lu.factor_in_place(a);
    std::vector<Complex> x(n);
    lu.solve_into(assembler_.rhs(), x);
    return x;
  }
  linalg::CooMatrix<Complex> coo(n, n);
  assembler_.assemble(s, coo);
  return linalg::SparseLu<Complex>(coo).solve(assembler_.rhs());
}

Complex AcAnalysis::node_voltage(double frequency_hz,
                                 const std::string& node) const {
  const std::size_t unknown = system_.node_unknown(node);
  if (unknown == kNoUnknown) return Complex{};  // ground
  return solve(frequency_hz)[unknown];
}

AcResponse AcAnalysis::sweep(const FrequencyGrid& grid,
                             const std::string& node) const {
  return sweep(grid.frequencies(), node);
}

AcResponse AcAnalysis::sweep(const std::vector<double>& frequencies_hz,
                             const std::string& node) const {
  FTDIAG_ASSERT(std::is_sorted(frequencies_hz.begin(), frequencies_hz.end()),
                "sweep frequencies must ascend");
  const std::size_t n = system_.unknown_count();
  const std::size_t unknown = system_.node_unknown(node);
  std::vector<Complex> values;
  values.reserve(frequencies_hz.size());
  if (unknown == kNoUnknown) {
    values.assign(frequencies_hz.size(), Complex{});
    return AcResponse(frequencies_hz, std::move(values));
  }
  if (n <= kDenseLimit) {
    // One workspace for the whole grid: the matrix buffer ping-pongs
    // between the assembler and the factorization, so the steady-state
    // loop allocates nothing.  Operation-for-operation this is solve(),
    // which keeps the sweep bit-identical to point solves.
    linalg::Matrix<Complex> a;
    linalg::LuFactorization<Complex> lu;
    std::vector<Complex> x(n);
    for (double f : frequencies_hz) {
      assembler_.assemble(linalg::s_of_hz(f), a);
      lu.factor_in_place(a);
      lu.solve_into(assembler_.rhs(), x);
      values.push_back(x[unknown]);
    }
    return AcResponse(frequencies_hz, std::move(values));
  }
  linalg::CooMatrix<Complex> coo(n, n);
  for (double f : frequencies_hz) {
    assembler_.assemble(linalg::s_of_hz(f), coo);
    values.push_back(
        linalg::SparseLu<Complex>(coo).solve(assembler_.rhs())[unknown]);
  }
  return AcResponse(frequencies_hz, std::move(values));
}

}  // namespace ftdiag::mna
