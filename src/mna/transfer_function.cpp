#include "mna/transfer_function.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::mna {

namespace {

/// Bisect between fa < fb for |H| in dB equal to target_db.
double bisect_crossing(const AcResponse& response, double fa, double fb,
                       double target_db) {
  double lo = fa, hi = fb;
  const bool descending = response.magnitude_db_at(lo) > target_db;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric midpoint
    const double db = response.magnitude_db_at(mid);
    const bool above = db > target_db;
    if (above == descending) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

}  // namespace

std::optional<double> find_crossing_db(const AcResponse& response,
                                       double ref_db, double drop_db) {
  FTDIAG_ASSERT(!response.empty(), "crossing search on empty response");
  const double target = ref_db - drop_db;
  for (std::size_t i = 1; i < response.size(); ++i) {
    const double a = response.magnitude_db(i - 1);
    const double b = response.magnitude_db(i);
    if ((a > target && b <= target) || (a <= target && b > target)) {
      return bisect_crossing(response, response.frequency(i - 1),
                             response.frequency(i), target);
    }
  }
  return std::nullopt;
}

LowPassSummary measure_lowpass(const AcResponse& response) {
  FTDIAG_ASSERT(!response.empty(), "measure_lowpass on empty response");
  LowPassSummary s;
  s.dc_gain = response.magnitude(0);
  s.dc_gain_db = response.magnitude_db(0);
  s.stop_gain_db = response.magnitude_db(response.size() - 1);
  const auto cutoff = find_crossing_db(response, s.dc_gain_db, 3.0103);
  s.f_3db_hz = cutoff.value_or(0.0);
  return s;
}

BandPassSummary measure_bandpass(const AcResponse& response) {
  FTDIAG_ASSERT(!response.empty(), "measure_bandpass on empty response");
  BandPassSummary s;
  const std::size_t peak = response.peak_index();
  s.f_peak_hz = response.frequency(peak);
  s.peak_gain = response.magnitude(peak);
  const double peak_db = response.magnitude_db(peak);
  const double target = peak_db - 3.0103;

  // Search downward from the peak for the lower half-power point.
  double f_lo = 0.0, f_hi = 0.0;
  for (std::size_t i = peak; i-- > 0;) {
    if (response.magnitude_db(i) <= target) {
      f_lo = bisect_crossing(response, response.frequency(i),
                             response.frequency(i + 1), target);
      break;
    }
  }
  for (std::size_t i = peak + 1; i < response.size(); ++i) {
    if (response.magnitude_db(i) <= target) {
      f_hi = bisect_crossing(response, response.frequency(i - 1),
                             response.frequency(i), target);
      break;
    }
  }
  if (f_lo > 0.0 && f_hi > 0.0) {
    s.bandwidth_hz = f_hi - f_lo;
    s.q = s.bandwidth_hz > 0.0 ? s.f_peak_hz / s.bandwidth_hz : 0.0;
  }
  return s;
}

NotchSummary measure_notch(const AcResponse& response) {
  FTDIAG_ASSERT(!response.empty(), "measure_notch on empty response");
  std::size_t valley = 0;
  for (std::size_t i = 1; i < response.size(); ++i) {
    if (response.magnitude(i) < response.magnitude(valley)) valley = i;
  }
  NotchSummary s;
  s.f_notch_hz = response.frequency(valley);
  const double passband_db =
      std::max(response.magnitude_db(0), response.magnitude_db(response.size() - 1));
  s.depth_db = response.magnitude_db(valley) - passband_db;
  return s;
}

}  // namespace ftdiag::mna
