/// \file transient.hpp
/// \brief Linear transient analysis with companion models.
///
/// Supports multi-tone source waveforms — exactly the shape of the paper's
/// test vectors (a sum of selected sinusoids), which lets examples apply an
/// optimized frequency pair as a physical time-domain stimulus.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mna/system.hpp"

namespace ftdiag::mna {

/// One sinusoidal component of a stimulus.
struct Tone {
  double amplitude = 1.0;
  double frequency_hz = 1.0e3;
  double phase_deg = 0.0;
};

/// offset + sum of tones, evaluated at time t.
struct SourceWaveform {
  double offset = 0.0;
  std::vector<Tone> tones;

  [[nodiscard]] double at(double time_s) const;

  /// Convenience: a single sine.
  [[nodiscard]] static SourceWaveform sine(double amplitude,
                                           double frequency_hz,
                                           double phase_deg = 0.0,
                                           double offset = 0.0);

  /// Convenience: the paper's test vector — unit-amplitude tones at the
  /// given frequencies.
  [[nodiscard]] static SourceWaveform tone_set(
      const std::vector<double>& frequencies_hz, double amplitude = 1.0);
};

enum class IntegrationMethod : std::uint8_t { kBackwardEuler, kTrapezoidal };

struct TransientSpec {
  double t_stop = 1.0e-3;
  double dt = 1.0e-6;
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  /// Waveforms by source name; sources not listed hold their DC value.
  std::map<std::string, SourceWaveform> waveforms;
  /// Start from the DC operating point (otherwise from zero state).
  bool start_from_dc = true;
};

/// Sampled result: time axis plus one waveform per observed node.
struct TransientResult {
  std::vector<double> time_s;
  std::map<std::string, std::vector<double>> node_voltages;

  [[nodiscard]] const std::vector<double>& node(const std::string& name) const;
};

class TransientAnalysis {
public:
  /// \throws CircuitError if the circuit fails validation.
  explicit TransientAnalysis(const netlist::Circuit& circuit);

  /// Run the simulation, recording the listed nodes at every step.
  /// \throws ConfigError on a bad spec, NumericError on a singular system.
  [[nodiscard]] TransientResult run(const TransientSpec& spec,
                                    const std::vector<std::string>& nodes) const;

private:
  MnaSystem system_;
};

}  // namespace ftdiag::mna
