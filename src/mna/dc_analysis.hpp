/// \file dc_analysis.hpp
/// \brief DC operating point of a linear network (capacitors open,
/// inductors short, sources at their DC values).
#pragma once

#include <string>
#include <vector>

#include "mna/system.hpp"

namespace ftdiag::mna {

class DcAnalysis {
public:
  /// \throws CircuitError if the circuit fails validation.
  explicit DcAnalysis(const netlist::Circuit& circuit);

  /// Solve the DC unknown vector (node voltages + branch currents).
  /// \throws NumericError on a singular system (e.g. a floating node
  /// isolated by capacitors).
  [[nodiscard]] std::vector<double> solve() const;

  /// DC voltage of a named node.
  [[nodiscard]] double node_voltage(const std::string& node) const;

  /// DC branch current of a component with a current unknown
  /// (voltage sources, inductors, ...).
  [[nodiscard]] double branch_current(const std::string& component) const;

  [[nodiscard]] const MnaSystem& system() const { return system_; }

private:
  MnaSystem system_;
};

}  // namespace ftdiag::mna
