#include "mna/dc_analysis.hpp"

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {

DcAnalysis::DcAnalysis(const netlist::Circuit& circuit) : system_(circuit) {}

std::vector<double> DcAnalysis::solve() const {
  const std::size_t n = system_.unknown_count();
  linalg::CooMatrix<double> matrix(n, n);
  std::vector<double> rhs(n, 0.0);
  system_.assemble_dc(matrix, rhs);
  // Same dense/sparse auto-selection boundary as the AC path — one shared
  // constant instead of a drifting hardcoded copy.
  if (n <= SweepAssembler::kDenseLimit) {
    return linalg::LuFactorization<double>(matrix.to_dense()).solve(rhs);
  }
  return linalg::SparseLu<double>(matrix).solve(rhs);
}

double DcAnalysis::node_voltage(const std::string& node) const {
  const std::size_t unknown = system_.node_unknown(node);
  if (unknown == kNoUnknown) return 0.0;
  return solve()[unknown];
}

double DcAnalysis::branch_current(const std::string& component) const {
  return solve()[system_.branch_unknown(component)];
}

}  // namespace ftdiag::mna
