#include "mna/response.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::mna {

AcResponse::AcResponse(std::vector<double> frequencies_hz,
                       std::vector<Complex> values)
    : freq_hz_(std::move(frequencies_hz)), values_(std::move(values)) {
  FTDIAG_ASSERT(freq_hz_.size() == values_.size(),
                "response frequency/value length mismatch");
  FTDIAG_ASSERT(std::is_sorted(freq_hz_.begin(), freq_hz_.end()),
                "response frequencies must ascend");
  re_.resize(values_.size());
  im_.resize(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    re_[i] = values_[i].real();
    im_[i] = values_[i].imag();
  }
}

AcResponse::AcResponse(std::vector<double> frequencies_hz,
                       linalg::simd::AlignedVector re,
                       linalg::simd::AlignedVector im)
    : freq_hz_(std::move(frequencies_hz)),
      re_(std::move(re)),
      im_(std::move(im)) {
  FTDIAG_ASSERT(freq_hz_.size() == re_.size() && re_.size() == im_.size(),
                "response frequency/plane length mismatch");
  FTDIAG_ASSERT(std::is_sorted(freq_hz_.begin(), freq_hz_.end()),
                "response frequencies must ascend");
  values_.resize(re_.size());
  for (std::size_t i = 0; i < re_.size(); ++i) {
    values_[i] = Complex(re_[i], im_[i]);
  }
}

double AcResponse::magnitude(std::size_t i) const {
  return std::abs(values_[i]);
}

double AcResponse::magnitude_db(std::size_t i) const {
  return linalg::to_db(values_[i]);
}

double AcResponse::phase_deg(std::size_t i) const {
  return linalg::phase_deg(values_[i]);
}

AcResponse::GridPosition AcResponse::locate(double frequency_hz) const {
  if (empty()) throw NumericError("interpolation on an empty response");
  if (frequency_hz <= freq_hz_.front()) return {0, 0, 0.0};
  if (frequency_hz >= freq_hz_.back()) {
    return {freq_hz_.size() - 1, freq_hz_.size() - 1, 0.0};
  }

  const auto upper =
      std::upper_bound(freq_hz_.begin(), freq_hz_.end(), frequency_hz);
  const std::size_t hi = static_cast<std::size_t>(upper - freq_hz_.begin());
  const std::size_t lo = hi - 1;

  const double f_lo = freq_hz_[lo];
  const double f_hi = freq_hz_[hi];
  // Interpolation parameter in log-frequency (grids are log-spaced); guard
  // against non-positive frequencies on linear grids.
  double t;
  if (f_lo > 0.0 && f_hi > 0.0) {
    t = (std::log(frequency_hz) - std::log(f_lo)) /
        (std::log(f_hi) - std::log(f_lo));
  } else {
    t = (frequency_hz - f_lo) / (f_hi - f_lo);
  }
  return {lo, hi, t};
}

Complex AcResponse::interpolate(double frequency_hz) const {
  return interpolate(locate(frequency_hz));
}

Complex AcResponse::interpolate(const GridPosition& position) const {
  if (empty()) throw NumericError("interpolation on an empty response");
  if (position.lo == position.hi) return values_[position.lo];
  const double t = position.t;

  const Complex a = values_[position.lo];
  const Complex b = values_[position.hi];
  const double mag_a = std::abs(a);
  const double mag_b = std::abs(b);
  // Magnitude: geometric interpolation when both are positive (straight
  // line on a Bode plot), linear otherwise.
  double mag;
  if (mag_a > 0.0 && mag_b > 0.0) {
    mag = std::exp((1.0 - t) * std::log(mag_a) + t * std::log(mag_b));
  } else {
    mag = (1.0 - t) * mag_a + t * mag_b;
  }
  // Phase: shortest-arc linear interpolation.
  const double ph_a = std::arg(a);
  double ph_b = std::arg(b);
  constexpr double kPi = 3.14159265358979323846;
  while (ph_b - ph_a > kPi) ph_b -= 2.0 * kPi;
  while (ph_b - ph_a < -kPi) ph_b += 2.0 * kPi;
  const double ph = (1.0 - t) * ph_a + t * ph_b;
  return Complex(mag * std::cos(ph), mag * std::sin(ph));
}

double AcResponse::magnitude_at(double frequency_hz) const {
  return std::abs(interpolate(frequency_hz));
}

double AcResponse::magnitude_db_at(double frequency_hz) const {
  return linalg::to_db(interpolate(frequency_hz));
}

double AcResponse::max_deviation(const AcResponse& other) const {
  if (freq_hz_ != other.freq_hz_) {
    throw NumericError("max_deviation requires identical frequency grids");
  }
  double max_dev = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    max_dev = std::max(max_dev, std::abs(values_[i] - other.values_[i]));
  }
  return max_dev;
}

std::size_t AcResponse::peak_index() const {
  FTDIAG_ASSERT(!empty(), "peak of an empty response");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (std::abs(values_[i]) > std::abs(values_[best])) best = i;
  }
  return best;
}

}  // namespace ftdiag::mna
