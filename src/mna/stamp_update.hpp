/// \file stamp_update.hpp
/// \brief Rank-1 description of how scaling one component value perturbs
/// the assembled AC matrix.
///
/// A parametric fault multiplies one component value by m.  For the kinds
/// whose stamp is a single dyad (R, C, L) the perturbed matrix is
///
///   A(m) = A + coefficient(s, m) * u * v^T
///
/// with structural vectors u, v fixed by the component's unknowns and all
/// value/frequency dependence in the scalar coefficient.  The simulation
/// engine solves the faulty systems from the golden LU factorization via
/// Sherman–Morrison (linalg/rank1.hpp) instead of refactorizing per fault.
/// Kinds that touch more than one independent stamp entry (macro op-amp
/// expansions, controlled sources if ever made faultable) return
/// std::nullopt and take the full-refactorization path.
#pragma once

#include <optional>
#include <string>

#include "linalg/rank1.hpp"
#include "mna/system.hpp"

namespace ftdiag::mna {

/// How the scalar coefficient depends on value, multiplier and s.
enum class StampCoefficientKind : std::uint8_t {
  kConductance,  ///< resistor: 1/(m*value) - 1/value, frequency-independent
  kSusceptance,  ///< capacitor: s * value * (m - 1)
  kImpedance,    ///< inductor branch row: -s * value * (m - 1)
};

/// dA(s, m) = coefficient(s, m) * u * v^T for one component.
struct Rank1StampUpdate {
  linalg::SparseVector<Complex> u;  ///< structural column (+/-1 entries)
  linalg::SparseVector<Complex> v;  ///< structural row (+/-1 entries)
  StampCoefficientKind kind = StampCoefficientKind::kConductance;
  double nominal = 0.0;  ///< the component's golden value

  /// The scalar in front of u*v^T at Laplace point \p s when the value is
  /// scaled by \p multiplier.
  [[nodiscard]] Complex coefficient(Complex s, double multiplier) const;
};

/// The rank-1 update of scaling \p component_name in \p system's
/// (elaborated) circuit, or std::nullopt when the component is absent or
/// its stamp is not a single dyad.  \p system must be built from the
/// golden circuit; the returned indices refer to its unknown numbering.
[[nodiscard]] std::optional<Rank1StampUpdate> rank1_stamp_update(
    const MnaSystem& system, const std::string& component_name);

}  // namespace ftdiag::mna
