#include "mna/stamp_update.hpp"

namespace ftdiag::mna {

Complex Rank1StampUpdate::coefficient(Complex s, double multiplier) const {
  switch (kind) {
    case StampCoefficientKind::kConductance:
      return Complex(1.0 / (multiplier * nominal) - 1.0 / nominal, 0.0);
    case StampCoefficientKind::kSusceptance:
      return s * (nominal * (multiplier - 1.0));
    case StampCoefficientKind::kImpedance:
      return -s * (nominal * (multiplier - 1.0));
  }
  return Complex{};
}

std::optional<Rank1StampUpdate> rank1_stamp_update(
    const MnaSystem& system, const std::string& component_name) {
  const netlist::Circuit& circuit = system.circuit();
  if (!circuit.has_component(component_name)) return std::nullopt;
  const netlist::Component& component = circuit.component(component_name);

  Rank1StampUpdate update;
  update.nominal = component.value;

  switch (component.kind) {
    case netlist::ComponentKind::kResistor:
    case netlist::ComponentKind::kCapacitor: {
      // Two-terminal admittance stamp: u = v = e_a - e_b (ground dropped).
      const std::size_t a = system.node_unknown(component.nodes[0]);
      const std::size_t b = system.node_unknown(component.nodes[1]);
      if (a != kNoUnknown) update.u.add(a, Complex{1.0, 0.0});
      if (b != kNoUnknown) update.u.add(b, Complex{-1.0, 0.0});
      update.v = update.u;
      update.kind = component.kind == netlist::ComponentKind::kResistor
                        ? StampCoefficientKind::kConductance
                        : StampCoefficientKind::kSusceptance;
      return update;
    }
    case netlist::ComponentKind::kInductor: {
      // Only the branch row's (i, i) entry -s*L depends on the value.
      const std::size_t i = system.branch_unknown(component.name);
      update.u.add(i, Complex{1.0, 0.0});
      update.v = update.u;
      update.kind = StampCoefficientKind::kImpedance;
      return update;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace ftdiag::mna
