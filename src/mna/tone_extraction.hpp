/// \file tone_extraction.hpp
/// \brief Single-bin DFT (Goertzel-style) tone extraction from sampled
/// waveforms.
///
/// Closes the loop between the AC-domain test vector and a physical
/// measurement: the optimized frequencies are applied as a multi-tone
/// stimulus (mna/transient.hpp), the output waveform is recorded, and the
/// per-tone complex amplitude is recovered here — the |H(f_i)| samples the
/// trajectory method needs, obtained the way a bench instrument would.
#pragma once

#include <complex>
#include <vector>

namespace ftdiag::mna {

/// Result of extracting one tone.
struct ToneEstimate {
  double frequency_hz = 0.0;
  std::complex<double> phasor;  ///< amplitude*e^{j*phase} of the sine

  /// Peak amplitude of the tone.
  [[nodiscard]] double amplitude() const { return std::abs(phasor); }
  [[nodiscard]] double phase_deg() const;
};

/// Extract the complex amplitude of a sine at \p frequency_hz from
/// uniformly sampled data.
///
/// The correlation window is the largest whole number of periods that fits
/// inside the final \p window_fraction of the record (skipping the initial
/// transient), which keeps spectral leakage from partial periods out of
/// the estimate.
///
/// \param time_s ascending, uniformly spaced sample times.
/// \param samples waveform values (same length).
/// \param window_fraction fraction of the record tail to analyse (0, 1].
/// \throws ConfigError on bad inputs (too few samples, no whole period in
/// the window, non-uniform time base).
[[nodiscard]] ToneEstimate extract_tone(const std::vector<double>& time_s,
                                        const std::vector<double>& samples,
                                        double frequency_hz,
                                        double window_fraction = 0.5);

/// Extract several tones from the same record.
[[nodiscard]] std::vector<ToneEstimate> extract_tones(
    const std::vector<double>& time_s, const std::vector<double>& samples,
    const std::vector<double>& frequencies_hz, double window_fraction = 0.5);

}  // namespace ftdiag::mna
