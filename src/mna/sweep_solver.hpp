/// \file sweep_solver.hpp
/// \brief Backend-neutral per-frequency factor/solve seam for AC sweeps.
///
/// Every sweep consumer used to hand-roll the dense-vs-sparse decision and
/// its workspaces; worse, only the dense backend could reuse factorization
/// work across a sweep, so sparse-sized circuits fell off the fast path
/// entirely.  `SweepSolver` hides the backend behind one contract:
///
///   - `analyze()` builds an immutable per-circuit Context ONCE: it picks
///     the backend (by unknown count, or forced) and runs the expensive
///     value-independent preparation — the sparse symbolic analysis at a
///     fixed canonical reference point, or the dense premerge of G when
///     the backend is forced dense past the assembler's premerge limit.
///   - each sweep lane owns one `SweepSolver` (cheap: sparse clones share
///     the symbolic phase) and calls `factor(s)` + `solve_into()` per
///     frequency with zero steady-state allocations on both backends.
///
/// Determinism: the Context depends only on the circuit (and the fixed
/// reference point), never on which frequencies were solved first or how
/// many threads are sweeping — so dictionaries built through this seam are
/// bit-identical for any thread count.  When the frozen pivot order breaks
/// down numerically at some point, that lane falls back to a fresh local
/// analysis *for that point only*; the shared Context is never mutated.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "linalg/batch_lu.hpp"
#include "linalg/lu.hpp"
#include "linalg/simd.hpp"
#include "linalg/sparse_factorization.hpp"
#include "mna/system.hpp"

namespace ftdiag::mna {

/// Which factorization backend a sweep runs on.
enum class SolverBackend {
  kAuto,    ///< dense up to SweepAssembler::kDenseLimit, sparse beyond
  kDense,   ///< dense LU regardless of size (benchmark baseline)
  kSparse,  ///< pattern-reusing sparse LU regardless of size
};

class SweepSolver {
public:
  /// Immutable per-circuit preparation shared by all lanes of a sweep.
  struct Context {
    bool sparse = false;
    /// Sparse backend: factorization analyzed at the canonical reference
    /// point, cloned per lane.  May be unanalyzed when the reference-point
    /// analysis failed (e.g. singular there); lanes then run a fresh
    /// analysis per frequency instead of reusing a pattern.
    linalg::SparseFactorization<Complex> prototype;
    /// Forced-dense backend past the assembler's premerge limit: G merged
    /// densely here (the assembler only premerges up to kDenseLimit).
    linalg::Matrix<Complex> g_dense;
  };

  /// The fixed Laplace reference point (in Hz) of the symbolic analysis.
  /// Any positive frequency sees the full G + s*C sparsity union (real
  /// static and imaginary reactive parts cannot cancel), so the analyzed
  /// pattern covers every sweep point; the value only influences the
  /// frozen pivot magnitudes.
  static constexpr double kReferenceHz = 1e3;

  /// One-time per-circuit preparation.  Never throws on numeric trouble —
  /// a failed sparse reference analysis degrades to per-point analysis.
  [[nodiscard]] static std::shared_ptr<const Context> analyze(
      const SweepAssembler& assembler, SolverBackend backend,
      double reference_hz = kReferenceHz);

  /// A per-lane solver over \p assembler with shared \p context.  The
  /// assembler must outlive the solver; the context is retained.
  SweepSolver(const SweepAssembler& assembler,
              std::shared_ptr<const Context> context);

  /// Assemble and factor A(s); zero allocations in steady state on both
  /// backends.  \throws NumericError if A(s) is singular.
  void factor(Complex s);

  /// Solve A x = b with the current factorization (allocation-free).
  void solve_into(std::span<const Complex> b, std::span<Complex> x) const;

  /// Blocked multi-RHS solve A X = B; \p x is reshaped to b's shape.
  void solve_into(const linalg::Matrix<Complex>& b,
                  linalg::Matrix<Complex>& x) const;

  [[nodiscard]] bool sparse() const { return context_->sparse; }
  [[nodiscard]] std::size_t size() const { return assembler_->size(); }

private:
  const SweepAssembler* assembler_;
  std::shared_ptr<const Context> context_;

  // Dense backend state.
  linalg::Matrix<Complex> a_;
  linalg::LuFactorization<Complex> lu_;

  // Sparse backend state.  `reused_` clones the context prototype and is
  // refilled per frequency; `fresh_` holds a point-local full analysis
  // when the frozen pivot order is numerically unusable at that point.
  linalg::CooMatrix<Complex> coo_{0, 0};
  linalg::SparseFactorization<Complex> reused_;
  linalg::SparseFactorization<Complex> fresh_;
  bool use_fresh_ = false;
};

/// SweepSolver's batched sibling: factor/solve P::width frequencies at
/// once, one frequency per SIMD lane, against the same immutable Context.
///
/// On the dense backend the batch goes through the SweepAssembler's
/// SIMD G + s*C combine and linalg::BatchLu, so pivot search, elimination
/// and the blocked multi-RHS panels all run as wide arithmetic.  On the
/// sparse backend (pattern-reusing factorization, value-dependent fill
/// loops that do not batch) each lane runs its own scalar SweepSolver —
/// results there are bit-identical to the scalar sweep, and callers get
/// one uniform pack-shaped output either way.
///
/// Outputs are split re/im planes of layout [slot * width + lane]: lane l
/// of pack slot i holds frequency l's solution component i, i.e. the
/// frequency-major SoA form the Sherman–Morrison sweep consumes directly
/// (no transpose pass).
///
/// Determinism: which frequencies share a batch is fixed by the caller's
/// batching (width-determined, never thread-determined), and lanes are
/// arithmetically independent, so results are bit-stable across thread
/// counts and identical for ScalarPack/NativePack instantiations up to
/// multiply-add contraction.
template <typename P>
class BatchSweepSolver {
public:
  static constexpr std::size_t kWidth = P::width;

  BatchSweepSolver(const SweepAssembler& assembler,
                   std::shared_ptr<const SweepSolver::Context> context)
      : assembler_(&assembler), context_(std::move(context)) {
    FTDIAG_ASSERT(context_ != nullptr,
                  "batched sweep solver needs an analyzed context");
    if (context_->sparse) {
      lanes_.reserve(kWidth);
      for (std::size_t lane = 0; lane < kWidth; ++lane) {
        lanes_.emplace_back(assembler, context_);
      }
    }
  }

  /// Assemble and factor A(s_l) for every lane; \p s must hold kWidth
  /// Laplace points (callers pad short tails by replicating the last
  /// frequency).  \throws NumericError if any lane is singular.
  void factor(std::span<const Complex> s) {
    FTDIAG_ASSERT(s.size() == kWidth, "batched factor needs kWidth points");
    if (!context_->sparse) {
      linalg::simd::CPack<P> pack;
      for (std::size_t lane = 0; lane < kWidth; ++lane) {
        s_re_[lane] = s[lane].real();
        s_im_[lane] = s[lane].imag();
      }
      pack.re = P::load(s_re_.data());
      pack.im = P::load(s_im_.data());
      assembler_->assemble_batch(
          pack, lu_, context_->g_dense.empty() ? nullptr : &context_->g_dense);
      lu_.factor();
      return;
    }
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      lanes_[lane].factor(s[lane]);
    }
  }

  /// Solve every lane against the shared right-hand side \p b into split
  /// planes x_re/x_im of layout [i * kWidth + lane].
  void solve_shared(std::span<const Complex> b, double* x_re, double* x_im) {
    if (!context_->sparse) {
      lu_.solve_shared(b, x_re, x_im);
      return;
    }
    const std::size_t n = size();
    scratch_.resize(n);
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      lanes_[lane].solve_into(b, scratch_);
      for (std::size_t i = 0; i < n; ++i) {
        x_re[i * kWidth + lane] = scratch_[i].real();
        x_im[i * kWidth + lane] = scratch_[i].imag();
      }
    }
  }

  /// Blocked multi-RHS solve against shared columns (column c of \p b at
  /// [c*n, c*n + n)) into planes of layout [(c*n + i) * kWidth + lane].
  void solve_shared_multi(std::span<const Complex> b, std::size_t cols,
                          double* x_re, double* x_im) {
    const std::size_t n = size();
    if (!context_->sparse) {
      lu_.solve_shared_multi(b, cols, x_re, x_im);
      return;
    }
    // Per-lane scalar blocked solve, scattered into the pack layout.
    if (b_mat_.rows() != n || b_mat_.cols() != cols) b_mat_.reshape(n, cols);
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t i = 0; i < n; ++i) b_mat_(i, c) = b[c * n + i];
    }
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      lanes_[lane].solve_into(b_mat_, x_mat_);
      for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
          const Complex v = x_mat_(i, c);
          x_re[(c * n + i) * kWidth + lane] = v.real();
          x_im[(c * n + i) * kWidth + lane] = v.imag();
        }
      }
    }
  }

  [[nodiscard]] bool sparse() const { return context_->sparse; }
  [[nodiscard]] std::size_t size() const { return assembler_->size(); }

private:
  const SweepAssembler* assembler_;
  std::shared_ptr<const SweepSolver::Context> context_;

  // Dense backend state.
  linalg::BatchLu<P> lu_;
  std::array<double, kWidth> s_re_{}, s_im_{};

  // Sparse backend state: one scalar solver per lane (clones share the
  // context's symbolic analysis) plus gather scratch.
  std::vector<SweepSolver> lanes_;
  std::vector<Complex> scratch_;
  linalg::Matrix<Complex> b_mat_, x_mat_;
};

}  // namespace ftdiag::mna
