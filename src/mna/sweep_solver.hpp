/// \file sweep_solver.hpp
/// \brief Backend-neutral per-frequency factor/solve seam for AC sweeps.
///
/// Every sweep consumer used to hand-roll the dense-vs-sparse decision and
/// its workspaces; worse, only the dense backend could reuse factorization
/// work across a sweep, so sparse-sized circuits fell off the fast path
/// entirely.  `SweepSolver` hides the backend behind one contract:
///
///   - `analyze()` builds an immutable per-circuit Context ONCE: it picks
///     the backend (by unknown count, or forced) and runs the expensive
///     value-independent preparation — the sparse symbolic analysis at a
///     fixed canonical reference point, or the dense premerge of G when
///     the backend is forced dense past the assembler's premerge limit.
///   - each sweep lane owns one `SweepSolver` (cheap: sparse clones share
///     the symbolic phase) and calls `factor(s)` + `solve_into()` per
///     frequency with zero steady-state allocations on both backends.
///
/// Determinism: the Context depends only on the circuit (and the fixed
/// reference point), never on which frequencies were solved first or how
/// many threads are sweeping — so dictionaries built through this seam are
/// bit-identical for any thread count.  When the frozen pivot order breaks
/// down numerically at some point, that lane falls back to a fresh local
/// analysis *for that point only*; the shared Context is never mutated.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/sparse_factorization.hpp"
#include "mna/system.hpp"

namespace ftdiag::mna {

/// Which factorization backend a sweep runs on.
enum class SolverBackend {
  kAuto,    ///< dense up to SweepAssembler::kDenseLimit, sparse beyond
  kDense,   ///< dense LU regardless of size (benchmark baseline)
  kSparse,  ///< pattern-reusing sparse LU regardless of size
};

class SweepSolver {
public:
  /// Immutable per-circuit preparation shared by all lanes of a sweep.
  struct Context {
    bool sparse = false;
    /// Sparse backend: factorization analyzed at the canonical reference
    /// point, cloned per lane.  May be unanalyzed when the reference-point
    /// analysis failed (e.g. singular there); lanes then run a fresh
    /// analysis per frequency instead of reusing a pattern.
    linalg::SparseFactorization<Complex> prototype;
    /// Forced-dense backend past the assembler's premerge limit: G merged
    /// densely here (the assembler only premerges up to kDenseLimit).
    linalg::Matrix<Complex> g_dense;
  };

  /// The fixed Laplace reference point (in Hz) of the symbolic analysis.
  /// Any positive frequency sees the full G + s*C sparsity union (real
  /// static and imaginary reactive parts cannot cancel), so the analyzed
  /// pattern covers every sweep point; the value only influences the
  /// frozen pivot magnitudes.
  static constexpr double kReferenceHz = 1e3;

  /// One-time per-circuit preparation.  Never throws on numeric trouble —
  /// a failed sparse reference analysis degrades to per-point analysis.
  [[nodiscard]] static std::shared_ptr<const Context> analyze(
      const SweepAssembler& assembler, SolverBackend backend,
      double reference_hz = kReferenceHz);

  /// A per-lane solver over \p assembler with shared \p context.  The
  /// assembler must outlive the solver; the context is retained.
  SweepSolver(const SweepAssembler& assembler,
              std::shared_ptr<const Context> context);

  /// Assemble and factor A(s); zero allocations in steady state on both
  /// backends.  \throws NumericError if A(s) is singular.
  void factor(Complex s);

  /// Solve A x = b with the current factorization (allocation-free).
  void solve_into(std::span<const Complex> b, std::span<Complex> x) const;

  /// Blocked multi-RHS solve A X = B; \p x is reshaped to b's shape.
  void solve_into(const linalg::Matrix<Complex>& b,
                  linalg::Matrix<Complex>& x) const;

  [[nodiscard]] bool sparse() const { return context_->sparse; }
  [[nodiscard]] std::size_t size() const { return assembler_->size(); }

private:
  const SweepAssembler* assembler_;
  std::shared_ptr<const Context> context_;

  // Dense backend state.
  linalg::Matrix<Complex> a_;
  linalg::LuFactorization<Complex> lu_;

  // Sparse backend state.  `reused_` clones the context prototype and is
  // refilled per frequency; `fresh_` holds a point-local full analysis
  // when the frozen pivot order is numerically unusable at that point.
  linalg::CooMatrix<Complex> coo_{0, 0};
  linalg::SparseFactorization<Complex> reused_;
  linalg::SparseFactorization<Complex> fresh_;
  bool use_fresh_ = false;
};

}  // namespace ftdiag::mna
