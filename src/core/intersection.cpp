#include "core/intersection.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ftdiag::core {

namespace {

double signature_scale(const std::vector<FaultTrajectory>& trajectories) {
  double scale = 0.0;
  for (const auto& t : trajectories) {
    scale = std::max(scale, t.max_excursion());
  }
  return scale > 0.0 ? scale : 1.0;
}

}  // namespace

IntersectionReport count_intersections(
    const std::vector<FaultTrajectory>& trajectories,
    const IntersectionOptions& options) {
  IntersectionReport report;
  if (trajectories.size() < 2) return report;

  const std::size_t dim = trajectories.front().dimension();
  for (const auto& t : trajectories) {
    if (t.dimension() != dim) {
      throw ConfigError("trajectories of mixed dimension");
    }
  }
  const double scale = signature_scale(trajectories);
  const double origin_ball = options.origin_exclusion * scale;
  const Point origin(dim, 0.0);

  // Pre-extract segments.
  std::vector<std::vector<Segment>> segs;
  segs.reserve(trajectories.size());
  for (const auto& t : trajectories) segs.push_back(t.segments());

  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    for (std::size_t j = i + 1; j < trajectories.size(); ++j) {
      for (std::size_t si = 0; si < segs[i].size(); ++si) {
        for (std::size_t sj = 0; sj < segs[j].size(); ++sj) {
          const Segment& a = segs[i][si];
          const Segment& b = segs[j][sj];

          if (dim == 2) {
            const Intersection2d hit = intersect_segments_2d(a, b);
            if (hit.relation == SegmentRelation::kDisjoint) continue;
            if (hit.relation == SegmentRelation::kCollinearOverlap &&
                !options.count_overlaps) {
              continue;
            }
            // Structural contact at the shared golden point.
            if (distance(hit.at, origin) <= origin_ball) continue;
            report.conflicts.push_back({trajectories[i].site(),
                                        trajectories[j].site(), si, sj,
                                        hit.at, 0.0});
          } else {
            const double d = segment_segment_distance(a, b);
            if (d > options.near_threshold * scale) continue;
            // Contact near the origin is structural when both segments
            // pass through the exclusion ball.
            const double a_to_origin = project_point(origin, a).distance;
            const double b_to_origin = project_point(origin, b).distance;
            if (a_to_origin <= origin_ball && b_to_origin <= origin_ball) {
              continue;
            }
            Point mid(dim, 0.0);
            for (std::size_t k = 0; k < dim; ++k) {
              mid[k] = 0.25 * (a.a[k] + a.b[k] + b.a[k] + b.b[k]);
            }
            report.conflicts.push_back({trajectories[i].site(),
                                        trajectories[j].site(), si, sj,
                                        std::move(mid), d});
          }
        }
      }
    }
  }
  report.count = report.conflicts.size();
  return report;
}

}  // namespace ftdiag::core
