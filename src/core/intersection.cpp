#include "core/intersection.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::core {

namespace {

double signature_scale(const std::vector<FaultTrajectory>& trajectories) {
  double scale = 0.0;
  for (const auto& t : trajectories) {
    scale = std::max(scale, t.max_excursion());
  }
  return scale > 0.0 ? scale : 1.0;
}

/// Trajectory geometry flattened into one contiguous scalar array: segment
/// s of trajectory i lives at coords[(first[i] + s) * stride], endpoints
/// back to back.  The sweeps and predicates run entirely on this layout —
/// chasing the per-vertex heap Points inside the innermost loop costs more
/// than the predicates themselves.
struct FlatGeometry {
  std::size_t dim = 0;
  std::size_t stride = 0;  ///< 2 * dim
  std::vector<double> coords;
  std::vector<std::uint32_t> first;  ///< per trajectory; back() = total segs

  void build(const std::vector<FaultTrajectory>& trajectories,
             std::size_t dimension) {
    dim = dimension;
    stride = 2 * dim;
    first.clear();
    first.reserve(trajectories.size() + 1);
    std::size_t total = 0;
    for (const auto& t : trajectories) {
      first.push_back(static_cast<std::uint32_t>(total));
      total += t.point_count() - 1;
    }
    first.push_back(static_cast<std::uint32_t>(total));
    coords.clear();
    coords.reserve(total * stride);
    for (const auto& t : trajectories) {
      const auto& pts = t.points();
      for (std::size_t s = 0; s + 1 < pts.size(); ++s) {
        coords.insert(coords.end(), pts[s].coords.begin(),
                      pts[s].coords.end());
        coords.insert(coords.end(), pts[s + 1].coords.begin(),
                      pts[s + 1].coords.end());
      }
    }
  }

  [[nodiscard]] const double* segment(std::size_t traj,
                                      std::size_t seg) const {
    return coords.data() + (first[traj] + seg) * stride;
  }
  [[nodiscard]] std::size_t segment_count(std::size_t traj) const {
    return first[traj + 1] - first[traj];
  }
};

/// Shared per-pair conflict test: counts (and optionally records) when
/// segments (i, si) and (j, sj) conflict.  Both sweeps call exactly this,
/// so they can only differ in which pairs they visit.
class PairTester {
public:
  PairTester(const std::vector<FaultTrajectory>& trajectories,
             const FlatGeometry& flat, const IntersectionOptions& options,
             double scale)
      : trajectories_(trajectories),
        flat_(flat),
        options_(options),
        origin_ball_(options.origin_exclusion * scale),
        near_cutoff_(options.near_threshold * scale),
        origin_(flat.dim, 0.0) {}

  void test(std::size_t i, std::size_t j, std::size_t si, std::size_t sj,
            IntersectionReport& report) const {
    const std::size_t dim = flat_.dim;
    const double* a = flat_.segment(i, si);
    const double* b = flat_.segment(j, sj);

    if (dim == 2) {
      const Classification2d hit = classify_segments_2d(a, a + 2, b, b + 2);
      if (hit.relation == SegmentRelation::kDisjoint) return;
      if (hit.relation == SegmentRelation::kCollinearOverlap &&
          !options_.count_overlaps) {
        return;
      }
      // Structural contact at the shared golden point.
      if (std::sqrt(hit.at_x * hit.at_x + hit.at_y * hit.at_y) <=
          origin_ball_) {
        return;
      }
      ++report.count;
      if (options_.collect_conflicts) {
        report.conflicts.push_back({trajectories_[i].site(),
                                    trajectories_[j].site(), si, sj,
                                    {hit.at_x, hit.at_y}, 0.0});
      }
    } else {
      const double d = segment_segment_distance(a, a + dim, b, b + dim, dim);
      if (d > near_cutoff_) return;
      // Contact near the origin is structural when both segments pass
      // through the exclusion ball.
      const double a_to_origin =
          point_segment_distance(origin_.data(), a, a + dim, dim);
      const double b_to_origin =
          point_segment_distance(origin_.data(), b, b + dim, dim);
      if (a_to_origin <= origin_ball_ && b_to_origin <= origin_ball_) {
        return;
      }
      ++report.count;
      if (options_.collect_conflicts) {
        Point mid(dim, 0.0);
        for (std::size_t k = 0; k < dim; ++k) {
          mid[k] = 0.25 * (a[k] + a[dim + k] + b[k] + b[dim + k]);
        }
        report.conflicts.push_back({trajectories_[i].site(),
                                    trajectories_[j].site(), si, sj,
                                    std::move(mid), d});
      }
    }
  }

private:
  const std::vector<FaultTrajectory>& trajectories_;
  const FlatGeometry& flat_;
  const IntersectionOptions& options_;
  double origin_ball_;
  double near_cutoff_;
  Point origin_;
};

/// The reference sweep: every segment pair of every trajectory pair, in
/// (i, j, si, sj) lexicographic order.
void exact_sweep(const FlatGeometry& flat, const PairTester& tester,
                 IntersectionReport& report) {
  const std::size_t count = flat.first.size() - 1;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j) {
      const std::size_t ni = flat.segment_count(i);
      const std::size_t nj = flat.segment_count(j);
      for (std::size_t si = 0; si < ni; ++si) {
        for (std::size_t sj = 0; sj < nj; ++sj) {
          tester.test(i, j, si, sj, report);
        }
      }
    }
  }
}

/// Uniform-grid pruned sweep.  Segments are rasterized conservatively into
/// grid cells (clipped column by column, padded so any pair the predicates
/// could classify as conflicting provably shares a cell) and only
/// cell-sharing pairs whose padded boxes overlap are tested.  When the
/// caller needs conflict records the candidates are first sorted into the
/// exact sweep's (i, j, si, sj) order, so both sweeps emit identical
/// reports; for count-only fitness calls the sort is skipped (the count
/// cannot depend on visit order).
void pruned_sweep(const FlatGeometry& flat, const PairTester& tester,
                  double scale, double near_cutoff, bool ordered,
                  IntersectionReport& report) {
  const std::size_t dim = flat.dim;
  // Conservative padding: 2-D predicates tolerate ~1e-12 relative slack,
  // so a 1e-9 pad (relative to the signature scale, plus absolute slack)
  // dwarfs it; in near-miss mode two segments within the cutoff d have
  // geometry within d of each other, so half of d each side suffices.
  const double pad =
      (dim == 2 ? 0.0 : 0.5 * near_cutoff) + 1e-9 * (scale + 1.0);
  const std::size_t axes = std::min<std::size_t>(dim, 3);
  const std::size_t total_segments = flat.first.back();

  struct Box {
    std::uint32_t traj = 0;
    std::uint32_t seg = 0;
    double lo[3] = {0.0, 0.0, 0.0};
    double hi[3] = {0.0, 0.0, 0.0};
    std::int32_t cell_lo[3] = {0, 0, 0};
    std::int32_t cell_hi[3] = {0, 0, 0};
  };
  // Scratch buffers are reused across calls on the same thread: the GA
  // evaluates thousands of genomes per worker, and reallocating the grid
  // for each one shows up in profiles.
  thread_local std::vector<Box> boxes;
  boxes.clear();
  boxes.reserve(total_segments);

  double grid_lo[3] = {0.0, 0.0, 0.0};
  double grid_hi[3] = {0.0, 0.0, 0.0};
  const std::size_t trajectory_count = flat.first.size() - 1;
  for (std::size_t i = 0; i < trajectory_count; ++i) {
    for (std::size_t si = 0; si < flat.segment_count(i); ++si) {
      Box box;
      box.traj = static_cast<std::uint32_t>(i);
      box.seg = static_cast<std::uint32_t>(si);
      const double* a = flat.segment(i, si);
      const double* b = a + dim;
      for (std::size_t d = 0; d < axes; ++d) {
        box.lo[d] = std::min(a[d], b[d]) - pad;
        box.hi[d] = std::max(a[d], b[d]) + pad;
        if (boxes.empty()) {
          grid_lo[d] = box.lo[d];
          grid_hi[d] = box.hi[d];
        } else {
          grid_lo[d] = std::min(grid_lo[d], box.lo[d]);
          grid_hi[d] = std::max(grid_hi[d], box.hi[d]);
        }
      }
      boxes.push_back(box);
    }
  }
  if (boxes.size() < 2) return;

  // Grid resolution: segments are binned by exact conservative slab
  // clipping (not bounding boxes), so a finer grid keeps pruning effective
  // even when every trajectory hugs one diagonal; 2x the square-root
  // heuristic measured fastest across the registry circuits.
  const double per_axis =
      2.0 * std::pow(static_cast<double>(boxes.size()),
                     1.0 / static_cast<double>(axes));
  std::int32_t cells[3] = {1, 1, 1};
  double cell_size[3] = {1.0, 1.0, 1.0};
  std::size_t total_cells = 1;
  for (std::size_t d = 0; d < axes; ++d) {
    const double extent = grid_hi[d] - grid_lo[d];
    cells[d] = extent > 0.0
                   ? std::clamp<std::int32_t>(
                         static_cast<std::int32_t>(per_axis), 1, 64)
                   : 1;
    cell_size[d] = extent > 0.0 ? extent / cells[d] : 1.0;
    total_cells *= static_cast<std::size_t>(cells[d]);
  }

  auto cell_of = [&](double value, std::size_t d) {
    const std::int32_t c = static_cast<std::int32_t>(
        (value - grid_lo[d]) / cell_size[d]);
    return std::clamp<std::int32_t>(c, 0, cells[d] - 1);
  };
  for (auto& box : boxes) {
    for (std::size_t d = 0; d < axes; ++d) {
      box.cell_lo[d] = cell_of(box.lo[d], d);
      box.cell_hi[d] = cell_of(box.hi[d], d);
    }
  }

  // Rasterize: walk the first axis column by column, clip the segment to
  // the (pad-expanded) column and bin only the cells its clipped-and-
  // padded extent reaches on the remaining axes — a superset of every cell
  // the padded segment intersects, but far tighter than the bounding box.
  thread_local std::vector<std::vector<std::uint32_t>> bins;
  if (bins.size() < total_cells) bins.resize(total_cells);
  for (std::size_t c = 0; c < total_cells; ++c) bins[c].clear();
  auto flatten = [&](std::int32_t c0, std::int32_t c1, std::int32_t c2) {
    return static_cast<std::size_t>(c0) +
           static_cast<std::size_t>(cells[0]) *
               (static_cast<std::size_t>(c1) +
                static_cast<std::size_t>(cells[1]) *
                    static_cast<std::size_t>(c2));
  };
  for (std::uint32_t b = 0; b < boxes.size(); ++b) {
    const Box& box = boxes[b];
    const double* sa = flat.segment(box.traj, box.seg);
    const double* sb = sa + dim;
    const double dx = sb[0] - sa[0];
    for (std::int32_t c0 = box.cell_lo[0]; c0 <= box.cell_hi[0]; ++c0) {
      // The segment's parameter range inside this column, expanded by the
      // pad on both sides.  A slab beyond the endpoints clamps to them, so
      // endpoint proximity stays covered.
      double t_lo = 0.0, t_hi = 1.0;
      if (std::fabs(dx) > 0.0) {
        const double slab_lo =
            grid_lo[0] + static_cast<double>(c0) * cell_size[0] - pad;
        const double slab_hi =
            grid_lo[0] + static_cast<double>(c0 + 1) * cell_size[0] + pad;
        const double t0 = (slab_lo - sa[0]) / dx;
        const double t1 = (slab_hi - sa[0]) / dx;
        t_lo = std::clamp(std::min(t0, t1), 0.0, 1.0);
        t_hi = std::clamp(std::max(t0, t1), 0.0, 1.0);
      }
      std::int32_t lo1 = 0, hi1 = 0, lo2 = 0, hi2 = 0;
      if (axes > 1) {
        const double v0 = sa[1] + t_lo * (sb[1] - sa[1]);
        const double v1 = sa[1] + t_hi * (sb[1] - sa[1]);
        lo1 = cell_of(std::min(v0, v1) - pad, 1);
        hi1 = cell_of(std::max(v0, v1) + pad, 1);
      }
      if (axes > 2) {
        const double v0 = sa[2] + t_lo * (sb[2] - sa[2]);
        const double v1 = sa[2] + t_hi * (sb[2] - sa[2]);
        lo2 = cell_of(std::min(v0, v1) - pad, 2);
        hi2 = cell_of(std::max(v0, v1) + pad, 2);
      }
      for (std::int32_t c2 = lo2; c2 <= hi2; ++c2) {
        for (std::int32_t c1 = lo1; c1 <= hi1; ++c1) {
          bins[flatten(c0, c1, c2)].push_back(b);
        }
      }
    }
  }

  // Candidate pairs: segments of different trajectories sharing a cell
  // whose padded boxes overlap.  Rasterized coverage is not a box range,
  // so pairs are deduplicated with a seen-matrix over global segment ids
  // (sort + unique fallback keeps memory bounded on huge sets).
  struct CandidatePair {
    std::uint32_t i, j, si, sj;
    [[nodiscard]] bool operator<(const CandidatePair& o) const {
      if (i != o.i) return i < o.i;
      if (j != o.j) return j < o.j;
      if (si != o.si) return si < o.si;
      return sj < o.sj;
    }
    [[nodiscard]] bool operator==(const CandidatePair& o) const {
      return i == o.i && j == o.j && si == o.si && sj == o.sj;
    }
  };
  thread_local std::vector<CandidatePair> candidates;
  candidates.clear();
  const bool use_seen_matrix =
      boxes.size() * boxes.size() <= (std::size_t{1} << 22);
  thread_local std::vector<std::uint8_t> seen;
  if (use_seen_matrix) {
    seen.assign(boxes.size() * boxes.size(), 0);
  }
  for (std::size_t cell = 0; cell < total_cells; ++cell) {
    const auto& bin = bins[cell];
    if (bin.size() < 2) continue;
    for (std::size_t p = 0; p < bin.size(); ++p) {
      const Box& a = boxes[bin[p]];
      for (std::size_t q = p + 1; q < bin.size(); ++q) {
        const Box& b = boxes[bin[q]];
        if (a.traj == b.traj) continue;
        bool overlap = true;
        for (std::size_t d = 0; d < axes; ++d) {
          if (a.lo[d] > b.hi[d] || b.lo[d] > a.hi[d]) {
            overlap = false;
            break;
          }
        }
        if (!overlap) continue;
        if (use_seen_matrix) {
          const std::size_t lo = std::min(bin[p], bin[q]);
          const std::size_t hi = std::max(bin[p], bin[q]);
          std::uint8_t& mark = seen[lo * boxes.size() + hi];
          if (mark != 0) continue;
          mark = 1;
        }
        CandidatePair pair{a.traj, b.traj, a.seg, b.seg};
        if (pair.i > pair.j) {
          std::swap(pair.i, pair.j);
          std::swap(pair.si, pair.sj);
        }
        candidates.push_back(pair);
      }
    }
  }
  if (ordered || !use_seen_matrix) {
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }

  for (const auto& c : candidates) {
    tester.test(c.i, c.j, c.si, c.sj, report);
  }
}

}  // namespace

IntersectionReport count_intersections(
    const std::vector<FaultTrajectory>& trajectories,
    const IntersectionOptions& options) {
  IntersectionReport report;
  if (trajectories.size() < 2) return report;

  const std::size_t dim = trajectories.front().dimension();
  for (const auto& t : trajectories) {
    if (t.dimension() != dim) {
      throw ConfigError("trajectories of mixed dimension");
    }
  }
  const double scale = signature_scale(trajectories);

  thread_local FlatGeometry flat;
  flat.build(trajectories, dim);

  const PairTester tester(trajectories, flat, options, scale);
  if (options.algorithm == IntersectionAlgorithm::kExact) {
    exact_sweep(flat, tester, report);
  } else {
    pruned_sweep(flat, tester, scale, options.near_threshold * scale,
                 options.collect_conflicts, report);
  }
  return report;
}

}  // namespace ftdiag::core
