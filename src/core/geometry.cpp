#include "core/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::core {

namespace {

/// Relative epsilon for the orientation predicates.
constexpr double kEps = 1e-12;

double cross2(double ax, double ay, double bx, double by) {
  return ax * by - ay * bx;
}

/// Sign of the orientation of (a, b, c) with a scale-relative tolerance:
/// +1 counter-clockwise, -1 clockwise, 0 collinear.
int orientation(const Point& a, const Point& b, const Point& c) {
  const double v =
      cross2(b[0] - a[0], b[1] - a[1], c[0] - a[0], c[1] - a[1]);
  const double scale = std::max({std::fabs(b[0] - a[0]), std::fabs(b[1] - a[1]),
                                 std::fabs(c[0] - a[0]), std::fabs(c[1] - a[1]),
                                 1e-300});
  if (std::fabs(v) <= kEps * scale * scale) return 0;
  return v > 0.0 ? 1 : -1;
}

/// Is c within the bounding box of segment (a, b)?  Assumes collinear.
bool on_segment(const Point& a, const Point& b, const Point& c) {
  const double lo_x = std::min(a[0], b[0]), hi_x = std::max(a[0], b[0]);
  const double lo_y = std::min(a[1], b[1]), hi_y = std::max(a[1], b[1]);
  const double pad_x = kEps * (1.0 + hi_x - lo_x);
  const double pad_y = kEps * (1.0 + hi_y - lo_y);
  return c[0] >= lo_x - pad_x && c[0] <= hi_x + pad_x &&
         c[1] >= lo_y - pad_y && c[1] <= hi_y + pad_y;
}

void require_2d(const Segment& s) {
  if (s.a.size() != 2 || s.b.size() != 2) {
    throw ConfigError("2-D intersection called on a non-2-D segment");
  }
}

/// Exact crossing point of two non-parallel lines through the segments.
Point crossing_point(const Segment& s, const Segment& t) {
  const double rx = s.b[0] - s.a[0], ry = s.b[1] - s.a[1];
  const double qx = t.b[0] - t.a[0], qy = t.b[1] - t.a[1];
  const double denom = cross2(rx, ry, qx, qy);
  const double u =
      cross2(t.a[0] - s.a[0], t.a[1] - s.a[1], qx, qy) / denom;
  return {s.a[0] + u * rx, s.a[1] + u * ry};
}

}  // namespace

double distance(const Point& a, const Point& b) {
  FTDIAG_ASSERT(a.size() == b.size(), "point dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double norm(const Point& p) {
  double acc = 0.0;
  for (double v : p) acc += v * v;
  return std::sqrt(acc);
}

Point subtract(const Point& a, const Point& b) {
  FTDIAG_ASSERT(a.size() == b.size(), "point dimension mismatch");
  Point out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Projection project_point(const Point& p, const Segment& segment) {
  FTDIAG_ASSERT(p.size() == segment.a.size(), "point/segment dim mismatch");
  const Point d = subtract(segment.b, segment.a);
  double dd = 0.0, dp = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    dd += d[i] * d[i];
    dp += d[i] * (p[i] - segment.a[i]);
  }
  Projection out;
  out.t = dd > 0.0 ? std::clamp(dp / dd, 0.0, 1.0) : 0.0;
  out.closest.resize(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    out.closest[i] = segment.a[i] + out.t * d[i];
  }
  out.distance = distance(p, out.closest);
  return out;
}

Intersection2d intersect_segments_2d(const Segment& s, const Segment& t) {
  require_2d(s);
  require_2d(t);
  const int o1 = orientation(s.a, s.b, t.a);
  const int o2 = orientation(s.a, s.b, t.b);
  const int o3 = orientation(t.a, t.b, s.a);
  const int o4 = orientation(t.a, t.b, s.b);

  Intersection2d result;

  // General position: interiors cross.
  if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0) {
    result.relation = SegmentRelation::kProperCrossing;
    result.at = crossing_point(s, t);
    return result;
  }

  // Collinear cases.
  if (o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0) {
    // Project onto the dominant axis to find overlap.
    const int axis =
        std::fabs(s.b[0] - s.a[0]) >= std::fabs(s.b[1] - s.a[1]) ? 0 : 1;
    double s_lo = std::min(s.a[axis], s.b[axis]);
    double s_hi = std::max(s.a[axis], s.b[axis]);
    double t_lo = std::min(t.a[axis], t.b[axis]);
    double t_hi = std::max(t.a[axis], t.b[axis]);
    const double lo = std::max(s_lo, t_lo);
    const double hi = std::min(s_hi, t_hi);
    const double span = std::max(s_hi - s_lo, t_hi - t_lo);
    if (lo > hi + kEps * (1.0 + span)) return result;  // disjoint
    if (hi - lo <= kEps * (1.0 + span)) {
      // Single shared point.
      result.relation = SegmentRelation::kTouching;
    } else {
      result.relation = SegmentRelation::kCollinearOverlap;
    }
    // Representative point at the overlap midpoint, reconstructed on s.
    const double mid = 0.5 * (lo + hi);
    const double denom = s.b[axis] - s.a[axis];
    const double u = denom != 0.0 ? (mid - s.a[axis]) / denom : 0.0;
    result.at = {s.a[0] + u * (s.b[0] - s.a[0]),
                 s.a[1] + u * (s.b[1] - s.a[1])};
    return result;
  }

  // Endpoint touching: one orientation is zero and the point lies on the
  // other segment.
  if (o1 == 0 && on_segment(s.a, s.b, t.a)) {
    result.relation = SegmentRelation::kTouching;
    result.at = t.a;
    return result;
  }
  if (o2 == 0 && on_segment(s.a, s.b, t.b)) {
    result.relation = SegmentRelation::kTouching;
    result.at = t.b;
    return result;
  }
  if (o3 == 0 && on_segment(t.a, t.b, s.a)) {
    result.relation = SegmentRelation::kTouching;
    result.at = s.a;
    return result;
  }
  if (o4 == 0 && on_segment(t.a, t.b, s.b)) {
    result.relation = SegmentRelation::kTouching;
    result.at = s.b;
    return result;
  }
  return result;
}

double segment_segment_distance(const Segment& s, const Segment& t) {
  FTDIAG_ASSERT(s.a.size() == t.a.size(), "segment dimension mismatch");
  // Minimize |s(u) - t(v)|^2 over the unit square; standard clamped
  // closed-form (Eberly).  Degenerate segments fall back to projections.
  const Point d1 = subtract(s.b, s.a);
  const Point d2 = subtract(t.b, t.a);
  const Point r = subtract(s.a, t.a);
  double a = 0.0, e = 0.0, f = 0.0, b = 0.0, c = 0.0;
  for (std::size_t i = 0; i < d1.size(); ++i) {
    a += d1[i] * d1[i];
    e += d2[i] * d2[i];
    f += d2[i] * r[i];
    b += d1[i] * d2[i];
    c += d1[i] * r[i];
  }
  double u = 0.0, v = 0.0;
  constexpr double kTiny = 1e-30;
  if (a <= kTiny && e <= kTiny) {
    return distance(s.a, t.a);
  }
  if (a <= kTiny) {
    v = std::clamp(f / e, 0.0, 1.0);
  } else if (e <= kTiny) {
    u = std::clamp(-c / a, 0.0, 1.0);
  } else {
    const double denom = a * e - b * b;
    if (denom > kTiny * a * e) {
      u = std::clamp((b * f - c * e) / denom, 0.0, 1.0);
    }
    v = (b * u + f) / e;
    if (v < 0.0) {
      v = 0.0;
      u = std::clamp(-c / a, 0.0, 1.0);
    } else if (v > 1.0) {
      v = 1.0;
      u = std::clamp((b - c) / a, 0.0, 1.0);
    }
  }
  Point ps(d1.size()), pt(d1.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ps[i] = s.a[i] + u * d1[i];
    pt[i] = t.a[i] + v * d2[i];
  }
  return distance(ps, pt);
}

double polyline_length(const std::vector<Point>& points) {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += distance(points[i - 1], points[i]);
  }
  return total;
}

}  // namespace ftdiag::core
