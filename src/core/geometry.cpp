#include "core/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::core {

namespace {

/// Relative epsilon for the orientation predicates.
constexpr double kEps = 1e-12;

double cross2(double ax, double ay, double bx, double by) {
  return ax * by - ay * bx;
}

/// Sign of the orientation of (a, b, c) with a scale-relative tolerance:
/// +1 counter-clockwise, -1 clockwise, 0 collinear.
int orientation(const double* a, const double* b, const double* c) {
  const double v =
      cross2(b[0] - a[0], b[1] - a[1], c[0] - a[0], c[1] - a[1]);
  const double scale = std::max({std::fabs(b[0] - a[0]), std::fabs(b[1] - a[1]),
                                 std::fabs(c[0] - a[0]), std::fabs(c[1] - a[1]),
                                 1e-300});
  if (std::fabs(v) <= kEps * scale * scale) return 0;
  return v > 0.0 ? 1 : -1;
}

/// Is c within the bounding box of segment (a, b)?  Assumes collinear.
bool on_segment(const double* a, const double* b, const double* c) {
  const double lo_x = std::min(a[0], b[0]), hi_x = std::max(a[0], b[0]);
  const double lo_y = std::min(a[1], b[1]), hi_y = std::max(a[1], b[1]);
  const double pad_x = kEps * (1.0 + hi_x - lo_x);
  const double pad_y = kEps * (1.0 + hi_y - lo_y);
  return c[0] >= lo_x - pad_x && c[0] <= hi_x + pad_x &&
         c[1] >= lo_y - pad_y && c[1] <= hi_y + pad_y;
}

void require_2d(const Point& a, const Point& b) {
  if (a.size() != 2 || b.size() != 2) {
    throw ConfigError("2-D intersection called on a non-2-D segment");
  }
}

}  // namespace

double distance(const Point& a, const Point& b) {
  FTDIAG_ASSERT(a.size() == b.size(), "point dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double norm(const Point& p) {
  double acc = 0.0;
  for (double v : p) acc += v * v;
  return std::sqrt(acc);
}

Point subtract(const Point& a, const Point& b) {
  FTDIAG_ASSERT(a.size() == b.size(), "point dimension mismatch");
  Point out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Projection project_point(const Point& p, const Segment& segment) {
  FTDIAG_ASSERT(p.size() == segment.a.size(), "point/segment dim mismatch");
  const Point d = subtract(segment.b, segment.a);
  double dd = 0.0, dp = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    dd += d[i] * d[i];
    dp += d[i] * (p[i] - segment.a[i]);
  }
  Projection out;
  out.t = dd > 0.0 ? std::clamp(dp / dd, 0.0, 1.0) : 0.0;
  out.closest.resize(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    out.closest[i] = segment.a[i] + out.t * d[i];
  }
  out.distance = distance(p, out.closest);
  return out;
}

Classification2d classify_segments_2d(const double* sa, const double* sb,
                                      const double* ta, const double* tb) {
  const int o1 = orientation(sa, sb, ta);
  const int o2 = orientation(sa, sb, tb);
  const int o3 = orientation(ta, tb, sa);
  const int o4 = orientation(ta, tb, sb);

  Classification2d result;

  // General position: interiors cross.
  if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0) {
    result.relation = SegmentRelation::kProperCrossing;
    // Exact crossing point of the two non-parallel lines.
    const double rx = sb[0] - sa[0], ry = sb[1] - sa[1];
    const double qx = tb[0] - ta[0], qy = tb[1] - ta[1];
    const double denom = cross2(rx, ry, qx, qy);
    const double u =
        cross2(ta[0] - sa[0], ta[1] - sa[1], qx, qy) / denom;
    result.at_x = sa[0] + u * rx;
    result.at_y = sa[1] + u * ry;
    return result;
  }

  // Collinear cases.
  if (o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0) {
    // Project onto the dominant axis to find overlap.
    const int axis =
        std::fabs(sb[0] - sa[0]) >= std::fabs(sb[1] - sa[1]) ? 0 : 1;
    double s_lo = std::min(sa[axis], sb[axis]);
    double s_hi = std::max(sa[axis], sb[axis]);
    double t_lo = std::min(ta[axis], tb[axis]);
    double t_hi = std::max(ta[axis], tb[axis]);
    const double lo = std::max(s_lo, t_lo);
    const double hi = std::min(s_hi, t_hi);
    const double span = std::max(s_hi - s_lo, t_hi - t_lo);
    if (lo > hi + kEps * (1.0 + span)) return result;  // disjoint
    if (hi - lo <= kEps * (1.0 + span)) {
      // Single shared point.
      result.relation = SegmentRelation::kTouching;
    } else {
      result.relation = SegmentRelation::kCollinearOverlap;
    }
    // Representative point at the overlap midpoint, reconstructed on s.
    const double mid = 0.5 * (lo + hi);
    const double denom = sb[axis] - sa[axis];
    const double u = denom != 0.0 ? (mid - sa[axis]) / denom : 0.0;
    result.at_x = sa[0] + u * (sb[0] - sa[0]);
    result.at_y = sa[1] + u * (sb[1] - sa[1]);
    return result;
  }

  // Endpoint touching: one orientation is zero and the point lies on the
  // other segment.
  auto touch = [&result](const double* p) {
    result.relation = SegmentRelation::kTouching;
    result.at_x = p[0];
    result.at_y = p[1];
  };
  if (o1 == 0 && on_segment(sa, sb, ta)) {
    touch(ta);
    return result;
  }
  if (o2 == 0 && on_segment(sa, sb, tb)) {
    touch(tb);
    return result;
  }
  if (o3 == 0 && on_segment(ta, tb, sa)) {
    touch(sa);
    return result;
  }
  if (o4 == 0 && on_segment(ta, tb, sb)) {
    touch(sb);
    return result;
  }
  return result;
}

Intersection2d intersect_segments_2d(const Point& sa, const Point& sb,
                                     const Point& ta, const Point& tb) {
  require_2d(sa, sb);
  require_2d(ta, tb);
  const Classification2d c =
      classify_segments_2d(sa.data(), sb.data(), ta.data(), tb.data());
  Intersection2d result;
  result.relation = c.relation;
  if (c.relation != SegmentRelation::kDisjoint) {
    result.at = {c.at_x, c.at_y};
  }
  return result;
}

Intersection2d intersect_segments_2d(const Segment& s, const Segment& t) {
  return intersect_segments_2d(s.a, s.b, t.a, t.b);
}

double point_segment_distance(const double* p, const double* a,
                              const double* b, std::size_t n) {
  double dd = 0.0, dp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = b[i] - a[i];
    dd += d * d;
    dp += d * (p[i] - a[i]);
  }
  const double t = dd > 0.0 ? std::clamp(dp / dd, 0.0, 1.0) : 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] + t * (b[i] - a[i]) - p[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double point_segment_distance(const Point& p, const Point& a, const Point& b) {
  FTDIAG_ASSERT(p.size() == a.size(), "point/segment dim mismatch");
  return point_segment_distance(p.data(), a.data(), b.data(), p.size());
}

double segment_segment_distance(const double* sa, const double* sb,
                                const double* ta, const double* tb,
                                std::size_t n) {
  // Minimize |s(u) - t(v)|^2 over the unit square; standard clamped
  // closed-form (Eberly).  Degenerate segments fall back to projections.
  double a = 0.0, e = 0.0, f = 0.0, b = 0.0, c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d1 = sb[i] - sa[i];
    const double d2 = tb[i] - ta[i];
    const double r = sa[i] - ta[i];
    a += d1 * d1;
    e += d2 * d2;
    f += d2 * r;
    b += d1 * d2;
    c += d1 * r;
  }
  double u = 0.0, v = 0.0;
  constexpr double kTiny = 1e-30;
  if (a <= kTiny && e <= kTiny) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = sa[i] - ta[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
  if (a <= kTiny) {
    v = std::clamp(f / e, 0.0, 1.0);
  } else if (e <= kTiny) {
    u = std::clamp(-c / a, 0.0, 1.0);
  } else {
    const double denom = a * e - b * b;
    if (denom > kTiny * a * e) {
      u = std::clamp((b * f - c * e) / denom, 0.0, 1.0);
    }
    v = (b * u + f) / e;
    if (v < 0.0) {
      v = 0.0;
      u = std::clamp(-c / a, 0.0, 1.0);
    } else if (v > 1.0) {
      v = 1.0;
      u = std::clamp((b - c) / a, 0.0, 1.0);
    }
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (sa[i] + u * (sb[i] - sa[i])) -
                     (ta[i] + v * (tb[i] - ta[i]));
    acc += d * d;
  }
  return std::sqrt(acc);
}

double segment_segment_distance(const Point& sa, const Point& sb,
                                const Point& ta, const Point& tb) {
  FTDIAG_ASSERT(sa.size() == ta.size(), "segment dimension mismatch");
  return segment_segment_distance(sa.data(), sb.data(), ta.data(), tb.data(),
                                  sa.size());
}

double segment_segment_distance(const Segment& s, const Segment& t) {
  return segment_segment_distance(s.a, s.b, t.a, t.b);
}

double polyline_length(const std::vector<Point>& points) {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += distance(points[i - 1], points[i]);
  }
  return total;
}

}  // namespace ftdiag::core
