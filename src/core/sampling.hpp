/// \file sampling.hpp
/// \brief The paper's spectral-sampling transformation (its Fig. 2):
/// sampling a frequency response at the n test frequencies maps the whole
/// curve to one point of R^n; the golden point is translated to the origin.
#pragma once

#include <cstdint>
#include <vector>

#include "core/geometry.hpp"
#include "mna/response.hpp"

namespace ftdiag::core {

enum class MagnitudeScale : std::uint8_t {
  kLinear,   ///< |H| (the paper's reading of Fig. 2)
  kDecibel,  ///< 20*log10|H| — compresses dynamic range
};

/// How responses become signature points.
struct SamplingPolicy {
  MagnitudeScale scale = MagnitudeScale::kLinear;
  /// Subtract the golden point so nominal sits at the origin (paper §2.2).
  bool golden_relative = true;
  /// Append phase (radians) coordinates after the magnitude coordinates,
  /// doubling the dimension.  An extension; off reproduces the paper.
  bool include_phase = false;

  /// Signature dimension for n test frequencies.
  [[nodiscard]] std::size_t dimension(std::size_t n_frequencies) const {
    return include_phase ? 2 * n_frequencies : n_frequencies;
  }
};

/// Maps responses to signature-space points for a fixed golden reference.
class SpectralSampler {
public:
  /// \param golden the nominal response on the dictionary grid.
  SpectralSampler(mna::AcResponse golden, SamplingPolicy policy);

  [[nodiscard]] const SamplingPolicy& policy() const { return policy_; }
  [[nodiscard]] const mna::AcResponse& golden() const { return golden_; }

  /// Signature of \p response sampled at \p frequencies_hz.
  /// Responses are interpolated, so the frequencies need not lie on the
  /// dictionary grid.
  [[nodiscard]] Point sample(const mna::AcResponse& response,
                             const std::vector<double>& frequencies_hz) const;

  /// Signature of the golden response itself (the origin when
  /// golden_relative is set).
  [[nodiscard]] Point golden_point(
      const std::vector<double>& frequencies_hz) const;

private:
  [[nodiscard]] Point raw_point(const mna::AcResponse& response,
                                const std::vector<double>& frequencies_hz) const;

  mna::AcResponse golden_;
  SamplingPolicy policy_;
};

}  // namespace ftdiag::core
