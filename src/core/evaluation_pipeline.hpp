/// \file evaluation_pipeline.hpp
/// \brief Batch genome evaluation for the frequency search — the
/// ga::BatchObjective implementation behind Session::generate_tests.
///
/// For every genome the GA proposes, the pipeline must interpolate each
/// dictionary response at the genome's frequencies, assemble one fault
/// trajectory per site and score the trajectory set.  Three things make
/// this fast without changing any result:
///
///   1. *Batch fan-out*: a whole population slice is evaluated over
///      util::parallel with index-ordered result slots, so scores are
///      bit-identical for any thread count.
///   2. *Cached signature columns*: genes are snapped to a fine
///      log-frequency quantum and, per quantized frequency, the
///      interpolated signature samples of every dictionary entry (plus the
///      golden response) are computed once and shared — across sites,
///      genomes and generations.  Snapping happens with the cache on or
///      off, so the cache knob can never change a fitness value.
///   3. *Pruned intersection counting*: the fitness's conflict sweep runs
///      the uniform-grid pruned counter (core/intersection.hpp), which is
///      differentially verified against the exact all-pairs sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/test_vector.hpp"
#include "core/trajectory.hpp"
#include "ga/optimizer.hpp"

namespace ftdiag::core {

struct PipelineOptions {
  /// Worker threads for the genome fan-out; 0 means "auto"
  /// (util::resolve_threads — FTDIAG_THREADS when set, otherwise the
  /// hardware concurrency).  Thread count never changes results, only
  /// wall time.
  std::size_t threads = 0;

  /// Share interpolated signature columns between genomes, and memoize
  /// whole-genome fitness values (a converged GA re-proposes identical
  /// genomes: crossover of two copies of the leader is the identity).  Off
  /// recomputes everything; fitness values are identical either way.
  bool cache_signatures = true;

  /// Gene quantum in decades of frequency: genes are snapped to multiples
  /// of this before sampling, making the objective a pure function of the
  /// snapped genome (and cacheable).  The default, ~4e-3 decades (~0.9 %
  /// in frequency), sits well below the dictionary grid's own resolution
  /// (typically 1/60 decade) while letting a converging population share
  /// cached columns.
  double frequency_quantum = 1.0 / 256.0;

  /// \throws ConfigError on a non-positive quantum.
  void check() const;

  /// The effective pool size (resolves 0 to the hardware concurrency).
  [[nodiscard]] std::size_t resolved_threads() const;
};

/// Observability counters (monotone; snapshot via stats()).
struct PipelineStats {
  std::size_t genomes_evaluated = 0;
  std::size_t genome_hits = 0;    ///< whole-genome fitness memo hits
  std::size_t column_hits = 0;    ///< cached signature columns reused
  std::size_t column_misses = 0;  ///< columns interpolated from scratch
};

/// Scores whole population slices against one TestVectorEvaluator.  The
/// evaluator must outlive the pipeline.  evaluate() is safe to call from
/// one thread at a time (the optimizer's driving thread); the internal
/// fan-out is the pipeline's own.
class EvaluationPipeline final : public ga::BatchObjective {
public:
  explicit EvaluationPipeline(const TestVectorEvaluator& evaluator,
                              PipelineOptions options = {});
  ~EvaluationPipeline() override;

  EvaluationPipeline(const EvaluationPipeline&) = delete;
  EvaluationPipeline& operator=(const EvaluationPipeline&) = delete;

  /// Score genomes[i] (log10 frequencies) into slot i.  Bit-identical for
  /// any thread count and any cache state.
  [[nodiscard]] std::vector<double> evaluate(
      const std::vector<std::vector<double>>& genomes) const override;

  /// One genome, inline on the calling thread.
  [[nodiscard]] double evaluate_one(const std::vector<double>& genes) const;

  /// The trajectory set a genome induces (after snapping) — the exact
  /// geometry evaluate() scores; exposed for differential tests.
  [[nodiscard]] std::vector<FaultTrajectory> trajectories(
      const std::vector<double>& genes) const;

  /// Snap one gene to the quantum grid.
  [[nodiscard]] double snap(double gene) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }
  [[nodiscard]] PipelineStats stats() const;

private:
  /// Interpolated signature samples of every dictionary entry at one
  /// quantized frequency.
  struct Column;
  struct SitePlan;

  /// Per-lane scratch of the batch fan-out: key and column buffers are
  /// reused across every genome a lane evaluates, so the steady-state
  /// per-genome cost allocates only what it must return.
  struct EvalScratch {
    std::vector<std::int64_t> keys;
    std::vector<std::shared_ptr<const Column>> columns;
  };

  [[nodiscard]] std::shared_ptr<const Column> column_for(
      std::int64_t key) const;
  [[nodiscard]] Column build_column(std::int64_t key) const;
  [[nodiscard]] std::vector<FaultTrajectory> assemble(
      const std::vector<std::shared_ptr<const Column>>& columns) const;

  void snapped_keys(const std::vector<double>& genes,
                    std::vector<std::int64_t>& keys) const;
  [[nodiscard]] std::vector<FaultTrajectory> trajectories_for_keys(
      const std::vector<std::int64_t>& keys,
      std::vector<std::shared_ptr<const Column>>& columns) const;
  [[nodiscard]] double evaluate_with(const std::vector<double>& genes,
                                     EvalScratch& scratch) const;

  struct KeyHash {
    std::size_t operator()(const std::vector<std::int64_t>& keys) const {
      std::size_t h = 14695981039346656037ull;
      for (std::int64_t k : keys) {
        h ^= static_cast<std::size_t>(k);
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  const TestVectorEvaluator& evaluator_;
  PipelineOptions options_;
  std::vector<SitePlan> plans_;

  /// Precomputed per-response interpolation tables (|H|, log |H|, arg H at
  /// every grid index; response 0 is the golden, then the entries in
  /// order).  Valid when every response shares the golden's grid — then a
  /// column build locates the frequency once and reconstructs each
  /// response's value from the tables, bit-identical to
  /// AcResponse::interpolate but without its per-response binary search,
  /// hypots and atan2s.
  bool shared_grid_ = false;
  std::size_t grid_size_ = 0;
  std::vector<const std::vector<mna::Complex>*> response_values_;
  std::vector<double> table_mag_;
  std::vector<double> table_log_mag_;
  std::vector<double> table_phase_;

  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::int64_t, std::shared_ptr<const Column>>
      cache_;
  mutable std::unordered_map<std::vector<std::int64_t>, double, KeyHash>
      fitness_memo_;
  mutable PipelineStats stats_;
};

}  // namespace ftdiag::core
