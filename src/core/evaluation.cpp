#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "core/ambiguity.hpp"
#include "faults/fault_injector.hpp"
#include "mna/ac_analysis.hpp"
#include "util/error.hpp"

namespace ftdiag::core {

std::size_t ConfusionMatrix::total() const {
  std::size_t n = 0;
  for (const auto& row : counts) {
    for (std::size_t v : row) n += v;
  }
  return n;
}

std::size_t ConfusionMatrix::correct() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) n += counts[i][i];
  return n;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(correct()) / static_cast<double>(n);
}

double ConfusionMatrix::recall(const std::string& truth_label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != truth_label) continue;
    std::size_t row_total = 0;
    for (std::size_t v : counts[i]) row_total += v;
    return row_total == 0
               ? 0.0
               : static_cast<double>(counts[i][i]) /
                     static_cast<double>(row_total);
  }
  throw ConfigError("confusion matrix has no label '" + truth_label + "'");
}

AccuracyReport evaluate_diagnosis(const circuits::CircuitUnderTest& cut,
                                  const faults::FaultDictionary& dictionary,
                                  const TestVector& vector,
                                  const SamplingPolicy& policy,
                                  const EvaluationOptions& options) {
  if (options.trials == 0) throw ConfigError("evaluation needs >= 1 trial");
  if (!(options.min_abs_deviation > 0.0) ||
      !(options.max_abs_deviation >= options.min_abs_deviation)) {
    throw ConfigError("evaluation deviation range is invalid");
  }
  TestVector tv = vector;
  tv.normalize();
  if (tv.frequencies_hz.empty()) {
    throw ConfigError("evaluation needs a non-empty test vector");
  }

  // Fixed classifier for the whole evaluation.
  const std::vector<FaultTrajectory> trajectories =
      build_trajectories(dictionary, tv.frequencies_hz, policy);
  const DiagnosisEngine engine(trajectories);
  const SpectralSampler sampler(dictionary.golden(), policy);

  // Site list + representative FaultSite objects.
  const std::vector<std::string>& labels = dictionary.site_labels();
  std::vector<faults::FaultSite> sites;
  sites.reserve(labels.size());
  for (const auto& label : labels) {
    const std::size_t first = dictionary.entries_for(label).front();
    sites.push_back(dictionary.entries()[first].fault.site);
  }

  AccuracyReport report;
  report.trials = options.trials;
  report.confusion.labels = labels;
  report.confusion.counts.assign(
      labels.size(), std::vector<std::size_t>(labels.size(), 0));

  const std::vector<AmbiguityGroup> groups = find_ambiguity_groups(dictionary);
  for (const auto& g : groups) report.ambiguity_groups.push_back(g.label());

  Rng rng(options.seed);
  double deviation_error_sum = 0.0;
  double confidence_sum = 0.0;
  std::size_t top2 = 0;
  std::size_t correct_group = 0;

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const std::size_t truth_index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1));
    const double magnitude =
        rng.uniform(options.min_abs_deviation, options.max_abs_deviation);
    const double deviation = rng.bernoulli(0.5) ? magnitude : -magnitude;
    const faults::ParametricFault fault{sites[truth_index], deviation};

    // Build the board: optional tolerance spread on healthy parts, then
    // the unknown fault.
    netlist::Circuit board = cut.circuit;
    if (options.tolerance) {
      std::vector<std::string> frozen;
      if (fault.site.target == faults::FaultSite::Target::kComponentValue) {
        frozen.push_back(fault.site.component);
      }
      board =
          faults::perturb_within_tolerance(board, *options.tolerance, rng,
                                           frozen);
    }
    board = faults::inject(board, fault);

    mna::AcAnalysis analysis(board);
    mna::AcResponse measured = analysis.sweep(tv.frequencies_hz, cut.output_node);
    if (options.noise_sigma > 0.0) {
      measured = faults::add_measurement_noise(
          measured, {options.noise_sigma, rng()});
    }

    const Point observed = sampler.sample(measured, tv.frequencies_hz);
    const Diagnosis diagnosis = engine.diagnose(observed);

    const std::string& predicted = diagnosis.best().site;
    std::size_t predicted_index = labels.size();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == predicted) {
        predicted_index = i;
        break;
      }
    }
    FTDIAG_ASSERT(predicted_index < labels.size(),
                  "diagnosis produced an unknown site label");
    report.confusion.counts[truth_index][predicted_index] += 1;

    confidence_sum += diagnosis.confidence();
    if (same_group(groups, predicted, labels[truth_index])) ++correct_group;
    if (predicted_index == truth_index) {
      report.correct_site += 1;
      deviation_error_sum +=
          std::fabs(diagnosis.best().estimated_deviation - deviation);
    }
    if (diagnosis.ranking.size() >= 2 &&
        (diagnosis.ranking[0].site == labels[truth_index] ||
         diagnosis.ranking[1].site == labels[truth_index])) {
      ++top2;
    }
  }

  report.site_accuracy = static_cast<double>(report.correct_site) /
                         static_cast<double>(report.trials);
  report.group_accuracy = static_cast<double>(correct_group) /
                          static_cast<double>(report.trials);
  report.mean_deviation_error =
      report.correct_site > 0
          ? deviation_error_sum / static_cast<double>(report.correct_site)
          : 0.0;
  report.mean_confidence =
      confidence_sum / static_cast<double>(report.trials);
  report.top2_accuracy =
      static_cast<double>(top2) / static_cast<double>(report.trials);
  return report;
}

}  // namespace ftdiag::core
