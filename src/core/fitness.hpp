/// \file fitness.hpp
/// \brief Fitness functions over trajectory sets.
///
/// The paper's fitness is 1/(1+I) with I the intersection count (§2.4).
/// Alternatives are provided for the ablation benchmarks: a separation
/// margin (how far apart the closest pair of trajectories stays) and a
/// hybrid of both.  All fitnesses map to (0, 1], larger is better.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/intersection.hpp"
#include "core/trajectory.hpp"

namespace ftdiag::core {

/// Typed selector for the built-in fitness functions (replaces the old
/// stringly-typed AtpgConfig::fitness field).
enum class FitnessKind : std::uint8_t {
  kPaper,       ///< the paper's 1/(1+I)
  kSeparation,  ///< normalized minimum trajectory separation
  kHybrid,      ///< weighted blend of both
};

/// Interface: score a trajectory set.
class TrajectoryFitness {
public:
  virtual ~TrajectoryFitness() = default;

  /// Score in (0, 1]; larger means better diagnosability.
  [[nodiscard]] virtual double evaluate(
      const std::vector<FaultTrajectory>& trajectories) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's fitness: 1 / (1 + I).
class IntersectionFitness final : public TrajectoryFitness {
public:
  explicit IntersectionFitness(IntersectionOptions options = {})
      : options_(options) {}

  [[nodiscard]] double evaluate(
      const std::vector<FaultTrajectory>& trajectories) const override;
  [[nodiscard]] std::string name() const override { return "paper-1/(1+I)"; }

  [[nodiscard]] const IntersectionOptions& options() const { return options_; }

private:
  IntersectionOptions options_;
};

/// Separation fitness: s / (s + 1) where s is the minimum pairwise
/// trajectory distance (origin-adjacent contacts excluded) normalized by
/// the largest trajectory excursion.  Rewards spreading trajectories apart
/// even when none intersect.
class SeparationFitness final : public TrajectoryFitness {
public:
  /// \param origin_exclusion fraction of the excursion scale around the
  /// origin within which contacts are structural.
  explicit SeparationFitness(double origin_exclusion = 0.05)
      : origin_exclusion_(origin_exclusion) {}

  [[nodiscard]] double evaluate(
      const std::vector<FaultTrajectory>& trajectories) const override;
  [[nodiscard]] std::string name() const override { return "separation"; }

  /// The raw normalized separation margin in [0, 1].
  [[nodiscard]] double margin(
      const std::vector<FaultTrajectory>& trajectories) const;

private:
  double origin_exclusion_;
};

/// weight * paper + (1 - weight) * separation.
class HybridFitness final : public TrajectoryFitness {
public:
  HybridFitness(double intersection_weight = 0.7,
                IntersectionOptions options = {},
                double origin_exclusion = 0.05);

  [[nodiscard]] double evaluate(
      const std::vector<FaultTrajectory>& trajectories) const override;
  [[nodiscard]] std::string name() const override { return "hybrid"; }

private:
  double weight_;
  IntersectionFitness intersection_;
  SeparationFitness separation_;
};

/// Factory over the typed selector.
[[nodiscard]] std::unique_ptr<TrajectoryFitness> make_fitness(FitnessKind kind);

/// Parse helper for CLI-ish surfaces: "paper" | "separation" | "hybrid".
/// \throws ConfigError for unknown names.
[[nodiscard]] FitnessKind parse_fitness_kind(const std::string& name);

/// Canonical name of a kind (the string parse_fitness_kind accepts).
[[nodiscard]] std::string to_string(FitnessKind kind);

/// Factory by name ("paper", "separation", "hybrid") for CLI-ish configs.
/// \deprecated Prefer make_fitness(parse_fitness_kind(name)).
[[nodiscard]] std::unique_ptr<TrajectoryFitness> make_fitness(
    const std::string& name);

}  // namespace ftdiag::core
