#include "core/fitness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace ftdiag::core {

double IntersectionFitness::evaluate(
    const std::vector<FaultTrajectory>& trajectories) const {
  // Only the count enters the fitness, so skip the per-conflict records
  // (the GA inner loop calls this thousands of times per search).
  IntersectionOptions count_only = options_;
  count_only.collect_conflicts = false;
  const IntersectionReport report =
      count_intersections(trajectories, count_only);
  return 1.0 / (1.0 + static_cast<double>(report.count));
}

double SeparationFitness::margin(
    const std::vector<FaultTrajectory>& trajectories) const {
  if (trajectories.size() < 2) return 1.0;
  double scale = 0.0;
  for (const auto& t : trajectories) {
    scale = std::max(scale, t.max_excursion());
  }
  if (scale <= 0.0) return 0.0;
  const std::size_t dim = trajectories.front().dimension();
  const Point origin(dim, 0.0);
  const double origin_ball = origin_exclusion_ * scale;

  std::vector<std::vector<Segment>> segs;
  segs.reserve(trajectories.size());
  for (const auto& t : trajectories) segs.push_back(t.segments());

  double min_separation = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      for (const auto& a : segs[i]) {
        const double a_to_origin = project_point(origin, a).distance;
        for (const auto& b : segs[j]) {
          // A contact forced by the shared golden point is structural.
          if (a_to_origin <= origin_ball &&
              project_point(origin, b).distance <= origin_ball) {
            continue;
          }
          min_separation =
              std::min(min_separation, segment_segment_distance(a, b));
        }
      }
    }
  }
  if (!std::isfinite(min_separation)) return 0.0;
  return std::min(min_separation / scale, 1.0);
}

double SeparationFitness::evaluate(
    const std::vector<FaultTrajectory>& trajectories) const {
  const double m = margin(trajectories);
  // Map [0, 1] margin into (0, 1] with a soft knee so tiny margins still
  // produce a usable gradient for the optimizer.
  return m / (m + 0.05) * 0.95 + 0.05;
}

HybridFitness::HybridFitness(double intersection_weight,
                             IntersectionOptions options,
                             double origin_exclusion)
    : weight_(intersection_weight),
      intersection_(options),
      separation_(origin_exclusion) {
  if (weight_ < 0.0 || weight_ > 1.0) {
    throw ConfigError("hybrid fitness weight must lie in [0, 1]");
  }
}

double HybridFitness::evaluate(
    const std::vector<FaultTrajectory>& trajectories) const {
  return weight_ * intersection_.evaluate(trajectories) +
         (1.0 - weight_) * separation_.evaluate(trajectories);
}

std::unique_ptr<TrajectoryFitness> make_fitness(FitnessKind kind) {
  switch (kind) {
    case FitnessKind::kPaper:
      return std::make_unique<IntersectionFitness>();
    case FitnessKind::kSeparation:
      return std::make_unique<SeparationFitness>();
    case FitnessKind::kHybrid:
      return std::make_unique<HybridFitness>();
  }
  throw ConfigError("unknown FitnessKind value");
}

FitnessKind parse_fitness_kind(const std::string& name) {
  if (name == "paper") return FitnessKind::kPaper;
  if (name == "separation") return FitnessKind::kSeparation;
  if (name == "hybrid") return FitnessKind::kHybrid;
  throw ConfigError("unknown fitness '" + name +
                    "' (expected paper|separation|hybrid)");
}

std::string to_string(FitnessKind kind) {
  switch (kind) {
    case FitnessKind::kPaper:
      return "paper";
    case FitnessKind::kSeparation:
      return "separation";
    case FitnessKind::kHybrid:
      return "hybrid";
  }
  throw ConfigError("unknown FitnessKind value");
}

std::unique_ptr<TrajectoryFitness> make_fitness(const std::string& name) {
  return make_fitness(parse_fitness_kind(name));
}

}  // namespace ftdiag::core
