/// \file evaluation.hpp
/// \brief Quantitative diagnosis evaluation: inject off-dictionary unknown
/// faults, diagnose them with a test vector, and score site accuracy,
/// deviation error and confusion — the statistics behind the Ext-B
/// benchmark (the paper demonstrates the mechanism but reports no rates).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuits/cut.hpp"
#include "core/test_vector.hpp"
#include "faults/fault_simulator.hpp"
#include "faults/tolerance.hpp"

namespace ftdiag::core {

struct EvaluationOptions {
  std::size_t trials = 200;
  std::uint64_t seed = 7;
  /// Unknown-fault deviation magnitude range (sign drawn at random).
  double min_abs_deviation = 0.05;
  double max_abs_deviation = 0.40;
  /// Multiplicative gaussian measurement noise (sigma, 0 disables).
  double noise_sigma = 0.0;
  /// Perturb non-faulty components within tolerance when set.
  std::optional<faults::ToleranceSpec> tolerance;
};

/// Square confusion matrix over site labels (+ implicit ordering).
struct ConfusionMatrix {
  std::vector<std::string> labels;
  /// counts[truth][predicted].
  std::vector<std::vector<std::size_t>> counts;

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t correct() const;
  [[nodiscard]] double accuracy() const;

  /// Rate at which \p truth_label was predicted correctly.
  [[nodiscard]] double recall(const std::string& truth_label) const;
};

struct AccuracyReport {
  std::size_t trials = 0;
  std::size_t correct_site = 0;
  double site_accuracy = 0.0;
  /// Accuracy at ambiguity-group resolution: a prediction inside the true
  /// site's structural ambiguity group counts as correct (the best any
  /// method can do; see core/ambiguity.hpp).
  double group_accuracy = 0.0;
  /// Labels of the detected ambiguity groups ("R4=R6", "R1", ...).
  std::vector<std::string> ambiguity_groups;
  /// Mean |estimated - true| deviation among correctly-located faults.
  double mean_deviation_error = 0.0;
  double mean_confidence = 0.0;
  /// Trials where the true site was within the top-2 ranking.
  double top2_accuracy = 0.0;
  ConfusionMatrix confusion;
};

/// Monte-Carlo diagnosis accuracy of \p vector on \p cut, with faults drawn
/// from the dictionary's sites at off-grid deviations.
/// \throws ConfigError on inconsistent inputs.
[[nodiscard]] AccuracyReport evaluate_diagnosis(
    const circuits::CircuitUnderTest& cut,
    const faults::FaultDictionary& dictionary, const TestVector& vector,
    const SamplingPolicy& policy, const EvaluationOptions& options = {});

}  // namespace ftdiag::core
