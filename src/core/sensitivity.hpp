/// \file sensitivity.hpp
/// \brief Component sensitivity analysis of the CUT response.
///
/// The normalized sensitivity S_x(f) = d|H(f)| / dln(x) is the local
/// direction a component's fault trajectory leaves the origin with: the
/// trajectory point at small deviation d is approximately d * S_x(f_i) per
/// coordinate.  Sensitivities therefore predict which frequency regions
/// can separate which components, and seed the GA with informed initial
/// individuals (frequencies of maximal pairwise sensitivity-direction
/// spread).
#pragma once

#include <string>
#include <vector>

#include "circuits/cut.hpp"
#include "mna/frequency_grid.hpp"

namespace ftdiag::core {

/// |H| sensitivity curve of one component over a frequency grid.
struct SensitivityCurve {
  std::string site;
  std::vector<double> frequencies_hz;
  /// d|H(f)| / dln(x): positive where increasing x raises the magnitude.
  std::vector<double> values;

  /// Frequency of the largest |sensitivity|.
  [[nodiscard]] double peak_frequency() const;
  [[nodiscard]] double peak_magnitude() const;
};

struct SensitivityOptions {
  /// Relative finite-difference step (central differences).
  double relative_step = 1e-4;
};

/// Central-difference sensitivity of every testable component of \p cut
/// over \p grid.  \throws CircuitError / ConfigError on invalid inputs.
[[nodiscard]] std::vector<SensitivityCurve> compute_sensitivities(
    const circuits::CircuitUnderTest& cut, const mna::FrequencyGrid& grid,
    const SensitivityOptions& options = {});

/// Angle (degrees, in [0, 90]) between two components' sensitivity
/// directions at a frequency pair — 0 means their trajectories leave the
/// origin collinearly (locally indistinguishable), 90 means orthogonal.
[[nodiscard]] double pairwise_separation_angle(const SensitivityCurve& a,
                                               const SensitivityCurve& b,
                                               double f1_hz, double f2_hz);

/// The minimum pairwise separation angle over all component pairs at
/// (f1, f2): a cheap surrogate for trajectory separability used to seed
/// the GA.
[[nodiscard]] double min_separation_angle(
    const std::vector<SensitivityCurve>& curves, double f1_hz, double f2_hz);

/// n-frequency generalization: component c's local trajectory direction at
/// the tuple (f1..fn) is (S_c(f1), ..., S_c(fn)); the score is the minimum
/// pairwise angle (degrees, [0, 90]) between those direction lines over
/// all component pairs.  Matches the 2-argument overload for n = 2.
[[nodiscard]] double min_separation_angle(
    const std::vector<SensitivityCurve>& curves,
    const std::vector<double>& frequencies_hz);

/// Greedy screen: evaluate min_separation_angle over a coarse frequency
/// grid and return the best \p count (f1, f2) pairs, best first.
[[nodiscard]] std::vector<std::pair<double, double>> screen_frequency_pairs(
    const std::vector<SensitivityCurve>& curves, std::size_t grid_points,
    std::size_t count);

/// n-frequency screen behind SearchOptions::seed_with_sensitivity for any
/// vector size: returns up to \p count ascending frequency tuples of size
/// \p tuple_size, best first.  Small tuple spaces are screened
/// exhaustively over the coarse grid; larger ones extend the best pairs
/// greedily, one frequency at a time.  tuple_size 1 falls back to the
/// strongest sensitivity peaks (angles are degenerate in 1-D).
/// \throws ConfigError on empty curves, grid_points < 2 or tuple_size 0.
[[nodiscard]] std::vector<std::vector<double>> screen_frequency_tuples(
    const std::vector<SensitivityCurve>& curves, std::size_t grid_points,
    std::size_t count, std::size_t tuple_size);

}  // namespace ftdiag::core
