/// \file multipoint.hpp
/// \brief Multi-test-point extension of the fault-trajectory method.
///
/// The paper observes a single output.  Some topologies are structurally
/// ambiguous from one node (components entering the transfer function only
/// through a shared product/ratio — see core/ambiguity.hpp); observing a
/// second node can split such groups.  With m observed nodes and n test
/// frequencies the signature space becomes R^(m*n): each trajectory point
/// concatenates the per-node signatures, and the intersection count uses
/// the n-D near-crossing rules.  Everything downstream (trajectories,
/// fitness, diagnosis) is unchanged — only the sampler widens.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/ambiguity.hpp"
#include "core/diagnosis.hpp"
#include "core/test_vector.hpp"
#include "faults/dictionary.hpp"

namespace ftdiag::core {

/// Owns one fault dictionary per observed node and evaluates test vectors
/// in the concatenated signature space.
class MultiPointEvaluator {
public:
  /// Builds one dictionary per node (the expensive step).
  /// \throws ConfigError if nodes is empty or a node does not exist.
  MultiPointEvaluator(const circuits::CircuitUnderTest& cut,
                      const faults::FaultUniverse& universe,
                      std::vector<std::string> observation_nodes,
                      SamplingPolicy policy = {});

  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<faults::FaultDictionary>& dictionaries()
      const {
    return dictionaries_;
  }
  [[nodiscard]] const circuits::CircuitUnderTest& cut() const { return cut_; }

  /// Signature dimension for a test vector of n frequencies.
  [[nodiscard]] std::size_t dimension(std::size_t n_frequencies) const;

  /// Concatenated trajectories (one per fault site).
  [[nodiscard]] std::vector<FaultTrajectory> trajectories(
      const TestVector& vector) const;

  /// Paper fitness 1/(1+I) on the concatenated trajectories.
  [[nodiscard]] double fitness(const TestVector& vector) const;

  /// Classifier over the concatenated space.
  [[nodiscard]] DiagnosisEngine make_engine(const TestVector& vector) const;

  /// "Measure" a board: AC-solve it at the test frequencies, observe every
  /// node, concatenate the golden-relative signature.
  [[nodiscard]] Point observe(const netlist::Circuit& board,
                              const TestVector& vector) const;

  /// Ambiguity groups over the *combined* observations — a group here is
  /// unresolvable even with all observation nodes.
  [[nodiscard]] std::vector<AmbiguityGroup> ambiguity_groups(
      const AmbiguityOptions& options = {}) const;

private:
  circuits::CircuitUnderTest cut_;
  std::vector<std::string> nodes_;
  SamplingPolicy policy_;
  std::vector<faults::FaultDictionary> dictionaries_;
  std::vector<SpectralSampler> samplers_;  ///< one per node
};

}  // namespace ftdiag::core
