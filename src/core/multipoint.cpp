#include "core/multipoint.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mna/ac_analysis.hpp"
#include "util/error.hpp"

namespace ftdiag::core {

MultiPointEvaluator::MultiPointEvaluator(
    const circuits::CircuitUnderTest& cut,
    const faults::FaultUniverse& universe,
    std::vector<std::string> observation_nodes, SamplingPolicy policy)
    : cut_(cut), nodes_(std::move(observation_nodes)), policy_(policy) {
  if (nodes_.empty()) {
    throw ConfigError("multi-point evaluator needs at least one node");
  }
  for (const auto& node : nodes_) {
    if (!cut_.circuit.has_node(node)) {
      throw ConfigError("observation node '" + node + "' not in circuit");
    }
  }
  dictionaries_.reserve(nodes_.size());
  samplers_.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    circuits::CircuitUnderTest view = cut_;
    view.output_node = node;
    dictionaries_.push_back(faults::FaultDictionary::build(view, universe));
    samplers_.emplace_back(dictionaries_.back().golden(), policy_);
  }
}

std::size_t MultiPointEvaluator::dimension(std::size_t n_frequencies) const {
  return nodes_.size() * policy_.dimension(n_frequencies);
}

std::vector<FaultTrajectory> MultiPointEvaluator::trajectories(
    const TestVector& vector) const {
  if (vector.frequencies_hz.empty()) {
    throw ConfigError("test vector has no frequencies");
  }
  // Build the per-node trajectories and concatenate point-wise.  Every
  // dictionary was built from the same universe, so sites and deviation
  // orders agree.
  std::vector<std::vector<FaultTrajectory>> per_node;
  per_node.reserve(nodes_.size());
  for (const auto& dict : dictionaries_) {
    per_node.push_back(
        build_trajectories(dict, vector.frequencies_hz, policy_));
  }
  std::vector<FaultTrajectory> out;
  out.reserve(per_node.front().size());
  for (std::size_t site = 0; site < per_node.front().size(); ++site) {
    std::vector<TrajectoryPoint> points;
    const auto& reference = per_node.front()[site];
    points.reserve(reference.point_count());
    for (std::size_t p = 0; p < reference.point_count(); ++p) {
      TrajectoryPoint point;
      point.deviation = reference.points()[p].deviation;
      for (const auto& node_trajs : per_node) {
        FTDIAG_ASSERT(node_trajs[site].site() == reference.site(),
                      "site order mismatch across node dictionaries");
        const auto& coords = node_trajs[site].points()[p].coords;
        point.coords.insert(point.coords.end(), coords.begin(), coords.end());
      }
      points.push_back(std::move(point));
    }
    out.emplace_back(reference.site(), std::move(points));
  }
  return out;
}

double MultiPointEvaluator::fitness(const TestVector& vector) const {
  return IntersectionFitness().evaluate(trajectories(vector));
}

DiagnosisEngine MultiPointEvaluator::make_engine(
    const TestVector& vector) const {
  return DiagnosisEngine(trajectories(vector));
}

Point MultiPointEvaluator::observe(const netlist::Circuit& board,
                                   const TestVector& vector) const {
  TestVector tv = vector;
  tv.normalize();
  mna::AcAnalysis analysis(board);
  Point observed;
  observed.reserve(dimension(tv.frequencies_hz.size()));
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const auto response = analysis.sweep(tv.frequencies_hz, nodes_[n]);
    const Point part = samplers_[n].sample(response, tv.frequencies_hz);
    observed.insert(observed.end(), part.begin(), part.end());
  }
  return observed;
}

std::vector<AmbiguityGroup> MultiPointEvaluator::ambiguity_groups(
    const AmbiguityOptions& options) const {
  // Merge only sites ambiguous in EVERY node's dictionary: intersect the
  // per-node partitions.
  std::vector<std::vector<AmbiguityGroup>> per_node;
  per_node.reserve(dictionaries_.size());
  for (const auto& dict : dictionaries_) {
    per_node.push_back(find_ambiguity_groups(dict, options));
  }
  const auto& labels = dictionaries_.front().site_labels();

  std::vector<AmbiguityGroup> groups;
  std::vector<bool> assigned(labels.size(), false);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (assigned[i]) continue;
    AmbiguityGroup group;
    group.sites.push_back(labels[i]);
    assigned[i] = true;
    for (std::size_t j = i + 1; j < labels.size(); ++j) {
      if (assigned[j]) continue;
      const bool everywhere = std::all_of(
          per_node.begin(), per_node.end(), [&](const auto& partition) {
            return same_group(partition, labels[i], labels[j]);
          });
      if (everywhere) {
        group.sites.push_back(labels[j]);
        assigned[j] = true;
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace ftdiag::core
