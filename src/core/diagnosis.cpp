#include "core/diagnosis.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace ftdiag::core {

namespace simd = linalg::simd;

const TrajectoryMatch& Diagnosis::best() const {
  if (ranking.empty()) {
    throw ConfigError("diagnosis has no candidates (empty ranking)");
  }
  return ranking.front();
}

double Diagnosis::confidence() const {
  if (ranking.empty()) {
    throw ConfigError("diagnosis has no candidates (empty ranking)");
  }
  if (ranking.size() < 2) return 1.0;
  const double d1 = ranking[0].distance;
  const double d2 = ranking[1].distance;
  if (d2 <= 0.0) return 0.0;  // both exactly on trajectories
  return std::clamp(1.0 - d1 / d2, 0.0, 1.0);
}

std::vector<std::string> Diagnosis::ambiguity_set(double factor) const {
  FTDIAG_ASSERT(factor >= 1.0, "ambiguity factor must be >= 1");
  std::vector<std::string> out;
  if (ranking.empty()) return out;
  const double limit = ranking.front().distance * factor;
  for (const auto& match : ranking) {
    if (match.distance <= limit || match.distance == 0.0) {
      out.push_back(match.site);
    }
  }
  return out;
}

DiagnosisEngine::DiagnosisEngine(std::vector<FaultTrajectory> trajectories)
    : trajectories_(std::move(trajectories)) {
  if (trajectories_.empty()) {
    throw ConfigError("diagnosis engine needs at least one trajectory");
  }
  const std::size_t dim = trajectories_.front().dimension();
  for (const auto& t : trajectories_) {
    if (t.dimension() != dim) {
      throw ConfigError("diagnosis engine: mixed trajectory dimensions");
    }
  }

  // Flatten every trajectory's segments into the coordinate-major SoA
  // planes the scoring kernel reads (a and d = b - a per coordinate).
  soa_.dim = dim;
  soa_.first.reserve(trajectories_.size());
  soa_.count.reserve(trajectories_.size());
  for (const auto& t : trajectories_) {
    soa_.first.push_back(soa_.total);
    const std::size_t count = t.point_count() > 0 ? t.point_count() - 1 : 0;
    soa_.count.push_back(count);
    soa_.total += count;
  }
  soa_.a.resize(dim * soa_.total);
  soa_.d.resize(dim * soa_.total);
  for (std::size_t ti = 0; ti < trajectories_.size(); ++ti) {
    const auto& points = trajectories_[ti].points();
    for (std::size_t s = 0; s < soa_.count[ti]; ++s) {
      const Point& a = points[s].coords;
      const Point& b = points[s + 1].coords;
      for (std::size_t k = 0; k < dim; ++k) {
        soa_.a[k * soa_.total + soa_.first[ti] + s] = a[k];
        soa_.d[k * soa_.total + soa_.first[ti] + s] = b[k] - a[k];
      }
    }
  }
}

namespace {

/// Closest segment of the range [first, first + count) of the SoA planes
/// to point \p p, P::width segments per pack with a ScalarPack tail.
/// Per lane this is exactly project_point()'s arithmetic in the same
/// accumulation order (dd/dp in one coordinate pass, t = clamp(dp/dd),
/// distance = sqrt of the squared residual sum), and lanes are scanned in
/// ascending segment order with a strict '<', so the first minimal
/// segment wins — the scalar loop's tie-breaking exactly.
/// \p index_base is the in-trajectory index of the range's first segment.
template <typename P>
void best_segment(const Point& p, const DiagnosisEngine::SegmentSoa& soa,
                  std::size_t first, std::size_t count,
                  std::size_t index_base, double& best_dist,
                  std::size_t& best_seg, double& best_t) {
  constexpr std::size_t kW = P::width;
  const std::size_t total = soa.total;
  const std::size_t dim = soa.dim;
  const std::size_t full = count - count % kW;
  const P zero = P::broadcast(0.0);
  const P one = P::broadcast(1.0);
  for (std::size_t s = 0; s < full; s += kW) {
    const std::size_t base = first + s;
    P dd = zero;
    P dp = zero;
    for (std::size_t k = 0; k < dim; ++k) {
      const P a = P::load(&soa.a[k * total + base]);
      const P d = P::load(&soa.d[k * total + base]);
      dd = dd + d * d;
      dp = dp + d * (P::broadcast(p[k]) - a);
    }
    // t = clamp(dp/dd, 0, 1) on segments with extent, 0 on degenerate
    // ones (the select also discards the NaN a 0/0 lane produced).
    const P t =
        simd::select(dd > zero, simd::min(one, simd::max(zero, dp / dd)),
                     zero);
    P acc = zero;
    for (std::size_t k = 0; k < dim; ++k) {
      const P a = P::load(&soa.a[k * total + base]);
      const P d = P::load(&soa.d[k * total + base]);
      const P diff = a + t * d - P::broadcast(p[k]);
      acc = acc + diff * diff;
    }
    const P dist = simd::sqrt(acc);
    for (std::size_t lane = 0; lane < kW; ++lane) {
      const double dl = dist[lane];
      if (dl < best_dist) {
        best_dist = dl;
        best_seg = index_base + s + lane;
        best_t = t[lane];
      }
    }
  }
  if constexpr (!std::is_same_v<P, simd::ScalarPack>) {
    if (full < count) {
      best_segment<simd::ScalarPack>(p, soa, first + full, count - full,
                                     index_base + full, best_dist, best_seg,
                                     best_t);
    }
  }
}

template <typename P>
Diagnosis diagnose_impl(const std::vector<FaultTrajectory>& trajectories,
                        const DiagnosisEngine::SegmentSoa& soa,
                        const Point& observed) {
  Diagnosis diagnosis;
  diagnosis.ranking.reserve(trajectories.size());
  for (std::size_t ti = 0; ti < trajectories.size(); ++ti) {
    TrajectoryMatch match;
    match.site = trajectories[ti].site();
    match.distance = std::numeric_limits<double>::infinity();
    best_segment<P>(observed, soa, soa.first[ti], soa.count[ti], 0,
                    match.distance, match.segment_index, match.t);
    match.estimated_deviation =
        trajectories[ti].deviation_on_segment(match.segment_index, match.t);
    diagnosis.ranking.push_back(std::move(match));
  }
  std::sort(diagnosis.ranking.begin(), diagnosis.ranking.end(),
            [](const TrajectoryMatch& a, const TrajectoryMatch& b) {
              return a.distance < b.distance;
            });
  return diagnosis;
}

}  // namespace

Diagnosis DiagnosisEngine::diagnose(const Point& observed) const {
  if (observed.size() != dimension()) {
    throw ConfigError("observed point dimension mismatches trajectories");
  }
  if (simd::enabled()) {
    return diagnose_impl<simd::DefaultPack>(trajectories_, soa_, observed);
  }
  return diagnose_impl<simd::ScalarPack>(trajectories_, soa_, observed);
}

Diagnosis DiagnosisEngine::diagnose_scalar(const Point& observed) const {
  if (observed.size() != dimension()) {
    throw ConfigError("observed point dimension mismatches trajectories");
  }
  Diagnosis diagnosis;
  diagnosis.ranking.reserve(trajectories_.size());
  for (const auto& trajectory : trajectories_) {
    const std::vector<Segment> segments = trajectory.segments();
    TrajectoryMatch match;
    match.site = trajectory.site();
    match.distance = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const Projection proj = project_point(observed, segments[i]);
      if (proj.distance < match.distance) {
        match.distance = proj.distance;
        match.segment_index = i;
        match.t = proj.t;
      }
    }
    match.estimated_deviation =
        trajectory.deviation_on_segment(match.segment_index, match.t);
    diagnosis.ranking.push_back(std::move(match));
  }
  std::sort(diagnosis.ranking.begin(), diagnosis.ranking.end(),
            [](const TrajectoryMatch& a, const TrajectoryMatch& b) {
              return a.distance < b.distance;
            });
  return diagnosis;
}

}  // namespace ftdiag::core
