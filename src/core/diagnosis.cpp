#include "core/diagnosis.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace ftdiag::core {

const TrajectoryMatch& Diagnosis::best() const {
  if (ranking.empty()) {
    throw ConfigError("diagnosis has no candidates (empty ranking)");
  }
  return ranking.front();
}

double Diagnosis::confidence() const {
  if (ranking.empty()) {
    throw ConfigError("diagnosis has no candidates (empty ranking)");
  }
  if (ranking.size() < 2) return 1.0;
  const double d1 = ranking[0].distance;
  const double d2 = ranking[1].distance;
  if (d2 <= 0.0) return 0.0;  // both exactly on trajectories
  return std::clamp(1.0 - d1 / d2, 0.0, 1.0);
}

std::vector<std::string> Diagnosis::ambiguity_set(double factor) const {
  FTDIAG_ASSERT(factor >= 1.0, "ambiguity factor must be >= 1");
  std::vector<std::string> out;
  if (ranking.empty()) return out;
  const double limit = ranking.front().distance * factor;
  for (const auto& match : ranking) {
    if (match.distance <= limit || match.distance == 0.0) {
      out.push_back(match.site);
    }
  }
  return out;
}

DiagnosisEngine::DiagnosisEngine(std::vector<FaultTrajectory> trajectories)
    : trajectories_(std::move(trajectories)) {
  if (trajectories_.empty()) {
    throw ConfigError("diagnosis engine needs at least one trajectory");
  }
  const std::size_t dim = trajectories_.front().dimension();
  for (const auto& t : trajectories_) {
    if (t.dimension() != dim) {
      throw ConfigError("diagnosis engine: mixed trajectory dimensions");
    }
  }
}

Diagnosis DiagnosisEngine::diagnose(const Point& observed) const {
  if (observed.size() != dimension()) {
    throw ConfigError("observed point dimension mismatches trajectories");
  }
  Diagnosis diagnosis;
  diagnosis.ranking.reserve(trajectories_.size());
  for (const auto& trajectory : trajectories_) {
    const std::vector<Segment> segments = trajectory.segments();
    TrajectoryMatch match;
    match.site = trajectory.site();
    match.distance = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const Projection proj = project_point(observed, segments[i]);
      if (proj.distance < match.distance) {
        match.distance = proj.distance;
        match.segment_index = i;
        match.t = proj.t;
      }
    }
    match.estimated_deviation =
        trajectory.deviation_on_segment(match.segment_index, match.t);
    diagnosis.ranking.push_back(std::move(match));
  }
  std::sort(diagnosis.ranking.begin(), diagnosis.ranking.end(),
            [](const TrajectoryMatch& a, const TrajectoryMatch& b) {
              return a.distance < b.distance;
            });
  return diagnosis;
}

}  // namespace ftdiag::core
