/// \file test_vector.hpp
/// \brief Test vectors (sets of test frequencies) and their evaluation
/// against a fault dictionary — the object the GA optimizes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/diagnosis.hpp"
#include "core/fitness.hpp"
#include "core/sampling.hpp"
#include "faults/dictionary.hpp"

namespace ftdiag::core {

/// A candidate test stimulus: the frequencies to sample at (ascending).
struct TestVector {
  std::vector<double> frequencies_hz;

  /// "f1=1.234kHz f2=5.6kHz".
  [[nodiscard]] std::string label() const;

  /// Canonical form: sorted ascending (trajectory geometry is invariant to
  /// frequency order, so (f1,f2) and (f2,f1) are the same vector).
  void normalize();
};

/// Evaluation of one test vector.
struct TestVectorScore {
  TestVector vector;
  double fitness = 0.0;
  std::size_t intersections = 0;   ///< I from the paper fitness's report
  double separation_margin = 0.0;  ///< normalized min trajectory separation
};

/// Binds a dictionary + sampling policy + fitness into a reusable evaluator.
/// This is the GA's objective function: evaluating a candidate never
/// re-runs fault simulation (responses are interpolated).
class TestVectorEvaluator {
public:
  /// \param fitness the optimization objective; defaults to the paper's
  /// 1/(1+I) when null.
  TestVectorEvaluator(const faults::FaultDictionary& dictionary,
                      SamplingPolicy policy = {},
                      std::shared_ptr<const TrajectoryFitness> fitness = {});

  /// Trajectories induced by a candidate.
  [[nodiscard]] std::vector<FaultTrajectory> trajectories(
      const TestVector& candidate) const;

  /// Objective value of a candidate (larger is better).
  [[nodiscard]] double fitness(const TestVector& candidate) const;

  /// Full score: fitness + intersection count + separation margin.
  [[nodiscard]] TestVectorScore score(const TestVector& candidate) const;

  /// Diagnosis engine for an accepted test vector.
  [[nodiscard]] DiagnosisEngine make_engine(const TestVector& accepted) const;

  /// Sampler bound to the dictionary's golden response.
  [[nodiscard]] const SpectralSampler& sampler() const { return sampler_; }

  /// The fitness this evaluator optimizes (shared with EvaluationPipeline).
  [[nodiscard]] const TrajectoryFitness& objective() const { return *fitness_; }

  [[nodiscard]] const faults::FaultDictionary& dictionary() const {
    return dictionary_;
  }
  [[nodiscard]] const SamplingPolicy& policy() const { return policy_; }

private:
  const faults::FaultDictionary& dictionary_;
  SamplingPolicy policy_;
  std::shared_ptr<const TrajectoryFitness> fitness_;
  SpectralSampler sampler_;
};

}  // namespace ftdiag::core
