/// \file atpg.hpp
/// \brief Legacy entry point of the ATPG-for-diagnosis flow.
///
/// \deprecated This layer survives for one PR as a thin shim over the
/// `ftdiag::Session` facade (see session.hpp), which adds lazy shared
/// dictionaries, typed configuration and first-class diagnosis verbs.
/// New code should build a Session via SessionBuilder instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "circuits/cut.hpp"
#include "core/test_vector.hpp"
#include "faults/dictionary.hpp"
#include "ga/genetic_algorithm.hpp"
#include "session.hpp"

namespace ftdiag::core {

/// \deprecated Flat predecessor of ftdiag::SessionOptions; kept so existing
/// call sites compile unchanged for one more PR.
struct AtpgConfig {
  /// Number of test frequencies in the vector (the paper uses 2).
  std::size_t n_frequencies = 2;
  SamplingPolicy policy{};
  faults::DeviationSpec deviations = faults::DeviationSpec::paper();
  ga::GaConfig ga = ga::GaConfig::paper();
  FitnessKind fitness = FitnessKind::kPaper;
  std::uint64_t seed = 42;
  /// Fault-simulation engine knobs; the GA's fitness evaluations run
  /// against the dictionary this engine builds, so factorization reuse
  /// and the thread fan-out speed the ATPG search up as well.
  faults::SimOptions sim{};

  /// Inject sensitivity-screened frequency pairs into the GA's initial
  /// population (2-frequency vectors only; see core/sensitivity.hpp).
  bool seed_with_sensitivity = false;
  std::size_t sensitivity_seed_count = 8;

  void check() const;

  /// The equivalent facade configuration.
  [[nodiscard]] SessionOptions to_session_options() const;
};

/// \deprecated Alias of the facade's result type (identical layout).
using AtpgResult = ftdiag::TestGenResult;

/// \deprecated Thin wrapper over ftdiag::Session; the dictionary is now
/// lazy and shared process-wide, so constructing many flows over the same
/// CUT performs fault simulation only once.
class AtpgFlow {
public:
  AtpgFlow(circuits::CircuitUnderTest cut, AtpgConfig config = {});

  [[nodiscard]] const circuits::CircuitUnderTest& cut() const {
    return session_.cut();
  }
  [[nodiscard]] const faults::FaultDictionary& dictionary() const {
    return *session_.dictionary();
  }
  [[nodiscard]] const AtpgConfig& config() const { return config_; }
  [[nodiscard]] const TestVectorEvaluator& evaluator() const {
    return session_.evaluator();
  }

  /// The facade underneath (shared handle; copies share the dictionary).
  [[nodiscard]] const Session& session() const { return session_; }

  /// Run the configured GA.
  [[nodiscard]] AtpgResult run() const { return session_.run_search(); }

  /// Run an arbitrary optimizer against the same objective (baselines).
  [[nodiscard]] AtpgResult run_with(const ga::FrequencyOptimizer& optimizer,
                                    std::uint64_t seed_override) const {
    return session_.run_search(optimizer, seed_override);
  }

  /// Score an externally chosen test vector against this flow's dictionary.
  [[nodiscard]] TestVectorScore score(const TestVector& vector) const {
    return session_.score(vector);
  }

  /// Genome (log10 f) -> test vector.
  [[nodiscard]] static TestVector to_test_vector(
      const std::vector<double>& genes) {
    return Session::to_test_vector(genes);
  }

  /// Gene bounds derived from the CUT's recommended band.
  [[nodiscard]] ga::GeneBounds bounds() const { return session_.bounds(); }

private:
  AtpgConfig config_;
  Session session_;
};

}  // namespace ftdiag::core
