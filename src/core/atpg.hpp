/// \file atpg.hpp
/// \brief The end-to-end ATPG-for-diagnosis flow of the paper: fault
/// simulation -> dictionary -> GA search for the test frequencies whose
/// fault trajectories do not intersect -> diagnosis-ready test vector.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "circuits/cut.hpp"
#include "core/test_vector.hpp"
#include "faults/dictionary.hpp"
#include "ga/genetic_algorithm.hpp"

namespace ftdiag::core {

struct AtpgConfig {
  /// Number of test frequencies in the vector (the paper uses 2).
  std::size_t n_frequencies = 2;
  SamplingPolicy policy{};
  faults::DeviationSpec deviations = faults::DeviationSpec::paper();
  ga::GaConfig ga = ga::GaConfig::paper();
  /// "paper" (1/(1+I)), "separation" or "hybrid".
  std::string fitness = "paper";
  std::uint64_t seed = 42;

  /// Inject sensitivity-screened frequency pairs into the GA's initial
  /// population (2-frequency vectors only; see core/sensitivity.hpp).
  bool seed_with_sensitivity = false;
  std::size_t sensitivity_seed_count = 8;

  void check() const;
};

struct AtpgResult {
  TestVectorScore best;                ///< the accepted test vector + score
  ga::OptimizerResult search;          ///< GA convergence history
  std::size_t dictionary_faults = 0;   ///< dictionary size that backed it
};

/// Owns the dictionary for one CUT and runs frequency-search flows on it.
class AtpgFlow {
public:
  /// Builds the fault dictionary eagerly (the expensive part).
  AtpgFlow(circuits::CircuitUnderTest cut, AtpgConfig config = {});

  [[nodiscard]] const circuits::CircuitUnderTest& cut() const { return cut_; }
  [[nodiscard]] const faults::FaultDictionary& dictionary() const {
    return dictionary_;
  }
  [[nodiscard]] const AtpgConfig& config() const { return config_; }
  [[nodiscard]] const TestVectorEvaluator& evaluator() const {
    return *evaluator_;
  }

  /// Run the configured GA.
  [[nodiscard]] AtpgResult run() const;

  /// Run an arbitrary optimizer against the same objective (baselines).
  [[nodiscard]] AtpgResult run_with(const ga::FrequencyOptimizer& optimizer,
                                    std::uint64_t seed_override) const;

  /// Score an externally chosen test vector against this flow's dictionary.
  [[nodiscard]] TestVectorScore score(const TestVector& vector) const;

  /// Genome (log10 f) -> test vector.
  [[nodiscard]] static TestVector to_test_vector(
      const std::vector<double>& genes);

  /// Gene bounds derived from the CUT's recommended band.
  [[nodiscard]] ga::GeneBounds bounds() const;

private:
  circuits::CircuitUnderTest cut_;
  AtpgConfig config_;
  faults::FaultDictionary dictionary_;
  std::shared_ptr<const TrajectoryFitness> fitness_;
  std::unique_ptr<TestVectorEvaluator> evaluator_;
};

}  // namespace ftdiag::core
