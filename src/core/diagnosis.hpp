/// \file diagnosis.hpp
/// \brief The diagnosis step (the paper's Fig. 3 right): assign an observed
/// signature point to the nearest trajectory segment by perpendicular
/// distance; the owning component is the diagnosis and the projection
/// parameter estimates the deviation.
#pragma once

#include <string>
#include <vector>

#include "core/trajectory.hpp"
#include "linalg/simd.hpp"

namespace ftdiag::core {

/// Distance of an observed point to one whole trajectory.
struct TrajectoryMatch {
  std::string site;
  double distance = 0.0;            ///< to the closest segment
  std::size_t segment_index = 0;
  double t = 0.0;                   ///< projection parameter on that segment
  double estimated_deviation = 0.0; ///< interpolated along the segment
};

/// Full diagnosis result: candidates ordered by ascending distance.
/// DiagnosisEngine::diagnose guarantees a non-empty ranking (one match per
/// trajectory); a default-constructed Diagnosis has none.
struct Diagnosis {
  std::vector<TrajectoryMatch> ranking;  ///< best first

  /// The top-ranked match.  \throws ConfigError on an empty ranking (which
  /// only a default-constructed Diagnosis can have).
  [[nodiscard]] const TrajectoryMatch& best() const;

  /// Margin in (0, 1]: 1 - d_best/d_second.  1 when unambiguous (single
  /// candidate), ~0 when the two best trajectories are equidistant.
  /// \throws ConfigError on an empty ranking.
  [[nodiscard]] double confidence() const;

  /// Sites whose distance is within \p factor of the best — the ambiguity
  /// set a cautious test program would report.
  [[nodiscard]] std::vector<std::string> ambiguity_set(
      double factor = 1.25) const;
};

/// Nearest-trajectory classifier over a fixed trajectory set.
class DiagnosisEngine {
public:
  /// \throws ConfigError on an empty or dimension-mismatched set.
  explicit DiagnosisEngine(std::vector<FaultTrajectory> trajectories);

  [[nodiscard]] const std::vector<FaultTrajectory>& trajectories() const {
    return trajectories_;
  }
  [[nodiscard]] std::size_t dimension() const {
    return trajectories_.front().dimension();
  }

  /// Diagnose an observed signature point.
  /// \throws ConfigError if the point dimension mismatches.
  ///
  /// The segment scoring runs on the SoA planes below, several segments
  /// per SIMD lane (ScalarPack when the FTDIAG_SIMD knob is off).  Both
  /// widths evaluate exactly the formulas of diagnose_scalar() in the
  /// same order, with first-minimal-segment tie-breaking preserved.
  [[nodiscard]] Diagnosis diagnose(const Point& observed) const;

  /// The original per-segment scalar loop over project_point() — the
  /// differential twin of diagnose(), kept public so tests can pin the
  /// two against each other on any input.
  [[nodiscard]] Diagnosis diagnose_scalar(const Point& observed) const;

  /// All trajectories' segments flattened into coordinate-major SoA
  /// planes: coordinate k of segment s (global index) lives at
  /// [k * total + s] — a at the segment start, d = b - a its direction.
  /// Trajectory ti owns the contiguous range [first[ti],
  /// first[ti] + count[ti]).  Built once at construction so diagnose()
  /// allocates nothing per call.
  struct SegmentSoa {
    std::size_t total = 0;  ///< segment count over all trajectories
    std::size_t dim = 0;
    std::vector<std::size_t> first, count;  ///< per trajectory
    linalg::simd::AlignedVector a, d;
  };

private:
  std::vector<FaultTrajectory> trajectories_;
  SegmentSoa soa_;
};

}  // namespace ftdiag::core
