/// \file diagnosis.hpp
/// \brief The diagnosis step (the paper's Fig. 3 right): assign an observed
/// signature point to the nearest trajectory segment by perpendicular
/// distance; the owning component is the diagnosis and the projection
/// parameter estimates the deviation.
#pragma once

#include <string>
#include <vector>

#include "core/trajectory.hpp"

namespace ftdiag::core {

/// Distance of an observed point to one whole trajectory.
struct TrajectoryMatch {
  std::string site;
  double distance = 0.0;            ///< to the closest segment
  std::size_t segment_index = 0;
  double t = 0.0;                   ///< projection parameter on that segment
  double estimated_deviation = 0.0; ///< interpolated along the segment
};

/// Full diagnosis result: candidates ordered by ascending distance.
/// DiagnosisEngine::diagnose guarantees a non-empty ranking (one match per
/// trajectory); a default-constructed Diagnosis has none.
struct Diagnosis {
  std::vector<TrajectoryMatch> ranking;  ///< best first

  /// The top-ranked match.  \throws ConfigError on an empty ranking (which
  /// only a default-constructed Diagnosis can have).
  [[nodiscard]] const TrajectoryMatch& best() const;

  /// Margin in (0, 1]: 1 - d_best/d_second.  1 when unambiguous (single
  /// candidate), ~0 when the two best trajectories are equidistant.
  /// \throws ConfigError on an empty ranking.
  [[nodiscard]] double confidence() const;

  /// Sites whose distance is within \p factor of the best — the ambiguity
  /// set a cautious test program would report.
  [[nodiscard]] std::vector<std::string> ambiguity_set(
      double factor = 1.25) const;
};

/// Nearest-trajectory classifier over a fixed trajectory set.
class DiagnosisEngine {
public:
  /// \throws ConfigError on an empty or dimension-mismatched set.
  explicit DiagnosisEngine(std::vector<FaultTrajectory> trajectories);

  [[nodiscard]] const std::vector<FaultTrajectory>& trajectories() const {
    return trajectories_;
  }
  [[nodiscard]] std::size_t dimension() const {
    return trajectories_.front().dimension();
  }

  /// Diagnose an observed signature point.
  /// \throws ConfigError if the point dimension mismatches.
  [[nodiscard]] Diagnosis diagnose(const Point& observed) const;

private:
  std::vector<FaultTrajectory> trajectories_;
};

}  // namespace ftdiag::core
