#include "core/ambiguity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vector_ops.hpp"
#include "util/error.hpp"

namespace ftdiag::core {

bool AmbiguityGroup::contains(const std::string& site) const {
  return std::find(sites.begin(), sites.end(), site) != sites.end();
}

std::string AmbiguityGroup::label() const {
  std::string out;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (i != 0) out += '=';
    out += sites[i];
  }
  return out;
}

namespace {

/// Signature matrix of one site: rows = deviations, cols = probe
/// frequencies, entries = golden-relative |H|.
std::vector<std::vector<double>> site_signature(
    const faults::FaultDictionary& dictionary, const std::string& site,
    const std::vector<double>& probes) {
  std::vector<std::vector<double>> rows;
  for (std::size_t idx : dictionary.entries_for(site)) {
    const auto& entry = dictionary.entries()[idx];
    std::vector<double> row;
    row.reserve(probes.size());
    for (double f : probes) {
      row.push_back(entry.response.magnitude_at(f) -
                    dictionary.golden().magnitude_at(f));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double signature_scale(const std::vector<std::vector<double>>& signature) {
  double scale = 0.0;
  for (const auto& row : signature) {
    for (double v : row) scale = std::max(scale, std::fabs(v));
  }
  return scale;
}

}  // namespace

std::vector<AmbiguityGroup> find_ambiguity_groups(
    const faults::FaultDictionary& dictionary,
    const AmbiguityOptions& options) {
  const auto& labels = dictionary.site_labels();
  if (labels.empty()) return {};

  std::vector<double> probes = options.probe_frequencies_hz;
  if (probes.empty()) {
    const auto& grid = dictionary.frequencies();
    probes = linalg::logspace(grid.front(), grid.back(), 16);
  }

  std::vector<std::vector<std::vector<double>>> signatures;
  signatures.reserve(labels.size());
  for (const auto& site : labels) {
    signatures.push_back(site_signature(dictionary, site, probes));
  }

  // Union-find over sites.
  std::vector<std::size_t> parent(labels.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = i + 1; j < labels.size(); ++j) {
      const auto& a = signatures[i];
      const auto& b = signatures[j];
      if (a.size() != b.size()) continue;  // different deviation grids
      const double scale =
          std::max({signature_scale(a), signature_scale(b), 1e-300});
      double max_diff = 0.0;
      for (std::size_t d = 0; d < a.size(); ++d) {
        for (std::size_t f = 0; f < probes.size(); ++f) {
          max_diff = std::max(max_diff, std::fabs(a[d][f] - b[d][f]));
        }
      }
      if (max_diff <= options.relative_tolerance * scale) {
        parent[find(i)] = find(j);
      }
    }
  }

  // Collect groups in first-member order.
  std::vector<AmbiguityGroup> groups;
  std::vector<std::size_t> group_index(labels.size(),
                                       static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t root = find(i);
    if (group_index[root] == static_cast<std::size_t>(-1)) {
      group_index[root] = groups.size();
      groups.emplace_back();
    }
    groups[group_index[root]].sites.push_back(labels[i]);
  }
  return groups;
}

std::size_t group_of(const std::vector<AmbiguityGroup>& groups,
                     const std::string& site) {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].contains(site)) return g;
  }
  return groups.size();
}

bool same_group(const std::vector<AmbiguityGroup>& groups,
                const std::string& predicted, const std::string& truth) {
  const std::size_t gp = group_of(groups, predicted);
  return gp < groups.size() && gp == group_of(groups, truth);
}

}  // namespace ftdiag::core
