/// \file intersection.hpp
/// \brief Counting pathway conflicts between fault trajectories — the
/// quantity I in the paper's fitness 1/(1+I).
///
/// All trajectories share the origin (the golden point), so contacts at the
/// origin are structural and are excluded.  In 2-D (two test frequencies)
/// crossings are counted exactly with the robust segment predicates; in
/// higher dimensions, where generic polylines do not cross exactly, a pair
/// of segments closer than a relative epsilon counts as a conflict.
#pragma once

#include <string>
#include <vector>

#include "core/trajectory.hpp"

namespace ftdiag::core {

/// One counted conflict.
struct TrajectoryConflict {
  std::string site_a;
  std::string site_b;
  std::size_t segment_a = 0;  ///< segment index within trajectory a
  std::size_t segment_b = 0;
  Point at;                   ///< representative conflict location
  double separation = 0.0;    ///< 0 for exact crossings, distance for near
};

struct IntersectionReport {
  std::size_t count = 0;  ///< I of the paper's fitness
  std::vector<TrajectoryConflict> conflicts;
};

struct IntersectionOptions {
  /// Contacts closer than origin_exclusion * (largest trajectory excursion)
  /// to the origin are treated as the structural origin contact.
  double origin_exclusion = 1e-6;
  /// n-D (n > 2) near-miss threshold as a fraction of the largest
  /// trajectory excursion.
  double near_threshold = 1e-3;
  /// Count collinear overlaps (shared pathways) as conflicts.  The paper's
  /// fitness penalizes "common pathways" explicitly.
  bool count_overlaps = true;
};

/// Count conflicts between every pair of distinct trajectories.
/// \throws ConfigError if trajectories have mismatched dimensions.
[[nodiscard]] IntersectionReport count_intersections(
    const std::vector<FaultTrajectory>& trajectories,
    const IntersectionOptions& options = {});

}  // namespace ftdiag::core
