/// \file intersection.hpp
/// \brief Counting pathway conflicts between fault trajectories — the
/// quantity I in the paper's fitness 1/(1+I).
///
/// All trajectories share the origin (the golden point), so contacts at the
/// origin are structural and are excluded.  In 2-D (two test frequencies)
/// crossings are counted exactly with the robust segment predicates; in
/// higher dimensions, where generic polylines do not cross exactly, a pair
/// of segments closer than a relative epsilon counts as a conflict.
///
/// Two sweep algorithms produce the same report: the exact all-pairs sweep
/// (O(sites^2 x segments^2) predicate calls) and a uniform-grid pruned
/// sweep that bins conservatively padded segment bounding boxes and only
/// runs the predicates on pairs whose boxes share a cell.  The pruned sweep
/// is the default; the exact sweep remains for differential verification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.hpp"

namespace ftdiag::core {

/// One counted conflict.
struct TrajectoryConflict {
  std::string site_a;
  std::string site_b;
  std::size_t segment_a = 0;  ///< segment index within trajectory a
  std::size_t segment_b = 0;
  Point at;                   ///< representative conflict location
  double separation = 0.0;    ///< 0 for exact crossings, distance for near
};

struct IntersectionReport {
  std::size_t count = 0;  ///< I of the paper's fitness
  std::vector<TrajectoryConflict> conflicts;
};

/// Which candidate-pair sweep count_intersections runs.  Both produce
/// identical reports (same conflicts, same order); kPruned only skips
/// segment pairs whose padded bounding boxes provably cannot conflict.
enum class IntersectionAlgorithm : std::uint8_t {
  kPruned,  ///< uniform-grid bounding-box pruning (default)
  kExact,   ///< the all-pairs reference sweep
};

struct IntersectionOptions {
  /// Contacts closer than origin_exclusion * (largest trajectory excursion)
  /// to the origin are treated as the structural origin contact.
  double origin_exclusion = 1e-6;
  /// n-D (n > 2) near-miss threshold as a fraction of the largest
  /// trajectory excursion.
  double near_threshold = 1e-3;
  /// Count collinear overlaps (shared pathways) as conflicts.  The paper's
  /// fitness penalizes "common pathways" explicitly.
  bool count_overlaps = true;
  /// Candidate-pair sweep; kExact is the differential-testing reference.
  IntersectionAlgorithm algorithm = IntersectionAlgorithm::kPruned;
  /// Record per-conflict metadata.  The GA's fitness only needs the count,
  /// so its inner loop turns this off and skips the site-label/location
  /// bookkeeping (the count is identical either way).
  bool collect_conflicts = true;
};

/// Count conflicts between every pair of distinct trajectories.
/// \throws ConfigError if trajectories have mismatched dimensions.
[[nodiscard]] IntersectionReport count_intersections(
    const std::vector<FaultTrajectory>& trajectories,
    const IntersectionOptions& options = {});

}  // namespace ftdiag::core
