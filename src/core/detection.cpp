#include "core/detection.hpp"

#include <algorithm>
#include <cmath>

#include "faults/fault_injector.hpp"
#include "faults/fault_simulator.hpp"
#include "mna/ac_analysis.hpp"
#include "util/error.hpp"

namespace ftdiag::core {

namespace {

/// Signature of one board (optionally noisy) at the test frequencies.
Point measure_board(const netlist::Circuit& board,
                    const circuits::CircuitUnderTest& cut,
                    const SpectralSampler& sampler, const TestVector& vector,
                    double noise_sigma, Rng& rng) {
  mna::AcAnalysis analysis(board);
  mna::AcResponse response =
      analysis.sweep(vector.frequencies_hz, cut.output_node);
  if (noise_sigma > 0.0) {
    response = faults::add_measurement_noise(response, {noise_sigma, rng()});
  }
  return sampler.sample(response, vector.frequencies_hz);
}

}  // namespace

FaultDetector FaultDetector::calibrate(
    const circuits::CircuitUnderTest& cut,
    const faults::FaultDictionary& dictionary, const TestVector& vector,
    const SamplingPolicy& policy, const DetectionCalibration& calibration) {
  if (calibration.healthy_boards < 10) {
    throw ConfigError("detector calibration needs >= 10 healthy boards");
  }
  if (!(calibration.false_alarm_target > 0.0) ||
      calibration.false_alarm_target >= 1.0) {
    throw ConfigError("false-alarm target must lie in (0, 1)");
  }
  TestVector tv = vector;
  tv.normalize();
  if (tv.frequencies_hz.empty()) {
    throw ConfigError("detector needs a non-empty test vector");
  }

  const SpectralSampler sampler(dictionary.golden(), policy);
  Rng rng(calibration.seed);

  FaultDetector detector;
  detector.healthy_radii_.reserve(calibration.healthy_boards);
  for (std::size_t i = 0; i < calibration.healthy_boards; ++i) {
    const auto board = faults::perturb_within_tolerance(
        cut.circuit, calibration.tolerance, rng);
    const Point p = measure_board(board, cut, sampler, tv,
                                  calibration.noise_sigma, rng);
    detector.healthy_radii_.push_back(norm(p));
  }
  std::sort(detector.healthy_radii_.begin(), detector.healthy_radii_.end());

  // Quantile at (1 - false-alarm target), clamped to the sample.
  const double q = 1.0 - calibration.false_alarm_target;
  const std::size_t index = std::min(
      detector.healthy_radii_.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(
                                       detector.healthy_radii_.size())));
  detector.threshold_ = detector.healthy_radii_[index];
  // A fully nominal calibration (zero tolerance, zero noise) collapses the
  // cloud to ~0; keep a sane numeric floor.
  detector.threshold_ = std::max(detector.threshold_, 1e-12);
  return detector;
}

bool FaultDetector::is_faulty(const Point& observed) const {
  return norm(observed) > threshold_;
}

CoverageReport measure_coverage(const circuits::CircuitUnderTest& cut,
                                const faults::FaultDictionary& dictionary,
                                const TestVector& vector,
                                const SamplingPolicy& policy,
                                const FaultDetector& detector,
                                const DetectionCalibration& calibration,
                                const CoverageOptions& options) {
  if (options.faults_per_site == 0) {
    throw ConfigError("coverage needs >= 1 fault per site");
  }
  TestVector tv = vector;
  tv.normalize();
  const SpectralSampler sampler(dictionary.golden(), policy);
  Rng rng(options.seed);

  CoverageReport report;
  std::size_t detected_total = 0, faults_total = 0;
  for (const auto& label : dictionary.site_labels()) {
    const std::size_t first = dictionary.entries_for(label).front();
    const faults::FaultSite site = dictionary.entries()[first].fault.site;

    SiteCoverage coverage;
    coverage.site = label;
    coverage.total = options.faults_per_site;
    for (std::size_t i = 0; i < options.faults_per_site; ++i) {
      const double magnitude =
          rng.uniform(options.min_abs_deviation, options.max_abs_deviation);
      const faults::ParametricFault fault{
          site, rng.bernoulli(0.5) ? magnitude : -magnitude};
      netlist::Circuit board = faults::perturb_within_tolerance(
          cut.circuit, calibration.tolerance, rng,
          site.target == faults::FaultSite::Target::kComponentValue
              ? std::vector<std::string>{site.component}
              : std::vector<std::string>{});
      board = faults::inject(board, fault);
      const Point p = measure_board(board, cut, sampler, tv,
                                    calibration.noise_sigma, rng);
      coverage.detected += detector.is_faulty(p) ? 1 : 0;
    }
    detected_total += coverage.detected;
    faults_total += coverage.total;
    report.per_site.push_back(coverage);
  }
  report.overall_coverage =
      static_cast<double>(detected_total) / static_cast<double>(faults_total);

  // Fresh healthy boards for the realized false-alarm rate.
  std::size_t false_alarms = 0;
  for (std::size_t i = 0; i < options.healthy_boards; ++i) {
    const auto board = faults::perturb_within_tolerance(
        cut.circuit, calibration.tolerance, rng);
    const Point p = measure_board(board, cut, sampler, tv,
                                  calibration.noise_sigma, rng);
    false_alarms += detector.is_faulty(p) ? 1 : 0;
  }
  report.false_alarm_rate = static_cast<double>(false_alarms) /
                            static_cast<double>(options.healthy_boards);
  return report;
}

}  // namespace ftdiag::core
