#include "core/trajectory.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ftdiag::core {

FaultTrajectory::FaultTrajectory(std::string site_label,
                                 std::vector<TrajectoryPoint> points)
    : site_(std::move(site_label)), points_(std::move(points)) {
  if (points_.size() < 2) {
    throw ConfigError("trajectory '" + site_ + "' needs at least 2 points");
  }
  FTDIAG_ASSERT(
      std::is_sorted(points_.begin(), points_.end(),
                     [](const TrajectoryPoint& a, const TrajectoryPoint& b) {
                       return a.deviation < b.deviation;
                     }),
      "trajectory points must be ordered by deviation");
  const std::size_t dim = points_.front().coords.size();
  for (const auto& p : points_) {
    FTDIAG_ASSERT(p.coords.size() == dim, "trajectory dimension mismatch");
  }
}

std::vector<Segment> FaultTrajectory::segments() const {
  std::vector<Segment> out;
  out.reserve(points_.size() - 1);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    out.push_back({points_[i - 1].coords, points_[i].coords});
  }
  return out;
}

double FaultTrajectory::deviation_on_segment(std::size_t segment_index,
                                             double t) const {
  FTDIAG_ASSERT(segment_index + 1 < points_.size(),
                "segment index out of range");
  const double d0 = points_[segment_index].deviation;
  const double d1 = points_[segment_index + 1].deviation;
  return d0 + t * (d1 - d0);
}

double FaultTrajectory::length() const {
  std::vector<Point> pts;
  pts.reserve(points_.size());
  for (const auto& p : points_) pts.push_back(p.coords);
  return polyline_length(pts);
}

double FaultTrajectory::max_excursion() const {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, norm(p.coords));
  return best;
}

std::vector<FaultTrajectory> build_trajectories(
    const faults::FaultDictionary& dictionary,
    const std::vector<double>& frequencies_hz, const SamplingPolicy& policy) {
  const SpectralSampler sampler(dictionary.golden(), policy);
  const Point golden = sampler.golden_point(frequencies_hz);

  std::vector<FaultTrajectory> out;
  out.reserve(dictionary.site_labels().size());
  for (const auto& site : dictionary.site_labels()) {
    std::vector<TrajectoryPoint> points;
    const auto& indices = dictionary.entries_for(site);
    points.reserve(indices.size() + 1);
    bool golden_inserted = false;
    for (std::size_t idx : indices) {
      const auto& entry = dictionary.entries()[idx];
      if (!golden_inserted && entry.fault.deviation > 0.0) {
        points.push_back({0.0, golden});
        golden_inserted = true;
      }
      if (entry.fault.deviation == 0.0) {
        // Universe kept the nominal point explicitly; use the golden
        // signature for it rather than re-sampling.
        points.push_back({0.0, golden});
        golden_inserted = true;
        continue;
      }
      points.push_back(
          {entry.fault.deviation, sampler.sample(entry.response, frequencies_hz)});
    }
    if (!golden_inserted) points.push_back({0.0, golden});
    std::sort(points.begin(), points.end(),
              [](const TrajectoryPoint& a, const TrajectoryPoint& b) {
                return a.deviation < b.deviation;
              });
    out.emplace_back(site, std::move(points));
  }
  return out;
}

}  // namespace ftdiag::core
