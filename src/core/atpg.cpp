#include "core/atpg.hpp"

namespace ftdiag::core {

void AtpgConfig::check() const { to_session_options().check(); }

SessionOptions AtpgConfig::to_session_options() const {
  SessionOptions options;
  options.search.n_frequencies = n_frequencies;
  options.search.fitness = fitness;
  options.search.ga = ga;
  options.search.seed = seed;
  options.search.seed_with_sensitivity = seed_with_sensitivity;
  options.search.sensitivity_seed_count = sensitivity_seed_count;
  options.deviations = deviations;
  options.sampling = policy;
  options.sim = sim;
  return options;
}

AtpgFlow::AtpgFlow(circuits::CircuitUnderTest cut, AtpgConfig config)
    : config_(config),
      session_(SessionBuilder(std::move(cut))
                   .options(config.to_session_options())
                   .build()) {
  // The legacy contract builds the dictionary eagerly; trigger it here so
  // construction cost stays where callers expect it (the shared cache
  // still makes repeat builds free).
  (void)session_.dictionary();
}

}  // namespace ftdiag::core
