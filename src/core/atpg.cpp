#include "core/atpg.hpp"

#include <cmath>

#include "core/sensitivity.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ftdiag::core {

void AtpgConfig::check() const {
  if (n_frequencies == 0) {
    throw ConfigError("ATPG needs at least one test frequency");
  }
  ga.check();
  (void)deviations.deviations();
  (void)make_fitness(fitness);  // validates the name
}

AtpgFlow::AtpgFlow(circuits::CircuitUnderTest cut, AtpgConfig config)
    : cut_(std::move(cut)),
      config_(config),
      dictionary_(faults::FaultDictionary::build(
          cut_, faults::FaultUniverse::over_testable(cut_, config.deviations))) {
  config_.check();
  fitness_ = std::shared_ptr<const TrajectoryFitness>(
      make_fitness(config_.fitness).release());
  evaluator_ = std::make_unique<TestVectorEvaluator>(dictionary_,
                                                     config_.policy, fitness_);
}

TestVector AtpgFlow::to_test_vector(const std::vector<double>& genes) {
  TestVector tv;
  tv.frequencies_hz.reserve(genes.size());
  for (double g : genes) tv.frequencies_hz.push_back(std::pow(10.0, g));
  tv.normalize();
  return tv;
}

ga::GeneBounds AtpgFlow::bounds() const {
  return {std::log10(cut_.band_low_hz), std::log10(cut_.band_high_hz)};
}

AtpgResult AtpgFlow::run() const {
  ga::GaConfig ga_config = config_.ga;
  if (config_.seed_with_sensitivity && config_.n_frequencies == 2) {
    // Screen frequency pairs by sensitivity-direction spread (cheap: no
    // fault simulation) and hand the best ones to the GA as seeds.
    const auto curves = compute_sensitivities(
        cut_, mna::FrequencyGrid::log_sweep(cut_.band_low_hz,
                                            cut_.band_high_hz, 60));
    for (const auto& [f1, f2] :
         screen_frequency_pairs(curves, 30, config_.sensitivity_seed_count)) {
      ga_config.seed_genomes.push_back({std::log10(f1), std::log10(f2)});
    }
  }
  const ga::GeneticAlgorithm optimizer(ga_config);
  return run_with(optimizer, config_.seed);
}

AtpgResult AtpgFlow::run_with(const ga::FrequencyOptimizer& optimizer,
                              std::uint64_t seed_override) const {
  const ga::Objective objective = [this](const std::vector<double>& genes) {
    return evaluator_->fitness(to_test_vector(genes));
  };
  Rng rng(seed_override);
  AtpgResult result;
  result.search =
      optimizer.optimize(objective, config_.n_frequencies, bounds(), rng);
  result.best = evaluator_->score(to_test_vector(result.search.best.genes));
  result.dictionary_faults = dictionary_.fault_count();
  log::info(str::format(
      "ATPG(%s) on %s: best fitness %.4f (%zu intersections) with %s after "
      "%zu evaluations",
      optimizer.name().c_str(), cut_.name.c_str(), result.best.fitness,
      result.best.intersections, result.best.vector.label().c_str(),
      result.search.evaluations));
  return result;
}

TestVectorScore AtpgFlow::score(const TestVector& vector) const {
  return evaluator_->score(vector);
}

}  // namespace ftdiag::core
