/// \file ambiguity.hpp
/// \brief Structural ambiguity-group detection.
///
/// Two fault sites are *ambiguous* when their trajectories coincide (or
/// nearly coincide) for every test-frequency choice — e.g. components that
/// enter the transfer function only through a shared product or ratio
/// (Tow-Thomas R4/R6).  No test vector can separate them, so diagnosis and
/// its evaluation should operate at ambiguity-group resolution.
#pragma once

#include <string>
#include <vector>

#include "core/trajectory.hpp"
#include "faults/dictionary.hpp"

namespace ftdiag::core {

/// One group of mutually indistinguishable sites (singletons for
/// distinguishable components).  Sites keep dictionary order.
struct AmbiguityGroup {
  std::vector<std::string> sites;

  [[nodiscard]] bool contains(const std::string& site) const;
  [[nodiscard]] std::string label() const;  ///< "R4=R6" or "R1"
};

struct AmbiguityOptions {
  /// Two trajectories are merged when their deviation-aligned distance is
  /// below this fraction of the larger trajectory's excursion.
  double relative_tolerance = 1e-3;
  /// Probe frequencies used to compare responses.  Empty: use a log grid
  /// of 16 points over the dictionary's frequency range.
  std::vector<double> probe_frequencies_hz;
};

/// Detect ambiguity groups directly from the dictionary: sites are merged
/// when their *responses* (not just one projection) match deviation-by-
/// deviation on the probe grid.  This is test-vector independent, so a
/// group found here is unresolvable by any frequency choice over the grid.
[[nodiscard]] std::vector<AmbiguityGroup> find_ambiguity_groups(
    const faults::FaultDictionary& dictionary,
    const AmbiguityOptions& options = {});

/// Group index of a site within groups (or groups.size() if absent).
[[nodiscard]] std::size_t group_of(const std::vector<AmbiguityGroup>& groups,
                                   const std::string& site);

/// True when \p predicted and \p truth fall in the same group — "correct
/// at ambiguity-group resolution".
[[nodiscard]] bool same_group(const std::vector<AmbiguityGroup>& groups,
                              const std::string& predicted,
                              const std::string& truth);

}  // namespace ftdiag::core
