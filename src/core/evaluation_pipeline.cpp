#include "core/evaluation_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/threads.hpp"

namespace ftdiag::core {

namespace {

/// Process-wide GA-pipeline cache metrics (`ftdiag_pipeline_*`); the
/// per-instance PipelineStats struct keeps its exact local counts.
struct PipelineMetrics {
  ftdiag::obs::Counter& genomes_evaluated;
  ftdiag::obs::Counter& genome_hits;
  ftdiag::obs::Counter& column_hits;
  ftdiag::obs::Counter& column_misses;

  static PipelineMetrics& get() {
    static PipelineMetrics* m = [] {
      auto& reg = ftdiag::obs::Registry::global();
      return new PipelineMetrics{
          reg.counter("ftdiag_pipeline_genomes_evaluated_total", {},
                      "genome fitness evaluations requested"),
          reg.counter("ftdiag_pipeline_genome_hits_total", {},
                      "evaluations answered from the fitness memo"),
          reg.counter("ftdiag_pipeline_column_hits_total", {},
                      "signature columns answered from the cache"),
          reg.counter("ftdiag_pipeline_column_misses_total", {},
                      "signature columns interpolated from scratch"),
      };
    }();
    return *m;
  }
};

}  // namespace

namespace {

/// Marks the golden point in a site plan.
constexpr std::size_t kGoldenStep = static_cast<std::size_t>(-1);

}  // namespace

void PipelineOptions::check() const {
  if (!(frequency_quantum > 0.0)) {
    throw ConfigError("pipeline frequency quantum must be positive");
  }
}

std::size_t PipelineOptions::resolved_threads() const {
  // One resolution rule for the whole code base (FTDIAG_THREADS override,
  // hardware concurrency as the default).  A lane count beyond the
  // persistent pool's width just means fewer lanes attach — the pool
  // never oversubscribes the machine.
  return util::resolve_threads(threads);
}

/// Interpolated signature samples of every dictionary entry (and the
/// golden response) at one quantized frequency.  A column is a pure
/// function of its key, so concurrent rebuild races are benign.
struct EvaluationPipeline::Column {
  double golden_mag = 0.0;
  double golden_phase = 0.0;
  std::vector<double> entry_mag;    ///< one slot per dictionary entry
  std::vector<double> entry_phase;  ///< filled only when the policy needs it
};

/// The per-site recipe build_trajectories follows, precomputed once: which
/// entry (or the golden point) supplies each vertex, in deviation order.
struct EvaluationPipeline::SitePlan {
  std::string site;
  struct Step {
    std::size_t entry = kGoldenStep;
    double deviation = 0.0;
  };
  std::vector<Step> steps;
};

EvaluationPipeline::EvaluationPipeline(const TestVectorEvaluator& evaluator,
                                       PipelineOptions options)
    : evaluator_(evaluator), options_(options) {
  options_.check();

  const faults::FaultDictionary& dictionary = evaluator_.dictionary();
  plans_.reserve(dictionary.site_labels().size());
  for (const auto& site : dictionary.site_labels()) {
    SitePlan plan;
    plan.site = site;
    const auto& indices = dictionary.entries_for(site);
    plan.steps.reserve(indices.size() + 1);
    bool golden_inserted = false;
    for (std::size_t idx : indices) {
      const double deviation = dictionary.entries()[idx].fault.deviation;
      if (!golden_inserted && deviation > 0.0) {
        plan.steps.push_back({kGoldenStep, 0.0});
        golden_inserted = true;
      }
      if (deviation == 0.0) {
        // Universe kept the nominal point explicitly; use the golden
        // signature for it rather than re-sampling.
        plan.steps.push_back({kGoldenStep, 0.0});
        golden_inserted = true;
        continue;
      }
      plan.steps.push_back({idx, deviation});
    }
    if (!golden_inserted) plan.steps.push_back({kGoldenStep, 0.0});
    std::stable_sort(plan.steps.begin(), plan.steps.end(),
                     [](const SitePlan::Step& a, const SitePlan::Step& b) {
                       return a.deviation < b.deviation;
                     });
    plans_.push_back(std::move(plan));
  }

  // Interpolation tables, usable when every response shares one grid (true
  // for any dictionary built by one sweep).
  const mna::AcResponse& golden = dictionary.golden();
  shared_grid_ = true;
  for (const auto& entry : dictionary.entries()) {
    if (entry.response.frequencies() != golden.frequencies()) {
      shared_grid_ = false;
      break;
    }
  }
  if (shared_grid_) {
    grid_size_ = golden.size();
    const std::size_t responses = dictionary.entries().size() + 1;
    response_values_.reserve(responses);
    response_values_.push_back(&golden.values());
    for (const auto& entry : dictionary.entries()) {
      response_values_.push_back(&entry.response.values());
    }
    // Build the interpolation tables straight off the dictionary's
    // consolidated SoA planes — one linear pass over two contiguous
    // arrays instead of a pointer-chase through per-entry vectors.  The
    // planes hold the same bits as values(), and the mag/log/arg math is
    // unchanged, so columns stay bit-identical to
    // AcResponse::interpolate.
    const faults::FaultDictionary::SignaturePlanes& planes =
        dictionary.planes();
    FTDIAG_ASSERT(planes.grid == grid_size_ &&
                      planes.responses == responses,
                  "dictionary planes mismatch the shared grid");
    table_mag_.resize(responses * grid_size_);
    table_log_mag_.resize(responses * grid_size_);
    table_phase_.resize(responses * grid_size_);
    for (std::size_t i = 0; i < responses * grid_size_; ++i) {
      const mna::Complex v(planes.re[i], planes.im[i]);
      const double mag = std::abs(v);
      table_mag_[i] = mag;
      table_log_mag_[i] = mag > 0.0 ? std::log(mag) : 0.0;
      table_phase_[i] = std::arg(v);
    }
  }
}

EvaluationPipeline::~EvaluationPipeline() = default;

double EvaluationPipeline::snap(double gene) const {
  return static_cast<double>(std::llround(gene / options_.frequency_quantum)) *
         options_.frequency_quantum;
}

EvaluationPipeline::Column EvaluationPipeline::build_column(
    std::int64_t key) const {
  const double f_hz =
      std::pow(10.0, static_cast<double>(key) * options_.frequency_quantum);
  const SamplingPolicy& policy = evaluator_.policy();
  const faults::FaultDictionary& dictionary = evaluator_.dictionary();
  const auto& entries = dictionary.entries();

  Column column;
  column.entry_mag.resize(entries.size());
  if (policy.include_phase) column.entry_phase.resize(entries.size());

  auto store = [&](std::size_t r, const mna::Complex& h) {
    const double mag = policy.scale == MagnitudeScale::kLinear
                           ? std::abs(h)
                           : linalg::to_db(h);
    if (r == 0) {
      column.golden_mag = mag;
      if (policy.include_phase) column.golden_phase = std::arg(h);
    } else {
      column.entry_mag[r - 1] = mag;
      if (policy.include_phase) column.entry_phase[r - 1] = std::arg(h);
    }
  };

  if (shared_grid_) {
    // One locate serves every response; values are reconstructed from the
    // precomputed tables, bit-identical to AcResponse::interpolate.
    const mna::AcResponse::GridPosition pos =
        dictionary.golden().locate(f_hz);
    constexpr double kPi = 3.14159265358979323846;
    for (std::size_t r = 0; r < response_values_.size(); ++r) {
      if (pos.lo == pos.hi) {
        store(r, (*response_values_[r])[pos.lo]);
        continue;
      }
      const std::size_t base = r * grid_size_;
      const double mag_a = table_mag_[base + pos.lo];
      const double mag_b = table_mag_[base + pos.hi];
      double m;
      if (mag_a > 0.0 && mag_b > 0.0) {
        m = std::exp((1.0 - pos.t) * table_log_mag_[base + pos.lo] +
                     pos.t * table_log_mag_[base + pos.hi]);
      } else {
        m = (1.0 - pos.t) * mag_a + pos.t * mag_b;
      }
      const double ph_a = table_phase_[base + pos.lo];
      double ph_b = table_phase_[base + pos.hi];
      while (ph_b - ph_a > kPi) ph_b -= 2.0 * kPi;
      while (ph_b - ph_a < -kPi) ph_b += 2.0 * kPi;
      const double ph = (1.0 - pos.t) * ph_a + pos.t * ph_b;
      store(r, {m * std::cos(ph), m * std::sin(ph)});
    }
    return column;
  }

  store(0, dictionary.golden().interpolate(f_hz));
  for (std::size_t e = 0; e < entries.size(); ++e) {
    store(e + 1, entries[e].response.interpolate(f_hz));
  }
  return column;
}

std::shared_ptr<const EvaluationPipeline::Column>
EvaluationPipeline::column_for(std::int64_t key) const {
  if (options_.cache_signatures) {
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        PipelineMetrics::get().column_hits.inc();
        ++stats_.column_hits;
        return it->second;
      }
    }
    auto built = std::make_shared<const Column>(build_column(key));
    std::lock_guard<std::mutex> lock(cache_mutex_);
    PipelineMetrics::get().column_misses.inc();
    ++stats_.column_misses;
    // A concurrent builder may have won the race; columns are pure
    // functions of the key, so keeping the first insertion is safe.
    auto [it, inserted] = cache_.emplace(key, std::move(built));
    return it->second;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    PipelineMetrics::get().column_misses.inc();
    ++stats_.column_misses;
  }
  return std::make_shared<const Column>(build_column(key));
}

std::vector<FaultTrajectory> EvaluationPipeline::assemble(
    const std::vector<std::shared_ptr<const Column>>& columns) const {
  const SamplingPolicy& policy = evaluator_.policy();
  const std::size_t n = columns.size();
  const std::size_t dim = policy.dimension(n);

  // The golden signature: the origin under a golden-relative policy, the
  // raw golden samples otherwise.
  Point golden(dim, 0.0);
  if (!policy.golden_relative) {
    for (std::size_t i = 0; i < n; ++i) golden[i] = columns[i]->golden_mag;
    if (policy.include_phase) {
      for (std::size_t i = 0; i < n; ++i) {
        golden[n + i] = columns[i]->golden_phase;
      }
    }
  }

  std::vector<FaultTrajectory> out;
  out.reserve(plans_.size());
  for (const auto& plan : plans_) {
    std::vector<TrajectoryPoint> points;
    points.reserve(plan.steps.size());
    for (const auto& step : plan.steps) {
      if (step.entry == kGoldenStep) {
        points.push_back({0.0, golden});
        continue;
      }
      Point p(dim, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = columns[i]->entry_mag[step.entry];
        if (policy.golden_relative) p[i] -= columns[i]->golden_mag;
      }
      if (policy.include_phase) {
        for (std::size_t i = 0; i < n; ++i) {
          p[n + i] = columns[i]->entry_phase[step.entry];
          if (policy.golden_relative) p[n + i] -= columns[i]->golden_phase;
        }
      }
      points.push_back({step.deviation, std::move(p)});
    }
    out.emplace_back(plan.site, std::move(points));
  }
  return out;
}

void EvaluationPipeline::snapped_keys(const std::vector<double>& genes,
                                      std::vector<std::int64_t>& keys) const {
  FTDIAG_ASSERT(!genes.empty(), "pipeline needs >= 1 gene");
  keys.clear();
  keys.reserve(genes.size());
  for (double g : genes) {
    keys.push_back(std::llround(g / options_.frequency_quantum));
  }
  // Canonical ascending order: trajectory geometry is invariant to
  // frequency order (TestVector::normalize does the same).
  std::sort(keys.begin(), keys.end());
}

std::vector<FaultTrajectory> EvaluationPipeline::trajectories_for_keys(
    const std::vector<std::int64_t>& keys,
    std::vector<std::shared_ptr<const Column>>& columns) const {
  columns.clear();
  columns.reserve(keys.size());
  for (std::int64_t key : keys) columns.push_back(column_for(key));
  return assemble(columns);
}

std::vector<FaultTrajectory> EvaluationPipeline::trajectories(
    const std::vector<double>& genes) const {
  EvalScratch scratch;
  snapped_keys(genes, scratch.keys);
  return trajectories_for_keys(scratch.keys, scratch.columns);
}

double EvaluationPipeline::evaluate_with(const std::vector<double>& genes,
                                         EvalScratch& scratch) const {
  snapped_keys(genes, scratch.keys);
  if (options_.cache_signatures) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = fitness_memo_.find(scratch.keys);
    if (it != fitness_memo_.end()) {
      PipelineMetrics::get().genome_hits.inc();
      PipelineMetrics::get().genomes_evaluated.inc();
      ++stats_.genome_hits;
      ++stats_.genomes_evaluated;
      return it->second;
    }
  }
  const double fitness = evaluator_.objective().evaluate(
      trajectories_for_keys(scratch.keys, scratch.columns));
  PipelineMetrics::get().genomes_evaluated.inc();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++stats_.genomes_evaluated;
    if (options_.cache_signatures) {
      fitness_memo_.emplace(scratch.keys, fitness);
    }
  }
  return fitness;
}

double EvaluationPipeline::evaluate_one(const std::vector<double>& genes) const {
  EvalScratch scratch;
  return evaluate_with(genes, scratch);
}

std::vector<double> EvaluationPipeline::evaluate(
    const std::vector<std::vector<double>>& genomes) const {
  std::vector<double> scores(genomes.size(), 0.0);
  const std::size_t threads = options_.resolved_threads();
  // Per-lane scratch: one genome's key/column buffers are recycled by
  // every later genome the lane evaluates.
  std::vector<EvalScratch> scratch(
      std::max<std::size_t>(1, std::min(threads, genomes.size())));
  par::parallel_for_lanes(genomes.size(), threads,
                          [&](std::size_t lane, std::size_t i) {
                            scores[i] = evaluate_with(genomes[i],
                                                      scratch[lane]);
                          });
  return scores;
}

PipelineStats EvaluationPipeline::stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return stats_;
}

}  // namespace ftdiag::core
