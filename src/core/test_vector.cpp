#include "core/test_vector.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::core {

std::string TestVector::label() const {
  std::string out;
  for (std::size_t i = 0; i < frequencies_hz.size(); ++i) {
    if (i != 0) out += ' ';
    out += str::format("f%zu=%s", i + 1,
                       units::format_hz(frequencies_hz[i]).c_str());
  }
  return out;
}

void TestVector::normalize() {
  std::sort(frequencies_hz.begin(), frequencies_hz.end());
}

TestVectorEvaluator::TestVectorEvaluator(
    const faults::FaultDictionary& dictionary, SamplingPolicy policy,
    std::shared_ptr<const TrajectoryFitness> fitness)
    : dictionary_(dictionary),
      policy_(policy),
      fitness_(fitness ? std::move(fitness)
                       : std::make_shared<IntersectionFitness>()),
      sampler_(dictionary.golden(), policy) {
  if (dictionary_.fault_count() == 0) {
    throw ConfigError("test-vector evaluator needs a non-empty dictionary");
  }
}

std::vector<FaultTrajectory> TestVectorEvaluator::trajectories(
    const TestVector& candidate) const {
  if (candidate.frequencies_hz.empty()) {
    throw ConfigError("test vector has no frequencies");
  }
  return build_trajectories(dictionary_, candidate.frequencies_hz, policy_);
}

double TestVectorEvaluator::fitness(const TestVector& candidate) const {
  return fitness_->evaluate(trajectories(candidate));
}

TestVectorScore TestVectorEvaluator::score(const TestVector& candidate) const {
  const std::vector<FaultTrajectory> trajs = trajectories(candidate);
  TestVectorScore out;
  out.vector = candidate;
  out.fitness = fitness_->evaluate(trajs);
  out.intersections = count_intersections(trajs).count;
  out.separation_margin = SeparationFitness().margin(trajs);
  return out;
}

DiagnosisEngine TestVectorEvaluator::make_engine(
    const TestVector& accepted) const {
  return DiagnosisEngine(trajectories(accepted));
}

}  // namespace ftdiag::core
