/// \file geometry.hpp
/// \brief Points, segments and the geometric predicates the trajectory
/// method is built on: robust 2-D segment intersection, point-to-segment
/// projection, and n-D segment-to-segment distance.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace ftdiag::core {

/// A point of the signature space R^n (n = number of test frequencies,
/// possibly doubled when phase coordinates are enabled).
using Point = std::vector<double>;

/// Euclidean distance.
[[nodiscard]] double distance(const Point& a, const Point& b);

/// Euclidean norm.
[[nodiscard]] double norm(const Point& p);

/// a - b.
[[nodiscard]] Point subtract(const Point& a, const Point& b);

/// Directed segment in R^n.
struct Segment {
  Point a;
  Point b;

  [[nodiscard]] double length() const { return distance(a, b); }
  [[nodiscard]] std::size_t dimension() const { return a.size(); }
};

/// Result of projecting a point onto a segment.
struct Projection {
  double distance = 0.0;  ///< distance from the point to the closest point
  double t = 0.0;         ///< clamped parameter in [0,1] along a->b
  Point closest;          ///< the closest point itself
};

/// Closest point of \p segment to \p p (works in any dimension).
[[nodiscard]] Projection project_point(const Point& p, const Segment& segment);

/// How two 2-D segments relate.
enum class SegmentRelation {
  kDisjoint,        ///< no common point
  kProperCrossing,  ///< interiors cross at a single point
  kTouching,        ///< single common point involving an endpoint
  kCollinearOverlap ///< collinear with a shared sub-segment
};

/// Classification of a 2-D segment pair, with the representative common
/// point (crossing point, touch point, or overlap midpoint).
struct Intersection2d {
  SegmentRelation relation = SegmentRelation::kDisjoint;
  Point at;  ///< meaningful unless kDisjoint
};

/// Robust 2-D segment intersection via orientation predicates with a
/// relative epsilon.  \throws ConfigError if either segment is not 2-D.
[[nodiscard]] Intersection2d intersect_segments_2d(const Segment& s,
                                                   const Segment& t);

/// Endpoint form of intersect_segments_2d — lets hot loops test segments
/// stored as consecutive polyline vertices without copying them into
/// Segment objects.
[[nodiscard]] Intersection2d intersect_segments_2d(const Point& sa,
                                                   const Point& sb,
                                                   const Point& ta,
                                                   const Point& tb);

/// Result of classify_segments_2d: the relation plus the representative
/// common point as scalars (meaningful unless kDisjoint).
struct Classification2d {
  SegmentRelation relation = SegmentRelation::kDisjoint;
  double at_x = 0.0;
  double at_y = 0.0;
};

/// Scalar-pointer core of the robust 2-D intersection test: each argument
/// points at a 2-D coordinate pair.  Intended for sweeps that keep segment
/// endpoints in flat arrays; arithmetic is identical to
/// intersect_segments_2d (which delegates here).
[[nodiscard]] Classification2d classify_segments_2d(const double* sa,
                                                    const double* sb,
                                                    const double* ta,
                                                    const double* tb);

/// Minimum distance between two segments in any dimension (clamped
/// quadratic minimization; exact for non-degenerate segments).
[[nodiscard]] double segment_segment_distance(const Segment& s,
                                              const Segment& t);

/// Endpoint form of segment_segment_distance.
[[nodiscard]] double segment_segment_distance(const Point& sa, const Point& sb,
                                              const Point& ta, const Point& tb);

/// Scalar-pointer core of segment_segment_distance (each argument points
/// at \p n coordinates); the Point overloads delegate here.
[[nodiscard]] double segment_segment_distance(const double* sa,
                                              const double* sb,
                                              const double* ta,
                                              const double* tb, std::size_t n);

/// Distance from \p p to the segment (a, b) without building Projection.
[[nodiscard]] double point_segment_distance(const Point& p, const Point& a,
                                            const Point& b);

/// Scalar-pointer core of point_segment_distance.
[[nodiscard]] double point_segment_distance(const double* p, const double* a,
                                            const double* b, std::size_t n);

/// Total length of a polyline.
[[nodiscard]] double polyline_length(const std::vector<Point>& points);

}  // namespace ftdiag::core
