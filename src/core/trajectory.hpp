/// \file trajectory.hpp
/// \brief Fault trajectories (the paper's §2.3): the polyline traced in
/// signature space by one component's deviation sweep, passing through the
/// origin at 0 % deviation.
#pragma once

#include <string>
#include <vector>

#include "core/geometry.hpp"
#include "core/sampling.hpp"
#include "faults/dictionary.hpp"

namespace ftdiag::core {

/// One vertex of a trajectory.
struct TrajectoryPoint {
  double deviation = 0.0;  ///< fractional deviation (-0.4 .. +0.4)
  Point coords;            ///< signature-space position
};

/// A component's parametric fault trajectory: vertices ordered by
/// deviation, with the golden point inserted at deviation 0.
class FaultTrajectory {
public:
  FaultTrajectory(std::string site_label, std::vector<TrajectoryPoint> points);

  [[nodiscard]] const std::string& site() const { return site_; }
  [[nodiscard]] const std::vector<TrajectoryPoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t point_count() const { return points_.size(); }
  [[nodiscard]] std::size_t dimension() const {
    return points_.empty() ? 0 : points_.front().coords.size();
  }

  /// Consecutive-vertex segments (point_count() - 1 of them).
  [[nodiscard]] std::vector<Segment> segments() const;

  /// Segment i spans deviations [points()[i].deviation,
  /// points()[i+1].deviation]; interpolate a deviation at parameter t.
  [[nodiscard]] double deviation_on_segment(std::size_t segment_index,
                                            double t) const;

  /// Polyline length (how far the sweep moves the signature — a quick
  /// sensitivity indicator for the site).
  [[nodiscard]] double length() const;

  /// Largest distance of any vertex from the origin.
  [[nodiscard]] double max_excursion() const;

private:
  std::string site_;
  std::vector<TrajectoryPoint> points_;
};

/// Build one trajectory per dictionary site at the given test frequencies.
/// The golden signature (origin under the default policy) is inserted at
/// deviation 0 so each trajectory is connected through nominal.
[[nodiscard]] std::vector<FaultTrajectory> build_trajectories(
    const faults::FaultDictionary& dictionary,
    const std::vector<double>& frequencies_hz, const SamplingPolicy& policy);

}  // namespace ftdiag::core
