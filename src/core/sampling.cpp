#include "core/sampling.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ftdiag::core {

SpectralSampler::SpectralSampler(mna::AcResponse golden, SamplingPolicy policy)
    : golden_(std::move(golden)), policy_(policy) {
  if (golden_.empty()) {
    throw ConfigError("spectral sampler needs a non-empty golden response");
  }
}

Point SpectralSampler::raw_point(
    const mna::AcResponse& response,
    const std::vector<double>& frequencies_hz) const {
  FTDIAG_ASSERT(!frequencies_hz.empty(), "sampling needs >= 1 frequency");
  Point p;
  p.reserve(policy_.dimension(frequencies_hz.size()));
  for (double f : frequencies_hz) {
    const mna::Complex h = response.interpolate(f);
    switch (policy_.scale) {
      case MagnitudeScale::kLinear:
        p.push_back(std::abs(h));
        break;
      case MagnitudeScale::kDecibel:
        p.push_back(linalg::to_db(h));
        break;
    }
  }
  if (policy_.include_phase) {
    for (double f : frequencies_hz) {
      p.push_back(std::arg(response.interpolate(f)));
    }
  }
  return p;
}

Point SpectralSampler::sample(const mna::AcResponse& response,
                              const std::vector<double>& frequencies_hz) const {
  Point p = raw_point(response, frequencies_hz);
  if (policy_.golden_relative) {
    const Point g = raw_point(golden_, frequencies_hz);
    for (std::size_t i = 0; i < p.size(); ++i) p[i] -= g[i];
  }
  return p;
}

Point SpectralSampler::golden_point(
    const std::vector<double>& frequencies_hz) const {
  if (policy_.golden_relative) {
    return Point(policy_.dimension(frequencies_hz.size()), 0.0);
  }
  return raw_point(golden_, frequencies_hz);
}

}  // namespace ftdiag::core
