#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/vector_ops.hpp"
#include "mna/ac_analysis.hpp"
#include "util/error.hpp"

namespace ftdiag::core {

namespace {

/// Log-frequency linear interpolation of a sensitivity curve.
double value_at(const SensitivityCurve& curve, double f_hz) {
  const auto& freqs = curve.frequencies_hz;
  FTDIAG_ASSERT(!freqs.empty(), "empty sensitivity curve");
  if (f_hz <= freqs.front()) return curve.values.front();
  if (f_hz >= freqs.back()) return curve.values.back();
  const auto upper = std::upper_bound(freqs.begin(), freqs.end(), f_hz);
  const std::size_t hi = static_cast<std::size_t>(upper - freqs.begin());
  const std::size_t lo = hi - 1;
  const double t = (std::log(f_hz) - std::log(freqs[lo])) /
                   (std::log(freqs[hi]) - std::log(freqs[lo]));
  return (1.0 - t) * curve.values[lo] + t * curve.values[hi];
}

}  // namespace

double SensitivityCurve::peak_frequency() const {
  FTDIAG_ASSERT(!values.empty(), "empty sensitivity curve");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (std::fabs(values[i]) > std::fabs(values[best])) best = i;
  }
  return frequencies_hz[best];
}

double SensitivityCurve::peak_magnitude() const {
  FTDIAG_ASSERT(!values.empty(), "empty sensitivity curve");
  double best = 0.0;
  for (double v : values) best = std::max(best, std::fabs(v));
  return best;
}

std::vector<SensitivityCurve> compute_sensitivities(
    const circuits::CircuitUnderTest& cut, const mna::FrequencyGrid& grid,
    const SensitivityOptions& options) {
  if (!(options.relative_step > 0.0) || options.relative_step > 0.1) {
    throw ConfigError("sensitivity step must lie in (0, 0.1]");
  }
  cut.check();
  const std::vector<double> freqs = grid.frequencies();
  const double h = options.relative_step;

  std::vector<SensitivityCurve> curves;
  curves.reserve(cut.testable.size());
  for (const auto& name : cut.testable) {
    netlist::Circuit plus = cut.circuit;
    plus.scale_value(name, 1.0 + h);
    netlist::Circuit minus = cut.circuit;
    minus.scale_value(name, 1.0 - h);

    const auto resp_plus =
        mna::AcAnalysis(plus).sweep(freqs, cut.output_node);
    const auto resp_minus =
        mna::AcAnalysis(minus).sweep(freqs, cut.output_node);

    SensitivityCurve curve;
    curve.site = name;
    curve.frequencies_hz = freqs;
    curve.values.reserve(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      // d|H|/dln x  ~  (|H(x(1+h))| - |H(x(1-h))|) / (2h)
      curve.values.push_back(
          (resp_plus.magnitude(i) - resp_minus.magnitude(i)) / (2.0 * h));
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

double pairwise_separation_angle(const SensitivityCurve& a,
                                 const SensitivityCurve& b, double f1_hz,
                                 double f2_hz) {
  const double ax = value_at(a, f1_hz), ay = value_at(a, f2_hz);
  const double bx = value_at(b, f1_hz), by = value_at(b, f2_hz);
  const double na = std::hypot(ax, ay);
  const double nb = std::hypot(bx, by);
  if (na <= 0.0 || nb <= 0.0) return 0.0;  // a dead direction separates nothing
  // Angle between LINES (trajectories run both ways): use |cos|.
  const double cosine =
      std::clamp(std::fabs(ax * bx + ay * by) / (na * nb), 0.0, 1.0);
  return std::acos(cosine) * 180.0 / std::numbers::pi;
}

double min_separation_angle(const std::vector<SensitivityCurve>& curves,
                            double f1_hz, double f2_hz) {
  if (curves.size() < 2) return 90.0;
  double worst = 90.0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    for (std::size_t j = i + 1; j < curves.size(); ++j) {
      worst = std::min(
          worst, pairwise_separation_angle(curves[i], curves[j], f1_hz, f2_hz));
    }
  }
  return worst;
}

double min_separation_angle(const std::vector<SensitivityCurve>& curves,
                            const std::vector<double>& frequencies_hz) {
  if (frequencies_hz.empty()) {
    throw ConfigError("separation angle needs >= 1 frequency");
  }
  if (curves.size() < 2) return 90.0;

  // Sampled direction vectors, one per component.
  std::vector<std::vector<double>> directions(curves.size());
  for (std::size_t c = 0; c < curves.size(); ++c) {
    directions[c].reserve(frequencies_hz.size());
    for (double f : frequencies_hz) {
      directions[c].push_back(value_at(curves[c], f));
    }
  }

  double worst = 90.0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    for (std::size_t j = i + 1; j < curves.size(); ++j) {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (std::size_t k = 0; k < frequencies_hz.size(); ++k) {
        dot += directions[i][k] * directions[j][k];
        na += directions[i][k] * directions[i][k];
        nb += directions[j][k] * directions[j][k];
      }
      if (na <= 0.0 || nb <= 0.0) return 0.0;  // a dead direction
      // Angle between LINES (trajectories run both ways): use |cos|.
      const double cosine = std::clamp(
          std::fabs(dot) / std::sqrt(na * nb), 0.0, 1.0);
      worst = std::min(worst, std::acos(cosine) * 180.0 / std::numbers::pi);
    }
  }
  return worst;
}

std::vector<std::pair<double, double>> screen_frequency_pairs(
    const std::vector<SensitivityCurve>& curves, std::size_t grid_points,
    std::size_t count) {
  if (curves.empty()) throw ConfigError("screening needs sensitivity curves");
  if (grid_points < 2) throw ConfigError("screening needs >= 2 grid points");
  const auto& freqs = curves.front().frequencies_hz;
  const std::vector<double> candidates =
      linalg::logspace(freqs.front(), freqs.back(), grid_points);

  struct Scored {
    double angle;
    double f1, f2;
  };
  std::vector<Scored> scored;
  scored.reserve(grid_points * (grid_points - 1) / 2);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      scored.push_back({min_separation_angle(curves, candidates[i],
                                             candidates[j]),
                        candidates[i], candidates[j]});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.angle > b.angle; });

  std::vector<std::pair<double, double>> out;
  for (std::size_t i = 0; i < scored.size() && i < count; ++i) {
    out.emplace_back(scored[i].f1, scored[i].f2);
  }
  return out;
}

std::vector<std::vector<double>> screen_frequency_tuples(
    const std::vector<SensitivityCurve>& curves, std::size_t grid_points,
    std::size_t count, std::size_t tuple_size) {
  if (curves.empty()) throw ConfigError("screening needs sensitivity curves");
  if (grid_points < 2) throw ConfigError("screening needs >= 2 grid points");
  if (tuple_size == 0) throw ConfigError("screening needs tuple size >= 1");

  std::vector<std::vector<double>> out;
  if (count == 0) return out;

  if (tuple_size == 1) {
    // 1-D direction angles are degenerate (every direction is collinear);
    // seed with the strongest sensitivity peaks instead, best first.
    std::vector<const SensitivityCurve*> ranked;
    ranked.reserve(curves.size());
    for (const auto& c : curves) ranked.push_back(&c);
    std::sort(ranked.begin(), ranked.end(),
              [](const SensitivityCurve* a, const SensitivityCurve* b) {
                return a->peak_magnitude() > b->peak_magnitude();
              });
    for (const auto* curve : ranked) {
      const double f = curve->peak_frequency();
      if (std::find_if(out.begin(), out.end(), [&](const auto& t) {
            return t.front() == f;
          }) != out.end()) {
        continue;
      }
      out.push_back({f});
      if (out.size() >= count) break;
    }
    return out;
  }

  if (tuple_size == 2) {
    for (const auto& [f1, f2] : screen_frequency_pairs(curves, grid_points,
                                                       count)) {
      out.push_back({f1, f2});
    }
    return out;
  }

  const auto& freqs = curves.front().frequencies_hz;
  const std::vector<double> candidates =
      linalg::logspace(freqs.front(), freqs.back(), grid_points);

  // A tuple of distinct grid frequencies larger than the grid itself
  // cannot be formed: screening is best-effort, so yield no seeds.
  if (tuple_size > candidates.size()) return out;

  // Exhaustive screening when the combination space is small enough;
  // otherwise extend the best pairs greedily one frequency at a time.
  double combinations = 1.0;
  for (std::size_t k = 0; k < tuple_size; ++k) {
    combinations *= static_cast<double>(grid_points - k) /
                    static_cast<double>(k + 1);
  }
  constexpr double kExhaustiveLimit = 100'000.0;

  struct Scored {
    double angle;
    std::vector<double> tuple;
  };
  std::vector<Scored> scored;

  if (combinations <= kExhaustiveLimit) {
    std::vector<std::size_t> pick(tuple_size);
    for (std::size_t k = 0; k < tuple_size; ++k) pick[k] = k;
    std::vector<double> tuple(tuple_size);
    while (true) {
      for (std::size_t k = 0; k < tuple_size; ++k) tuple[k] = candidates[pick[k]];
      scored.push_back({min_separation_angle(curves, tuple), tuple});
      // Next combination in lexicographic order.
      std::size_t k = tuple_size;
      while (k > 0 && pick[k - 1] == candidates.size() - tuple_size + k - 1) {
        --k;
      }
      if (k == 0) break;
      ++pick[k - 1];
      for (std::size_t m = k; m < tuple_size; ++m) pick[m] = pick[m - 1] + 1;
    }
  } else {
    for (const auto& [f1, f2] :
         screen_frequency_pairs(curves, grid_points, count)) {
      std::vector<double> tuple = {f1, f2};
      while (tuple.size() < tuple_size) {
        double best_angle = -1.0;
        double best_f = candidates.front();
        for (double f : candidates) {
          if (std::find(tuple.begin(), tuple.end(), f) != tuple.end()) continue;
          std::vector<double> extended = tuple;
          extended.push_back(f);
          const double angle = min_separation_angle(curves, extended);
          if (angle > best_angle) {
            best_angle = angle;
            best_f = f;
          }
        }
        tuple.push_back(best_f);
      }
      std::sort(tuple.begin(), tuple.end());
      scored.push_back({min_separation_angle(curves, tuple), std::move(tuple)});
    }
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.angle > b.angle;
                   });
  for (auto& s : scored) {
    if (out.size() >= count) break;
    std::sort(s.tuple.begin(), s.tuple.end());
    if (std::find(out.begin(), out.end(), s.tuple) != out.end()) continue;
    out.push_back(std::move(s.tuple));
  }
  return out;
}

}  // namespace ftdiag::core
