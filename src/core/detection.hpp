/// \file detection.hpp
/// \brief Fault *detection* (the paper's first test-vector requirement:
/// "it must disclose faults in the circuit"), separated from diagnosis.
///
/// A board is flagged faulty when its signature point falls outside the
/// golden acceptance region.  Healthy boards are not at the exact origin —
/// component tolerances smear them into a cloud — so the acceptance radius
/// is calibrated by Monte-Carlo: simulate healthy toleranced boards and
/// take the radius containing (1 - false-alarm target) of them.  Coverage
/// is then the fraction of faults whose signatures escape that radius.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/cut.hpp"
#include "core/test_vector.hpp"
#include "faults/tolerance.hpp"

namespace ftdiag::core {

struct DetectionCalibration {
  std::size_t healthy_boards = 400;   ///< Monte-Carlo sample size
  double false_alarm_target = 0.01;   ///< accepted healthy-reject rate
  faults::ToleranceSpec tolerance{};  ///< healthy-component spread
  double noise_sigma = 0.0;           ///< measurement noise during test
  std::uint64_t seed = 11;
};

/// Threshold classifier in signature space.
class FaultDetector {
public:
  /// Calibrate the acceptance radius on Monte-Carlo healthy boards.
  /// \throws ConfigError on bad parameters.
  [[nodiscard]] static FaultDetector calibrate(
      const circuits::CircuitUnderTest& cut, const faults::FaultDictionary& dictionary,
      const TestVector& vector, const SamplingPolicy& policy,
      const DetectionCalibration& calibration);

  /// Distance-from-origin decision.
  [[nodiscard]] bool is_faulty(const Point& observed) const;

  /// The calibrated acceptance radius.
  [[nodiscard]] double threshold() const { return threshold_; }

  /// Radii of the calibration cloud (diagnostics / tests).
  [[nodiscard]] const std::vector<double>& healthy_radii() const {
    return healthy_radii_;
  }

private:
  double threshold_ = 0.0;
  std::vector<double> healthy_radii_;
};

/// Per-site detection statistics.
struct SiteCoverage {
  std::string site;
  std::size_t detected = 0;
  std::size_t total = 0;

  [[nodiscard]] double rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
  }
};

struct CoverageReport {
  double overall_coverage = 0.0;   ///< detected faults / all faults
  double false_alarm_rate = 0.0;   ///< measured on fresh healthy boards
  std::vector<SiteCoverage> per_site;
};

struct CoverageOptions {
  std::size_t faults_per_site = 60;
  double min_abs_deviation = 0.05;
  double max_abs_deviation = 0.40;
  std::size_t healthy_boards = 200;  ///< for the false-alarm estimate
  std::uint64_t seed = 13;
};

/// Monte-Carlo fault coverage of \p vector with \p detector: random
/// off-grid faults per dictionary site (healthy parts toleranced and the
/// same measurement noise as calibration).
[[nodiscard]] CoverageReport measure_coverage(
    const circuits::CircuitUnderTest& cut,
    const faults::FaultDictionary& dictionary, const TestVector& vector,
    const SamplingPolicy& policy, const FaultDetector& detector,
    const DetectionCalibration& calibration, const CoverageOptions& options = {});

}  // namespace ftdiag::core
