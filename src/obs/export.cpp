#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ftdiag::obs {

namespace {

// Shortest round-trippable formatting for doubles; integers print bare.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape(v) + "\"";
  }
  out += "}";
  return out;
}

std::string prom_labels_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return prom_labels(extended);
}

const char* kind_name(Sample::Kind kind) {
  switch (kind) {
    case Sample::Kind::kCounter:
      return "counter";
    case Sample::Kind::kGauge:
      return "gauge";
    case Sample::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.samples.size() * 64);
  const std::string* last_header = nullptr;
  for (const Sample& s : snapshot.samples) {
    // One HELP/TYPE header per metric family; label variants of the
    // same name arrive adjacent because the registry map is sorted.
    if (last_header == nullptr || *last_header != s.name) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " ";
      out += kind_name(s.kind);
      out += "\n";
      last_header = &s.name;
    }
    if (s.kind == Sample::Kind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        cumulative += h.buckets[i];
        const std::string le =
            i < h.bounds.size() ? format_number(h.bounds[i]) : "+Inf";
        out += s.name + "_bucket" + prom_labels_with(s.labels, "le", le) +
               " " + std::to_string(cumulative) + "\n";
      }
      out += s.name + "_sum" + prom_labels(s.labels) + " " +
             format_number(h.sum) + "\n";
      out += s.name + "_count" + prom_labels(s.labels) + " " +
             std::to_string(h.count) + "\n";
    } else {
      out += s.name + prom_labels(s.labels) + " " + format_number(s.value) +
             "\n";
    }
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  return render_prometheus(registry.snapshot());
}

std::string render_json(const Snapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first_sample = true;
  for (const Sample& s : snapshot.samples) {
    if (!first_sample) out += ",";
    first_sample = false;
    out += "{\"name\":\"" + escape(s.name) + "\",\"type\":\"";
    out += kind_name(s.kind);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"" + escape(k) + "\":\"" + escape(v) + "\"";
    }
    out += "}";
    if (s.kind == Sample::Kind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      out += ",\"count\":" + std::to_string(h.count);
      out += ",\"sum\":" + format_number(h.sum);
      out += ",\"p50\":" + format_number(h.quantile(0.50));
      out += ",\"p95\":" + format_number(h.quantile(0.95));
      out += ",\"p99\":" + format_number(h.quantile(0.99));
      out += ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        cumulative += h.buckets[i];
        if (i != 0) out += ",";
        out += "{\"le\":";
        out += i < h.bounds.size() ? format_number(h.bounds[i]) : "\"+Inf\"";
        out += ",\"count\":" + std::to_string(cumulative) + "}";
      }
      out += "]";
    } else {
      out += ",\"value\":" + format_number(s.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string render_json(const Registry& registry) {
  return render_json(registry.snapshot());
}

}  // namespace ftdiag::obs
