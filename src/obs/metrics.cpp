#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace ftdiag::obs {

namespace {

bool env_enabled() {
  const char* v = std::getenv("FTDIAG_OBS");
  if (v == nullptr) return true;
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
      std::strcmp(v, "OFF") == 0) {
    return false;
  }
  return true;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

void normalize(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::size_t detail::thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw ConfigError("histogram needs at least one bucket boundary");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw ConfigError("histogram boundaries must be strictly ascending");
  }
  // One bucket row per shard.  Rows are padded to a whole cache line plus
  // one line of slack, so two shards never write the same line even when
  // the allocation itself is not 64-byte aligned.
  const std::size_t slots = bounds_.size() + 1;
  stride_ = (slots + 7) / 8 * 8 + 8;
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(kShards * stride_);
  for (std::size_t i = 0; i < kShards * stride_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_index(double v) const noexcept {
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  const std::size_t shard = detail::thread_slot() % kShards;
  buckets_[shard * stride_ + bucket_index(v)].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].sum.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::bulk_add(const std::uint64_t* counts, double sum) noexcept {
  const std::size_t shard = detail::thread_slot() % kShards;
  std::atomic<std::uint64_t>* row = &buckets_[shard * stride_];
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    if (counts[i] != 0) row[i].fetch_add(counts[i], std::memory_order_relaxed);
  }
  sums_[shard].sum.fetch_add(sum, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      snap.buckets[i] +=
          buckets_[shard * stride_ + i].load(std::memory_order_relaxed);
    }
  }
  snap.count = count();
  snap.sum = sum();
  return snap;
}

std::vector<double> Histogram::latency_us_bounds() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1e7);  // 10 s
  return bounds;
}

double HistogramSnapshot::quantile(double q) const {
  // Concurrent observers can make per-bucket totals drift slightly from
  // `count`; recompute the total from the buckets so ranks stay
  // consistent with the cumulative walk below.
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      const double upper = i < bounds.size() ? bounds[i] : bounds.back();
      if (i >= bounds.size()) return upper;  // overflow bucket: clamp
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double frac = (rank - cumulative) / in_bucket;
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

// ---------------------------------------------------------------------------
// Snapshot / SampleSink

const Sample* Snapshot::find(const std::string& name,
                             const Labels& labels) const {
  Labels want = labels;
  std::sort(want.begin(), want.end());
  for (const Sample& s : samples) {
    if (s.name != name) continue;
    if (!want.empty() && s.labels != want) continue;
    return &s;
  }
  return nullptr;
}

void SampleSink::counter(std::string name, double value, Labels labels,
                         std::string help) {
  normalize(labels);
  out_.push_back(Sample{std::move(name), std::move(help), std::move(labels),
                        Sample::Kind::kCounter, value, {}});
}

void SampleSink::gauge(std::string name, double value, Labels labels,
                       std::string help) {
  normalize(labels);
  out_.push_back(Sample{std::move(name), std::move(help), std::move(labels),
                        Sample::Kind::kGauge, value, {}});
}

void SampleSink::histogram(std::string name, HistogramSnapshot snap,
                           Labels labels, std::string help) {
  normalize(labels);
  out_.push_back(Sample{std::move(name), std::move(help), std::move(labels),
                        Sample::Kind::kHistogram, 0.0, std::move(snap)});
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  // Leaked on purpose: metrics may be touched during static destruction.
  static Registry* g = new Registry;
  return *g;
}

Registry::Entry& Registry::lookup(const std::string& name, Labels& labels,
                                  Sample::Kind kind, const std::string& help) {
  normalize(labels);
  auto [it, inserted] = metrics_.try_emplace({name, labels});
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.help = help;
  } else if (entry.kind != kind) {
    throw ConfigError("metric '" + name +
                      "' already registered with a different kind");
  }
  return entry;
}

Counter& Registry::counter(const std::string& name, Labels labels,
                           const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = lookup(name, labels, Sample::Kind::kCounter, help);
  if (e.sharded) {
    throw ConfigError("metric '" + name + "' is a sharded counter");
  }
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

ShardedCounter& Registry::sharded_counter(const std::string& name,
                                          Labels labels,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = lookup(name, labels, Sample::Kind::kCounter, help);
  if (e.counter) {
    throw ConfigError("metric '" + name + "' is a plain counter");
  }
  if (!e.sharded) e.sharded = std::make_unique<ShardedCounter>();
  return *e.sharded;
}

Gauge& Registry::gauge(const std::string& name, Labels labels,
                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = lookup(name, labels, Sample::Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds, Labels labels,
                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = lookup(name, labels, Sample::Kind::kHistogram, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

Registry::CollectorHandle Registry::add_collector(
    std::function<void(SampleSink&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return CollectorHandle(this, id);
}

void Registry::CollectorHandle::release() {
  if (reg_ == nullptr) return;
  std::lock_guard<std::mutex> lock(reg_->mutex_);
  reg_->collectors_.erase(id_);
  reg_ = nullptr;
  id_ = 0;
}

std::size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

Snapshot Registry::snapshot() const {
  // Copy the collector callbacks out so a collector that (indirectly)
  // touches the registry cannot deadlock against snapshot().
  std::vector<std::function<void(SampleSink&)>> collectors;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.samples.reserve(metrics_.size());
    for (const auto& [key, entry] : metrics_) {
      Sample s;
      s.name = key.first;
      s.labels = key.second;
      s.help = entry.help;
      s.kind = entry.kind;
      switch (entry.kind) {
        case Sample::Kind::kCounter:
          s.value = entry.counter
                        ? static_cast<double>(entry.counter->value())
                        : static_cast<double>(entry.sharded->value());
          break;
        case Sample::Kind::kGauge:
          s.value = static_cast<double>(entry.gauge->value());
          break;
        case Sample::Kind::kHistogram:
          s.histogram = entry.histogram->snapshot();
          break;
      }
      snap.samples.push_back(std::move(s));
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  SampleSink sink(snap.samples);
  for (const auto& fn : collectors) fn(sink);
  return snap;
}

}  // namespace ftdiag::obs
