#pragma once

/// \file trace.hpp
/// \brief Stage-span tracing for the diagnosis request path.
///
/// Every diagnosis request is decomposed into seven stages:
///
///   net_recv       frame header seen -> request decoded & submitted
///   queue_wait     batch's oldest request enqueued -> batch processing
///                  starts (one sample per batch: its worst-case wait)
///   batch_coalesce first pop of a batch -> scoop + linger finished
///   dict_fetch     DictionaryStore::get (memory / disk / build tiers)
///   solve          session diagnose_batch wall time
///   score          splitting batch results + completing futures
///   reply_send     encoding + writing the reply frame
///
/// Each stage feeds a microsecond histogram
/// `ftdiag_stage_duration_us{stage="..."}` in a `Registry`, and samples
/// slower than a threshold are kept in a small ring buffer of recent
/// slow traces for post-hoc inspection.  All recording is gated by
/// `obs::enabled()` and costs two steady_clock reads plus a histogram
/// observe when on.

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace ftdiag::obs {

enum class Stage : std::uint8_t {
  kNetRecv = 0,
  kQueueWait,
  kBatchCoalesce,
  kDictFetch,
  kSolve,
  kScore,
  kReplySend,
};
inline constexpr std::size_t kStageCount = 7;

/// Stable exposition label for a stage ("net_recv", "queue_wait", ...).
[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// One entry of the slow-trace ring buffer.
struct SlowTrace {
  Stage stage;
  double us = 0.0;
  std::uint64_t request_id = 0;
  std::uint64_t seq = 0;  ///< monotonically increasing record number
};

/// Owns the seven stage histograms plus the slow-trace ring.
class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 128;
  /// Default slowness threshold: 10 ms.
  explicit Tracer(Registry& registry = Registry::global(),
                  double slow_threshold_us = 10'000.0);

  /// Process-wide tracer bound to `Registry::global()`.
  static Tracer& global();

  /// Record one stage duration (microseconds).  No-op when disabled.
  void record(Stage stage, double us, std::uint64_t request_id = 0) noexcept;

  [[nodiscard]] Histogram& stage_histogram(Stage stage) noexcept {
    return *stages_[static_cast<std::size_t>(stage)];
  }

  /// Copy of the ring, oldest first.
  [[nodiscard]] std::vector<SlowTrace> slow_traces() const;
  [[nodiscard]] double slow_threshold_us() const noexcept {
    return slow_threshold_us_;
  }

 private:
  std::array<Histogram*, kStageCount> stages_{};
  double slow_threshold_us_;
  mutable std::mutex ring_mutex_;
  std::array<SlowTrace, kRingCapacity> ring_{};
  std::size_t ring_size_ = 0;
  std::size_t ring_head_ = 0;  // next write position
  std::uint64_t next_seq_ = 0;
};

/// RAII span: measures construction -> finish()/destruction and records
/// it against a stage.  When `obs::enabled()` is false at construction
/// the span takes no clock reads at all.
class Span {
 public:
  explicit Span(Stage stage, std::uint64_t request_id = 0,
                Tracer& tracer = Tracer::global()) noexcept
      : tracer_(&tracer), stage_(stage), request_id_(request_id) {
    if (enabled()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Record now instead of at destruction (idempotent).
  void finish() noexcept {
    if (!armed_) return;
    armed_ = false;
    tracer_->record(stage_, elapsed_us(), request_id_);
  }
  /// Drop the measurement without recording (e.g. error paths).
  void cancel() noexcept { armed_ = false; }

  [[nodiscard]] double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Tracer* tracer_;
  Stage stage_;
  std::uint64_t request_id_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace ftdiag::obs
