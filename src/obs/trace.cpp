#include "obs/trace.hpp"

namespace ftdiag::obs {

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kNetRecv:
      return "net_recv";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchCoalesce:
      return "batch_coalesce";
    case Stage::kDictFetch:
      return "dict_fetch";
    case Stage::kSolve:
      return "solve";
    case Stage::kScore:
      return "score";
    case Stage::kReplySend:
      return "reply_send";
  }
  return "unknown";
}

Tracer::Tracer(Registry& registry, double slow_threshold_us)
    : slow_threshold_us_(slow_threshold_us) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stages_[i] = &registry.histogram(
        "ftdiag_stage_duration_us", Histogram::latency_us_bounds(),
        {{"stage", stage_name(static_cast<Stage>(i))}},
        "per-stage diagnosis request latency in microseconds");
  }
}

Tracer& Tracer::global() {
  // Leaked for the same reason as Registry::global(): spans may fire
  // from worker threads during static destruction.
  static Tracer* g = new Tracer(Registry::global());
  return *g;
}

void Tracer::record(Stage stage, double us, std::uint64_t request_id) noexcept {
  if (!enabled()) return;
  stages_[static_cast<std::size_t>(stage)]->observe(us);
  if (us < slow_threshold_us_) return;
  std::lock_guard<std::mutex> lock(ring_mutex_);
  ring_[ring_head_] = SlowTrace{stage, us, request_id, next_seq_++};
  ring_head_ = (ring_head_ + 1) % kRingCapacity;
  if (ring_size_ < kRingCapacity) ++ring_size_;
}

std::vector<SlowTrace> Tracer::slow_traces() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  std::vector<SlowTrace> out;
  out.reserve(ring_size_);
  const std::size_t start =
      (ring_head_ + kRingCapacity - ring_size_) % kRingCapacity;
  for (std::size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % kRingCapacity]);
  }
  return out;
}

}  // namespace ftdiag::obs
