#pragma once

/// \file metrics.hpp
/// \brief Process-wide observability registry: counters, gauges and
///        fixed-boundary histograms with a lock-free hot path.
///
/// Design notes
/// ------------
///  * Metric objects are owned by a `Registry` and never move once
///    created, so callers cache a `Counter&` at start-up and the hot
///    path is a single relaxed `fetch_add` on a cache-line-aligned
///    atomic.  Contended call sites use `ShardedCounter`, which spreads
///    increments over per-thread cache-line shards and sums on read.
///  * Counters and gauges are *always* live: several public stats
///    structs (`ServerStats`, `ServiceStats`, `StoreStats`) are views
///    over them, so disabling them would change observable behaviour.
///    Only the timing layer (histogram observation, spans, traces) is
///    gated by `obs::enabled()` / the `FTDIAG_OBS` env knob so benches
///    can measure instrumentation overhead in a single binary.
///  * The global registry is intentionally leaked: worker threads and
///    process-wide singletons (e.g. `par::ThreadPool::global()`) may
///    touch metrics during static destruction, and a leaked registry
///    makes that race impossible by construction.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ftdiag::obs {

/// Runtime kill-switch for the *timing* layer (histograms, spans,
/// slow-trace ring).  Initialised once from `FTDIAG_OBS` (`0`/`off` =
/// disabled, anything else = enabled, unset = enabled); `set_enabled`
/// overrides it at any time.  Counters and gauges ignore this flag.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Sorted `key=value` pairs identifying one time series of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Small dense per-thread id for shard selection, assigned round-robin
/// on first use so threads born together land on distinct shards (a
/// thread-id hash would let two busy workers collide).
[[nodiscard]] std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotonic counter.  `inc` is a single relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Counter variant for call sites hammered by many threads at once:
/// increments land on one of `kShards` cache-line-sized slots chosen by
/// a per-thread hash, so no two busy threads share a line.  Reads sum
/// all shards (monotone but not a snapshot; fine for monitoring).
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  void inc(std::uint64_t n = 1) noexcept {
    slots_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index() noexcept {
    return detail::thread_slot() % kShards;
  }
  Slot slots_[kShards];
};

/// Instantaneous signed value (queue depth, bytes resident, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  void sub(std::int64_t v) noexcept {
    value_.fetch_sub(v, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if it is currently lower (CAS loop).
  void max_of(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> value_{0};
};

/// Read-side copy of a histogram's state, used by exporters.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< ascending bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = +Inf)
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Interpolated quantile estimate, `q` in [0, 1].  Within a bucket the
  /// estimate is linear between the bucket's lower and upper edge; the
  /// overflow bucket clamps to the last finite bound.  Returns 0 when
  /// the histogram is empty.
  [[nodiscard]] double quantile(double q) const;
};

/// Fixed-boundary histogram of non-negative samples.  `observe` is a
/// branch, a linear bucket scan over a handful of doubles, and three
/// relaxed atomic adds into a per-thread shard — no locks, and threads
/// observing concurrently never share a cache line (the request path
/// hammers the same two histograms from every service worker at once).
class Histogram {
 public:
  static constexpr std::size_t kShards = 8;

  /// `bounds` are strictly ascending bucket *upper* edges; an implicit
  /// +Inf bucket is appended.  Throws ConfigError on empty/unsorted.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  /// Total observations, derived from the buckets (observe() does not
  /// maintain a separate count — one fewer atomic on the hot path).
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kShards * stride_; ++i) {
      total += buckets_[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] double sum() const noexcept {
    double total = 0.0;
    for (const ShardSum& t : sums_) {
      total += t.sum.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  /// Convenience: quantile over a fresh snapshot.
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

  /// Canonical boundaries for request latencies in microseconds:
  /// 1-2-5 decades from 1 us to 10 s.
  [[nodiscard]] static std::vector<double> latency_us_bounds();

  /// Bucket index `v` falls into (last index = overflow bucket).
  [[nodiscard]] std::size_t bucket_index(double v) const noexcept;
  /// Merge pre-aggregated counts (`bounds().size() + 1` entries) and their
  /// sample sum into the calling thread's shard.  Used by HistogramBatch.
  void bulk_add(const std::uint64_t* counts, double sum) noexcept;

 private:
  struct alignas(64) ShardSum {
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::size_t stride_ = 0;  ///< bucket slots per shard row, cache-padded
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // kShards rows
  ShardSum sums_[kShards];
};

/// Batch-local histogram accumulator for loops that observe many samples
/// back to back (a service worker finishing a 32-request batch).  Each
/// `observe` is a bucket lookup and a plain array increment — no atomics;
/// `flush` (or the destructor) merges the whole batch into the histogram
/// with one atomic add per *touched* bucket.  Not thread-safe: one batch
/// per thread, which is exactly the worker-loop shape it exists for.
class HistogramBatch {
 public:
  explicit HistogramBatch(Histogram& h)
      : h_(h), counts_(h.bounds().size() + 1, 0) {}
  HistogramBatch(const HistogramBatch&) = delete;
  HistogramBatch& operator=(const HistogramBatch&) = delete;
  ~HistogramBatch() { flush(); }

  void observe(double v) noexcept {
    if (!enabled()) return;
    ++counts_[h_.bucket_index(v)];
    sum_ += v;
    dirty_ = true;
  }

  /// Merge accumulated samples into the histogram and reset (idempotent).
  void flush() noexcept {
    if (!dirty_) return;
    h_.bulk_add(counts_.data(), sum_);
    std::fill(counts_.begin(), counts_.end(), 0);
    sum_ = 0.0;
    dirty_ = false;
  }

 private:
  Histogram& h_;
  std::vector<std::uint64_t> counts_;
  double sum_ = 0.0;
  bool dirty_ = false;
};

/// One exported time series.  Collectors and registry-owned metrics both
/// reduce to a flat list of these at snapshot time.
struct Sample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0.0;          ///< counter / gauge
  HistogramSnapshot histogram; ///< kind == kHistogram only
};

/// Flat, ordered view of every metric known to a registry.
struct Snapshot {
  std::vector<Sample> samples;
  /// First sample matching `name` (and `labels`, when given).
  [[nodiscard]] const Sample* find(const std::string& name,
                                   const Labels& labels = {}) const;
};

/// Collectors let objects with instance-owned stats (a `net::Server`, a
/// `service::DiagnosisService`) publish into the registry snapshot
/// without moving their counters into process-wide storage — the public
/// per-instance stats structs keep their exact semantics.
class SampleSink {
 public:
  explicit SampleSink(std::vector<Sample>& out) : out_(out) {}
  void counter(std::string name, double value, Labels labels = {},
               std::string help = "");
  void gauge(std::string name, double value, Labels labels = {},
             std::string help = "");
  void histogram(std::string name, HistogramSnapshot snap, Labels labels = {},
                 std::string help = "");

 private:
  std::vector<Sample>& out_;
};

/// Named registry of metrics.  Lookup (`counter()` / `gauge()` /
/// `histogram()`) takes a mutex and is meant for start-up; the returned
/// references stay valid and lock-free for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry.  Intentionally leaked (see file comment).
  static Registry& global();

  /// Get-or-create.  Same (name, labels) returns the same object;
  /// requesting an existing name with a different metric kind throws
  /// ConfigError.  Labels are normalised (sorted by key) so insertion
  /// order does not create duplicate series.
  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "");
  ShardedCounter& sharded_counter(const std::string& name, Labels labels = {},
                                  const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       Labels labels = {}, const std::string& help = "");

  /// RAII deregistration for `add_collector`.
  class CollectorHandle {
   public:
    CollectorHandle() = default;
    CollectorHandle(CollectorHandle&& other) noexcept { swap(other); }
    CollectorHandle& operator=(CollectorHandle&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    ~CollectorHandle() { release(); }
    /// Deregister now (idempotent).
    void release();

   private:
    friend class Registry;
    CollectorHandle(Registry* reg, std::uint64_t id) : reg_(reg), id_(id) {}
    void swap(CollectorHandle& other) noexcept {
      std::swap(reg_, other.reg_);
      std::swap(id_, other.id_);
    }
    Registry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Register a callback invoked at snapshot time to append samples.
  /// The callback must stay valid until the handle is released.
  [[nodiscard]] CollectorHandle add_collector(
      std::function<void(SampleSink&)> fn);

  /// Number of registered metric series (not counting collectors).
  [[nodiscard]] std::size_t metric_count() const;

  /// Flatten every metric plus every collector into samples.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Entry {
    Sample::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<ShardedCounter> sharded;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& lookup(const std::string& name, Labels& labels, Sample::Kind kind,
                const std::string& help);

  mutable std::mutex mutex_;
  // Keyed by (name, normalised labels); std::map keeps exposition output
  // deterministically sorted.
  std::map<std::pair<std::string, Labels>, Entry> metrics_;
  std::map<std::uint64_t, std::function<void(SampleSink&)>> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

}  // namespace ftdiag::obs
