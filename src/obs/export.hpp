#pragma once

/// \file export.hpp
/// \brief Render a metrics Snapshot as Prometheus text exposition or
///        JSON.  Both renderers are pure functions over a snapshot; the
///        overloads taking a Registry are convenience wrappers.

#include <string>

#include "obs/metrics.hpp"

namespace ftdiag::obs {

/// Prometheus text exposition format (version 0.0.4): `# HELP` /
/// `# TYPE` headers, `name{label="value"} v` lines, histograms as
/// cumulative `_bucket{le="..."}` plus `_sum` / `_count`.
[[nodiscard]] std::string render_prometheus(const Snapshot& snapshot);
[[nodiscard]] std::string render_prometheus(const Registry& registry);

/// JSON object `{"metrics": [...]}`; each histogram entry carries its
/// buckets plus precomputed p50/p95/p99 interpolated estimates so
/// consumers (CLI, CI) do not reimplement quantile math.
[[nodiscard]] std::string render_json(const Snapshot& snapshot);
[[nodiscard]] std::string render_json(const Registry& registry);

}  // namespace ftdiag::obs
