/// \file tolerance.hpp
/// \brief Monte-Carlo component-tolerance sampling.
///
/// Real circuits are built from toleranced parts; the "golden" circuit the
/// dictionary assumes is only nominal.  The evaluation harness perturbs the
/// non-faulty components within tolerance to measure how robust trajectory
/// diagnosis is to that mismatch (an evaluation the paper motivates but
/// does not report).
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"
#include "util/rng.hpp"

namespace ftdiag::faults {

struct ToleranceSpec {
  /// Fractional tolerance for resistors (0.01 == 1 %).
  double resistor_tolerance = 0.01;
  /// Fractional tolerance for capacitors.
  double capacitor_tolerance = 0.05;
  /// Fractional tolerance for inductors.  Negative (the default) means
  /// "follow resistor_tolerance" — the historical behaviour, which used
  /// to be silent and unconfigurable; 0 disables inductor perturbation.
  double inductor_tolerance = -1.0;
  /// Uniform in [-tol, +tol] when true, else gaussian with sigma = tol/3.
  bool uniform = true;

  /// The tolerance actually applied to inductors.
  [[nodiscard]] double effective_inductor_tolerance() const {
    return inductor_tolerance < 0.0 ? resistor_tolerance : inductor_tolerance;
  }
};

/// Return a copy of \p circuit with every passive value perturbed within
/// tolerance.  Components listed in \p frozen keep their nominal value
/// (used to keep the faulty component's injected deviation exact).
[[nodiscard]] netlist::Circuit perturb_within_tolerance(
    const netlist::Circuit& circuit, const ToleranceSpec& spec, Rng& rng,
    const std::vector<std::string>& frozen = {});

}  // namespace ftdiag::faults
