/// \file fault.hpp
/// \brief The functional parametric fault model (Calvano et al., FFM):
/// a fault is a fractional deviation of one component value or one op-amp
/// macro-model parameter.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/component.hpp"

namespace ftdiag::faults {

/// What a fault deviates: a passive component's value or one parameter of
/// an op-amp macro model.
struct FaultSite {
  enum class Target : std::uint8_t { kComponentValue, kOpAmpParam };

  Target target = Target::kComponentValue;
  std::string component;                         ///< component name
  netlist::OpAmpParam param = netlist::OpAmpParam::kDcGain;  ///< if kOpAmpParam

  /// "R3" for values, "OA1.gbw" for macro parameters.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const FaultSite&) const = default;

  [[nodiscard]] static FaultSite value_of(std::string component_name) {
    return {Target::kComponentValue, std::move(component_name),
            netlist::OpAmpParam::kDcGain};
  }
  [[nodiscard]] static FaultSite opamp_param_of(std::string opamp_name,
                                                netlist::OpAmpParam param) {
    return {Target::kOpAmpParam, std::move(opamp_name), param};
  }
};

/// One parametric fault: the site plus a fractional deviation
/// (+0.30 means the value is 130 % of nominal, the paper's notation "+30%").
struct ParametricFault {
  FaultSite site;
  double deviation = 0.0;

  /// Multiplier applied to the nominal value: 1 + deviation.
  [[nodiscard]] double multiplier() const { return 1.0 + deviation; }

  [[nodiscard]] bool is_nominal() const { return deviation == 0.0; }

  /// "R3+30%", "C1-10%", "OA1.gbw+20%".
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const ParametricFault&) const = default;
};

}  // namespace ftdiag::faults
