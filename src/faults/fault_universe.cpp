#include "faults/fault_universe.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ftdiag::faults {

std::vector<double> DeviationSpec::deviations() const {
  if (!(step_fraction > 0.0)) {
    throw ConfigError("deviation step must be positive");
  }
  if (!(max_fraction >= min_fraction)) {
    throw ConfigError("deviation range is inverted");
  }
  if (min_fraction <= -1.0) {
    throw ConfigError("deviations at or below -100% are not parametric");
  }
  std::vector<double> out;
  const long n_steps =
      std::lround((max_fraction - min_fraction) / step_fraction);
  for (long i = 0; i <= n_steps; ++i) {
    // Round to the grid to avoid 0.30000000000000004-style labels.
    double d = min_fraction + step_fraction * static_cast<double>(i);
    d = std::round(d / step_fraction) * step_fraction;
    if (std::fabs(d) < 1e-9) {
      if (!include_nominal) continue;
      d = 0.0;
    }
    if (d > max_fraction + 1e-9) break;
    out.push_back(d);
  }
  if (out.empty()) throw ConfigError("deviation spec yields no deviations");
  return out;
}

FaultUniverse::FaultUniverse(std::vector<FaultSite> sites, DeviationSpec spec)
    : sites_(std::move(sites)), spec_(spec) {
  if (sites_.empty()) throw ConfigError("fault universe has no sites");
  (void)spec_.deviations();  // validate eagerly
}

std::vector<ParametricFault> FaultUniverse::enumerate() const {
  const std::vector<double> devs = spec_.deviations();
  std::vector<ParametricFault> out;
  out.reserve(sites_.size() * devs.size());
  for (const auto& site : sites_) {
    for (double d : devs) out.push_back({site, d});
  }
  return out;
}

FaultUniverse FaultUniverse::over_testable(
    const circuits::CircuitUnderTest& cut, const DeviationSpec& spec) {
  std::vector<FaultSite> sites;
  sites.reserve(cut.testable.size());
  for (const auto& name : cut.testable) {
    sites.push_back(FaultSite::value_of(name));
  }
  return FaultUniverse(std::move(sites), spec);
}

FaultUniverse FaultUniverse::over_opamp_params(
    const circuits::CircuitUnderTest& cut, const DeviationSpec& spec) {
  std::vector<FaultSite> sites;
  for (const auto& c : cut.circuit.components()) {
    if (c.kind != netlist::ComponentKind::kOpAmp) continue;
    for (auto param :
         {netlist::OpAmpParam::kDcGain, netlist::OpAmpParam::kGbw,
          netlist::OpAmpParam::kRin, netlist::OpAmpParam::kRout}) {
      sites.push_back(FaultSite::opamp_param_of(c.name, param));
    }
  }
  if (sites.empty()) {
    throw ConfigError("CUT '" + cut.name +
                      "' has no macro op-amps for an active-fault universe");
  }
  return FaultUniverse(std::move(sites), spec);
}

}  // namespace ftdiag::faults
