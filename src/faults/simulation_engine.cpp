#include "faults/simulation_engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "faults/fault_injector.hpp"
#include "linalg/rank1.hpp"
#include "linalg/simd.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/stamp_update.hpp"
#include "mna/sweep_solver.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/threads.hpp"

namespace ftdiag::faults {

using linalg::Complex;
using linalg::simd::AlignedVector;

void SimOptions::check() const {
  if (max_growth <= 1.0) {
    throw ConfigError("simulation-engine max_growth must be > 1");
  }
}

std::size_t SimOptions::resolved_threads() const {
  return util::resolve_threads(threads);
}

namespace {

/// All deviations of one rank-1-capable site: one unit of parallel work.
struct SiteItem {
  std::vector<std::size_t> fault_indices;  ///< into the input list
  mna::Rank1StampUpdate update;
};

/// Per-site accumulation that survives across frequency blocks: split
/// re/im response planes per fault (the AcResponse SoA layout, written
/// pack-at-a-time by the SIMD sweep).
struct SiteState {
  std::vector<AlignedVector> re, im;  ///< [fault in site][frequency]
  /// Refactorized analyses for ill-conditioned pairs, lazy per fault.
  std::vector<std::unique_ptr<mna::AcAnalysis>> refactorized;
  std::size_t rank1_solves = 0;
  std::size_t full_solves = 0;
};

/// Golden-phase results for every batch of a block, as one arena of four
/// split planes (four allocations total, so the setup cost is independent
/// of grid size and the steady-state sweep performs none).  Batch b's
/// slice starts at b * n * width (x0) / b * site_count * n * width (w);
/// within a slice the layouts match BatchSweepSolver's outputs: x0 at
/// [r * width + lane], w site-major at [(site * n + r) * width + lane] —
/// already the transposed frequency-major view phase 2 wants, so the old
/// per-frequency transpose pass is gone.
struct SlotArena {
  AlignedVector x0_re, x0_im;  ///< batch_cap * n * width
  AlignedVector w_re, w_im;    ///< batch_cap * site_count * n * width
};

/// Per-lane SoA scratch of the rank-1 phase (split re/im gathers feeding
/// linalg::sherman_morrison_sweep_simd).
struct SiteLane {
  AlignedVector x0_re, x0_im, w_re, w_im;
  AlignedVector vx0_re, vx0_im, vw_re, vw_im;
  AlignedVector scale_re, scale_im, out_re, out_im;
  std::vector<unsigned char> refused;

  void ensure(std::size_t m) {
    if (x0_re.size() >= m) return;
    for (auto* v : {&x0_re, &x0_im, &w_re, &w_im, &vx0_re, &vx0_im, &vw_re,
                    &vw_im, &scale_re, &scale_im, &out_re, &out_im}) {
      v->resize(m);
    }
    refused.resize(m);
  }
};

/// Frequencies are processed in blocks of this size so at most this many
/// golden solutions are alive at once (O(block * n * (1 + S)) memory
/// instead of O(frequencies * ...)), without changing any result bit.
/// A multiple of every supported pack width, so batch membership — and
/// therefore every lane's arithmetic — depends only on the grid, never
/// on the thread count.
constexpr std::size_t kFrequencyBlock = 64;

/// Process-wide engine metrics (`ftdiag_engine_*`).  Deliberately
/// registry-global rather than per-engine: BatchResult::stats stays the
/// deterministic per-call record, while these accumulate across every
/// engine in the process for live monitoring.  Leaked references into
/// the leaked global registry, so worker threads can bump them at any
/// point of shutdown.
struct EngineMetrics {
  obs::Counter& builds;
  obs::Counter& rank1_solves;
  obs::Counter& full_solves;
  obs::Counter& fallback_faults;
  obs::Counter& refactorizations;
  obs::Histogram& block_us;
  obs::Gauge& simd_width;

  static EngineMetrics& get() {
    static EngineMetrics* m = [] {
      obs::Registry& reg = obs::Registry::global();
      return new EngineMetrics{
          reg.counter("ftdiag_engine_builds_total", {},
                      "batch fault simulations run"),
          reg.counter("ftdiag_engine_rank1_solves_total", {},
                      "fault-frequency solutions via Sherman-Morrison reuse"),
          reg.counter("ftdiag_engine_full_solves_total", {},
                      "fault-frequency solutions via full factorization"),
          reg.counter("ftdiag_engine_fallback_faults_total", {},
                      "faults served by the naive inject-and-sweep path"),
          reg.counter("ftdiag_engine_refactorizations_total", {},
                      "lazy exact refactorizations for refused rank-1 "
                      "updates"),
          reg.histogram("ftdiag_engine_block_solve_us",
                        obs::Histogram::latency_us_bounds(), {},
                        "wall time per 64-frequency block (golden factor + "
                        "all sites' rank-1 sweeps)"),
          reg.gauge("ftdiag_engine_simd_width", {},
                    "SIMD pack width of the active sweep kernel"),
      };
    }();
    return *m;
  }
};

/// Naive per-fault path: inject and sweep from scratch.  This is the exact
/// computation of the legacy serial loop, so reuse-off results (and
/// fallback faults) stay bit-identical to it.
mna::AcResponse naive_response(const circuits::CircuitUnderTest& cut,
                               const ParametricFault& fault,
                               const std::vector<double>& frequencies_hz) {
  mna::AcAnalysis analysis(inject(cut.circuit, fault));
  return analysis.sweep(frequencies_hz, cut.output_node);
}

/// The per-fault Sherman–Morrison scale over a frequency block, written
/// as split-plane arithmetic: the pack-friendly mirror of
/// Rank1StampUpdate::coefficient (identical per-lane formulas — the
/// conductance scale is frequency-independent, susceptance/impedance are
/// s times a real constant).
void fill_scale(const mna::Rank1StampUpdate& update, double multiplier,
                std::size_t m, const double* s_re, const double* s_im,
                double* scale_re, double* scale_im) {
  switch (update.kind) {
    case mna::StampCoefficientKind::kConductance: {
      const double g =
          1.0 / (multiplier * update.nominal) - 1.0 / update.nominal;
      std::fill_n(scale_re, m, g);
      std::fill_n(scale_im, m, 0.0);
      return;
    }
    case mna::StampCoefficientKind::kSusceptance: {
      const double k = update.nominal * (multiplier - 1.0);
      for (std::size_t i = 0; i < m; ++i) {
        scale_re[i] = s_re[i] * k;
        scale_im[i] = s_im[i] * k;
      }
      return;
    }
    case mna::StampCoefficientKind::kImpedance: {
      const double k = update.nominal * (multiplier - 1.0);
      for (std::size_t i = 0; i < m; ++i) {
        scale_re[i] = -s_re[i] * k;
        scale_im[i] = -s_im[i] * k;
      }
      return;
    }
  }
}

/// The factorization-reuse sweep, batched P::width frequencies per SIMD
/// lane.  Phase 1 runs the batched golden factor + shared-RHS solve +
/// blocked multi-RHS u solve; phase 2 fans the sites out over pack-wide
/// gathers and the SIMD Sherman–Morrison sweep.  Instantiated once on
/// the native pack and once on ScalarPack (the runtime FTDIAG_SIMD=off
/// twin); lanes are arithmetically independent, and batch membership is
/// width-determined, so results are bit-stable across thread counts.
template <typename P>
void reuse_sweep(const circuits::CircuitUnderTest& cut,
                 const SimOptions& options,
                 const std::vector<ParametricFault>& faults,
                 const std::vector<double>& frequencies_hz,
                 const mna::AcAnalysis& golden_analysis,
                 const std::vector<SiteItem>& sites,
                 std::vector<SiteState>& state, std::size_t threads,
                 std::size_t out, AlignedVector& golden_re,
                 AlignedVector& golden_im) {
  constexpr std::size_t kW = P::width;
  using C = linalg::simd::CPack<P>;

  const mna::MnaSystem& system = golden_analysis.system();
  const std::size_t n = system.unknown_count();
  const std::size_t site_count = sites.size();
  const std::size_t total = frequencies_hz.size();

  // All sites' structural u columns as one shared n x S right-hand-side
  // block (column-major): the golden phase answers every site's
  // w = A^{-1} u with a single blocked multi-RHS solve per batch.
  std::vector<Complex> u_columns(n * site_count, Complex{});
  for (std::size_t si = 0; si < site_count; ++si) {
    for (const auto& [index, value] : sites[si].update.u.entries) {
      u_columns[si * n + index] += value;
    }
  }

  const mna::SweepAssembler& assembler = golden_analysis.sweep_assembler();
  // Per-circuit solver preparation, shared by every golden lane.  The
  // auto backend reuses the analysis already run by AcAnalysis; a forced
  // backend (differential tests, scaling benchmarks) analyzes its own.
  const std::shared_ptr<const mna::SweepSolver::Context> solver_context =
      options.backend == mna::SolverBackend::kAuto
          ? golden_analysis.solver_context()
          : mna::SweepSolver::analyze(assembler, options.backend);

  static_assert(kFrequencyBlock % kW == 0,
                "block size must hold whole packs");
  const std::size_t block_cap = std::min(kFrequencyBlock, total);
  const std::size_t batch_cap = (block_cap + kW - 1) / kW;
  SlotArena slots;
  slots.x0_re.resize(batch_cap * n * kW);
  slots.x0_im.resize(batch_cap * n * kW);
  slots.w_re.resize(batch_cap * site_count * n * kW);
  slots.w_im.resize(batch_cap * site_count * n * kW);
  std::vector<Complex> s_padded(batch_cap * kW);
  AlignedVector s_re_block(batch_cap * kW), s_im_block(batch_cap * kW);
  std::vector<mna::BatchSweepSolver<P>> golden_lanes;
  const std::size_t golden_lane_count =
      std::max<std::size_t>(1, std::min(threads, batch_cap));
  golden_lanes.reserve(golden_lane_count);
  for (std::size_t i = 0; i < golden_lane_count; ++i) {
    golden_lanes.emplace_back(assembler, solver_context);
  }
  std::vector<SiteLane> site_lanes(
      std::max<std::size_t>(1, std::min(threads, site_count)));
  golden_re.resize(total);
  golden_im.resize(total);

  for (std::size_t begin = 0; begin < total; begin += kFrequencyBlock) {
    // Timed at the sequential outer loop: one observation per block,
    // covering the golden factor phase plus every site's rank-1 sweep.
    const bool timed = obs::enabled();
    const auto block_start = timed ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    const std::size_t end = std::min(total, begin + kFrequencyBlock);
    const std::size_t m = end - begin;
    const std::size_t batches = (m + kW - 1) / kW;
    // Laplace points of the block, padded to whole packs by replicating
    // the last frequency (padding lanes compute unused values).
    for (std::size_t bi = 0; bi < batches * kW; ++bi) {
      const std::size_t fi = std::min(begin + bi, total - 1);
      const Complex s = linalg::s_of_hz(frequencies_hz[fi]);
      s_padded[bi] = s;
      s_re_block[bi] = s.real();
      s_im_block[bi] = s.imag();
    }

    par::parallel_for_lanes(batches, threads, [&](std::size_t lane,
                                                  std::size_t batch) {
      mna::BatchSweepSolver<P>& solver = golden_lanes[lane];
      double* x0_re = slots.x0_re.data() + batch * n * kW;
      double* x0_im = slots.x0_im.data() + batch * n * kW;
      solver.factor(
          std::span<const Complex>(s_padded).subspan(batch * kW, kW));
      solver.solve_shared(assembler.rhs(), x0_re, x0_im);
      const std::size_t valid = std::min(kW, m - batch * kW);
      for (std::size_t lane_i = 0; lane_i < valid; ++lane_i) {
        golden_re[begin + batch * kW + lane_i] = x0_re[out * kW + lane_i];
        golden_im[begin + batch * kW + lane_i] = x0_im[out * kW + lane_i];
      }
      if (site_count > 0) {
        solver.solve_shared_multi(
            u_columns, site_count,
            slots.w_re.data() + batch * site_count * n * kW,
            slots.w_im.data() + batch * site_count * n * kW);
      }
    });

    par::parallel_for_lanes(site_count, threads, [&](std::size_t lane,
                                                     std::size_t si) {
      const SiteItem& item = sites[si];
      SiteState& site = state[si];
      SiteLane& ws = site_lanes[lane];
      ws.ensure(m);

      // Gather this site's per-frequency scalars as split re/im arrays,
      // one pack of frequencies at a time (bounce through a stack buffer
      // for the tail batch so the m-sized arrays never overrun).
      for (std::size_t batch = 0; batch < batches; ++batch) {
        const double* x0_re = slots.x0_re.data() + batch * n * kW;
        const double* x0_im = slots.x0_im.data() + batch * n * kW;
        const double* w_re =
            slots.w_re.data() + batch * site_count * n * kW;
        const double* w_im =
            slots.w_im.data() + batch * site_count * n * kW;
        C v_dot_x0{};
        C v_dot_w{};
        for (const auto& [index, value] : item.update.v.entries) {
          const C ve = C::broadcast(value);
          v_dot_x0 = v_dot_x0 + ve * C::load(&x0_re[index * kW],
                                             &x0_im[index * kW]);
          v_dot_w = v_dot_w + ve * C::load(&w_re[(si * n + index) * kW],
                                           &w_im[(si * n + index) * kW]);
        }
        const C x0_out = C::load(&x0_re[out * kW], &x0_im[out * kW]);
        const C w_out = C::load(&w_re[(si * n + out) * kW],
                                &w_im[(si * n + out) * kW]);
        const std::size_t at = batch * kW;
        const std::size_t valid = std::min(kW, m - at);
        auto scatter = [&](const P& pack, AlignedVector& dst) {
          if (valid == kW) {
            pack.store(&dst[at]);
            return;
          }
          std::array<double, kW> bounce;
          pack.store(bounce.data());
          std::copy_n(bounce.data(), valid, &dst[at]);
        };
        scatter(v_dot_x0.re, ws.vx0_re);
        scatter(v_dot_x0.im, ws.vx0_im);
        scatter(v_dot_w.re, ws.vw_re);
        scatter(v_dot_w.im, ws.vw_im);
        scatter(x0_out.re, ws.x0_re);
        scatter(x0_out.im, ws.x0_im);
        scatter(w_out.re, ws.w_re);
        scatter(w_out.im, ws.w_im);
      }

      for (std::size_t k = 0; k < item.fault_indices.size(); ++k) {
        const ParametricFault& fault = faults[item.fault_indices[k]];
        fill_scale(item.update, fault.multiplier(), m, s_re_block.data(),
                   s_im_block.data(), ws.scale_re.data(),
                   ws.scale_im.data());
        const std::size_t refusals = linalg::sherman_morrison_sweep_simd<P>(
            m, ws.scale_re.data(), ws.scale_im.data(), ws.vx0_re.data(),
            ws.vx0_im.data(), ws.vw_re.data(), ws.vw_im.data(),
            ws.x0_re.data(), ws.x0_im.data(), ws.w_re.data(),
            ws.w_im.data(), options.max_growth, ws.out_re.data(),
            ws.out_im.data(), ws.refused.data());
        AlignedVector& re = site.re[k];
        AlignedVector& im = site.im[k];
        for (std::size_t bi = 0; bi < m; ++bi) {
          if (!ws.refused[bi]) {
            re[begin + bi] = ws.out_re[bi];
            im[begin + bi] = ws.out_im[bi];
            continue;
          }
          // Ill-conditioned update: fall back to an exact refactorized
          // sweep for this fault (lazy; rare by construction).
          if (!site.refactorized[k]) {
            site.refactorized[k] = std::make_unique<mna::AcAnalysis>(
                inject(cut.circuit, fault));
            EngineMetrics::get().refactorizations.inc();
          }
          const Complex v = site.refactorized[k]->node_voltage(
              frequencies_hz[begin + bi], cut.output_node);
          re[begin + bi] = v.real();
          im[begin + bi] = v.imag();
        }
        site.rank1_solves += m - refusals;
        site.full_solves += refusals;
      }
    });
    if (timed) {
      EngineMetrics::get().block_us.observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - block_start)
              .count());
    }
  }
}

}  // namespace

SimulationEngine::SimulationEngine(circuits::CircuitUnderTest cut,
                                   SimOptions options)
    : cut_(std::move(cut)), options_(options) {
  options_.check();
  cut_.check();
}

BatchResult SimulationEngine::simulate_all(
    const std::vector<ParametricFault>& faults,
    const std::vector<double>& frequencies_hz) const {
  FTDIAG_ASSERT(
      std::is_sorted(frequencies_hz.begin(), frequencies_hz.end()),
      "engine frequencies must ascend");
  const std::size_t threads = options_.resolved_threads();
  const mna::AcAnalysis golden_analysis(cut_.circuit);
  const mna::MnaSystem& system = golden_analysis.system();
  const std::size_t out = system.node_unknown(cut_.output_node);

  BatchResult result;
  result.responses.resize(faults.size());

  // Reuse works on every size: the golden phase factors through the
  // backend-neutral BatchSweepSolver (batched dense LU small, per-lane
  // pattern-reusing sparse LU large).  Only reuse-off configurations and
  // a ground output take the naive path, still fault-parallel.
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.builds.inc();
  metrics.simd_width.set(
      linalg::simd::enabled()
          ? static_cast<std::int64_t>(linalg::simd::DefaultPack::width)
          : 1);

  const bool reuse = options_.reuse_factorization && out != mna::kNoUnknown;
  if (!reuse) {
    result.golden = golden_analysis.sweep(frequencies_hz, cut_.output_node);
    par::parallel_for(faults.size(), threads, [&](std::size_t i) {
      result.responses[i] = naive_response(cut_, faults[i], frequencies_hz);
    });
    result.stats.full_solves = faults.size() * frequencies_hz.size();
    result.stats.fallback_faults = faults.size();
    metrics.full_solves.inc(result.stats.full_solves);
    metrics.fallback_faults.inc(result.stats.fallback_faults);
    return result;
  }

  // Group faults: all deviations of one site share the same structural
  // update (computed once per site) and thus the same per-frequency w
  // solve; faults whose stamp is not a single dyad go to the fallback
  // list.  site_of_label stores npos for known-unsupported sites so each
  // site is classified exactly once.
  constexpr std::size_t kUnsupported = static_cast<std::size_t>(-1);
  std::vector<SiteItem> sites;
  std::vector<std::size_t> fallback;
  std::map<std::string, std::size_t> site_of_label;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ParametricFault& fault = faults[i];
    if (fault.site.target != FaultSite::Target::kComponentValue) {
      fallback.push_back(i);
      continue;
    }
    const std::string label = fault.site.label();
    auto it = site_of_label.find(label);
    if (it == site_of_label.end()) {
      std::optional<mna::Rank1StampUpdate> update =
          mna::rank1_stamp_update(system, fault.site.component);
      const std::size_t slot = update ? sites.size() : kUnsupported;
      it = site_of_label.emplace(label, slot).first;
      if (update) sites.push_back({{}, std::move(*update)});
    }
    if (it->second == kUnsupported) {
      fallback.push_back(i);
    } else {
      sites[it->second].fault_indices.push_back(i);
    }
  }

  // Fallback faults need no golden factorization: naive inject-and-sweep,
  // fanned out across the pool.
  par::parallel_for(fallback.size(), threads, [&](std::size_t j) {
    const std::size_t i = fallback[j];
    result.responses[i] = naive_response(cut_, faults[i], frequencies_hz);
  });
  result.stats.fallback_faults = fallback.size();
  result.stats.full_solves = fallback.size() * frequencies_hz.size();

  const std::size_t site_count = sites.size();
  std::vector<SiteState> state(site_count);
  for (std::size_t si = 0; si < site_count; ++si) {
    state[si].re.assign(sites[si].fault_indices.size(),
                        AlignedVector(frequencies_hz.size()));
    state[si].im.assign(sites[si].fault_indices.size(),
                        AlignedVector(frequencies_hz.size()));
    state[si].refactorized.resize(sites[si].fault_indices.size());
  }

  // The batched sweep: native-width packs normally, the width-1 scalar
  // twin when the FTDIAG_SIMD knob (build option or environment
  // variable) turns vectorization off.  Same formulas per lane either
  // way — the configurations differ only in how many frequencies share
  // one instruction.
  AlignedVector golden_re, golden_im;
  if (linalg::simd::enabled()) {
    reuse_sweep<linalg::simd::DefaultPack>(
        cut_, options_, faults, frequencies_hz, golden_analysis, sites,
        state, threads, out, golden_re, golden_im);
  } else {
    reuse_sweep<linalg::simd::ScalarPack>(
        cut_, options_, faults, frequencies_hz, golden_analysis, sites,
        state, threads, out, golden_re, golden_im);
  }
  result.golden = mna::AcResponse(frequencies_hz, std::move(golden_re),
                                  std::move(golden_im));

  for (std::size_t si = 0; si < site_count; ++si) {
    for (std::size_t k = 0; k < sites[si].fault_indices.size(); ++k) {
      result.responses[sites[si].fault_indices[k]] =
          mna::AcResponse(frequencies_hz, std::move(state[si].re[k]),
                          std::move(state[si].im[k]));
    }
    result.stats.rank1_solves += state[si].rank1_solves;
    result.stats.full_solves += state[si].full_solves;
  }
  metrics.rank1_solves.inc(result.stats.rank1_solves);
  metrics.full_solves.inc(result.stats.full_solves);
  metrics.fallback_faults.inc(result.stats.fallback_faults);
  return result;
}

}  // namespace ftdiag::faults
