#include "faults/simulation_engine.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "faults/fault_injector.hpp"
#include "linalg/rank1.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/stamp_update.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/threads.hpp"

namespace ftdiag::faults {

using linalg::Complex;

void SimOptions::check() const {
  if (max_growth <= 1.0) {
    throw ConfigError("simulation-engine max_growth must be > 1");
  }
}

std::size_t SimOptions::resolved_threads() const {
  return util::resolve_threads(threads);
}

namespace {

/// All deviations of one rank-1-capable site: one unit of parallel work.
struct SiteItem {
  std::vector<std::size_t> fault_indices;  ///< into the input list
  mna::Rank1StampUpdate update;
};

/// Per-site accumulation that survives across frequency blocks.
struct SiteState {
  std::vector<std::vector<Complex>> values;  ///< [fault in site][frequency]
  /// Refactorized analyses for ill-conditioned pairs, lazy per fault.
  std::vector<std::unique_ptr<mna::AcAnalysis>> refactorized;
  std::size_t rank1_solves = 0;
  std::size_t full_solves = 0;
};

/// Per-frequency results of the golden solve phase, reused across blocks
/// so the steady-state sweep performs no heap allocations after the first
/// block warms the buffers.
struct FrequencySlot {
  std::vector<Complex> x0;     ///< golden solution (length n)
  linalg::Matrix<Complex> wt;  ///< row si = w = A^{-1} u of site si (S x n)
};

/// Per-lane scratch of the golden phase: a backend-neutral factor/solve
/// pair (dense workspace ping-pong or sparse pattern refill inside), plus
/// the recycled blocked multi-RHS target.
struct GoldenLane {
  mna::SweepSolver solver;
  linalg::Matrix<Complex> w;  ///< n x S blocked-solve target
};

/// Per-lane SoA scratch of the rank-1 phase (split re/im gathers feeding
/// linalg::sherman_morrison_sweep).
struct SiteLane {
  std::vector<double> x0_re, x0_im, w_re, w_im;
  std::vector<double> vx0_re, vx0_im, vw_re, vw_im;
  std::vector<double> scale_re, scale_im, out_re, out_im;
  std::vector<unsigned char> refused;

  void ensure(std::size_t m) {
    if (x0_re.size() >= m) return;
    for (auto* v : {&x0_re, &x0_im, &w_re, &w_im, &vx0_re, &vx0_im, &vw_re,
                    &vw_im, &scale_re, &scale_im, &out_re, &out_im}) {
      v->resize(m);
    }
    refused.resize(m);
  }
};

/// Frequencies are processed in blocks of this size so at most this many
/// golden solutions are alive at once (O(block * n * (1 + S)) memory
/// instead of O(frequencies * ...)), without changing any result bit.
constexpr std::size_t kFrequencyBlock = 64;

/// Naive per-fault path: inject and sweep from scratch.  This is the exact
/// computation of the legacy serial loop, so reuse-off results (and
/// fallback faults) stay bit-identical to it.
mna::AcResponse naive_response(const circuits::CircuitUnderTest& cut,
                               const ParametricFault& fault,
                               const std::vector<double>& frequencies_hz) {
  mna::AcAnalysis analysis(inject(cut.circuit, fault));
  return analysis.sweep(frequencies_hz, cut.output_node);
}

}  // namespace

SimulationEngine::SimulationEngine(circuits::CircuitUnderTest cut,
                                   SimOptions options)
    : cut_(std::move(cut)), options_(options) {
  options_.check();
  cut_.check();
}

BatchResult SimulationEngine::simulate_all(
    const std::vector<ParametricFault>& faults,
    const std::vector<double>& frequencies_hz) const {
  FTDIAG_ASSERT(
      std::is_sorted(frequencies_hz.begin(), frequencies_hz.end()),
      "engine frequencies must ascend");
  const std::size_t threads = options_.resolved_threads();
  const mna::AcAnalysis golden_analysis(cut_.circuit);
  const mna::MnaSystem& system = golden_analysis.system();
  const std::size_t n = system.unknown_count();
  const std::size_t out = system.node_unknown(cut_.output_node);

  BatchResult result;
  result.responses.resize(faults.size());

  // Reuse works on every size: the golden phase factors through the
  // backend-neutral SweepSolver (dense LU small, pattern-reusing sparse
  // LU large).  Only reuse-off configurations and a ground output take
  // the naive path, still fault-parallel.
  const bool reuse = options_.reuse_factorization && out != mna::kNoUnknown;
  if (!reuse) {
    result.golden = golden_analysis.sweep(frequencies_hz, cut_.output_node);
    par::parallel_for(faults.size(), threads, [&](std::size_t i) {
      result.responses[i] = naive_response(cut_, faults[i], frequencies_hz);
    });
    result.stats.full_solves = faults.size() * frequencies_hz.size();
    result.stats.fallback_faults = faults.size();
    return result;
  }

  // Group faults: all deviations of one site share the same structural
  // update (computed once per site) and thus the same per-frequency w
  // solve; faults whose stamp is not a single dyad go to the fallback
  // list.  site_of_label stores npos for known-unsupported sites so each
  // site is classified exactly once.
  constexpr std::size_t kUnsupported = static_cast<std::size_t>(-1);
  std::vector<SiteItem> sites;
  std::vector<std::size_t> fallback;
  std::map<std::string, std::size_t> site_of_label;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ParametricFault& fault = faults[i];
    if (fault.site.target != FaultSite::Target::kComponentValue) {
      fallback.push_back(i);
      continue;
    }
    const std::string label = fault.site.label();
    auto it = site_of_label.find(label);
    if (it == site_of_label.end()) {
      std::optional<mna::Rank1StampUpdate> update =
          mna::rank1_stamp_update(system, fault.site.component);
      const std::size_t slot = update ? sites.size() : kUnsupported;
      it = site_of_label.emplace(label, slot).first;
      if (update) sites.push_back({{}, std::move(*update)});
    }
    if (it->second == kUnsupported) {
      fallback.push_back(i);
    } else {
      sites[it->second].fault_indices.push_back(i);
    }
  }

  // Fallback faults need no golden factorization: naive inject-and-sweep,
  // fanned out across the pool.
  par::parallel_for(fallback.size(), threads, [&](std::size_t j) {
    const std::size_t i = fallback[j];
    result.responses[i] = naive_response(cut_, faults[i], frequencies_hz);
  });
  result.stats.fallback_faults = fallback.size();
  result.stats.full_solves = fallback.size() * frequencies_hz.size();

  const std::size_t site_count = sites.size();
  std::vector<SiteState> state(site_count);
  for (std::size_t si = 0; si < site_count; ++si) {
    state[si].values.assign(sites[si].fault_indices.size(),
                            std::vector<Complex>(frequencies_hz.size()));
    state[si].refactorized.resize(sites[si].fault_indices.size());
  }

  // All sites' structural u columns as one n x S right-hand-side block:
  // the golden phase answers every site's w = A^{-1} u with a single
  // blocked triangular solve per frequency instead of S separate ones.
  linalg::Matrix<Complex> u_columns(n, site_count);
  for (std::size_t si = 0; si < site_count; ++si) {
    for (const auto& [index, value] : sites[si].update.u.entries) {
      u_columns(index, si) += value;
    }
  }

  const mna::SweepAssembler& assembler = golden_analysis.sweep_assembler();
  // Per-circuit solver preparation, shared by every golden lane.  The
  // auto backend reuses the analysis already run by AcAnalysis; a forced
  // backend (differential tests, scaling benchmarks) analyzes its own.
  const std::shared_ptr<const mna::SweepSolver::Context> solver_context =
      options_.backend == mna::SolverBackend::kAuto
          ? golden_analysis.solver_context()
          : mna::SweepSolver::analyze(assembler, options_.backend);

  // Frequency blocks: phase 1 assembles G + s*C into lane-owned buffers,
  // factors in place and solves the golden RHS (single solve — the exact
  // operation sequence of AcAnalysis::sweep, keeping the golden response
  // bit-identical to the naive path) plus the u block (one blocked
  // multi-RHS solve, transposed so phase 2 reads each site's w as a
  // contiguous row); phase 2 fans the sites out over split re/im
  // Sherman–Morrison sweeps, each writing only its own faults' slots.
  // After the first block every buffer is warm: the steady-state loop
  // performs zero heap allocations.
  const std::size_t block_cap = std::min(kFrequencyBlock,
                                         frequencies_hz.size());
  std::vector<FrequencySlot> slots(block_cap);
  std::vector<Complex> s_block(block_cap);
  std::vector<GoldenLane> golden_lanes(
      std::min(threads, block_cap),
      GoldenLane{mna::SweepSolver(assembler, solver_context), {}});
  std::vector<SiteLane> site_lanes(
      std::max<std::size_t>(1, std::min(threads, site_count)));
  std::vector<Complex> golden_values(frequencies_hz.size());

  for (std::size_t begin = 0; begin < frequencies_hz.size();
       begin += kFrequencyBlock) {
    const std::size_t end =
        std::min(frequencies_hz.size(), begin + kFrequencyBlock);
    const std::size_t m = end - begin;
    for (std::size_t bi = 0; bi < m; ++bi) {
      s_block[bi] = linalg::s_of_hz(frequencies_hz[begin + bi]);
    }

    par::parallel_for_lanes(m, threads, [&](std::size_t lane,
                                            std::size_t bi) {
      GoldenLane& ws = golden_lanes[lane];
      FrequencySlot& slot = slots[bi];
      if (slot.x0.size() != n) slot.x0.resize(n);  // first block only
      ws.solver.factor(s_block[bi]);
      ws.solver.solve_into(assembler.rhs(), slot.x0);
      golden_values[begin + bi] = slot.x0[out];
      if (site_count > 0) {
        ws.solver.solve_into(u_columns, ws.w);
        if (slot.wt.rows() != site_count || slot.wt.cols() != n) {
          slot.wt.reshape(site_count, n);
        }
        for (std::size_t r = 0; r < n; ++r) {
          const Complex* src = ws.w.row_data(r);
          for (std::size_t c = 0; c < site_count; ++c) {
            slot.wt(c, r) = src[c];
          }
        }
      }
    });

    par::parallel_for_lanes(site_count, threads, [&](std::size_t lane,
                                                     std::size_t si) {
      const SiteItem& item = sites[si];
      SiteState& site = state[si];
      SiteLane& ws = site_lanes[lane];
      ws.ensure(m);

      // Gather this site's per-frequency scalars as split re/im arrays.
      for (std::size_t bi = 0; bi < m; ++bi) {
        const FrequencySlot& slot = slots[bi];
        const std::span<const Complex> w_row(slot.wt.row_data(si), n);
        const Complex v_dot_x0 =
            linalg::sparse_dot(item.update.v,
                               std::span<const Complex>(slot.x0));
        const Complex v_dot_w = linalg::sparse_dot(item.update.v, w_row);
        ws.x0_re[bi] = slot.x0[out].real();
        ws.x0_im[bi] = slot.x0[out].imag();
        ws.w_re[bi] = w_row[out].real();
        ws.w_im[bi] = w_row[out].imag();
        ws.vx0_re[bi] = v_dot_x0.real();
        ws.vx0_im[bi] = v_dot_x0.imag();
        ws.vw_re[bi] = v_dot_w.real();
        ws.vw_im[bi] = v_dot_w.imag();
      }

      for (std::size_t k = 0; k < item.fault_indices.size(); ++k) {
        const ParametricFault& fault = faults[item.fault_indices[k]];
        const double multiplier = fault.multiplier();
        for (std::size_t bi = 0; bi < m; ++bi) {
          const Complex scale =
              item.update.coefficient(s_block[bi], multiplier);
          ws.scale_re[bi] = scale.real();
          ws.scale_im[bi] = scale.imag();
        }
        const std::size_t refusals = linalg::sherman_morrison_sweep(
            m, ws.scale_re.data(), ws.scale_im.data(), ws.vx0_re.data(),
            ws.vx0_im.data(), ws.vw_re.data(), ws.vw_im.data(),
            ws.x0_re.data(), ws.x0_im.data(), ws.w_re.data(),
            ws.w_im.data(), options_.max_growth, ws.out_re.data(),
            ws.out_im.data(), ws.refused.data());
        std::vector<Complex>& values = site.values[k];
        for (std::size_t bi = 0; bi < m; ++bi) {
          if (!ws.refused[bi]) {
            values[begin + bi] = Complex(ws.out_re[bi], ws.out_im[bi]);
            continue;
          }
          // Ill-conditioned update: fall back to an exact refactorized
          // sweep for this fault (lazy; rare by construction).
          if (!site.refactorized[k]) {
            site.refactorized[k] = std::make_unique<mna::AcAnalysis>(
                inject(cut_.circuit, fault));
          }
          values[begin + bi] = site.refactorized[k]->node_voltage(
              frequencies_hz[begin + bi], cut_.output_node);
        }
        site.rank1_solves += m - refusals;
        site.full_solves += refusals;
      }
    });
  }
  result.golden = mna::AcResponse(frequencies_hz, std::move(golden_values));

  for (std::size_t si = 0; si < site_count; ++si) {
    for (std::size_t k = 0; k < sites[si].fault_indices.size(); ++k) {
      result.responses[sites[si].fault_indices[k]] =
          mna::AcResponse(frequencies_hz, std::move(state[si].values[k]));
    }
    result.stats.rank1_solves += state[si].rank1_solves;
    result.stats.full_solves += state[si].full_solves;
  }
  return result;
}

}  // namespace ftdiag::faults
