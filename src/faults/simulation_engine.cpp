#include "faults/simulation_engine.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "faults/fault_injector.hpp"
#include "linalg/lu.hpp"
#include "linalg/rank1.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/stamp_update.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace ftdiag::faults {

using linalg::Complex;

void SimOptions::check() const {
  if (max_growth <= 1.0) {
    throw ConfigError("simulation-engine max_growth must be > 1");
  }
}

std::size_t SimOptions::resolved_threads() const {
  return threads == 0 ? par::default_thread_count() : threads;
}

namespace {

/// Golden system at one frequency: the factorization plus the base solve.
struct GoldenPoint {
  linalg::LuFactorization<Complex> lu;
  std::vector<Complex> x0;
};

/// All deviations of one rank-1-capable site: one unit of parallel work.
struct SiteItem {
  std::vector<std::size_t> fault_indices;  ///< into the input list
  mna::Rank1StampUpdate update;
};

/// Per-site accumulation that survives across frequency blocks.
struct SiteState {
  std::vector<std::vector<Complex>> values;  ///< [fault in site][frequency]
  /// Refactorized analyses for ill-conditioned pairs, lazy per fault.
  std::vector<std::unique_ptr<mna::AcAnalysis>> refactorized;
  std::vector<Complex> dense_u;
  std::size_t rank1_solves = 0;
  std::size_t full_solves = 0;
};

/// Frequencies are processed in blocks of this size so at most this many
/// golden factorizations are alive at once (O(block * n^2) memory instead
/// of O(frequencies * n^2)), without changing any result bit.
constexpr std::size_t kFrequencyBlock = 64;

/// Naive per-fault path: inject and sweep from scratch.  This is the exact
/// computation of the legacy serial loop, so reuse-off results (and
/// fallback faults) stay bit-identical to it.
mna::AcResponse naive_response(const circuits::CircuitUnderTest& cut,
                               const ParametricFault& fault,
                               const std::vector<double>& frequencies_hz) {
  mna::AcAnalysis analysis(inject(cut.circuit, fault));
  return analysis.sweep(frequencies_hz, cut.output_node);
}

}  // namespace

SimulationEngine::SimulationEngine(circuits::CircuitUnderTest cut,
                                   SimOptions options)
    : cut_(std::move(cut)), options_(options) {
  options_.check();
  cut_.check();
}

BatchResult SimulationEngine::simulate_all(
    const std::vector<ParametricFault>& faults,
    const std::vector<double>& frequencies_hz) const {
  FTDIAG_ASSERT(
      std::is_sorted(frequencies_hz.begin(), frequencies_hz.end()),
      "engine frequencies must ascend");
  const std::size_t threads = options_.resolved_threads();
  const mna::AcAnalysis golden_analysis(cut_.circuit);
  const mna::MnaSystem& system = golden_analysis.system();
  const std::size_t n = system.unknown_count();
  const std::size_t out = system.node_unknown(cut_.output_node);

  BatchResult result;
  result.responses.resize(faults.size());

  // Reuse needs the dense factorization path; big sparse systems and
  // reuse-off configurations take the naive path, still fault-parallel.
  const bool reuse = options_.reuse_factorization &&
                     n <= mna::AcAnalysis::kDenseLimit &&
                     out != mna::kNoUnknown;
  if (!reuse) {
    result.golden = golden_analysis.sweep(frequencies_hz, cut_.output_node);
    par::parallel_for(faults.size(), threads, [&](std::size_t i) {
      result.responses[i] = naive_response(cut_, faults[i], frequencies_hz);
    });
    result.stats.full_solves = faults.size() * frequencies_hz.size();
    result.stats.fallback_faults = faults.size();
    return result;
  }

  // Group faults: all deviations of one site share the same structural
  // update (computed once per site) and thus the same per-frequency w
  // solve; faults whose stamp is not a single dyad go to the fallback
  // list.  site_of_label stores npos for known-unsupported sites so each
  // site is classified exactly once.
  constexpr std::size_t kUnsupported = static_cast<std::size_t>(-1);
  std::vector<SiteItem> sites;
  std::vector<std::size_t> fallback;
  std::map<std::string, std::size_t> site_of_label;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ParametricFault& fault = faults[i];
    if (fault.site.target != FaultSite::Target::kComponentValue) {
      fallback.push_back(i);
      continue;
    }
    const std::string label = fault.site.label();
    auto it = site_of_label.find(label);
    if (it == site_of_label.end()) {
      std::optional<mna::Rank1StampUpdate> update =
          mna::rank1_stamp_update(system, fault.site.component);
      const std::size_t slot = update ? sites.size() : kUnsupported;
      it = site_of_label.emplace(label, slot).first;
      if (update) sites.push_back({{}, std::move(*update)});
    }
    if (it->second == kUnsupported) {
      fallback.push_back(i);
    } else {
      sites[it->second].fault_indices.push_back(i);
    }
  }

  // Fallback faults need no golden factorization: naive inject-and-sweep,
  // fanned out across the pool.
  par::parallel_for(fallback.size(), threads, [&](std::size_t j) {
    const std::size_t i = fallback[j];
    result.responses[i] = naive_response(cut_, faults[i], frequencies_hz);
  });
  result.stats.fallback_faults = fallback.size();
  result.stats.full_solves = fallback.size() * frequencies_hz.size();

  std::vector<SiteState> state(sites.size());
  for (std::size_t si = 0; si < sites.size(); ++si) {
    state[si].values.assign(sites[si].fault_indices.size(),
                            std::vector<Complex>(frequencies_hz.size()));
    state[si].refactorized.resize(sites[si].fault_indices.size());
    state[si].dense_u = sites[si].update.u.densify(n);
  }

  // Frequency blocks: phase 1 factorizes the golden system for the block
  // (parallel over frequencies, mirroring AcAnalysis::solve exactly so
  // the golden response is bit-identical to the naive sweep); phase 2
  // fans the sites out, each writing only its own faults' slots.
  std::vector<std::optional<GoldenPoint>> block(
      std::min(kFrequencyBlock, frequencies_hz.size()));
  std::vector<Complex> golden_values(frequencies_hz.size());
  for (std::size_t begin = 0; begin < frequencies_hz.size();
       begin += kFrequencyBlock) {
    const std::size_t end =
        std::min(frequencies_hz.size(), begin + kFrequencyBlock);
    par::parallel_for(end - begin, threads, [&](std::size_t bi) {
      const std::size_t fi = begin + bi;
      linalg::CooMatrix<Complex> matrix(n, n);
      std::vector<Complex> rhs(n, Complex{});
      system.assemble_ac(linalg::s_of_hz(frequencies_hz[fi]), matrix, rhs);
      linalg::LuFactorization<Complex> lu(matrix.to_dense());
      std::vector<Complex> x0 = lu.solve(rhs);
      golden_values[fi] = x0[out];
      block[bi].emplace(GoldenPoint{std::move(lu), std::move(x0)});
    });

    par::parallel_for(sites.size(), threads, [&](std::size_t si) {
      const SiteItem& item = sites[si];
      SiteState& site = state[si];
      for (std::size_t fi = begin; fi < end; ++fi) {
        const GoldenPoint& point = *block[fi - begin];
        const std::vector<Complex> w = point.lu.solve(site.dense_u);
        const Complex v_dot_x0 = linalg::sparse_dot(item.update.v, point.x0);
        const Complex v_dot_w = linalg::sparse_dot(item.update.v, w);
        const Complex s = linalg::s_of_hz(frequencies_hz[fi]);
        for (std::size_t k = 0; k < item.fault_indices.size(); ++k) {
          const ParametricFault& fault = faults[item.fault_indices[k]];
          const Complex scale = item.update.coefficient(s, fault.multiplier());
          const std::optional<Complex> value =
              linalg::sherman_morrison_component(point.x0[out], w[out],
                                                 v_dot_x0, v_dot_w, scale,
                                                 options_.max_growth);
          if (value) {
            site.values[k][fi] = *value;
            ++site.rank1_solves;
            continue;
          }
          if (!site.refactorized[k]) {
            site.refactorized[k] = std::make_unique<mna::AcAnalysis>(
                inject(cut_.circuit, fault));
          }
          site.values[k][fi] = site.refactorized[k]->node_voltage(
              frequencies_hz[fi], cut_.output_node);
          ++site.full_solves;
        }
      }
    });
  }
  result.golden = mna::AcResponse(frequencies_hz, std::move(golden_values));

  for (std::size_t si = 0; si < sites.size(); ++si) {
    for (std::size_t k = 0; k < sites[si].fault_indices.size(); ++k) {
      result.responses[sites[si].fault_indices[k]] =
          mna::AcResponse(frequencies_hz, std::move(state[si].values[k]));
    }
    result.stats.rank1_solves += state[si].rank1_solves;
    result.stats.full_solves += state[si].full_solves;
  }
  return result;
}

}  // namespace ftdiag::faults
