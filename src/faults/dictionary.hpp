/// \file dictionary.hpp
/// \brief The fault dictionary: golden response plus one response per
/// dictionary fault, all on a common frequency grid.
///
/// The dictionary is the expensive artefact (one AC sweep per fault).  The
/// trajectory layer evaluates GA-proposed test frequencies against the
/// dictionary by interpolation, so the GA never re-runs fault simulation.
#pragma once

#include <string>
#include <vector>

#include "faults/fault_simulator.hpp"
#include "faults/fault_universe.hpp"
#include "mna/response.hpp"

namespace ftdiag::faults {

/// One dictionary row.
struct DictionaryEntry {
  ParametricFault fault;
  mna::AcResponse response;
};

class FaultDictionary {
public:
  /// Fault-simulate the whole universe on the CUT's dictionary grid.
  [[nodiscard]] static FaultDictionary build(
      const circuits::CircuitUnderTest& cut, const FaultUniverse& universe);

  /// Same, with an explicit frequency grid.
  [[nodiscard]] static FaultDictionary build(
      const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
      const std::vector<double>& frequencies_hz);

  /// Assemble from already-simulated parts (deserialization path).  All
  /// responses must share the golden grid.
  /// \throws ConfigError on grid mismatches or an empty entry list.
  [[nodiscard]] static FaultDictionary from_parts(
      mna::AcResponse golden, std::vector<DictionaryEntry> entries);

  [[nodiscard]] const mna::AcResponse& golden() const { return golden_; }
  [[nodiscard]] const std::vector<DictionaryEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t fault_count() const { return entries_.size(); }

  /// Distinct site labels in universe order.
  [[nodiscard]] const std::vector<std::string>& site_labels() const {
    return site_labels_;
  }

  /// Indices into entries() for one site, deviations ascending.
  /// \throws ConfigError for unknown site labels.
  [[nodiscard]] const std::vector<std::size_t>& entries_for(
      const std::string& site_label) const;

  /// The shared frequency grid.
  [[nodiscard]] const std::vector<double>& frequencies() const {
    return golden_.frequencies();
  }

private:
  mna::AcResponse golden_;
  std::vector<DictionaryEntry> entries_;
  std::vector<std::string> site_labels_;
  std::vector<std::vector<std::size_t>> per_site_;  ///< parallel to labels
};

}  // namespace ftdiag::faults
