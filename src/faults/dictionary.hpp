/// \file dictionary.hpp
/// \brief The fault dictionary: golden response plus one response per
/// dictionary fault, all on a common frequency grid.
///
/// The dictionary is the expensive artefact (one AC sweep per fault).  The
/// trajectory layer evaluates GA-proposed test frequencies against the
/// dictionary by interpolation, so the GA never re-runs fault simulation.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "faults/fault_simulator.hpp"
#include "faults/fault_universe.hpp"
#include "faults/simulation_engine.hpp"
#include "linalg/simd.hpp"
#include "mna/response.hpp"

namespace ftdiag::faults {

/// One dictionary row.
struct DictionaryEntry {
  ParametricFault fault;
  mna::AcResponse response;
};

class FaultDictionary {
public:
  /// Fault-simulate the whole universe on the CUT's dictionary grid via
  /// the parallel factorization-reuse engine (SimOptions defaults).
  [[nodiscard]] static FaultDictionary build(
      const circuits::CircuitUnderTest& cut, const FaultUniverse& universe);

  /// Same, with an explicit frequency grid.
  [[nodiscard]] static FaultDictionary build(
      const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
      const std::vector<double>& frequencies_hz);

  /// Same, with explicit engine options (thread count, reuse on/off).
  [[nodiscard]] static FaultDictionary build(
      const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
      const SimOptions& sim);
  [[nodiscard]] static FaultDictionary build(
      const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
      const std::vector<double>& frequencies_hz, const SimOptions& sim);

  /// Assemble from already-simulated parts (deserialization path).  All
  /// responses must share the golden grid.
  /// \throws ConfigError on grid mismatches or an empty entry list.
  [[nodiscard]] static FaultDictionary from_parts(
      mna::AcResponse golden, std::vector<DictionaryEntry> entries);

  [[nodiscard]] const mna::AcResponse& golden() const { return golden_; }
  [[nodiscard]] const std::vector<DictionaryEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t fault_count() const { return entries_.size(); }

  /// Distinct site labels in universe order.
  [[nodiscard]] const std::vector<std::string>& site_labels() const {
    return site_labels_;
  }

  /// Indices into entries() for one site, deviations ascending.
  /// \throws ConfigError for unknown site labels.
  [[nodiscard]] const std::vector<std::size_t>& entries_for(
      const std::string& site_label) const;

  /// The shared frequency grid.
  [[nodiscard]] const std::vector<double>& frequencies() const {
    return golden_.frequencies();
  }

  /// All signatures of the dictionary as two contiguous 64-byte-aligned
  /// re/im planes, frequency-major within each response: response r
  /// (r = 0 is the golden, r = 1 + e is entry e) occupies
  /// [r * grid(), (r + 1) * grid()) of each plane.  This is the SoA view
  /// the SIMD scoring/interpolation paths read; it is (re)built by
  /// from_parts(), i.e. at build, load and mmap-attach time — the `.fdx`
  /// wire format stays interleaved and the mmap path stays zero-copy.
  struct SignaturePlanes {
    std::size_t grid = 0;       ///< shared frequency-grid size
    std::size_t responses = 0;  ///< golden + entries
    linalg::simd::AlignedVector re, im;
  };
  [[nodiscard]] const SignaturePlanes& planes() const { return planes_; }

private:
  SignaturePlanes planes_;
  mna::AcResponse golden_;
  std::vector<DictionaryEntry> entries_;
  std::vector<std::string> site_labels_;
  std::vector<std::vector<std::size_t>> per_site_;  ///< parallel to labels
  /// label -> slot in site_labels_/per_site_, so entries_for() is O(1)
  /// instead of a linear scan per lookup.
  std::unordered_map<std::string, std::size_t> site_index_;
};

}  // namespace ftdiag::faults
