#include "faults/tolerance.hpp"

#include <algorithm>

namespace ftdiag::faults {

netlist::Circuit perturb_within_tolerance(
    const netlist::Circuit& circuit, const ToleranceSpec& spec, Rng& rng,
    const std::vector<std::string>& frozen) {
  netlist::Circuit out = circuit;
  for (const auto& c : circuit.components()) {
    if (!netlist::is_passive(c.kind)) continue;
    if (std::find(frozen.begin(), frozen.end(), c.name) != frozen.end()) {
      continue;
    }
    double tol = spec.resistor_tolerance;
    if (c.kind == netlist::ComponentKind::kCapacitor) {
      tol = spec.capacitor_tolerance;
    } else if (c.kind == netlist::ComponentKind::kInductor) {
      tol = spec.effective_inductor_tolerance();
    }
    if (tol <= 0.0) continue;
    double delta;
    if (spec.uniform) {
      delta = rng.uniform(-tol, tol);
    } else {
      delta = rng.normal(0.0, tol / 3.0);
      delta = std::clamp(delta, -tol, tol);
    }
    out.scale_value(c.name, 1.0 + delta);
  }
  return out;
}

}  // namespace ftdiag::faults
