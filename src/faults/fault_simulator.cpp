#include "faults/fault_simulator.hpp"

#include "faults/fault_injector.hpp"

namespace ftdiag::faults {

FaultSimulator::FaultSimulator(circuits::CircuitUnderTest cut,
                               SimOptions options)
    : cut_(std::move(cut)), options_(options) {
  options_.check();
  cut_.check();
}

mna::AcResponse FaultSimulator::run(
    const netlist::Circuit& circuit,
    const std::vector<double>& frequencies_hz) const {
  mna::AcAnalysis analysis(circuit);
  return analysis.sweep(frequencies_hz, cut_.output_node);
}

mna::AcResponse FaultSimulator::golden(
    const std::vector<double>& frequencies_hz) const {
  return run(cut_.circuit, frequencies_hz);
}

mna::AcResponse FaultSimulator::simulate(
    const ParametricFault& fault,
    const std::vector<double>& frequencies_hz) const {
  return run(inject(cut_.circuit, fault), frequencies_hz);
}

mna::AcResponse FaultSimulator::simulate_multi(
    const std::vector<ParametricFault>& faults,
    const std::vector<double>& frequencies_hz) const {
  return run(inject_all(cut_.circuit, faults), frequencies_hz);
}

BatchResult FaultSimulator::simulate_batch(
    const std::vector<ParametricFault>& faults,
    const std::vector<double>& frequencies_hz) const {
  return SimulationEngine(cut_, options_).simulate_all(faults, frequencies_hz);
}

mna::AcResponse FaultSimulator::measure(
    const ParametricFault& fault, const std::vector<double>& frequencies_hz,
    const MeasurementNoise& noise) const {
  return add_measurement_noise(simulate(fault, frequencies_hz), noise);
}

std::vector<double> FaultSimulator::dictionary_frequencies() const {
  return cut_.dictionary_grid.frequencies();
}

mna::AcResponse add_measurement_noise(const mna::AcResponse& response,
                                      const MeasurementNoise& noise) {
  if (noise.sigma <= 0.0) return response;
  Rng rng(noise.seed);
  std::vector<mna::Complex> values = response.values();
  for (auto& v : values) {
    const double factor = 1.0 + rng.normal(0.0, noise.sigma);
    // Clamp so a large noise draw cannot flip the magnitude sign.
    v *= factor > 0.01 ? factor : 0.01;
  }
  return mna::AcResponse(response.frequencies(), std::move(values));
}

}  // namespace ftdiag::faults
