#include "faults/fault.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace ftdiag::faults {

std::string FaultSite::label() const {
  if (target == Target::kComponentValue) return component;
  return component + "." + netlist::opamp_param_name(param);
}

std::string ParametricFault::label() const {
  const double pct = deviation * 100.0;
  // Round to a tenth of a percent for stable labels.
  const double rounded = std::round(pct * 10.0) / 10.0;
  if (rounded == std::floor(rounded)) {
    return site.label() + str::format("%+g%%", rounded);
  }
  return site.label() + str::format("%+.1f%%", pct);
}

}  // namespace ftdiag::faults
