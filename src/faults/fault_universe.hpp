/// \file fault_universe.hpp
/// \brief Enumeration of the fault list the dictionary covers.
///
/// The paper's universe: every testable passive deviated systematically
/// within 60 %..140 % of nominal in steps of 10 % (0 % being the golden
/// circuit, which is excluded from the fault list).
#pragma once

#include <vector>

#include "circuits/cut.hpp"
#include "faults/fault.hpp"

namespace ftdiag::faults {

/// Symmetric (or asymmetric) deviation sweep specification.
struct DeviationSpec {
  double min_fraction = -0.40;   ///< lower bound (inclusive), e.g. -40 %
  double max_fraction = +0.40;   ///< upper bound (inclusive)
  double step_fraction = 0.10;   ///< grid step
  bool include_nominal = false;  ///< keep the 0 % point in the list

  /// Materialize the deviation grid (ascending).  Values within 1e-9 of
  /// zero are treated as nominal.  \throws ConfigError on a bad range.
  [[nodiscard]] std::vector<double> deviations() const;

  /// The paper's spec: -40 %..+40 % in 10 % steps, nominal excluded.
  [[nodiscard]] static DeviationSpec paper() { return {}; }
};

/// The full fault list: sites x deviations.
class FaultUniverse {
public:
  FaultUniverse(std::vector<FaultSite> sites, DeviationSpec spec);

  [[nodiscard]] const std::vector<FaultSite>& sites() const { return sites_; }
  [[nodiscard]] const DeviationSpec& spec() const { return spec_; }

  /// All (site, deviation) pairs, grouped by site in site order, deviations
  /// ascending within a site.
  [[nodiscard]] std::vector<ParametricFault> enumerate() const;

  [[nodiscard]] std::size_t fault_count() const {
    return sites_.size() * spec_.deviations().size();
  }

  /// Universe over a CUT's testable components (the paper's choice).
  [[nodiscard]] static FaultUniverse over_testable(
      const circuits::CircuitUnderTest& cut,
      const DeviationSpec& spec = DeviationSpec::paper());

  /// Universe over every macro-model parameter of every kOpAmp in the CUT
  /// (the FFM active-fault extension).  \throws ConfigError if the circuit
  /// has no macro op-amps.
  [[nodiscard]] static FaultUniverse over_opamp_params(
      const circuits::CircuitUnderTest& cut,
      const DeviationSpec& spec = DeviationSpec::paper());

private:
  std::vector<FaultSite> sites_;
  DeviationSpec spec_;
};

}  // namespace ftdiag::faults
