#include "faults/fault_injector.hpp"

namespace ftdiag::faults {

namespace {

void apply(netlist::Circuit& circuit, const ParametricFault& fault) {
  if (fault.site.target == FaultSite::Target::kComponentValue) {
    circuit.scale_value(fault.site.component, fault.multiplier());
  } else {
    const double nominal =
        circuit.opamp_param(fault.site.component, fault.site.param);
    circuit.set_opamp_param(fault.site.component, fault.site.param,
                            nominal * fault.multiplier());
  }
}

}  // namespace

netlist::Circuit inject(const netlist::Circuit& circuit,
                        const ParametricFault& fault) {
  netlist::Circuit faulty = circuit;
  apply(faulty, fault);
  return faulty;
}

netlist::Circuit inject_all(const netlist::Circuit& circuit,
                            const std::vector<ParametricFault>& faults) {
  netlist::Circuit faulty = circuit;
  for (const auto& fault : faults) apply(faulty, fault);
  return faulty;
}

}  // namespace ftdiag::faults
