/// \file fault_simulator.hpp
/// \brief Fault simulation: AC responses of faulty variants of a CUT.
///
/// Wraps the (circuit, output node) pair and produces AcResponses for the
/// golden circuit, dictionary faults, and arbitrary "unknown" faults — with
/// optional measurement-noise injection to emulate bench measurements.
#pragma once

#include <optional>
#include <vector>

#include "circuits/cut.hpp"
#include "faults/fault.hpp"
#include "faults/simulation_engine.hpp"
#include "mna/ac_analysis.hpp"
#include "util/rng.hpp"

namespace ftdiag::faults {

/// Multiplicative gaussian amplitude noise applied per measurement sample,
/// emulating instrumentation error: |H| * (1 + N(0, sigma)).
struct MeasurementNoise {
  double sigma = 0.0;
  std::uint64_t seed = 1;
};

class FaultSimulator {
public:
  /// \throws ConfigError / CircuitError if the CUT is malformed.
  explicit FaultSimulator(circuits::CircuitUnderTest cut,
                          SimOptions options = {});

  [[nodiscard]] const circuits::CircuitUnderTest& cut() const { return cut_; }
  [[nodiscard]] const SimOptions& sim_options() const { return options_; }

  /// Golden (nominal) response over the given frequencies.
  [[nodiscard]] mna::AcResponse golden(
      const std::vector<double>& frequencies_hz) const;

  /// Response of the CUT with one fault applied.
  [[nodiscard]] mna::AcResponse simulate(
      const ParametricFault& fault,
      const std::vector<double>& frequencies_hz) const;

  /// Response with several simultaneous faults.
  [[nodiscard]] mna::AcResponse simulate_multi(
      const std::vector<ParametricFault>& faults,
      const std::vector<double>& frequencies_hz) const;

  /// Golden + one response per fault in one pass through the parallel
  /// factorization-reuse engine (this simulator's SimOptions).  The
  /// result is bit-identical for any thread count.
  [[nodiscard]] BatchResult simulate_batch(
      const std::vector<ParametricFault>& faults,
      const std::vector<double>& frequencies_hz) const;

  /// Emulated measurement: response magnitudes perturbed by multiplicative
  /// gaussian noise.  Phase is preserved.
  [[nodiscard]] mna::AcResponse measure(
      const ParametricFault& fault, const std::vector<double>& frequencies_hz,
      const MeasurementNoise& noise) const;

  /// Frequencies of the CUT's default dictionary grid.
  [[nodiscard]] std::vector<double> dictionary_frequencies() const;

private:
  [[nodiscard]] mna::AcResponse run(
      const netlist::Circuit& circuit,
      const std::vector<double>& frequencies_hz) const;

  circuits::CircuitUnderTest cut_;
  SimOptions options_;
};

/// Apply multiplicative gaussian magnitude noise to a response.
[[nodiscard]] mna::AcResponse add_measurement_noise(
    const mna::AcResponse& response, const MeasurementNoise& noise);

}  // namespace ftdiag::faults
