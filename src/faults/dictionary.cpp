#include "faults/dictionary.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ftdiag::faults {

FaultDictionary FaultDictionary::build(const circuits::CircuitUnderTest& cut,
                                       const FaultUniverse& universe) {
  return build(cut, universe, cut.dictionary_grid.frequencies());
}

FaultDictionary FaultDictionary::build(
    const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
    const std::vector<double>& frequencies_hz) {
  const FaultSimulator simulator(cut);
  mna::AcResponse golden = simulator.golden(frequencies_hz);

  const std::vector<ParametricFault> faults = universe.enumerate();
  std::vector<DictionaryEntry> entries;
  entries.reserve(faults.size());
  log::info(str::format("building fault dictionary: %zu faults x %zu freqs",
                        faults.size(), frequencies_hz.size()));
  for (const auto& fault : faults) {
    entries.push_back({fault, simulator.simulate(fault, frequencies_hz)});
  }
  return from_parts(std::move(golden), std::move(entries));
}

FaultDictionary FaultDictionary::from_parts(
    mna::AcResponse golden, std::vector<DictionaryEntry> entries) {
  if (entries.empty()) {
    throw ConfigError("fault dictionary needs at least one entry");
  }
  for (const auto& entry : entries) {
    if (entry.response.frequencies() != golden.frequencies()) {
      throw ConfigError("dictionary entry '" + entry.fault.label() +
                        "' is not on the golden frequency grid");
    }
  }
  FaultDictionary dict;
  dict.golden_ = std::move(golden);
  dict.entries_ = std::move(entries);

  // Per-site index, deviations ascending (enumerate() already orders them,
  // but do not rely on it).
  for (std::size_t i = 0; i < dict.entries_.size(); ++i) {
    const std::string label = dict.entries_[i].fault.site.label();
    auto it = std::find(dict.site_labels_.begin(), dict.site_labels_.end(),
                        label);
    if (it == dict.site_labels_.end()) {
      dict.site_labels_.push_back(label);
      dict.per_site_.emplace_back();
      it = dict.site_labels_.end() - 1;
    }
    dict.per_site_[static_cast<std::size_t>(it - dict.site_labels_.begin())]
        .push_back(i);
  }
  for (auto& indices : dict.per_site_) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return dict.entries_[a].fault.deviation < dict.entries_[b].fault.deviation;
    });
  }
  return dict;
}

const std::vector<std::size_t>& FaultDictionary::entries_for(
    const std::string& site_label) const {
  for (std::size_t i = 0; i < site_labels_.size(); ++i) {
    if (site_labels_[i] == site_label) return per_site_[i];
  }
  throw ConfigError("dictionary has no site '" + site_label + "'");
}

}  // namespace ftdiag::faults
