#include "faults/dictionary.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ftdiag::faults {

FaultDictionary FaultDictionary::build(const circuits::CircuitUnderTest& cut,
                                       const FaultUniverse& universe) {
  return build(cut, universe, cut.dictionary_grid.frequencies(), SimOptions{});
}

FaultDictionary FaultDictionary::build(
    const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
    const std::vector<double>& frequencies_hz) {
  return build(cut, universe, frequencies_hz, SimOptions{});
}

FaultDictionary FaultDictionary::build(const circuits::CircuitUnderTest& cut,
                                       const FaultUniverse& universe,
                                       const SimOptions& sim) {
  return build(cut, universe, cut.dictionary_grid.frequencies(), sim);
}

FaultDictionary FaultDictionary::build(
    const circuits::CircuitUnderTest& cut, const FaultUniverse& universe,
    const std::vector<double>& frequencies_hz, const SimOptions& sim) {
  const std::vector<ParametricFault> faults = universe.enumerate();
  log::info(str::format(
      "building fault dictionary: %zu faults x %zu freqs (%zu threads, "
      "reuse %s)",
      faults.size(), frequencies_hz.size(), sim.resolved_threads(),
      sim.reuse_factorization ? "on" : "off"));

  SimulationEngine engine(cut, sim);
  BatchResult batch = engine.simulate_all(faults, frequencies_hz);
  log::info(str::format(
      "fault simulation: %zu rank-1 solves, %zu full solves, %zu fallback "
      "faults",
      batch.stats.rank1_solves, batch.stats.full_solves,
      batch.stats.fallback_faults));

  std::vector<DictionaryEntry> entries;
  entries.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    entries.push_back({faults[i], std::move(batch.responses[i])});
  }
  return from_parts(std::move(batch.golden), std::move(entries));
}

FaultDictionary FaultDictionary::from_parts(
    mna::AcResponse golden, std::vector<DictionaryEntry> entries) {
  if (entries.empty()) {
    throw ConfigError("fault dictionary needs at least one entry");
  }
  for (const auto& entry : entries) {
    if (entry.response.frequencies() != golden.frequencies()) {
      throw ConfigError("dictionary entry '" + entry.fault.label() +
                        "' is not on the golden frequency grid");
    }
  }
  FaultDictionary dict;
  dict.golden_ = std::move(golden);
  dict.entries_ = std::move(entries);

  // Per-site index, deviations ascending (enumerate() already orders them,
  // but do not rely on it).
  for (std::size_t i = 0; i < dict.entries_.size(); ++i) {
    std::string label = dict.entries_[i].fault.site.label();
    auto [it, inserted] =
        dict.site_index_.try_emplace(label, dict.site_labels_.size());
    if (inserted) {
      dict.site_labels_.push_back(std::move(label));
      dict.per_site_.emplace_back();
    }
    dict.per_site_[it->second].push_back(i);
  }
  for (auto& indices : dict.per_site_) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return dict.entries_[a].fault.deviation < dict.entries_[b].fault.deviation;
    });
  }

  // Consolidated SoA signature planes (golden first), the contiguous
  // frequency-major view the SIMD paths read.  Values are copied bit-for-
  // bit from the per-response planes, so plane readers and values()
  // readers always agree exactly.
  const std::size_t grid = dict.golden_.size();
  dict.planes_.grid = grid;
  dict.planes_.responses = dict.entries_.size() + 1;
  dict.planes_.re.resize(dict.planes_.responses * grid);
  dict.planes_.im.resize(dict.planes_.responses * grid);
  auto copy_planes = [&](std::size_t r, const mna::AcResponse& response) {
    std::copy(response.reals().begin(), response.reals().end(),
              dict.planes_.re.begin() + r * grid);
    std::copy(response.imags().begin(), response.imags().end(),
              dict.planes_.im.begin() + r * grid);
  };
  copy_planes(0, dict.golden_);
  for (std::size_t e = 0; e < dict.entries_.size(); ++e) {
    copy_planes(1 + e, dict.entries_[e].response);
  }
  return dict;
}

const std::vector<std::size_t>& FaultDictionary::entries_for(
    const std::string& site_label) const {
  const auto it = site_index_.find(site_label);
  if (it == site_index_.end()) {
    throw ConfigError("dictionary has no site '" + site_label + "'");
  }
  return per_site_[it->second];
}

}  // namespace ftdiag::faults
