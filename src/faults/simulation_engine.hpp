/// \file simulation_engine.hpp
/// \brief Parallel fault-simulation engine with golden-factorization reuse.
///
/// The naive dictionary build re-assembles and re-factorizes the full MNA
/// system for every fault x frequency pair.  A parametric fault perturbs
/// exactly one component stamp, so per frequency the engine
///
///   1. assembles and factorizes the *golden* system once — dense LU for
///      small circuits, pattern-reusing sparse LU (mna::SweepSolver)
///      beyond mna::SweepAssembler::kDenseLimit,
///   2. produces each faulty response from that factorization via a
///      Sherman–Morrison rank-1 update (linalg/rank1.hpp), solving one
///      extra triangular pair per *fault site* and then sweeping all of
///      the site's deviations in O(1) each,
///   3. falls back to a full refactorization for fault kinds whose stamp
///      is not a single dyad (op-amp macro parameters) and for updates the
///      stability check refuses as ill-conditioned.
///
/// Faults fan out across a small std::thread pool; every fault writes only
/// its own result slot, so the assembled dictionary is bit-identical for
/// any thread count.  With reuse disabled the engine runs the exact naive
/// per-fault computation (still in parallel), bit-identical to the legacy
/// serial loop.
#pragma once

#include <cstddef>
#include <vector>

#include "circuits/cut.hpp"
#include "faults/fault.hpp"
#include "linalg/rank1.hpp"
#include "mna/response.hpp"
#include "mna/sweep_solver.hpp"

namespace ftdiag::faults {

/// Engine configuration (plumbed through FaultDictionary::build and the
/// Session facade).
struct SimOptions {
  /// Worker threads for the fault fan-out; 0 means "auto" (the hardware
  /// concurrency).  Thread count never changes results, only wall time.
  std::size_t threads = 0;

  /// Reuse the golden LU factorization via Sherman–Morrison updates.  Off
  /// forces the naive assemble+factorize path for every fault (the
  /// bit-exact legacy behaviour; useful for differential testing).
  bool reuse_factorization = true;

  /// Error-growth bound above which a rank-1 update is refused and the
  /// fault x frequency pair is solved by full refactorization.
  double max_growth = linalg::kRank1MaxGrowth;

  /// Factorization backend of the golden phase: auto picks dense below
  /// mna::SweepAssembler::kDenseLimit and the pattern-reusing sparse
  /// factorization above it; the forced settings exist for differential
  /// tests and the dense-vs-sparse scaling benchmark.
  mna::SolverBackend backend = mna::SolverBackend::kAuto;

  /// \throws ConfigError unless max_growth > 1.
  void check() const;

  /// The effective pool size (resolves 0 to the hardware concurrency).
  [[nodiscard]] std::size_t resolved_threads() const;
};

/// Where each fault x frequency solve came from (observability for tests
/// and benchmarks; the counts are deterministic).
struct EngineStats {
  std::size_t rank1_solves = 0;      ///< pairs served by Sherman–Morrison
  std::size_t full_solves = 0;       ///< pairs served by refactorization
  std::size_t fallback_faults = 0;   ///< faults that never used reuse
};

/// One batch of fault simulation: the golden response plus one response
/// per input fault, in input order.
struct BatchResult {
  mna::AcResponse golden;
  std::vector<mna::AcResponse> responses;
  EngineStats stats;
};

class SimulationEngine {
public:
  /// \throws ConfigError / CircuitError if the CUT or options are invalid.
  explicit SimulationEngine(circuits::CircuitUnderTest cut,
                            SimOptions options = {});

  [[nodiscard]] const circuits::CircuitUnderTest& cut() const { return cut_; }
  [[nodiscard]] const SimOptions& options() const { return options_; }

  /// Simulate the golden circuit and every fault over \p frequencies_hz
  /// (ascending).  Deterministic: the result is bit-identical for any
  /// thread count.
  [[nodiscard]] BatchResult simulate_all(
      const std::vector<ParametricFault>& faults,
      const std::vector<double>& frequencies_hz) const;

private:
  circuits::CircuitUnderTest cut_;
  SimOptions options_;
};

}  // namespace ftdiag::faults
