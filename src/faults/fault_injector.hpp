/// \file fault_injector.hpp
/// \brief Applying parametric faults to circuits.
#pragma once

#include "faults/fault.hpp"
#include "netlist/circuit.hpp"

namespace ftdiag::faults {

/// Return a copy of \p circuit with \p fault applied (value or macro-model
/// parameter multiplied by 1 + deviation).
/// \throws CircuitError if the site does not exist in the circuit.
[[nodiscard]] netlist::Circuit inject(const netlist::Circuit& circuit,
                                      const ParametricFault& fault);

/// Apply several faults at once (multi-fault scenarios; the paper assumes
/// single faults, the evaluation harness uses this for ablations).
[[nodiscard]] netlist::Circuit inject_all(
    const netlist::Circuit& circuit,
    const std::vector<ParametricFault>& faults);

}  // namespace ftdiag::faults
