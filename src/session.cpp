#include "session.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "circuits/registry.hpp"
#include "core/evaluation_pipeline.hpp"
#include "core/sensitivity.hpp"
#include "faults/fault_simulator.hpp"
#include "mna/frequency_grid.hpp"
#include "netlist/parser.hpp"
#include "service/dictionary_store.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/threads.hpp"

namespace ftdiag {

namespace {

/// FNV-1a over the bytes of a string.
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Terminate every field with a unit separator so adjacent fields cannot
  // alias across their boundary ("V1" + "23" vs "V12" + "3").
  h ^= 0x1f;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return fnv1a(h, std::string(buf));
}

}  // namespace

/// Cache key covering everything the dictionary build depends on: the
/// circuit (component descriptions carry names, nodes and values), the
/// test access points, the testable set, the grid and the deviation sweep.
/// Public because the service::DictionaryStore indexes its `.fdx`
/// artifacts by exactly this key.
std::string dictionary_cache_key(const circuits::CircuitUnderTest& cut,
                                 const faults::DeviationSpec& spec,
                                 const faults::SimOptions& sim) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a(h, cut.name);
  h = fnv1a(h, cut.input_source);
  h = fnv1a(h, cut.output_node);
  for (const auto& site : cut.testable) h = fnv1a(h, site);
  for (const auto& component : cut.circuit.components()) {
    h = fnv1a(h, component.describe());
  }
  for (double f : cut.dictionary_grid.frequencies()) h = fnv1a(h, f);
  h = fnv1a(h, spec.min_fraction);
  h = fnv1a(h, spec.max_fraction);
  h = fnv1a(h, spec.step_fraction);
  h = fnv1a(h, spec.include_nominal ? "nominal" : "");
  // Factorization reuse (and the growth bound deciding when it falls back
  // to refactorization) changes dictionary values within rounding error,
  // so sessions with either toggled must not share entries; the thread
  // count never changes bits and stays out of the key.
  h = fnv1a(h, sim.reuse_factorization ? "reuse" : "serial");
  // The growth bound only matters when reuse is on (it decides which
  // pairs fall back to refactorization); with reuse off it provably
  // cannot change bits, so keep those sessions sharing one dictionary.
  if (sim.reuse_factorization) h = fnv1a(h, sim.max_growth);
  return cut.name + "#" + str::format("%016llx",
                                      static_cast<unsigned long long>(h));
}

namespace {

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

/// The cache stores weak references: pointer identity is shared between
/// all live sessions of the same CUT, but once the last session (or other
/// retained shared_ptr) goes away the dictionary frees itself instead of
/// being pinned for the life of the process.
std::map<std::string, std::weak_ptr<const faults::FaultDictionary>>&
dictionary_cache() {
  static std::map<std::string, std::weak_ptr<const faults::FaultDictionary>>
      cache;
  return cache;
}

/// Fetch-or-build through the process-wide cache.  The build itself runs
/// outside the cache lock so unrelated CUTs never serialize on each other;
/// a rare double build of the same key is resolved in favour of the first
/// insertion, keeping pointer identity stable.
std::shared_ptr<const faults::FaultDictionary> fetch_dictionary(
    const std::string& key, const circuits::CircuitUnderTest& cut,
    const faults::DeviationSpec& spec, const faults::SimOptions& sim) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex());
    auto it = dictionary_cache().find(key);
    if (it != dictionary_cache().end()) {
      if (auto live = it->second.lock()) return live;
    }
  }
  auto built = std::make_shared<const faults::FaultDictionary>(
      faults::FaultDictionary::build(
          cut, faults::FaultUniverse::over_testable(cut, spec), sim));
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& slot = dictionary_cache()[key];
  if (auto live = slot.lock()) return live;  // lost a build race: keep identity
  slot = built;
  // Opportunistic sweep so dead keys don't accumulate in the map.
  for (auto it = dictionary_cache().begin();
       it != dictionary_cache().end();) {
    it = it->second.expired() ? dictionary_cache().erase(it) : std::next(it);
  }
  return built;
}

}  // namespace

// ------------------------------------------------------------- options

std::size_t SearchOptions::resolved_threads() const {
  return util::resolve_threads(threads);
}

void SearchOptions::check() const {
  if (n_frequencies == 0) {
    throw ConfigError("search needs at least one test frequency");
  }
  ga.check();
  (void)core::make_fitness(fitness);  // validates the kind
}

void NoiseOptions::check() const {
  if (sigma < 0.0) {
    throw ConfigError("measurement-noise sigma must be >= 0");
  }
}

void SessionOptions::check() const {
  search.check();
  noise.check();
  sim.check();
  service.check();
  (void)deviations.deviations();  // validates the range
}

// --------------------------------------------------------------- state

struct Session::State {
  circuits::CircuitUnderTest cut;
  SessionOptions options;
  std::string dictionary_key;
  std::shared_ptr<const core::TrajectoryFitness> fitness;
  /// When set, the dictionary resolves through this persistent store
  /// (memory LRU -> `.fdx` on disk -> build) instead of the in-process
  /// weak cache.
  std::shared_ptr<service::DictionaryStore> store;

  mutable std::mutex mutex;
  mutable std::shared_ptr<const faults::FaultDictionary> dictionary;
  mutable std::unique_ptr<core::TestVectorEvaluator> evaluator;
  mutable std::shared_ptr<const faults::FaultSimulator> simulator;

  /// The active test program: vector + immutable diagnosis engine.
  std::shared_ptr<const core::DiagnosisEngine> engine;
  std::optional<core::TestVector> active_vector;
};

Session::Session(std::shared_ptr<State> state) : state_(std::move(state)) {}

Session Session::open(const std::string& source, const NetlistAccess& access) {
  return SessionBuilder::from_source(source, access).build();
}

const circuits::CircuitUnderTest& Session::cut() const { return state_->cut; }

const SessionOptions& Session::options() const { return state_->options; }

std::shared_ptr<const faults::FaultDictionary> Session::dictionary() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->dictionary) {
    state_->dictionary =
        state_->store
            ? state_->store->get(state_->cut, state_->options.deviations,
                                 state_->options.sim)
            : fetch_dictionary(state_->dictionary_key, state_->cut,
                               state_->options.deviations,
                               state_->options.sim);
    log::info(str::format("session(%s): dictionary ready (%zu faults)",
                          state_->cut.name.c_str(),
                          state_->dictionary->fault_count()));
  }
  return state_->dictionary;
}

const core::TestVectorEvaluator& Session::evaluator() const {
  auto dictionary = this->dictionary();  // ensure built, keep shared
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->evaluator) {
    state_->evaluator = std::make_unique<core::TestVectorEvaluator>(
        *state_->dictionary, state_->options.sampling, state_->fitness);
  }
  return *state_->evaluator;
}

ga::GeneBounds Session::bounds() const {
  return {std::log10(state_->cut.band_low_hz),
          std::log10(state_->cut.band_high_hz)};
}

// ---------------------------------------------------------- generation

core::TestVector Session::to_test_vector(const std::vector<double>& genes) {
  core::TestVector tv;
  tv.frequencies_hz.reserve(genes.size());
  for (double g : genes) tv.frequencies_hz.push_back(std::pow(10.0, g));
  tv.normalize();
  return tv;
}

TestGenResult Session::search_impl(const ga::FrequencyOptimizer* optimizer,
                                   std::uint64_t seed) const {
  const SearchOptions& search = state_->options.search;
  const core::TestVectorEvaluator& evaluator = this->evaluator();

  std::unique_ptr<ga::GeneticAlgorithm> owned;
  if (optimizer == nullptr) {
    ga::GaConfig ga_config = search.ga;
    if (search.seed_with_sensitivity) {
      // Screen frequency tuples by sensitivity-direction spread (cheap: no
      // fault simulation) and hand the best ones to the GA as seeds.
      const auto curves = core::compute_sensitivities(
          state_->cut,
          mna::FrequencyGrid::log_sweep(state_->cut.band_low_hz,
                                        state_->cut.band_high_hz, 60));
      for (const auto& tuple : core::screen_frequency_tuples(
               curves, 30, search.sensitivity_seed_count,
               search.n_frequencies)) {
        std::vector<double> genome;
        genome.reserve(tuple.size());
        for (double f : tuple) genome.push_back(std::log10(f));
        ga_config.seed_genomes.push_back(std::move(genome));
      }
    }
    owned = std::make_unique<ga::GeneticAlgorithm>(ga_config);
    optimizer = owned.get();
  }

  core::PipelineOptions pipeline_options;
  pipeline_options.threads = search.resolved_threads();
  pipeline_options.cache_signatures = search.eval_cache;
  const core::EvaluationPipeline pipeline(evaluator, pipeline_options);
  Rng rng(seed);
  TestGenResult result;
  result.search =
      optimizer->optimize(pipeline, search.n_frequencies, bounds(), rng);
  // Score the winner at the snapped genes the pipeline actually evaluated,
  // so the reported score agrees with the fitness that selected it.
  std::vector<double> best_genes = result.search.best.genes;
  for (double& g : best_genes) g = pipeline.snap(g);
  result.best = evaluator.score(to_test_vector(best_genes));
  result.dictionary_faults = state_->dictionary->fault_count();
  log::info(str::format(
      "session(%s): %s search -> fitness %.4f (%zu intersections) with %s "
      "after %zu evaluations",
      state_->cut.name.c_str(), optimizer->name().c_str(), result.best.fitness,
      result.best.intersections, result.best.vector.label().c_str(),
      result.search.evaluations));
  return result;
}

TestGenResult Session::run_search() const {
  return search_impl(nullptr, state_->options.search.seed);
}

TestGenResult Session::run_search(const ga::FrequencyOptimizer& optimizer,
                                  std::uint64_t seed) const {
  return search_impl(&optimizer, seed);
}

TestGenResult Session::generate_tests() {
  TestGenResult result = run_search();
  use_vector(result.best.vector);
  return result;
}

TestGenResult Session::generate_tests(const ga::FrequencyOptimizer& optimizer,
                                      std::uint64_t seed) {
  TestGenResult result = run_search(optimizer, seed);
  use_vector(result.best.vector);
  return result;
}

core::TestVectorScore Session::score(const core::TestVector& vector) const {
  return evaluator().score(vector);
}

Session& Session::use_vector(core::TestVector vector) {
  auto engine = std::make_shared<const core::DiagnosisEngine>(
      evaluator().make_engine(vector));
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->active_vector = std::move(vector);
  state_->engine = std::move(engine);
  return *this;
}

bool Session::has_vector() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->active_vector.has_value();
}

// ------------------------------------------------------------ diagnosis

struct Session::ProgramSnapshot {
  std::shared_ptr<const core::DiagnosisEngine> engine;
  core::TestVector vector;
};

core::TestVector Session::vector() const { return program().vector; }

Session::ProgramSnapshot Session::program() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->engine || !state_->active_vector) {
    throw ConfigError(
        "session has no active test vector (call generate_tests() or "
        "use_vector() first)");
  }
  return {state_->engine, *state_->active_vector};
}

std::shared_ptr<const core::DiagnosisEngine> Session::engine() const {
  return program().engine;
}

core::Diagnosis Session::diagnose(const core::Point& observed) const {
  return engine()->diagnose(observed);
}

core::Diagnosis Session::diagnose(const mna::AcResponse& measured) const {
  const ProgramSnapshot program = this->program();
  return program.engine->diagnose(
      evaluator().sampler().sample(measured, program.vector.frequencies_hz));
}

std::vector<core::Diagnosis> Session::diagnose_batch(
    const std::vector<core::Point>& observed, std::size_t threads) const {
  const auto engine = this->engine();  // one immutable engine for the batch
  if (threads == 0) threads = par::default_thread_count();
  std::vector<core::Diagnosis> results(observed.size());
  // Every point writes only its own slot, so the batch is bit-identical
  // to the serial loop for any thread count.
  par::parallel_for(observed.size(), threads, [&](std::size_t i) {
    results[i] = engine->diagnose(observed[i]);
  });
  return results;
}

// ----------------------------------------------------------- utilities

mna::AcResponse Session::measure(
    const faults::ParametricFault& fault,
    std::optional<std::uint64_t> noise_seed) const {
  const core::TestVector vector = this->vector();
  std::shared_ptr<const faults::FaultSimulator> simulator;
  {
    // The simulator's const interface is stateless, so one shared
    // instance serves every measure() call (and thread).
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->simulator) {
      state_->simulator = std::make_shared<const faults::FaultSimulator>(
          state_->cut, state_->options.sim);
    }
    simulator = state_->simulator;
  }
  const faults::MeasurementNoise noise{
      state_->options.noise.sigma,
      noise_seed.value_or(state_->options.noise.seed)};
  return simulator->measure(fault, vector.frequencies_hz, noise);
}

core::Point Session::observe(const mna::AcResponse& measured) const {
  const core::TestVector vector = this->vector();
  return evaluator().sampler().sample(measured, vector.frequencies_hz);
}

core::AccuracyReport Session::evaluate() const {
  core::EvaluationOptions options;
  options.noise_sigma = state_->options.noise.sigma;
  return evaluate(options);
}

core::AccuracyReport Session::evaluate(
    const core::EvaluationOptions& options) const {
  return core::evaluate_diagnosis(state_->cut, *dictionary(), vector(),
                                  state_->options.sampling, options);
}

// ------------------------------------------- process-wide cache control

std::size_t Session::dictionary_cache_size() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  std::size_t live = 0;
  for (const auto& [key, entry] : dictionary_cache()) {
    live += entry.expired() ? 0 : 1;
  }
  return live;
}

void Session::clear_dictionary_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  dictionary_cache().clear();
}

// --------------------------------------------------------------- builder

SessionBuilder::SessionBuilder(circuits::CircuitUnderTest cut)
    : cut_(std::move(cut)) {}

SessionBuilder SessionBuilder::from_registry(const std::string& name) {
  return SessionBuilder(circuits::make_by_name(name));
}

SessionBuilder SessionBuilder::from_netlist(const std::string& path,
                                            const NetlistAccess& access) {
  circuits::CircuitUnderTest cut;
  cut.circuit = netlist::parse_netlist_file(path);
  cut.name = path;
  cut.description = cut.circuit.title().empty() ? "netlist-defined CUT"
                                                : cut.circuit.title();
  cut.input_source = access.input_source;
  cut.output_node = access.output_node;
  cut.testable = access.testable.empty() ? cut.circuit.passive_names()
                                         : access.testable;
  cut.band_low_hz = access.band_low_hz;
  cut.band_high_hz = access.band_high_hz;
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(
      access.band_low_hz, access.band_high_hz, access.grid_points);
  return SessionBuilder(std::move(cut));
}

SessionBuilder SessionBuilder::from_source(const std::string& source,
                                           const NetlistAccess& access) {
  if (str::starts_with(source, "builtin:")) {
    return from_registry(source.substr(8));
  }
  return from_netlist(source, access);
}

SessionBuilder& SessionBuilder::cut(circuits::CircuitUnderTest cut) {
  cut_ = std::move(cut);
  return *this;
}

SessionBuilder& SessionBuilder::options(SessionOptions options) {
  options_ = std::move(options);
  return *this;
}

SessionBuilder& SessionBuilder::search(SearchOptions options) {
  options_.search = std::move(options);
  return *this;
}

SessionBuilder& SessionBuilder::noise(NoiseOptions options) {
  options_.noise = options;
  return *this;
}

SessionBuilder& SessionBuilder::deviations(faults::DeviationSpec spec) {
  options_.deviations = spec;
  return *this;
}

SessionBuilder& SessionBuilder::sampling(core::SamplingPolicy policy) {
  options_.sampling = policy;
  return *this;
}

SessionBuilder& SessionBuilder::sim(SimOptions options) {
  options_.sim = options;
  return *this;
}

SessionBuilder& SessionBuilder::service(ServiceOptions options) {
  options_.service = options;
  return *this;
}

SessionBuilder& SessionBuilder::store(
    std::shared_ptr<service::DictionaryStore> store) {
  store_ = std::move(store);
  return *this;
}

SessionBuilder& SessionBuilder::fitness(FitnessKind kind) {
  options_.search.fitness = kind;
  return *this;
}

SessionBuilder& SessionBuilder::frequencies(std::size_t n) {
  options_.search.n_frequencies = n;
  return *this;
}

SessionBuilder& SessionBuilder::seed(std::uint64_t seed) {
  options_.search.seed = seed;
  return *this;
}

SessionBuilder& SessionBuilder::threads(std::size_t n) {
  options_.sim.threads = n;
  options_.search.threads = n;
  return *this;
}

SessionBuilder& SessionBuilder::eval_cache(bool on) {
  options_.search.eval_cache = on;
  return *this;
}

Session SessionBuilder::build() const {
  if (!cut_) {
    throw ConfigError("session builder has no circuit-under-test");
  }
  options_.check();
  cut_->check();

  auto state = std::make_shared<Session::State>();
  state->cut = *cut_;
  state->options = options_;
  state->store = store_;
  state->dictionary_key = dictionary_cache_key(
      state->cut, state->options.deviations, state->options.sim);
  state->fitness = std::shared_ptr<const core::TrajectoryFitness>(
      core::make_fitness(options_.search.fitness).release());
  return Session(std::move(state));
}

}  // namespace ftdiag
