/// \file matrix.hpp
/// \brief Dense row-major matrix over double or std::complex<double>.
///
/// Sized for MNA systems (tens to a few hundreds of unknowns); the layout is
/// a single contiguous buffer, and all hot paths (LU, mat-vec) run over it
/// linearly.
#pragma once

#include <complex>
#include <initializer_list>
#include <vector>

#include "util/error.hpp"

namespace ftdiag::linalg {

template <typename T>
class Matrix {
public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// Build from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      FTDIAG_ASSERT(row.size() == cols_, "ragged matrix initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// n x n identity.
  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool square() const { return rows_ == cols_; }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    FTDIAG_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    FTDIAG_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row r (contiguous cols() entries).
  [[nodiscard]] T* row_data(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const T* row_data(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  /// Reset all entries to zero, keeping the shape.  Used per-frequency by
  /// the MNA assembler to avoid reallocation.
  void set_zero() { std::fill(data_.begin(), data_.end(), T{}); }

  /// Reshape to rows x cols and zero.  Reuses the buffer when possible.
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  /// O(1) buffer exchange.  The LU factorization adopts a caller-assembled
  /// matrix this way and hands its previous (equally sized) buffer back,
  /// so a sweep re-assembles into warm storage with zero allocations.
  void swap(Matrix& other) noexcept {
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    data_.swap(other.data_);
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
  }

  [[nodiscard]] Matrix operator+(const Matrix& other) const {
    FTDIAG_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                  "matrix shape mismatch in operator+");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
    return out;
  }

  [[nodiscard]] Matrix operator-(const Matrix& other) const {
    FTDIAG_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                  "matrix shape mismatch in operator-");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
    return out;
  }

  [[nodiscard]] Matrix operator*(const T& scalar) const {
    Matrix out = *this;
    for (auto& v : out.data_) v *= scalar;
    return out;
  }

  [[nodiscard]] Matrix operator*(const Matrix& other) const {
    FTDIAG_ASSERT(cols_ == other.rows_, "matrix shape mismatch in operator*");
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(r, k);
        if (a == T{}) continue;
        const T* brow = other.row_data(k);
        T* orow = out.row_data(r);
        for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
      }
    }
    return out;
  }

  /// Matrix-vector product.
  [[nodiscard]] std::vector<T> operator*(const std::vector<T>& x) const {
    FTDIAG_ASSERT(cols_ == x.size(), "matrix/vector shape mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      const T* row = row_data(r);
      T acc{};
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

  [[nodiscard]] bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  /// Maximum absolute entry (infinity "element" norm).
  [[nodiscard]] double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(v));
    return m;
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

}  // namespace ftdiag::linalg
