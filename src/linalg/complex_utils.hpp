/// \file complex_utils.hpp
/// \brief Complex-number helpers shared by AC analysis and the sampler.
#pragma once

#include <cmath>
#include <complex>
#include <numbers>

namespace ftdiag::linalg {

using Complex = std::complex<double>;

/// Magnitude in decibels: 20*log10(|z|).  |z| == 0 maps to -inf.
[[nodiscard]] inline double to_db(const Complex& z) {
  return 20.0 * std::log10(std::abs(z));
}

/// Magnitude in decibels of a real gain.
[[nodiscard]] inline double to_db(double magnitude) {
  return 20.0 * std::log10(std::fabs(magnitude));
}

/// Inverse of to_db.
[[nodiscard]] inline double from_db(double db) {
  return std::pow(10.0, db / 20.0);
}

/// Phase in degrees in (-180, 180].
[[nodiscard]] inline double phase_deg(const Complex& z) {
  return std::arg(z) * 180.0 / std::numbers::pi;
}

/// Laplace variable for a physical frequency in hertz: s = j*2*pi*f.
[[nodiscard]] inline Complex s_of_hz(double hz) {
  return Complex(0.0, 2.0 * std::numbers::pi * hz);
}

/// Approximate complex equality with absolute tolerance on both parts.
[[nodiscard]] inline bool approx_equal(const Complex& a, const Complex& b,
                                       double tol) {
  return std::fabs(a.real() - b.real()) <= tol &&
         std::fabs(a.imag() - b.imag()) <= tol;
}

}  // namespace ftdiag::linalg
