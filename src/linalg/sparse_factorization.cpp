#include "linalg/sparse_factorization.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::linalg {

namespace {

/// Singularity threshold relative to the largest input entry (matches
/// SparseLu and the dense LU).
constexpr double kPivotTolerance = 1e-13;

/// Column-panel width of the blocked multi-RHS solve (same as lu.cpp).
constexpr std::size_t kSolvePanel = 48;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Binary search for a column in an ascending row list; returns index or
/// kNpos.
template <typename RowEntry>
std::size_t find_col(const std::vector<RowEntry>& row, std::size_t col) {
  std::size_t lo = 0, hi = row.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (row[mid].col < col) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < row.size() && row[lo].col == col) return lo;
  return kNpos;
}

/// Binary search for \p c in the ascending pattern slice [lo, hi) of
/// \p cols; returns the absolute index or kNpos.
std::size_t find_pattern(const std::vector<std::size_t>& cols, std::size_t lo,
                         std::size_t hi, std::size_t c) {
  const std::size_t end = hi;  // stay inside the row slice, not the array
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cols[mid] < c) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < end && cols[lo] == c) return lo;
  return kNpos;
}

}  // namespace

template <typename T>
SparseFactorization<T>::SparseFactorization(const CooMatrix<T>& a,
                                            double pivot_threshold) {
  if (a.rows() != a.cols()) {
    throw NumericError("sparse factorization requires a square matrix");
  }
  FTDIAG_ASSERT(pivot_threshold > 0.0 && pivot_threshold <= 1.0,
                "pivot threshold must lie in (0, 1]");
  const std::size_t n = a.rows();

  // --- Symbolic + first numeric pass: the same threshold-pivoted row-list
  // elimination as SparseLu, with every entry — including exact zeros —
  // retained, so the resulting pattern is a pure function of the input
  // STRUCTURE and can be refilled with any same-pattern values.
  struct RowEntry {
    std::size_t col;
    T value;
  };
  std::vector<std::vector<RowEntry>> rows(n);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  {
    std::vector<std::map<std::size_t, T>> row_maps(n);
    for (const auto& e : a.entries()) row_maps[e.row][e.col] += e.value;
    for (std::size_t r = 0; r < n; ++r) {
      rows[r].reserve(row_maps[r].size());
      for (const auto& [c, v] : row_maps[r]) rows[r].push_back({c, v});
    }
  }

  double max_entry = 0.0;
  for (const auto& row : rows) {
    for (const auto& e : row) max_entry = std::max(max_entry, std::abs(e.value));
  }
  if (max_entry == 0.0) {
    throw NumericError("sparse factorization of the zero matrix");
  }

  for (std::size_t k = 0; k < n; ++k) {
    double best_mag = 0.0;
    for (std::size_t r = k; r < n; ++r) {
      const std::size_t idx = find_col(rows[r], k);
      if (idx == kNpos) continue;
      best_mag = std::max(best_mag, std::abs(rows[r][idx].value));
    }
    if (best_mag <= kPivotTolerance * max_entry) {
      throw NumericError(str::format(
          "singular matrix in sparse factorization at column %zu", k));
    }
    // Threshold pivoting: the sparsest numerically acceptable row wins
    // (Markowitz-style fill control, identical to SparseLu).
    std::size_t pivot_row = kNpos;
    std::size_t pivot_len = kNpos;
    for (std::size_t r = k; r < n; ++r) {
      const std::size_t idx = find_col(rows[r], k);
      if (idx == kNpos) continue;
      if (std::abs(rows[r][idx].value) >= pivot_threshold * best_mag &&
          rows[r].size() < pivot_len) {
        pivot_row = r;
        pivot_len = rows[r].size();
      }
    }
    FTDIAG_ASSERT(pivot_row != kNpos,
                  "sparse factorization failed to select a pivot");
    if (pivot_row != k) {
      std::swap(rows[k], rows[pivot_row]);
      std::swap(perm[k], perm[pivot_row]);
    }

    const std::size_t pk = find_col(rows[k], k);
    const T pivot = rows[k][pk].value;

    for (std::size_t r = k + 1; r < n; ++r) {
      const std::size_t idx = find_col(rows[r], k);
      if (idx == kNpos) continue;
      const T multiplier = rows[r][idx].value / pivot;
      std::vector<RowEntry> merged;
      merged.reserve(rows[r].size() + rows[k].size());
      std::size_t ir = 0, ik = pk + 1;  // skip pivot col in row k
      const auto& rk = rows[k];
      const auto& rr = rows[r];
      while (ir < rr.size() || ik < rk.size()) {
        if (ir < rr.size() && (ik >= rk.size() || rr[ir].col < rk[ik].col)) {
          RowEntry e = rr[ir++];
          if (e.col == k) e.value = multiplier;
          merged.push_back(e);
        } else if (ik < rk.size() &&
                   (ir >= rr.size() || rk[ik].col < rr[ir].col)) {
          merged.push_back({rk[ik].col, -multiplier * rk[ik].value});
          ++ik;
        } else {
          RowEntry e = rr[ir];
          e.value = rr[ir].value - multiplier * rk[ik].value;
          ++ir;
          ++ik;
          merged.push_back(e);  // exact cancellations stay in the pattern
        }
      }
      rows[r] = std::move(merged);
    }
  }

  // --- Freeze the elimination outcome into an immutable CSR pattern.
  auto sym = std::make_shared<Symbolic>();
  sym->n = n;
  sym->perm = std::move(perm);
  sym->inv_perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) sym->inv_perm[sym->perm[i]] = i;
  sym->row_start.assign(n + 1, 0);
  sym->diag.assign(n, kNpos);
  std::size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  sym->col.reserve(nnz);
  values_.clear();
  values_.reserve(nnz);
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& e : rows[r]) {
      if (e.col == r) sym->diag[r] = sym->col.size();
      sym->col.push_back(e.col);
      values_.push_back(e.value);
    }
    sym->row_start[r + 1] = sym->col.size();
  }
  for (std::size_t r = 0; r < n; ++r) {
    FTDIAG_ASSERT(sym->diag[r] != kNpos,
                  "sparse factorization row lacks a diagonal entry");
  }
  symbolic_ = std::move(sym);
  work_.assign(n, T{});
}

template <typename T>
void SparseFactorization<T>::refactor(const CooMatrix<T>& a) {
  FTDIAG_ASSERT(symbolic_ != nullptr, "refactor before symbolic analysis");
  const Symbolic& sym = *symbolic_;
  const std::size_t n = sym.n;
  if (a.rows() != n || a.cols() != n) {
    throw NumericError("refactor matrix shape differs from the analysis");
  }

  // Scatter the new values into the frozen pattern (duplicates summed, as
  // in COO->row conversion).  The input may be a structural SUBSET of the
  // analyzed pattern — e.g. the reactive part vanishing — but never a
  // superset: a position outside the pattern would change the elimination
  // structure, which is exactly what the symbolic/numeric split forbids.
  std::fill(values_.begin(), values_.end(), T{});
  for (const auto& e : a.entries()) {
    const std::size_t r = sym.inv_perm[e.row];
    const std::size_t idx =
        find_pattern(sym.col, sym.row_start[r], sym.row_start[r + 1], e.col);
    if (idx == kNpos) {
      throw NumericError(
          str::format("entry (%zu, %zu) outside the analyzed sparsity "
                      "pattern in refactor",
                      e.row, e.col));
    }
    values_[idx] += e.value;
  }

  double max_entry = 0.0;
  for (const auto& v : values_) max_entry = std::max(max_entry, std::abs(v));
  if (max_entry == 0.0) {
    throw NumericError("sparse refactorization of the zero matrix");
  }

  // Up-looking elimination into the fixed pattern with the frozen pivot
  // order: for each row, apply the updates of every earlier pivot the row
  // touches (ascending, so the per-position operation order matches the
  // analysis), then gather back.  No searching, no allocation.
  T* const w = work_.data();
  const std::size_t* const cols = sym.col.data();
  T* const vals = values_.data();
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t rb = sym.row_start[r];
    const std::size_t re = sym.row_start[r + 1];
    const std::size_t rd = sym.diag[r];
    for (std::size_t idx = rb; idx < re; ++idx) w[cols[idx]] = vals[idx];
    for (std::size_t idx = rb; idx < rd; ++idx) {
      const std::size_t k = cols[idx];
      const T multiplier = w[k] / vals[sym.diag[k]];
      w[k] = multiplier;
      for (std::size_t j = sym.diag[k] + 1; j < sym.row_start[k + 1]; ++j) {
        w[cols[j]] -= multiplier * vals[j];
      }
    }
    if (std::abs(w[r]) <= kPivotTolerance * max_entry) {
      // The analysis-time pivot order is numerically unacceptable for
      // these values; the caller falls back to a fresh analysis.
      for (std::size_t idx = rb; idx < re; ++idx) w[cols[idx]] = T{};
      throw NumericError(str::format(
          "reused pivot order broke down at row %zu in sparse refactor", r));
    }
    for (std::size_t idx = rb; idx < re; ++idx) {
      vals[idx] = w[cols[idx]];
      w[cols[idx]] = T{};
    }
  }
}

template <typename T>
void SparseFactorization<T>::solve_into(std::span<const T> b,
                                        std::span<T> x) const {
  FTDIAG_ASSERT(symbolic_ != nullptr, "solve before symbolic analysis");
  const Symbolic& sym = *symbolic_;
  const std::size_t n = sym.n;
  FTDIAG_ASSERT(b.size() == n && x.size() == n,
                "rhs/solution size mismatch in sparse solve");
  for (std::size_t i = 0; i < n; ++i) x[i] = b[sym.perm[i]];
  // Structurally-zero prefix skip: rows of the permuted b that are zero
  // before the first nonzero stay exactly zero through forward
  // substitution (L is lower-triangular, and everything they would read
  // is part of the same zero prefix), so the loop starts at the first
  // nonzero row and the prefix is preserved verbatim.  MNA excitations
  // are a handful of source rows, so this skips most of L per solve.
  std::size_t first = 0;
  while (first < n && x[first] == T{}) ++first;
  // Forward substitution: L has unit diagonal, entries at col < row.
  for (std::size_t r = first; r < n; ++r) {
    T acc = x[r];
    for (std::size_t idx = sym.row_start[r]; idx < sym.diag[r]; ++idx) {
      acc -= values_[idx] * x[sym.col[idx]];
    }
    x[r] = acc;
  }
  // Back substitution with U (col >= row, diagonal divides last).
  for (std::size_t rr = n; rr-- > 0;) {
    T acc = x[rr];
    for (std::size_t idx = sym.diag[rr] + 1; idx < sym.row_start[rr + 1];
         ++idx) {
      acc -= values_[idx] * x[sym.col[idx]];
    }
    x[rr] = acc / values_[sym.diag[rr]];
  }
}

template <typename T>
void SparseFactorization<T>::solve_into(const Matrix<T>& b,
                                        Matrix<T>& x) const {
  FTDIAG_ASSERT(symbolic_ != nullptr, "solve before symbolic analysis");
  const Symbolic& sym = *symbolic_;
  const std::size_t n = sym.n;
  const std::size_t m = b.cols();
  FTDIAG_ASSERT(b.rows() == n, "rhs row count mismatch in sparse solve");
  if (x.rows() != n || x.cols() != m) x.reshape(n, m);

  // X = P B: row i of X is row perm[i] of B.
  for (std::size_t i = 0; i < n; ++i) {
    const T* src = b.row_data(sym.perm[i]);
    T* dst = x.row_data(i);
    for (std::size_t c = 0; c < m; ++c) dst[c] = src[c];
  }

  // Shared structurally-zero prefix of the permuted block (rows that are
  // zero in every column before the first nonzero row): forward
  // substitution leaves it exactly zero, so every panel starts below it.
  // See the single-RHS overload for the argument.
  std::size_t first = 0;
  for (; first < n; ++first) {
    const T* row = x.row_data(first);
    bool all_zero = true;
    for (std::size_t c = 0; c < m; ++c) {
      if (!(row[c] == T{})) {
        all_zero = false;
        break;
      }
    }
    if (!all_zero) break;
  }

  for (std::size_t panel = 0; panel < m; panel += kSolvePanel) {
    const std::size_t pe = std::min(m, panel + kSolvePanel);
    // Forward substitution, all panel columns in lockstep; per column the
    // operation order is exactly the single-RHS solve_into's.
    for (std::size_t r = first; r < n; ++r) {
      T* xr = x.row_data(r);
      for (std::size_t idx = sym.row_start[r]; idx < sym.diag[r]; ++idx) {
        const T factor = values_[idx];
        if (factor == T{}) continue;
        const T* xj = x.row_data(sym.col[idx]);
        for (std::size_t c = panel; c < pe; ++c) xr[c] -= factor * xj[c];
      }
    }
    // Back substitution with U.
    for (std::size_t rr = n; rr-- > 0;) {
      T* xr = x.row_data(rr);
      for (std::size_t idx = sym.diag[rr] + 1; idx < sym.row_start[rr + 1];
           ++idx) {
        const T factor = values_[idx];
        if (factor == T{}) continue;
        const T* xj = x.row_data(sym.col[idx]);
        for (std::size_t c = panel; c < pe; ++c) xr[c] -= factor * xj[c];
      }
      const T pivot = values_[sym.diag[rr]];
      for (std::size_t c = panel; c < pe; ++c) xr[c] /= pivot;
    }
  }
}

template <typename T>
std::vector<T> SparseFactorization<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x(size());
  solve_into(b, x);
  return x;
}

template <typename T>
std::size_t SparseFactorization<T>::size() const {
  return symbolic_ ? symbolic_->n : 0;
}

template <typename T>
std::size_t SparseFactorization<T>::factor_nnz() const {
  return symbolic_ ? symbolic_->col.size() : 0;
}

template class SparseFactorization<double>;
template class SparseFactorization<std::complex<double>>;

}  // namespace ftdiag::linalg
