/// \file lu.hpp
/// \brief Dense LU factorization with partial pivoting.
///
/// The factorization object owns the packed LU matrix plus the pivot
/// permutation and can be reused for many right-hand sides — the AC sweep
/// factors once per frequency and solves for each independent source.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace ftdiag::linalg {

/// LU factorization PA = LU (L unit-diagonal, packed in place).
template <typename T>
class LuFactorization {
public:
  /// Factor \p a (copied). \throws ftdiag::NumericError if \p a is not
  /// square or is numerically singular.
  explicit LuFactorization(Matrix<T> a);

  /// Solve A x = b.  \p b must have size n.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const;

  /// Solve in place for several right-hand sides (columns of B).
  [[nodiscard]] Matrix<T> solve(const Matrix<T>& b) const;

  /// Determinant of A (product of U diagonal times pivot sign).
  [[nodiscard]] T determinant() const;

  /// Inverse of A (n solves against identity).
  [[nodiscard]] Matrix<T> inverse() const;

  /// Cheap condition estimate: max|U_ii| / min|U_ii|.  A large value warns
  /// of an ill-conditioned MNA system (e.g. badly scaled components).
  [[nodiscard]] double diagonal_condition_estimate() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Number of row swaps performed (parity gives the pivot sign).
  [[nodiscard]] std::size_t swap_count() const { return swaps_; }

private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;  ///< row i of PA is row perm_[i] of A
  std::size_t swaps_ = 0;
};

/// Convenience: factor and solve a single system.
template <typename T>
[[nodiscard]] std::vector<T> solve_dense(Matrix<T> a, const std::vector<T>& b) {
  return LuFactorization<T>(std::move(a)).solve(b);
}

extern template class LuFactorization<double>;
extern template class LuFactorization<std::complex<double>>;

}  // namespace ftdiag::linalg
