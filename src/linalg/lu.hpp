/// \file lu.hpp
/// \brief Dense LU factorization with partial pivoting.
///
/// The factorization object owns the packed LU matrix plus the pivot
/// permutation and can be reused for many right-hand sides — the AC sweep
/// factors once per frequency and solves for each independent source.
///
/// Two entry points serve the allocation-free sweep hot path:
///   - factor_in_place() adopts a caller-assembled matrix by O(1) buffer
///     swap and hands the previous buffer back, so the caller re-assembles
///     into warm storage on the next frequency;
///   - solve_into() writes into caller-owned memory, and its multi-RHS
///     overload runs one blocked triangular solve over all columns at once
///     (rows stay hot in cache while every RHS is advanced — BLAS-3 style
///     instead of a column-at-a-time sweep).
/// See src/linalg/README.md for the workspace contract.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace ftdiag::linalg {

/// LU factorization PA = LU (L unit-diagonal, packed in place).
template <typename T>
class LuFactorization {
public:
  /// An empty factorization; factor_in_place() before solving.
  LuFactorization() = default;

  /// Factor \p a (copied). \throws ftdiag::NumericError if \p a is not
  /// square or is numerically singular.
  explicit LuFactorization(Matrix<T> a);

  /// Factor \p a in place: the matrix buffer is swapped into this object
  /// (no copy) and \p a receives the previous factorization's equally
  /// sized buffer — assemble the next system into it and the sweep never
  /// allocates after warm-up.  \throws ftdiag::NumericError on a
  /// non-square or singular matrix (the swap has already happened; the
  /// factorization is unusable until the next successful factor).
  void factor_in_place(Matrix<T>& a);

  /// Solve A x = b into caller-owned \p x (size n, distinct from b).
  /// Allocation-free.
  void solve_into(std::span<const T> b, std::span<T> x) const;

  /// Blocked multi-RHS solve A X = B.  \p x is reshaped to b's shape when
  /// needed (no-op — and no allocation — when already that shape).  All
  /// columns advance together through one forward/backward pass over the
  /// factor rows; column panels keep the active rows within cache for
  /// wide right-hand sides.  Per column the operation order is exactly
  /// solve_into's.
  void solve_into(const Matrix<T>& b, Matrix<T>& x) const;

  /// Solve A x = b.  \p b must have size n.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const;

  /// Solve for several right-hand sides (columns of B).
  [[nodiscard]] Matrix<T> solve(const Matrix<T>& b) const;

  /// Determinant of A (product of U diagonal times pivot sign).
  [[nodiscard]] T determinant() const;

  /// Inverse of A (n solves against identity).
  [[nodiscard]] Matrix<T> inverse() const;

  /// Cheap condition estimate: max|U_ii| / min|U_ii|.  A large value warns
  /// of an ill-conditioned MNA system (e.g. badly scaled components).
  [[nodiscard]] double diagonal_condition_estimate() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Number of row swaps performed (parity gives the pivot sign).
  [[nodiscard]] std::size_t swap_count() const { return swaps_; }

private:
  void factor();

  Matrix<T> lu_;
  std::vector<std::size_t> perm_;  ///< row i of PA is row perm_[i] of A
  std::size_t swaps_ = 0;
};

/// Convenience: factor and solve a single system.
template <typename T>
[[nodiscard]] std::vector<T> solve_dense(Matrix<T> a, const std::vector<T>& b) {
  return LuFactorization<T>(std::move(a)).solve(b);
}

extern template class LuFactorization<double>;
extern template class LuFactorization<std::complex<double>>;

}  // namespace ftdiag::linalg
