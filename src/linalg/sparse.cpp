#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::linalg {

template <typename T>
CsrMatrix<T>::CsrMatrix(const CooMatrix<T>& coo)
    : rows_(coo.rows()), cols_(coo.cols()) {
  // Sum duplicates through an ordered map per row.
  std::vector<std::map<std::size_t, T>> row_maps(rows_);
  for (const auto& e : coo.entries()) row_maps[e.row][e.col] += e.value;

  row_start_.assign(rows_ + 1, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const auto& [c, v] : row_maps[r]) {
      if (v == T{}) continue;
      col_.push_back(c);
      values_.push_back(v);
    }
    row_start_[r + 1] = values_.size();
  }
}

template <typename T>
std::vector<T> CsrMatrix<T>::multiply(const std::vector<T>& x) const {
  FTDIAG_ASSERT(x.size() == cols_, "csr multiply shape mismatch");
  std::vector<T> y(rows_, T{});
  for (std::size_t r = 0; r < rows_; ++r) {
    T acc{};
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      acc += values_[k] * x[col_[k]];
    }
    y[r] = acc;
  }
  return y;
}

template <typename T>
Matrix<T> CsrMatrix<T>::to_dense() const {
  Matrix<T> m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      m(r, col_[k]) = values_[k];
    }
  }
  return m;
}

template <typename T>
std::vector<std::pair<std::size_t, T>> CsrMatrix<T>::row(std::size_t r) const {
  FTDIAG_ASSERT(r < rows_, "csr row out of range");
  std::vector<std::pair<std::size_t, T>> out;
  for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
    out.emplace_back(col_[k], values_[k]);
  }
  return out;
}

namespace {

/// Binary search for a column in an ascending row list; returns index or
/// npos.
template <typename RowEntry>
std::size_t find_col(const std::vector<RowEntry>& row, std::size_t col) {
  std::size_t lo = 0, hi = row.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (row[mid].col < col) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < row.size() && row[lo].col == col) return lo;
  return static_cast<std::size_t>(-1);
}

}  // namespace

template <typename T>
SparseLu<T>::SparseLu(const CooMatrix<T>& a, double pivot_threshold) {
  if (a.rows() != a.cols()) {
    throw NumericError("sparse LU requires a square matrix");
  }
  FTDIAG_ASSERT(pivot_threshold > 0.0 && pivot_threshold <= 1.0,
                "pivot threshold must lie in (0, 1]");
  n_ = a.rows();
  factor_.assign(n_, {});
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  // Working rows as ordered (col, value) lists, duplicates summed.
  {
    std::vector<std::map<std::size_t, T>> row_maps(n_);
    for (const auto& e : a.entries()) row_maps[e.row][e.col] += e.value;
    for (std::size_t r = 0; r < n_; ++r) {
      factor_[r].reserve(row_maps[r].size());
      // Entries that sum to exactly zero are KEPT: the factor structure
      // must depend only on where stamps land, never on their values, or
      // pattern reuse across a sweep breaks (see SparseFactorization).
      for (const auto& [c, v] : row_maps[r]) factor_[r].push_back({c, v});
    }
  }

  double max_entry = 0.0;
  for (const auto& row : factor_) {
    for (const auto& e : row) max_entry = std::max(max_entry, std::abs(e.value));
  }
  if (max_entry == 0.0) throw NumericError("sparse LU of the zero matrix");

  for (std::size_t k = 0; k < n_; ++k) {
    // Candidate pivots: rows >= k with an entry in column k.
    double best_mag = 0.0;
    for (std::size_t r = k; r < n_; ++r) {
      const std::size_t idx = find_col(factor_[r], k);
      if (idx == static_cast<std::size_t>(-1)) continue;
      best_mag = std::max(best_mag, std::abs(factor_[r][idx].value));
    }
    if (best_mag <= 1e-13 * max_entry) {
      throw NumericError(
          str::format("singular matrix in sparse LU at column %zu", k));
    }
    // Threshold pivoting: prefer the sparsest acceptable row to limit fill.
    std::size_t pivot_row = static_cast<std::size_t>(-1);
    std::size_t pivot_len = static_cast<std::size_t>(-1);
    for (std::size_t r = k; r < n_; ++r) {
      const std::size_t idx = find_col(factor_[r], k);
      if (idx == static_cast<std::size_t>(-1)) continue;
      if (std::abs(factor_[r][idx].value) >= pivot_threshold * best_mag &&
          factor_[r].size() < pivot_len) {
        pivot_row = r;
        pivot_len = factor_[r].size();
      }
    }
    FTDIAG_ASSERT(pivot_row != static_cast<std::size_t>(-1),
                  "sparse LU failed to select a pivot");
    if (pivot_row != k) {
      std::swap(factor_[k], factor_[pivot_row]);
      std::swap(perm_[k], perm_[pivot_row]);
    }

    const std::size_t pk = find_col(factor_[k], k);
    const T pivot = factor_[k][pk].value;

    for (std::size_t r = k + 1; r < n_; ++r) {
      const std::size_t idx = find_col(factor_[r], k);
      if (idx == static_cast<std::size_t>(-1)) continue;
      const T multiplier = factor_[r][idx].value / pivot;
      // Row_r := Row_r - multiplier * Row_k  (columns > k),
      // and store the multiplier in column k (the L part).
      std::vector<RowEntry> merged;
      merged.reserve(factor_[r].size() + factor_[k].size());
      std::size_t ir = 0, ik = pk + 1;  // skip pivot col in row k
      const auto& rk = factor_[k];
      const auto& rr = factor_[r];
      while (ir < rr.size() || ik < rk.size()) {
        // Entries of row r at columns <= k pass through (L part + done cols),
        // except column k which becomes the multiplier.
        if (ir < rr.size() &&
            (ik >= rk.size() || rr[ir].col < rk[ik].col)) {
          RowEntry e = rr[ir++];
          if (e.col == k) e.value = multiplier;
          merged.push_back(e);
        } else if (ik < rk.size() &&
                   (ir >= rr.size() || rk[ik].col < rr[ir].col)) {
          merged.push_back({rk[ik].col, -multiplier * rk[ik].value});
          ++ik;
        } else {
          RowEntry e = rr[ir];
          e.value = rr[ir].value - multiplier * rk[ik].value;
          ++ir;
          ++ik;
          // Exact cancellations stay as explicit zeros: dropping them made
          // factor_nnz() — and the whole elimination structure — a function
          // of the VALUES, which broke same-pattern factor reuse.
          merged.push_back(e);
        }
      }
      factor_[r] = std::move(merged);
    }
  }
}

template <typename T>
std::vector<T> SparseLu<T>::solve(const std::vector<T>& b) const {
  FTDIAG_ASSERT(b.size() == n_, "rhs size mismatch in sparse LU solve");
  std::vector<T> y(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[perm_[i]];
  // Forward substitution: L has unit diagonal, entries at col < row.
  for (std::size_t r = 0; r < n_; ++r) {
    T acc = y[r];
    for (const auto& e : factor_[r]) {
      if (e.col >= r) break;
      acc -= e.value * y[e.col];
    }
    y[r] = acc;
  }
  // Back substitution with U (col >= row).
  for (std::size_t rr = n_; rr-- > 0;) {
    T acc = y[rr];
    T diag{};
    for (const auto& e : factor_[rr]) {
      if (e.col < rr) continue;
      if (e.col == rr) {
        diag = e.value;
      } else {
        acc -= e.value * y[e.col];
      }
    }
    FTDIAG_ASSERT(diag != T{}, "zero diagonal in sparse back substitution");
    y[rr] = acc / diag;
  }
  return y;
}

template <typename T>
std::size_t SparseLu<T>::factor_nnz() const {
  std::size_t count = 0;
  for (const auto& row : factor_) count += row.size();
  return count;
}

template class CooMatrix<double>;
template class CooMatrix<std::complex<double>>;
template class CsrMatrix<double>;
template class CsrMatrix<std::complex<double>>;
template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace ftdiag::linalg
