/// \file sparse.hpp
/// \brief Sparse matrix support: COO assembly, CSR storage, and a
/// row-list sparse LU with threshold partial pivoting.
///
/// MNA matrices of filter netlists are very sparse (a handful of entries
/// per row).  The dense path is fine for the paper's seven-component CUT;
/// the sparse path keeps large registry circuits (ladders with hundreds of
/// sections) tractable and is exercised by the performance benchmarks.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace ftdiag::linalg {

/// Triplet-form accumulator.  Duplicate (row, col) entries are summed on
/// conversion, matching stamp semantics.
template <typename T>
class CooMatrix {
public:
  CooMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t row, std::size_t col, const T& value) {
    FTDIAG_ASSERT(row < rows_ && col < cols_, "coo index out of range");
    if (value == T{}) return;
    entries_.push_back({row, col, value});
  }

  /// Drop all entries, keeping the capacity (per-frequency reassembly
  /// reuses one accumulator without reallocating).
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  struct Entry {
    std::size_t row;
    std::size_t col;
    T value;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Densify (mostly for tests and small systems).
  [[nodiscard]] Matrix<T> to_dense() const {
    Matrix<T> m(rows_, cols_);
    for (const auto& e : entries_) m(e.row, e.col) += e.value;
    return m;
  }

private:
  std::size_t rows_, cols_;
  std::vector<Entry> entries_;
};

/// Compressed sparse row matrix (immutable once built).
template <typename T>
class CsrMatrix {
public:
  /// Build from COO, summing duplicates and dropping exact zeros.
  explicit CsrMatrix(const CooMatrix<T>& coo);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x.
  [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const;

  [[nodiscard]] Matrix<T> to_dense() const;

  /// Row r as (column, value) pairs, columns ascending.
  [[nodiscard]] std::vector<std::pair<std::size_t, T>> row(std::size_t r) const;

private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> row_start_;  ///< size rows_+1
  std::vector<std::size_t> col_;
  std::vector<T> values_;
};

/// Sparse LU with threshold partial pivoting over dynamic row lists.
/// Fill-in is stored as it appears; suitable for the moderately sized,
/// diagonally-dominant systems MNA produces.
template <typename T>
class SparseLu {
public:
  /// \param pivot_threshold in (0,1]: a diagonal entry is accepted as pivot
  /// if its magnitude is at least threshold * (largest candidate); larger
  /// values favour stability, smaller values favour sparsity.
  explicit SparseLu(const CooMatrix<T>& a, double pivot_threshold = 0.1);

  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Non-zeros in the combined L+U factors (fill-in indicator).
  [[nodiscard]] std::size_t factor_nnz() const;

private:
  struct RowEntry {
    std::size_t col;
    T value;
  };
  std::size_t n_ = 0;
  /// Unified factor rows: entries with col < row belong to L (multipliers),
  /// col >= row to U.  Columns ascending.
  std::vector<std::vector<RowEntry>> factor_;
  std::vector<std::size_t> perm_;  ///< row i of PA is row perm_[i] of A
};

extern template class CooMatrix<double>;
extern template class CooMatrix<std::complex<double>>;
extern template class CsrMatrix<double>;
extern template class CsrMatrix<std::complex<double>>;
extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

}  // namespace ftdiag::linalg
