/// \file vector_ops.hpp
/// \brief Free-function vector helpers (norms, residuals, linspace).
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "util/error.hpp"

namespace ftdiag::linalg {

/// Euclidean norm.
template <typename T>
[[nodiscard]] double norm2(const std::vector<T>& v) {
  double acc = 0.0;
  for (const auto& x : v) {
    const double m = std::abs(x);
    acc += m * m;
  }
  return std::sqrt(acc);
}

/// Infinity norm.
template <typename T>
[[nodiscard]] double norm_inf(const std::vector<T>& v) {
  double m = 0.0;
  for (const auto& x : v) m = std::max(m, static_cast<double>(std::abs(x)));
  return m;
}

/// a - b, elementwise.
template <typename T>
[[nodiscard]] std::vector<T> subtract(const std::vector<T>& a,
                                      const std::vector<T>& b) {
  FTDIAG_ASSERT(a.size() == b.size(), "vector size mismatch in subtract");
  std::vector<T> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

/// Dot product (no conjugation).
template <typename T>
[[nodiscard]] T dot(const std::vector<T>& a, const std::vector<T>& b) {
  FTDIAG_ASSERT(a.size() == b.size(), "vector size mismatch in dot");
  T acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// n points linearly spaced over [lo, hi] inclusive (n >= 2), or {lo} if
/// n == 1.
[[nodiscard]] inline std::vector<double> linspace(double lo, double hi,
                                                  std::size_t n) {
  FTDIAG_ASSERT(n >= 1, "linspace needs at least one point");
  std::vector<double> out(n);
  if (n == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // exact endpoint despite rounding
  return out;
}

/// n points logarithmically spaced over [lo, hi] (both > 0).
[[nodiscard]] inline std::vector<double> logspace(double lo, double hi,
                                                  std::size_t n) {
  FTDIAG_ASSERT(lo > 0.0 && hi > 0.0, "logspace endpoints must be positive");
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), n);
  for (double& v : out) v = std::pow(10.0, v);
  if (n >= 2) out.back() = hi;
  return out;
}

}  // namespace ftdiag::linalg
