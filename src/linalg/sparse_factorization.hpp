/// \file sparse_factorization.hpp
/// \brief Pattern-reusing sparse LU: symbolic analysis once per circuit,
/// allocation-free numeric refactorization per frequency point.
///
/// The AC sweep factors the same sparsity pattern at every Laplace point —
/// A(s) = G + s*C has a frequency-invariant structure.  `SparseLu` redoes
/// the whole elimination (pivot search, fill discovery, row-list merges)
/// per point; `SparseFactorization` splits the work the way every serious
/// circuit simulator does:
///
///   1. **Symbolic phase** (construction): threshold-Markowitz pivoting
///      over dynamic row lists picks a fill-reducing, numerically
///      acceptable pivot order and records the complete L+U fill pattern.
///      Entries that cancel to exactly 0.0 during elimination are *kept*
///      as explicit zeros, so the pattern depends only on the structure of
///      the input, never on its values — the property every reuse of the
///      pattern rests on.
///   2. **Numeric phase** (`refactor`): scatter the new values into the
///      frozen pattern and run an up-looking elimination with the recorded
///      pivot order.  No searching, no allocation, O(flops of the factor).
///
/// Copies share the immutable symbolic phase (cheap per-lane clones for
/// parallel sweeps); each copy owns its numeric values, so concurrent
/// refactor/solve on different copies is safe.
///
/// `refactor` throws NumericError when the frozen pivot order turns
/// numerically unacceptable at the new values (a pivot collapsing towards
/// zero); callers fall back to a fresh full analysis at that point.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace ftdiag::linalg {

template <typename T>
class SparseFactorization {
public:
  /// An empty object; assign from an analyzed one before use.
  SparseFactorization() = default;

  /// Symbolic analysis + first numeric factorization of \p a.
  /// \param pivot_threshold in (0,1]: a pivot is acceptable when its
  /// magnitude is at least threshold * (largest candidate in the column);
  /// among acceptable rows the sparsest wins (Markowitz-style fill
  /// control).  \throws NumericError on a non-square or singular matrix.
  explicit SparseFactorization(const CooMatrix<T>& a,
                               double pivot_threshold = 0.1);

  /// Allocation-free numeric refactorization: \p a's entries must lie
  /// within the analyzed pattern (a structural subset is fine — e.g. the
  /// reactive part vanishing at s = 0).  The pivot order and fill pattern
  /// of the analysis are reused unchanged.  \throws NumericError when a
  /// reused pivot is numerically unacceptable for these values or an entry
  /// falls outside the pattern; the factorization is unusable until the
  /// next successful refactor.
  void refactor(const CooMatrix<T>& a);

  /// Solve A x = b into caller-owned \p x (size n, distinct storage from
  /// \p b).  Allocation-free.
  void solve_into(std::span<const T> b, std::span<T> x) const;

  /// Blocked multi-RHS solve A X = B: every column advances through one
  /// forward/backward pass over the factor rows.  \p x is reshaped to b's
  /// shape when needed (no-op when already that shape).  Per column the
  /// operation order is exactly solve_into's.
  void solve_into(const Matrix<T>& b, Matrix<T>& x) const;

  /// Convenience single solve.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const;

  [[nodiscard]] bool analyzed() const { return symbolic_ != nullptr; }
  [[nodiscard]] std::size_t size() const;

  /// Non-zeros (pattern positions) in the combined L+U factors.  Fixed by
  /// the symbolic phase: value-independent by construction.
  [[nodiscard]] std::size_t factor_nnz() const;

private:
  /// The immutable outcome of the symbolic phase, shared across copies.
  struct Symbolic {
    std::size_t n = 0;
    std::vector<std::size_t> row_start;  ///< size n+1, offsets into col
    std::vector<std::size_t> col;        ///< pattern columns, ascending per row
    std::vector<std::size_t> diag;       ///< position of (r, r) per row
    std::vector<std::size_t> perm;       ///< row i of PA is row perm[i] of A
    std::vector<std::size_t> inv_perm;   ///< inverse of perm
  };

  std::shared_ptr<const Symbolic> symbolic_;
  std::vector<T> values_;  ///< factor values in pattern order
  std::vector<T> work_;    ///< dense accumulator of the up-looking refactor
};

extern template class SparseFactorization<double>;
extern template class SparseFactorization<std::complex<double>>;

}  // namespace ftdiag::linalg
