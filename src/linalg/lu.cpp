#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::linalg {

namespace {

/// Singularity threshold relative to the largest pivot candidate seen.
constexpr double kPivotTolerance = 1e-13;

/// Column-panel width of the blocked multi-RHS solve: the factor row and
/// the active RHS rows stay resident while a panel's columns advance.
constexpr std::size_t kSolvePanel = 48;

}  // namespace

template <typename T>
LuFactorization<T>::LuFactorization(Matrix<T> a) : lu_(std::move(a)) {
  factor();
}

template <typename T>
void LuFactorization<T>::factor_in_place(Matrix<T>& a) {
  lu_.swap(a);
  factor();
}

template <typename T>
void LuFactorization<T>::factor() {
  if (!lu_.square()) {
    throw NumericError("LU requires a square matrix");
  }
  const std::size_t n = lu_.rows();
  swaps_ = 0;
  perm_.resize(n);  // allocates only when n grows past previous factors
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  // Scale reference for the singularity test.
  double max_entry = lu_.max_abs();
  if (max_entry == 0.0) {
    throw NumericError("LU of the zero matrix");
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= kPivotTolerance * max_entry) {
      throw NumericError(str::format(
          "singular matrix in LU at column %zu (pivot %.3e, scale %.3e)", k,
          pivot_mag, max_entry));
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      ++swaps_;
    }
    const T pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const T factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == T{}) continue;
      const T* krow = lu_.row_data(k);
      T* rrow = lu_.row_data(r);
      for (std::size_t c = k + 1; c < n; ++c) rrow[c] -= factor * krow[c];
    }
  }
}

template <typename T>
void LuFactorization<T>::solve_into(std::span<const T> b,
                                    std::span<T> x) const {
  const std::size_t n = size();
  FTDIAG_ASSERT(b.size() == n && x.size() == n,
                "rhs/solution size mismatch in LU solve");
  // Apply permutation, then forward substitution (L unit diagonal).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    const T* row = lu_.row_data(i);
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    const T* row = lu_.row_data(ii);
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
}

template <typename T>
void LuFactorization<T>::solve_into(const Matrix<T>& b, Matrix<T>& x) const {
  const std::size_t n = size();
  const std::size_t m = b.cols();
  FTDIAG_ASSERT(b.rows() == n, "rhs row count mismatch in LU solve");
  if (x.rows() != n || x.cols() != m) x.reshape(n, m);

  // X = P B: row i of X is row perm_[i] of B.
  for (std::size_t i = 0; i < n; ++i) {
    const T* src = b.row_data(perm_[i]);
    T* dst = x.row_data(i);
    for (std::size_t c = 0; c < m; ++c) dst[c] = src[c];
  }

  for (std::size_t panel = 0; panel < m; panel += kSolvePanel) {
    const std::size_t pe = std::min(m, panel + kSolvePanel);
    // Forward substitution, all panel columns in lockstep (L unit
    // diagonal): per column this is exactly solve_into's j-ascending
    // accumulation, just held in memory instead of a register.
    for (std::size_t i = 0; i < n; ++i) {
      const T* row = lu_.row_data(i);
      T* xi = x.row_data(i);
      for (std::size_t j = 0; j < i; ++j) {
        const T factor = row[j];
        if (factor == T{}) continue;
        const T* xj = x.row_data(j);
        for (std::size_t c = panel; c < pe; ++c) xi[c] -= factor * xj[c];
      }
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      const T* row = lu_.row_data(ii);
      T* xi = x.row_data(ii);
      for (std::size_t j = ii + 1; j < n; ++j) {
        const T factor = row[j];
        if (factor == T{}) continue;
        const T* xj = x.row_data(j);
        for (std::size_t c = panel; c < pe; ++c) xi[c] -= factor * xj[c];
      }
      const T pivot = row[ii];
      for (std::size_t c = panel; c < pe; ++c) xi[c] /= pivot;
    }
  }
}

template <typename T>
std::vector<T> LuFactorization<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x(size());
  solve_into(b, x);
  return x;
}

template <typename T>
Matrix<T> LuFactorization<T>::solve(const Matrix<T>& b) const {
  Matrix<T> x;
  solve_into(b, x);
  return x;
}

template <typename T>
T LuFactorization<T>::determinant() const {
  T det = (swaps_ % 2 == 0) ? T{1} : T{-1};
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

template <typename T>
Matrix<T> LuFactorization<T>::inverse() const {
  return solve(Matrix<T>::identity(size()));
}

template <typename T>
double LuFactorization<T>::diagonal_condition_estimate() const {
  double max_d = 0.0;
  double min_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size(); ++i) {
    const double d = std::abs(lu_(i, i));
    max_d = std::max(max_d, d);
    min_d = std::min(min_d, d);
  }
  return min_d > 0.0 ? max_d / min_d
                     : std::numeric_limits<double>::infinity();
}

template class LuFactorization<double>;
template class LuFactorization<std::complex<double>>;

}  // namespace ftdiag::linalg
