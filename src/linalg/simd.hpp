/// \file simd.hpp
/// \brief Width-agnostic SIMD pack abstraction for the sweep hot paths.
///
/// Kernels in this code base are written once against a `Pack` concept —
/// a fixed-width bundle of doubles with element-wise arithmetic, masked
/// selects and contiguous loads/stores — and instantiated twice:
///
///   - `ScalarPack` (width 1): plain double arithmetic.  This is the
///     differential twin every kernel is tested against, and the only
///     pack on toolchains without `std::experimental::simd`.
///   - `NativePack`: `std::experimental::simd<double>` at the hardware's
///     native width (8 on AVX-512, 4 on AVX2, 2 on SSE2).
///
/// `DefaultPack` is what the hot paths use.  It resolves to `NativePack`
/// when the build enables SIMD (CMake option `FTDIAG_SIMD`, default ON,
/// which defines `FTDIAG_SIMD_ENABLED=1`) *and* the toolchain ships the
/// Parallelism-TS header; otherwise it is `ScalarPack` — so every kernel
/// always compiles and the two configurations differ only in width.
/// On top of the build knob, `simd::enabled()` reads the `FTDIAG_SIMD`
/// environment variable once per process ("0"/"off" forces the scalar
/// instantiation at runtime) so a mis-vectorization can be ruled out in
/// the field without a rebuild.
///
/// Both packs run the same formula per lane, so a wide kernel and its
/// scalar twin agree bit-for-bit unless the optimizer contracts a
/// multiply-add differently between the two instantiations — the
/// differential suite in tests/test_simd.cpp pins the contract at
/// <= 1e-12 relative (and empirically exact).  See src/linalg/README.md
/// ("SIMD kernel contract") for alignment and remainder rules.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#ifndef FTDIAG_SIMD_ENABLED
#define FTDIAG_SIMD_ENABLED 1
#endif

#if FTDIAG_SIMD_ENABLED && defined(__GNUC__) && defined(__has_include)
#if __has_include(<experimental/simd>)
#include <experimental/simd>
#define FTDIAG_SIMD_NATIVE 1
#endif
#endif

#ifndef FTDIAG_SIMD_NATIVE
#define FTDIAG_SIMD_NATIVE 0
#endif

namespace ftdiag::linalg::simd {

/// Alignment of every SoA plane the SIMD kernels touch.  64 bytes covers
/// the widest vector unit in the wild (AVX-512) and a full cache line.
inline constexpr std::size_t kAlignment = 64;

/// Minimal aligned allocator so SoA planes can live in std::vector.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// A 64-byte-aligned plane of doubles: the unit of SoA storage.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

// ----------------------------------------------------------- ScalarPack

/// Width-1 pack: one double, plain arithmetic.  Every operation mirrors
/// the wide pack exactly, so kernels instantiated on ScalarPack *are* the
/// scalar reference implementation.
struct ScalarPack {
  static constexpr std::size_t width = 1;

  double v = 0.0;

  struct Mask {
    bool m = false;
    [[nodiscard]] bool operator[](std::size_t) const { return m; }
    [[nodiscard]] friend Mask operator&&(Mask a, Mask b) {
      return {a.m && b.m};
    }
    [[nodiscard]] friend Mask operator||(Mask a, Mask b) {
      return {a.m || b.m};
    }
    [[nodiscard]] friend Mask operator!(Mask a) { return {!a.m}; }
  };

  [[nodiscard]] static ScalarPack broadcast(double x) { return {x}; }
  [[nodiscard]] static ScalarPack load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }

  [[nodiscard]] double operator[](std::size_t) const { return v; }

  [[nodiscard]] friend ScalarPack operator+(ScalarPack a, ScalarPack b) {
    return {a.v + b.v};
  }
  [[nodiscard]] friend ScalarPack operator-(ScalarPack a, ScalarPack b) {
    return {a.v - b.v};
  }
  [[nodiscard]] friend ScalarPack operator*(ScalarPack a, ScalarPack b) {
    return {a.v * b.v};
  }
  [[nodiscard]] friend ScalarPack operator/(ScalarPack a, ScalarPack b) {
    return {a.v / b.v};
  }
  [[nodiscard]] friend ScalarPack operator-(ScalarPack a) { return {-a.v}; }

  [[nodiscard]] friend Mask operator<(ScalarPack a, ScalarPack b) {
    return {a.v < b.v};
  }
  [[nodiscard]] friend Mask operator<=(ScalarPack a, ScalarPack b) {
    return {a.v <= b.v};
  }
  [[nodiscard]] friend Mask operator>(ScalarPack a, ScalarPack b) {
    return {a.v > b.v};
  }
  [[nodiscard]] friend Mask operator==(ScalarPack a, ScalarPack b) {
    return {a.v == b.v};
  }
};

[[nodiscard]] inline ScalarPack sqrt(ScalarPack a) {
  return {std::sqrt(a.v)};
}
[[nodiscard]] inline ScalarPack min(ScalarPack a, ScalarPack b) {
  return {b.v < a.v ? b.v : a.v};
}
[[nodiscard]] inline ScalarPack max(ScalarPack a, ScalarPack b) {
  return {a.v < b.v ? b.v : a.v};
}
[[nodiscard]] inline ScalarPack select(ScalarPack::Mask m, ScalarPack a,
                                       ScalarPack b) {
  return {m.m ? a.v : b.v};
}
[[nodiscard]] inline bool any_of(ScalarPack::Mask m) { return m.m; }
[[nodiscard]] inline bool all_of(ScalarPack::Mask m) { return m.m; }
[[nodiscard]] inline bool none_of(ScalarPack::Mask m) { return !m.m; }

// ----------------------------------------------------------- NativePack

#if FTDIAG_SIMD_NATIVE

namespace stdx = std::experimental;

/// Hardware-width pack over std::experimental::simd.  Loads and stores
/// are element-aligned (any 8-byte boundary); kernels that want the full
/// kAlignment guarantee allocate through AlignedVector but none *require*
/// it for correctness.
struct NativePack {
  using Simd = stdx::native_simd<double>;
  static constexpr std::size_t width = Simd::size();

  Simd v{};

  struct Mask {
    typename Simd::mask_type m{};
    [[nodiscard]] bool operator[](std::size_t i) const { return m[i]; }
    [[nodiscard]] friend Mask operator&&(Mask a, Mask b) {
      return {a.m && b.m};
    }
    [[nodiscard]] friend Mask operator||(Mask a, Mask b) {
      return {a.m || b.m};
    }
    [[nodiscard]] friend Mask operator!(Mask a) { return {!a.m}; }
  };

  [[nodiscard]] static NativePack broadcast(double x) { return {Simd(x)}; }
  [[nodiscard]] static NativePack load(const double* p) {
    return {Simd(p, stdx::element_aligned)};
  }
  void store(double* p) const { v.copy_to(p, stdx::element_aligned); }

  [[nodiscard]] double operator[](std::size_t i) const { return v[i]; }

  [[nodiscard]] friend NativePack operator+(NativePack a, NativePack b) {
    return {a.v + b.v};
  }
  [[nodiscard]] friend NativePack operator-(NativePack a, NativePack b) {
    return {a.v - b.v};
  }
  [[nodiscard]] friend NativePack operator*(NativePack a, NativePack b) {
    return {a.v * b.v};
  }
  [[nodiscard]] friend NativePack operator/(NativePack a, NativePack b) {
    return {a.v / b.v};
  }
  [[nodiscard]] friend NativePack operator-(NativePack a) { return {-a.v}; }

  [[nodiscard]] friend Mask operator<(NativePack a, NativePack b) {
    return {a.v < b.v};
  }
  [[nodiscard]] friend Mask operator<=(NativePack a, NativePack b) {
    return {a.v <= b.v};
  }
  [[nodiscard]] friend Mask operator>(NativePack a, NativePack b) {
    return {a.v > b.v};
  }
  [[nodiscard]] friend Mask operator==(NativePack a, NativePack b) {
    return {a.v == b.v};
  }
};

[[nodiscard]] inline NativePack sqrt(NativePack a) {
  return {stdx::sqrt(a.v)};
}
[[nodiscard]] inline NativePack min(NativePack a, NativePack b) {
  return {stdx::min(a.v, b.v)};
}
[[nodiscard]] inline NativePack max(NativePack a, NativePack b) {
  return {stdx::max(a.v, b.v)};
}
[[nodiscard]] inline NativePack select(NativePack::Mask m, NativePack a,
                                       NativePack b) {
  NativePack out = b;
  stdx::where(m.m, out.v) = a.v;
  return out;
}
[[nodiscard]] inline bool any_of(NativePack::Mask m) {
  return stdx::any_of(m.m);
}
[[nodiscard]] inline bool all_of(NativePack::Mask m) {
  return stdx::all_of(m.m);
}
[[nodiscard]] inline bool none_of(NativePack::Mask m) {
  return stdx::none_of(m.m);
}

using DefaultPack = NativePack;

#else

using DefaultPack = ScalarPack;

#endif  // FTDIAG_SIMD_NATIVE

/// True when the wide pack is compiled in (build-time view of the knob).
inline constexpr bool kSimdCompiled = FTDIAG_SIMD_NATIVE != 0;

/// The width hot paths run at when enabled() is true.
inline constexpr std::size_t kDefaultWidth = DefaultPack::width;

/// Finiteness per lane without a libm call: x - x is 0 for every finite
/// x and NaN for ±inf/NaN (no fast-math in this code base, so the
/// compiler cannot fold it away).
template <typename P>
[[nodiscard]] inline typename P::Mask finite_mask(P x) {
  return (x - x) == P::broadcast(0.0);
}

/// Runtime view of the FTDIAG_SIMD knob: false when the build is scalar
/// or the FTDIAG_SIMD environment variable is "0"/"off"/"false".  Hot
/// paths branch on this once per call and run the ScalarPack
/// instantiation when disabled — same formulas, width 1.
[[nodiscard]] inline bool enabled() {
  if constexpr (!kSimdCompiled) return false;
  static const bool on = [] {
    const char* env = std::getenv("FTDIAG_SIMD");
    if (env == nullptr) return true;
    const std::string value(env);
    return !(value == "0" || value == "off" || value == "OFF" ||
             value == "false");
  }();
  return on;
}

// ---------------------------------------------------------- complex pack

/// A pack of complex numbers as split re/im planes — the SoA form every
/// kernel uses.  Multiplication is the textbook 4-mul formula and
/// division the unscaled conjugate formula z/w = z*conj(w)/|w|^2: both
/// match sherman_morrison_sweep's scalar arithmetic, and the |w|^2
/// denominator overflows only beyond ~1e154 (MNA magnitudes are far
/// smaller; the batched LU refuses pivots long before that).
template <typename P>
struct CPack {
  P re{}, im{};

  [[nodiscard]] static CPack broadcast(std::complex<double> z) {
    return {P::broadcast(z.real()), P::broadcast(z.imag())};
  }
  [[nodiscard]] static CPack load(const double* re_p, const double* im_p) {
    return {P::load(re_p), P::load(im_p)};
  }
  void store(double* re_p, double* im_p) const {
    re.store(re_p);
    im.store(im_p);
  }

  [[nodiscard]] std::complex<double> lane(std::size_t i) const {
    return {re[i], im[i]};
  }

  [[nodiscard]] friend CPack operator+(CPack a, CPack b) {
    return {a.re + b.re, a.im + b.im};
  }
  [[nodiscard]] friend CPack operator-(CPack a, CPack b) {
    return {a.re - b.re, a.im - b.im};
  }
  [[nodiscard]] friend CPack operator*(CPack a, CPack b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  [[nodiscard]] friend CPack operator/(CPack a, CPack b) {
    const P denom = b.re * b.re + b.im * b.im;
    const P inv = P::broadcast(1.0) / denom;
    return {(a.re * b.re + a.im * b.im) * inv,
            (a.im * b.re - a.re * b.im) * inv};
  }

  /// |z|^2 per lane.
  [[nodiscard]] P norm() const { return re * re + im * im; }
};

}  // namespace ftdiag::linalg::simd
