/// \file rank1.hpp
/// \brief Sherman–Morrison rank-1 update solves against a cached
/// factorization.
///
/// For A' = A + scale * u * v^T the Sherman–Morrison identity gives
///
///   A'^{-1} b = x0 - scale * (v.x0) / (1 + scale * (v.w)) * w
///
/// with x0 = A^{-1} b and w = A^{-1} u.  The fault-simulation engine
/// factors the golden MNA matrix once per frequency and produces every
/// faulty solution from (x0, w) in O(n) — u and v are the structural stamp
/// vectors of the perturbed component, scale carries the deviation.
///
/// The update is refused (std::nullopt) when the denominator signals an
/// ill-conditioned perturbed system: the error of the update grows like
/// (1 + |scale * (v.w)|) / |1 + scale * (v.w)|, so callers fall back to a
/// full refactorization when that growth exceeds \p max_growth.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "linalg/simd.hpp"
#include "util/error.hpp"

namespace ftdiag::linalg {

/// Sparse vector as (index, value) pairs; indices need not be sorted but
/// must be unique.
template <typename T>
struct SparseVector {
  std::vector<std::pair<std::size_t, T>> entries;

  void add(std::size_t index, const T& value) {
    if (value == T{}) return;
    entries.push_back({index, value});
  }

  [[nodiscard]] bool empty() const { return entries.empty(); }

  /// Dense copy of length \p n.
  [[nodiscard]] std::vector<T> densify(std::size_t n) const {
    std::vector<T> dense(n, T{});
    for (const auto& [index, value] : entries) {
      FTDIAG_ASSERT(index < n, "sparse vector index out of range");
      dense[index] += value;
    }
    return dense;
  }
};

/// Unconjugated dot product v . x of a sparse vector with a dense span.
template <typename T>
[[nodiscard]] T sparse_dot(const SparseVector<T>& v, std::span<const T> x) {
  T acc{};
  for (const auto& [index, value] : v.entries) {
    FTDIAG_ASSERT(index < x.size(), "sparse dot index out of range");
    acc += value * x[index];
  }
  return acc;
}

/// Unconjugated dot product v . x of a sparse vector with a dense one.
template <typename T>
[[nodiscard]] T sparse_dot(const SparseVector<T>& v, const std::vector<T>& x) {
  return sparse_dot(v, std::span<const T>(x));
}

/// Default growth bound above which a rank-1 update is refused.
inline constexpr double kRank1MaxGrowth = 1e8;

/// The Sherman–Morrison correction coefficient scale*(v.x0)/(1+scale*(v.w)),
/// or std::nullopt when the update would amplify rounding error by more
/// than \p max_growth (the perturbed matrix is near-singular).
template <typename T>
[[nodiscard]] std::optional<T> sherman_morrison_coefficient(
    const T& v_dot_x0, const T& v_dot_w, const T& scale,
    double max_growth = kRank1MaxGrowth) {
  const T scaled = scale * v_dot_w;
  const T denominator = T{1} + scaled;
  const double growth = 1.0 + std::abs(scaled);
  // Fail closed: a non-finite scale or denominator (e.g. a deviation that
  // zeroes a component value) must refuse the update rather than emit NaN.
  if (!std::isfinite(growth) || !std::isfinite(std::abs(denominator)) ||
      std::abs(denominator) * max_growth < growth) {
    return std::nullopt;
  }
  return (scale * v_dot_x0) / denominator;
}

/// One component of the updated solution: x_i = x0_i - coefficient * w_i.
/// The engine extracts only the observed output unknown this way, making a
/// whole deviation sweep O(1) per (site, frequency) after w is solved once.
template <typename T>
[[nodiscard]] std::optional<T> sherman_morrison_component(
    const T& x0_i, const T& w_i, const T& v_dot_x0, const T& v_dot_w,
    const T& scale, double max_growth = kRank1MaxGrowth) {
  const std::optional<T> coefficient =
      sherman_morrison_coefficient(v_dot_x0, v_dot_w, scale, max_growth);
  if (!coefficient) return std::nullopt;
  return x0_i - *coefficient * w_i;
}

/// Split real/imaginary SoA sweep of sherman_morrison_component over a
/// frequency block: for every i in [0, count)
///
///   scaled = scale_i * (v.w)_i          denom = 1 + scaled
///   out_i  = x0_i - (scale_i * (v.x0)_i / denom) * w_i
///
/// with the same growth refusal as sherman_morrison_coefficient: the
/// entry is refused (refused[i] = 1, out slot untouched) when the result
/// is non-finite or |denom| * max_growth < 1 + |scaled|.  Returns the
/// number of refused entries.
///
/// This is the per-(site, fault) inner loop of the simulation engine,
/// written as straight-line arithmetic over parallel re/im arrays so the
/// compiler can vectorize the whole block; it is allocation-free by
/// construction.  Values agree with the scalar path up to re/im
/// evaluation-order rounding (the scalar path uses std::complex division);
/// magnitudes beyond ~1e154 overflow the unscaled |.|^2 here and refuse
/// conservatively, which only trades a rank-1 update for an exact
/// refactorization.
inline std::size_t sherman_morrison_sweep(
    std::size_t count, const double* scale_re, const double* scale_im,
    const double* v_x0_re, const double* v_x0_im, const double* v_w_re,
    const double* v_w_im, const double* x0_re, const double* x0_im,
    const double* w_re, const double* w_im, double max_growth,
    double* out_re, double* out_im, unsigned char* refused) {
  std::size_t refusals = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double sr = scale_re[i];
    const double si = scale_im[i];
    const double scaled_re = sr * v_w_re[i] - si * v_w_im[i];
    const double scaled_im = sr * v_w_im[i] + si * v_w_re[i];
    const double denom_re = 1.0 + scaled_re;
    const double denom_im = scaled_im;
    const double growth =
        1.0 + std::sqrt(scaled_re * scaled_re + scaled_im * scaled_im);
    const double denom_sq = denom_re * denom_re + denom_im * denom_im;
    const double denom_abs = std::sqrt(denom_sq);
    // Fail closed: non-finite scales/denominators refuse rather than NaN.
    if (!std::isfinite(growth) || !std::isfinite(denom_abs) ||
        denom_abs * max_growth < growth) {
      refused[i] = 1;
      ++refusals;
      continue;
    }
    refused[i] = 0;
    const double u_re = sr * v_x0_re[i] - si * v_x0_im[i];
    const double u_im = sr * v_x0_im[i] + si * v_x0_re[i];
    const double inv = 1.0 / denom_sq;
    const double coef_re = (u_re * denom_re + u_im * denom_im) * inv;
    const double coef_im = (u_im * denom_re - u_re * denom_im) * inv;
    out_re[i] = x0_re[i] - (coef_re * w_re[i] - coef_im * w_im[i]);
    out_im[i] = x0_im[i] - (coef_re * w_im[i] + coef_im * w_re[i]);
  }
  return refusals;
}

/// Explicit-SIMD form of sherman_morrison_sweep: identical inputs,
/// outputs and refusal semantics, but the block is processed P::width
/// frequencies per pack with a ScalarPack tail for the remainder — so any
/// count (including 0 and counts below the pack width) is valid and no
/// padding is required of the caller.  Pointers may sit at any 8-byte
/// boundary.  Each lane evaluates exactly the scalar loop's formulas
/// (including the fail-closed non-finite refusal, via a lane mask), so
/// sherman_morrison_sweep is this kernel's differential twin; the two
/// agree bit-for-bit up to multiply-add contraction (<= 1e-12 relative,
/// pinned by tests/test_simd.cpp).
template <typename P = simd::DefaultPack>
inline std::size_t sherman_morrison_sweep_simd(
    std::size_t count, const double* scale_re, const double* scale_im,
    const double* v_x0_re, const double* v_x0_im, const double* v_w_re,
    const double* v_w_im, const double* x0_re, const double* x0_im,
    const double* w_re, const double* w_im, double max_growth,
    double* out_re, double* out_im, unsigned char* refused) {
  constexpr std::size_t kW = P::width;
  const std::size_t full = count - count % kW;
  std::size_t refusals = 0;
  const P one = P::broadcast(1.0);
  const P growth_bound = P::broadcast(max_growth);
  for (std::size_t i = 0; i < full; i += kW) {
    const simd::CPack<P> scale{P::load(scale_re + i), P::load(scale_im + i)};
    const simd::CPack<P> v_w{P::load(v_w_re + i), P::load(v_w_im + i)};
    const simd::CPack<P> scaled = scale * v_w;
    const simd::CPack<P> denom{one + scaled.re, scaled.im};
    const P growth = one + simd::sqrt(scaled.norm());
    const P denom_sq = denom.norm();
    const P denom_abs = simd::sqrt(denom_sq);
    // Fail closed per lane: non-finite scales/denominators refuse.
    const auto ok = simd::finite_mask(growth) && simd::finite_mask(denom_abs) &&
                    !(denom_abs * growth_bound < growth);
    const simd::CPack<P> v_x0{P::load(v_x0_re + i), P::load(v_x0_im + i)};
    const simd::CPack<P> u = scale * v_x0;
    const P inv = one / denom_sq;
    const simd::CPack<P> coef{(u.re * denom.re + u.im * denom.im) * inv,
                              (u.im * denom.re - u.re * denom.im) * inv};
    const simd::CPack<P> w{P::load(w_re + i), P::load(w_im + i)};
    const simd::CPack<P> x0{P::load(x0_re + i), P::load(x0_im + i)};
    const simd::CPack<P> updated = x0 - coef * w;
    for (std::size_t lane = 0; lane < kW; ++lane) {
      if (ok[lane]) {
        refused[i + lane] = 0;
        out_re[i + lane] = updated.re[lane];
        out_im[i + lane] = updated.im[lane];
      } else {
        refused[i + lane] = 1;  // out slot untouched, like the scalar path
        ++refusals;
      }
    }
  }
  if (full < count) {
    refusals += sherman_morrison_sweep(
        count - full, scale_re + full, scale_im + full, v_x0_re + full,
        v_x0_im + full, v_w_re + full, v_w_im + full, x0_re + full,
        x0_im + full, w_re + full, w_im + full, max_growth, out_re + full,
        out_im + full, refused + full);
  }
  return refusals;
}

/// Full updated solution of (A + scale*u*v^T) x = b from x0 = A^{-1}b and
/// w = A^{-1}u.  std::nullopt when the update is ill-conditioned.
template <typename T>
[[nodiscard]] std::optional<std::vector<T>> sherman_morrison_solve(
    const std::vector<T>& x0, const std::vector<T>& w,
    const SparseVector<T>& v, const T& scale,
    double max_growth = kRank1MaxGrowth) {
  FTDIAG_ASSERT(x0.size() == w.size(), "x0/w size mismatch in rank-1 solve");
  const std::optional<T> coefficient = sherman_morrison_coefficient(
      sparse_dot(v, x0), sparse_dot(v, w), scale, max_growth);
  if (!coefficient) return std::nullopt;
  std::vector<T> x = x0;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= *coefficient * w[i];
  return x;
}

}  // namespace ftdiag::linalg
