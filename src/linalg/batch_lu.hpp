/// \file batch_lu.hpp
/// \brief Dense complex LU factorization batched across SIMD lanes.
///
/// `BatchLu<P>` factors P::width independent n x n complex systems at
/// once — lane l of every pack holds system l's entry.  The AC sweep maps
/// one *frequency* to each lane: the golden matrix A(s) = G + s*C has the
/// same structure at every s, so 4–8 frequencies march through pivot
/// search, elimination and the triangular solves in lockstep, turning the
/// per-frequency factor bottleneck of the dictionary build into wide
/// arithmetic.
///
/// Lane independence is exact: each lane runs precisely the scalar
/// algorithm (same pivot-by-|.|^2 search, same unscaled complex division
/// as sherman_morrison_sweep, same operation order), so BatchLu<ScalarPack>
/// is the differential twin of BatchLu<NativePack> lane by lane, and
/// results never depend on which other frequencies share the batch.
/// Differences against LuFactorization<Complex> are confined to rounding:
/// the scalar path compares pivots by std::abs (hypot) and divides through
/// __divdc3, this path compares |.|^2 and divides by conj/|.|^2 — equal
/// values to ~1 ulp, and near-exact ties may pick a different (equally
/// valid) pivot row per lane.
///
/// Storage is split re/im planes: entry (r, c) of all lanes lives at
/// plane[(r*n + c) * width .. +width), 64-byte aligned.  Pivot
/// permutations are tracked per lane.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "linalg/simd.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::linalg {

template <typename P>
class BatchLu {
public:
  static constexpr std::size_t kWidth = P::width;
  using C = simd::CPack<P>;

  /// Relative singularity threshold — LuFactorization's kPivotTolerance,
  /// applied per lane on squared magnitudes.
  static constexpr double kPivotTolerance = 1e-13;

  BatchLu() = default;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Pointers into the unfactored matrix planes for entry (r, c): a group
  /// of kWidth contiguous doubles per plane.  The caller (the batched
  /// sweep assembler) writes A(s_l) for every lane l, then calls factor().
  void reshape(std::size_t n) {
    if (n_ == n && !a_re_.empty()) return;
    n_ = n;
    a_re_.assign(n * n * kWidth, 0.0);
    a_im_.assign(n * n * kWidth, 0.0);
    perm_.resize(n * kWidth);
  }
  [[nodiscard]] double* re_at(std::size_t r, std::size_t c) {
    return a_re_.data() + (r * n_ + c) * kWidth;
  }
  [[nodiscard]] double* im_at(std::size_t r, std::size_t c) {
    return a_im_.data() + (r * n_ + c) * kWidth;
  }

  /// Factor all lanes in place (PA = LU per lane, L unit diagonal).
  /// \throws NumericError when any lane is numerically singular — the
  /// same all-or-nothing contract a per-frequency scalar factor sweep
  /// has, since one singular sweep point fails the whole sweep.
  void factor() {
    const std::size_t n = n_;
    // Per-lane scale reference: max |entry|^2, for the relative pivot
    // tolerance (the scalar path uses max |entry|; squaring both sides
    // keeps the comparison equivalent up to rounding).
    P max_sq = P::broadcast(0.0);
    for (std::size_t i = 0; i < n * n; ++i) {
      const C a = C::load(a_re_.data() + i * kWidth, a_im_.data() + i * kWidth);
      max_sq = simd::max(max_sq, a.norm());
    }
    if (!simd::all_of(max_sq > P::broadcast(0.0))) {
      throw NumericError("batched LU of the zero matrix");
    }
    const P tol_sq =
        P::broadcast(kPivotTolerance * kPivotTolerance) * max_sq;

    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      for (std::size_t i = 0; i < n; ++i) perm_[i * kWidth + lane] = i;
    }

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivoting per lane: largest |.|^2 in column k at/below k.
      P best_sq = C::load(re_at(k, k), im_at(k, k)).norm();
      P best_row = P::broadcast(static_cast<double>(k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const P sq = C::load(re_at(r, k), im_at(r, k)).norm();
        const auto better = sq > best_sq;
        best_sq = simd::select(better, sq, best_sq);
        best_row = simd::select(better, P::broadcast(static_cast<double>(r)),
                                best_row);
      }
      if (simd::any_of(best_sq <= tol_sq)) {
        throw NumericError(str::format(
            "singular matrix in batched LU at column %zu", k));
      }
      // Row swaps.  The lanes are nearby frequencies of one circuit, so
      // they almost always agree on the pivot row — vector-swap that
      // case, fall back to per-lane scalar swaps otherwise.
      const std::size_t row0 = static_cast<std::size_t>(best_row[0]);
      bool uniform = true;
      for (std::size_t lane = 1; lane < kWidth; ++lane) {
        if (static_cast<std::size_t>(best_row[lane]) != row0) {
          uniform = false;
          break;
        }
      }
      if (uniform) {
        if (row0 != k) {
          for (std::size_t c = 0; c < n; ++c) {
            swap_groups(re_at(k, c), re_at(row0, c));
            swap_groups(im_at(k, c), im_at(row0, c));
          }
          for (std::size_t lane = 0; lane < kWidth; ++lane) {
            std::swap(perm_[k * kWidth + lane], perm_[row0 * kWidth + lane]);
          }
        }
      } else {
        for (std::size_t lane = 0; lane < kWidth; ++lane) {
          const std::size_t pr = static_cast<std::size_t>(best_row[lane]);
          if (pr == k) continue;
          for (std::size_t c = 0; c < n; ++c) {
            std::swap(re_at(k, c)[lane], re_at(pr, c)[lane]);
            std::swap(im_at(k, c)[lane], im_at(pr, c)[lane]);
          }
          std::swap(perm_[k * kWidth + lane], perm_[pr * kWidth + lane]);
        }
      }

      // Elimination below the pivot, all lanes at once.
      const C pivot = C::load(re_at(k, k), im_at(k, k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const C factor = C::load(re_at(r, k), im_at(r, k)) / pivot;
        factor.store(re_at(r, k), im_at(r, k));
        for (std::size_t c = k + 1; c < n; ++c) {
          const C update = C::load(re_at(r, c), im_at(r, c)) -
                           factor * C::load(re_at(k, c), im_at(k, c));
          update.store(re_at(r, c), im_at(r, c));
        }
      }
    }
  }

  /// Solve A_l x_l = b for every lane against the shared right-hand side
  /// \p b, writing split planes x_re/x_im of layout [i * kWidth + lane].
  /// Allocation-free.
  void solve_shared(std::span<const std::complex<double>> b, double* x_re,
                    double* x_im) const {
    const std::size_t n = n_;
    FTDIAG_ASSERT(b.size() == n, "rhs size mismatch in batched LU solve");
    // x = P_l b per lane (per-lane permutation gather).
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t lane = 0; lane < kWidth; ++lane) {
        const std::complex<double> v = b[perm_[i * kWidth + lane]];
        x_re[i * kWidth + lane] = v.real();
        x_im[i * kWidth + lane] = v.imag();
      }
    }
    forward_backward(x_re, x_im, kWidth);
  }

  /// Blocked multi-RHS solve against the shared columns \p b (n x cols,
  /// column c at b[c*n .. c*n+n)), writing x planes of layout
  /// [(c*n + i) * kWidth + lane].  All columns advance through one
  /// forward/backward pass per batch — the multi-RHS panel loop with one
  /// *frequency* per SIMD lane.
  void solve_shared_multi(std::span<const std::complex<double>> b,
                          std::size_t cols, double* x_re,
                          double* x_im) const {
    const std::size_t n = n_;
    FTDIAG_ASSERT(b.size() == n * cols,
                  "rhs block size mismatch in batched LU solve");
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t lane = 0; lane < kWidth; ++lane) {
          const std::complex<double> v = b[c * n + perm_[i * kWidth + lane]];
          x_re[(c * n + i) * kWidth + lane] = v.real();
          x_im[(c * n + i) * kWidth + lane] = v.imag();
        }
      }
    }
    for (std::size_t c = 0; c < cols; ++c) {
      forward_backward(x_re + c * n * kWidth, x_im + c * n * kWidth, kWidth);
    }
  }

  /// Row i of A went to position perm(i, lane) after pivoting — exposed
  /// for tests.
  [[nodiscard]] std::size_t perm(std::size_t i, std::size_t lane) const {
    return perm_[i * kWidth + lane];
  }

private:
  static void swap_groups(double* a, double* b) {
    const P pa = P::load(a);
    const P pb = P::load(b);
    pb.store(a);
    pa.store(b);
  }

  /// Triangular solves on one permuted column held as split planes of
  /// stride \p stride doubles per row.
  void forward_backward(double* x_re, double* x_im,
                        std::size_t stride) const {
    const std::size_t n = n_;
    const double* a_re = a_re_.data();
    const double* a_im = a_im_.data();
    // Forward substitution (L unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      C acc = C::load(x_re + i * stride, x_im + i * stride);
      for (std::size_t j = 0; j < i; ++j) {
        const C l = C::load(a_re + (i * n_ + j) * kWidth,
                            a_im + (i * n_ + j) * kWidth);
        acc = acc - l * C::load(x_re + j * stride, x_im + j * stride);
      }
      acc.store(x_re + i * stride, x_im + i * stride);
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      C acc = C::load(x_re + ii * stride, x_im + ii * stride);
      for (std::size_t j = ii + 1; j < n; ++j) {
        const C u = C::load(a_re + (ii * n_ + j) * kWidth,
                            a_im + (ii * n_ + j) * kWidth);
        acc = acc - u * C::load(x_re + j * stride, x_im + j * stride);
      }
      const C diag = C::load(a_re + (ii * n_ + ii) * kWidth,
                             a_im + (ii * n_ + ii) * kWidth);
      (acc / diag).store(x_re + ii * stride, x_im + ii * stride);
    }
  }

  std::size_t n_ = 0;
  simd::AlignedVector a_re_, a_im_;
  std::vector<std::size_t> perm_;
};

}  // namespace ftdiag::linalg
