/// \file session.hpp
/// \brief The top-level ftdiag facade: one `Session` per circuit-under-test
/// composes the whole pipeline of the paper (fault simulation -> dictionary
/// -> GA frequency search -> trajectory diagnosis) behind four verbs:
///
///   auto session = ftdiag::SessionBuilder::from_registry("tow_thomas")
///                      .fitness(ftdiag::FitnessKind::kHybrid)
///                      .build();
///   auto program = session.generate_tests();          // GA search
///   auto score   = session.score(program.best.vector);
///   auto verdict = session.diagnose(observed_point);  // nearest trajectory
///   auto batch   = session.diagnose_batch(points);    // thread-safe
///
/// The expensive artefact — the fault dictionary — is built lazily and
/// cached process-wide behind `std::shared_ptr<const FaultDictionary>`:
/// every Session (and legacy AtpgFlow) describing the same CUT + deviation
/// grid shares one simulation pass, so concurrent flows, repeated queries
/// and forked configurations never pay for fault simulation twice.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuits/cut.hpp"
#include "core/diagnosis.hpp"
#include "core/evaluation.hpp"
#include "core/fitness.hpp"
#include "core/sampling.hpp"
#include "core/test_vector.hpp"
#include "faults/dictionary.hpp"
#include "faults/fault.hpp"
#include "faults/fault_universe.hpp"
#include "faults/simulation_engine.hpp"
#include "ga/genetic_algorithm.hpp"
#include "ga/optimizer.hpp"
#include "mna/response.hpp"
#include "service/options.hpp"

namespace ftdiag {

namespace service {
class DictionaryStore;
}  // namespace service

/// Typed fitness selector, re-exported at the facade level.
using core::FitnessKind;

/// Fault-simulation engine knobs (thread count, golden-factorization
/// reuse), re-exported at the facade level.
using faults::SimOptions;

/// Serving-layer knobs (queueing, micro-batching), re-exported at the
/// facade level.
using service::ServiceOptions;

/// The process-wide cache key a (CUT, deviation sweep, sim options)
/// signature maps to — shared by the Session dictionary cache and the
/// persistent service::DictionaryStore, so in-memory sharing and on-disk
/// artifacts index the same way.
[[nodiscard]] std::string dictionary_cache_key(
    const circuits::CircuitUnderTest& cut, const faults::DeviationSpec& spec,
    const faults::SimOptions& sim);

/// Typed configuration of the test-frequency search (replaces the old
/// string-keyed AtpgConfig fields).
struct SearchOptions {
  /// Number of test frequencies in the vector (the paper uses 2).
  std::size_t n_frequencies = 2;
  FitnessKind fitness = FitnessKind::kPaper;
  ga::GaConfig ga = ga::GaConfig::paper();
  std::uint64_t seed = 42;

  /// Worker threads for the per-generation genome fan-out in the
  /// evaluation pipeline; 0 means "auto" (util::resolve_threads — the
  /// FTDIAG_THREADS override when set, otherwise the hardware
  /// concurrency).  The thread count never changes the search result,
  /// only wall time.
  std::size_t threads = 0;

  /// The effective fan-out width (resolves 0 via util::resolve_threads).
  [[nodiscard]] std::size_t resolved_threads() const;

  /// Share interpolated signature columns between genomes (keyed by
  /// quantized frequency).  Off recomputes every sample; the search result
  /// is bit-identical either way.
  bool eval_cache = true;

  /// Inject sensitivity-screened frequency tuples into the GA's initial
  /// population; works for any n_frequencies (pairs are screened
  /// exhaustively, larger tuples exhaustively or greedily, and a single
  /// frequency falls back to sensitivity peaks — see core/sensitivity.hpp).
  bool seed_with_sensitivity = false;
  std::size_t sensitivity_seed_count = 8;

  /// \throws ConfigError on an empty vector size or a bad GA config.
  void check() const;
};

/// Measurement-noise model applied by Session::measure and, by default, by
/// Session::evaluate — multiplicative gaussian magnitude noise.
struct NoiseOptions {
  double sigma = 0.0;       ///< relative sigma; 0 disables
  std::uint64_t seed = 1;   ///< base seed for emulated measurements

  /// \throws ConfigError on a negative sigma.
  void check() const;
};

/// Everything a Session is configured by.
struct SessionOptions {
  SearchOptions search{};
  NoiseOptions noise{};
  /// Dictionary deviation sweep (the paper: -40%..+40% step 10%).
  faults::DeviationSpec deviations = faults::DeviationSpec::paper();
  /// Response -> signature-point mapping.
  core::SamplingPolicy sampling{};
  /// Fault-simulation engine: parallel fan-out + factorization reuse
  /// (defaults on; thread count never changes dictionary bits).
  SimOptions sim{};

  /// Serving-layer defaults a DiagnosisService built for this session
  /// should use (queue bound, micro-batch size, linger).
  ServiceOptions service{};

  /// \throws ConfigError on the first invalid field.
  void check() const;
};

/// Test-access description used when a Session is created from a bare
/// netlist (which carries no CUT metadata of its own).
struct NetlistAccess {
  std::string input_source = "V1";
  std::string output_node = "out";
  /// Component names the dictionary covers; empty means every passive.
  std::vector<std::string> testable;
  double band_low_hz = 10.0;
  double band_high_hz = 100.0e3;
  std::size_t grid_points = 240;
};

/// Result of one test-generation run: the accepted test vector + score,
/// the optimizer's convergence history, and the dictionary size behind it.
struct TestGenResult {
  core::TestVectorScore best;
  ga::OptimizerResult search;
  std::size_t dictionary_faults = 0;
};

class SessionBuilder;

/// The pipeline facade for one circuit-under-test.
///
/// A Session is a cheap, copyable handle: copies share the same lazily
/// built dictionary, evaluator and active test program.  All const member
/// functions are safe to call concurrently from multiple threads; the
/// mutating verbs (generate_tests, use_vector) swap the active program
/// atomically, so concurrent const readers see either the old or the new
/// program — never a mix — but the mutators themselves must be externally
/// serialized against each other, as usual.
class Session {
public:
  /// Open a session on "builtin:<registry name>" or a netlist path, with
  /// defaults everywhere.  \throws ConfigError / ParseError.
  [[nodiscard]] static Session open(const std::string& source,
                                    const NetlistAccess& access = {});

  [[nodiscard]] const circuits::CircuitUnderTest& cut() const;
  [[nodiscard]] const SessionOptions& options() const;

  /// The fault dictionary: built on first access (one AC sweep per fault),
  /// then shared process-wide with every other Session/flow describing the
  /// same CUT and deviation grid.  The returned pointer is immutable and
  /// safe to retain beyond the Session's lifetime.
  [[nodiscard]] std::shared_ptr<const faults::FaultDictionary> dictionary()
      const;

  /// The dictionary-backed evaluator (trajectories, fitness, scores).
  /// Triggers the dictionary build on first access.
  [[nodiscard]] const core::TestVectorEvaluator& evaluator() const;

  /// Gene bounds derived from the CUT's recommended band.
  [[nodiscard]] ga::GeneBounds bounds() const;

  // ---------------------------------------------------------- generation

  /// Run the configured search and install the winning vector as this
  /// session's active test program.
  TestGenResult generate_tests();

  /// Same, with an explicit optimizer + seed (baseline comparisons).
  TestGenResult generate_tests(const ga::FrequencyOptimizer& optimizer,
                               std::uint64_t seed);

  /// Pure search: like generate_tests() but without installing the result
  /// (const; used by sweeps that fork many runs off one dictionary).
  [[nodiscard]] TestGenResult run_search() const;
  [[nodiscard]] TestGenResult run_search(const ga::FrequencyOptimizer& optimizer,
                                         std::uint64_t seed) const;

  /// Score an arbitrary test vector against the dictionary.
  [[nodiscard]] core::TestVectorScore score(
      const core::TestVector& vector) const;

  /// Install an externally chosen test vector as the active program.
  Session& use_vector(core::TestVector vector);

  [[nodiscard]] bool has_vector() const;

  /// Snapshot of the active test vector (by value: use_vector() may swap
  /// the program concurrently).  \throws ConfigError if none is installed.
  [[nodiscard]] core::TestVector vector() const;

  // ------------------------------------------------------------ diagnosis

  /// Diagnose one observed signature point against the active program's
  /// trajectories.  \throws ConfigError if no vector is installed.
  [[nodiscard]] core::Diagnosis diagnose(const core::Point& observed) const;

  /// Diagnose a measured response (sampled at the active test vector).
  [[nodiscard]] core::Diagnosis diagnose(const mna::AcResponse& measured) const;

  /// Diagnose many observed points in one call.  Iterates one immutable
  /// DiagnosisEngine; safe to call from multiple threads concurrently.
  /// \p threads > 1 fans the points over util::parallel with slot-ordered
  /// results (0 = auto); the output is bit-identical to the serial loop
  /// for any thread count.
  [[nodiscard]] std::vector<core::Diagnosis> diagnose_batch(
      const std::vector<core::Point>& observed, std::size_t threads = 1) const;

  // ----------------------------------------------------------- utilities

  /// Emulated bench measurement of a faulty board at the active test
  /// frequencies, using this session's NoiseOptions (\p noise_seed
  /// overrides the configured seed, e.g. per board).
  [[nodiscard]] mna::AcResponse measure(
      const faults::ParametricFault& fault,
      std::optional<std::uint64_t> noise_seed = std::nullopt) const;

  /// Map a measured response to a signature point at the active vector.
  [[nodiscard]] core::Point observe(const mna::AcResponse& measured) const;

  /// Monte-Carlo diagnosis accuracy of the active vector under this
  /// session's NoiseOptions.
  [[nodiscard]] core::AccuracyReport evaluate() const;

  /// Same with explicit options, applied verbatim (noise_sigma 0 really
  /// means a noiseless evaluation).
  [[nodiscard]] core::AccuracyReport evaluate(
      const core::EvaluationOptions& options) const;

  /// Genome (log10 f) -> test vector.
  [[nodiscard]] static core::TestVector to_test_vector(
      const std::vector<double>& genes);

  // ------------------------------------------- process-wide cache control

  /// Number of distinct *live* dictionaries currently cached process-wide.
  /// The cache holds weak references: a dictionary stays cached exactly as
  /// long as some Session (or retained shared_ptr) keeps it alive.
  [[nodiscard]] static std::size_t dictionary_cache_size();

  /// Forget all cache entries (outstanding shared_ptrs stay valid; live
  /// sessions simply stop sharing with *new* sessions).
  static void clear_dictionary_cache();

private:
  friend class SessionBuilder;

  struct State;
  explicit Session(std::shared_ptr<State> state);

  [[nodiscard]] TestGenResult search_impl(
      const ga::FrequencyOptimizer* optimizer, std::uint64_t seed) const;
  [[nodiscard]] std::shared_ptr<const core::DiagnosisEngine> engine() const;

  /// One-lock snapshot of the active program (engine + vector), so a
  /// concurrent use_vector() can never pair the old engine with the new
  /// vector inside a single diagnose/measure/observe call.
  struct ProgramSnapshot;
  [[nodiscard]] ProgramSnapshot program() const;

  std::shared_ptr<State> state_;
};

/// Fluent, validating construction of Sessions.
class SessionBuilder {
public:
  SessionBuilder() = default;
  explicit SessionBuilder(circuits::CircuitUnderTest cut);

  /// Builder seeded from the benchmark-circuit registry.
  /// \throws ConfigError for unknown names.
  [[nodiscard]] static SessionBuilder from_registry(const std::string& name);

  /// Builder seeded from a SPICE-style netlist file plus test-access info.
  /// \throws ParseError / ConfigError.
  [[nodiscard]] static SessionBuilder from_netlist(const std::string& path,
                                                   const NetlistAccess& access = {});

  /// Builder from "builtin:<name>" or a netlist path (the CLI's syntax).
  [[nodiscard]] static SessionBuilder from_source(const std::string& source,
                                                  const NetlistAccess& access = {});

  SessionBuilder& cut(circuits::CircuitUnderTest cut);
  SessionBuilder& options(SessionOptions options);
  SessionBuilder& search(SearchOptions options);
  SessionBuilder& noise(NoiseOptions options);
  SessionBuilder& deviations(faults::DeviationSpec spec);
  SessionBuilder& sampling(core::SamplingPolicy policy);
  SessionBuilder& sim(SimOptions options);
  SessionBuilder& service(ServiceOptions options);

  /// Resolve this session's dictionary through a persistent store
  /// (memory -> `.fdx` on disk -> build-and-persist) instead of the
  /// in-process weak cache.  The store must outlive nothing — the session
  /// shares ownership.
  SessionBuilder& store(std::shared_ptr<service::DictionaryStore> store);

  /// Shorthands for the common knobs.
  SessionBuilder& fitness(FitnessKind kind);
  SessionBuilder& frequencies(std::size_t n);
  SessionBuilder& seed(std::uint64_t seed);
  /// Worker threads for both the fault-simulation engine and the search's
  /// evaluation pipeline (0 = auto).  Never changes results.
  SessionBuilder& threads(std::size_t n);
  /// Toggle the search pipeline's signature-column cache.
  SessionBuilder& eval_cache(bool on);

  /// Validate and construct.  \throws ConfigError when no CUT was given or
  /// any option is out of range.
  [[nodiscard]] Session build() const;

private:
  std::optional<circuits::CircuitUnderTest> cut_;
  SessionOptions options_{};
  std::shared_ptr<service::DictionaryStore> store_;
};

}  // namespace ftdiag
