/// \file circuit.hpp
/// \brief The Circuit: named nodes + components, with a builder API,
/// structural validation, value mutation (used by the fault injector) and
/// macro-model elaboration.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/component.hpp"

namespace ftdiag::netlist {

/// A flat netlist.  Node 0 is ground, created automatically and addressable
/// as "0" or "gnd".  Component names are unique (case-sensitive).
class Circuit {
public:
  Circuit();

  /// Optional title (propagated by the parser/writer).
  void set_title(std::string title) { title_ = std::move(title); }
  [[nodiscard]] const std::string& title() const { return title_; }

  // ---- nodes ------------------------------------------------------------

  /// Get-or-create a node by name.
  NodeId node(const std::string& name);

  /// Lookup an existing node. \throws CircuitError if absent.
  [[nodiscard]] NodeId node_index(const std::string& name) const;

  [[nodiscard]] bool has_node(const std::string& name) const;

  /// Name of a node id. \throws CircuitError if out of range.
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Total node count including ground.
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }

  // ---- builder ----------------------------------------------------------

  Circuit& add_resistor(const std::string& name, const std::string& a,
                        const std::string& b, double ohms);
  Circuit& add_capacitor(const std::string& name, const std::string& a,
                         const std::string& b, double farads);
  Circuit& add_inductor(const std::string& name, const std::string& a,
                        const std::string& b, double henries);
  Circuit& add_vsource(const std::string& name, const std::string& plus,
                       const std::string& minus, double dc = 0.0,
                       double ac_magnitude = 0.0, double ac_phase_deg = 0.0);
  Circuit& add_isource(const std::string& name, const std::string& plus,
                       const std::string& minus, double dc = 0.0,
                       double ac_magnitude = 0.0, double ac_phase_deg = 0.0);
  Circuit& add_vcvs(const std::string& name, const std::string& plus,
                    const std::string& minus, const std::string& ctrl_plus,
                    const std::string& ctrl_minus, double gain);
  Circuit& add_vccs(const std::string& name, const std::string& plus,
                    const std::string& minus, const std::string& ctrl_plus,
                    const std::string& ctrl_minus, double transconductance);
  Circuit& add_cccs(const std::string& name, const std::string& plus,
                    const std::string& minus, const std::string& control_vsrc,
                    double gain);
  Circuit& add_ccvs(const std::string& name, const std::string& plus,
                    const std::string& minus, const std::string& control_vsrc,
                    double transresistance);
  Circuit& add_ideal_opamp(const std::string& name, const std::string& in_plus,
                           const std::string& in_minus,
                           const std::string& out);
  Circuit& add_opamp(const std::string& name, const std::string& in_plus,
                     const std::string& in_minus, const std::string& out,
                     const OpAmpModel& model = {});

  /// Append a fully-formed component (parser path).  Nodes must already be
  /// resolved against this circuit.
  Circuit& add_component(Component component);

  // ---- access -----------------------------------------------------------

  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }
  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }

  [[nodiscard]] bool has_component(const std::string& name) const;

  /// \throws CircuitError if the component does not exist.
  [[nodiscard]] const Component& component(const std::string& name) const;

  /// Names of all components of the given kind.
  [[nodiscard]] std::vector<std::string> names_of(ComponentKind kind) const;

  /// Names of all passive components (R, L, C) in insertion order —
  /// the default fault-universe target set.
  [[nodiscard]] std::vector<std::string> passive_names() const;

  // ---- mutation (fault injection) ----------------------------------------

  /// Replace the primary value of an R/L/C or controlled source.
  /// \throws CircuitError on unknown name or a kind without a primary value.
  void set_value(const std::string& name, double value);

  /// Multiply the primary value by \p factor (parametric deviation).
  void scale_value(const std::string& name, double factor);

  /// Primary value of a component. \throws CircuitError as set_value.
  [[nodiscard]] double value_of(const std::string& name) const;

  /// Replace one macro-model parameter of a kOpAmp component.
  void set_opamp_param(const std::string& name, OpAmpParam param,
                       double value);

  /// Read one macro-model parameter of a kOpAmp component.
  [[nodiscard]] double opamp_param(const std::string& name,
                                   OpAmpParam param) const;

  // ---- structure ---------------------------------------------------------

  /// Structural validation; returns the list of problems (empty == valid):
  /// components with non-positive R/L/C values, nodes touched by fewer than
  /// two terminals, nodes unreachable from ground, missing F/H control
  /// sources.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// validate() and throw CircuitError with the first problem, if any.
  void validate_or_throw() const;

  /// True if any component is a kOpAmp macro model.
  [[nodiscard]] bool has_macro_opamps() const;

  /// Return a circuit in which every kOpAmp is replaced by primitive
  /// elements (Rin, VCCS + RC pole, unity VCVS + Rout).  Internal nodes are
  /// named "<opamp>:pole"; internal elements "<opamp>:rin" etc.
  /// Circuits without macro op-amps are returned unchanged.
  [[nodiscard]] Circuit elaborated() const;

private:
  Component& mutable_component(const std::string& name);
  void check_new_name(const std::string& name) const;

  std::string title_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<Component> components_;
  std::unordered_map<std::string, std::size_t> component_index_;
};

}  // namespace ftdiag::netlist
