#include "netlist/circuit.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::netlist {

Circuit::Circuit() {
  node_names_.push_back("0");
  node_ids_.emplace("0", kGround);
  node_ids_.emplace("gnd", kGround);
}

NodeId Circuit::node(const std::string& name) {
  const std::string key = str::to_lower(name);
  if (const auto it = node_ids_.find(key); it != node_ids_.end()) {
    return it->second;
  }
  const NodeId id = node_names_.size();
  node_names_.push_back(key);
  node_ids_.emplace(key, id);
  return id;
}

NodeId Circuit::node_index(const std::string& name) const {
  const auto it = node_ids_.find(str::to_lower(name));
  if (it == node_ids_.end()) {
    throw CircuitError("unknown node '" + name + "'");
  }
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return node_ids_.contains(str::to_lower(name));
}

const std::string& Circuit::node_name(NodeId id) const {
  if (id >= node_names_.size()) {
    throw CircuitError(str::format("node id %zu out of range", id));
  }
  return node_names_[id];
}

void Circuit::check_new_name(const std::string& name) const {
  if (name.empty()) throw CircuitError("component name must not be empty");
  if (component_index_.contains(name)) {
    throw CircuitError("duplicate component name '" + name + "'");
  }
}

Circuit& Circuit::add_component(Component component) {
  check_new_name(component.name);
  const std::size_t want = Component::terminal_count(component.kind);
  if (component.nodes.size() != want) {
    throw CircuitError(str::format("%s '%s' needs %zu terminals, got %zu",
                                   kind_name(component.kind),
                                   component.name.c_str(), want,
                                   component.nodes.size()));
  }
  for (NodeId n : component.nodes) {
    if (n >= node_names_.size()) {
      throw CircuitError(str::format("component '%s' references node id %zu "
                                     "that does not exist",
                                     component.name.c_str(), n));
    }
  }
  component_index_.emplace(component.name, components_.size());
  components_.push_back(std::move(component));
  return *this;
}

namespace {
Component make_two_terminal(std::string name, ComponentKind kind, NodeId a,
                            NodeId b, double value) {
  Component c;
  c.name = std::move(name);
  c.kind = kind;
  c.nodes = {a, b};
  c.value = value;
  return c;
}
}  // namespace

Circuit& Circuit::add_resistor(const std::string& name, const std::string& a,
                               const std::string& b, double ohms) {
  return add_component(
      make_two_terminal(name, ComponentKind::kResistor, node(a), node(b), ohms));
}

Circuit& Circuit::add_capacitor(const std::string& name, const std::string& a,
                                const std::string& b, double farads) {
  return add_component(make_two_terminal(name, ComponentKind::kCapacitor,
                                         node(a), node(b), farads));
}

Circuit& Circuit::add_inductor(const std::string& name, const std::string& a,
                               const std::string& b, double henries) {
  return add_component(make_two_terminal(name, ComponentKind::kInductor,
                                         node(a), node(b), henries));
}

Circuit& Circuit::add_vsource(const std::string& name, const std::string& plus,
                              const std::string& minus, double dc,
                              double ac_magnitude, double ac_phase_deg) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kVoltageSource;
  c.nodes = {node(plus), node(minus)};
  c.dc = dc;
  c.ac_magnitude = ac_magnitude;
  c.ac_phase_deg = ac_phase_deg;
  return add_component(std::move(c));
}

Circuit& Circuit::add_isource(const std::string& name, const std::string& plus,
                              const std::string& minus, double dc,
                              double ac_magnitude, double ac_phase_deg) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kCurrentSource;
  c.nodes = {node(plus), node(minus)};
  c.dc = dc;
  c.ac_magnitude = ac_magnitude;
  c.ac_phase_deg = ac_phase_deg;
  return add_component(std::move(c));
}

Circuit& Circuit::add_vcvs(const std::string& name, const std::string& plus,
                           const std::string& minus,
                           const std::string& ctrl_plus,
                           const std::string& ctrl_minus, double gain) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kVcvs;
  c.nodes = {node(plus), node(minus), node(ctrl_plus), node(ctrl_minus)};
  c.value = gain;
  return add_component(std::move(c));
}

Circuit& Circuit::add_vccs(const std::string& name, const std::string& plus,
                           const std::string& minus,
                           const std::string& ctrl_plus,
                           const std::string& ctrl_minus,
                           double transconductance) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kVccs;
  c.nodes = {node(plus), node(minus), node(ctrl_plus), node(ctrl_minus)};
  c.value = transconductance;
  return add_component(std::move(c));
}

Circuit& Circuit::add_cccs(const std::string& name, const std::string& plus,
                           const std::string& minus,
                           const std::string& control_vsrc, double gain) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kCccs;
  c.nodes = {node(plus), node(minus)};
  c.control = control_vsrc;
  c.value = gain;
  return add_component(std::move(c));
}

Circuit& Circuit::add_ccvs(const std::string& name, const std::string& plus,
                           const std::string& minus,
                           const std::string& control_vsrc,
                           double transresistance) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kCcvs;
  c.nodes = {node(plus), node(minus)};
  c.control = control_vsrc;
  c.value = transresistance;
  return add_component(std::move(c));
}

Circuit& Circuit::add_ideal_opamp(const std::string& name,
                                  const std::string& in_plus,
                                  const std::string& in_minus,
                                  const std::string& out) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kIdealOpAmp;
  c.nodes = {node(in_plus), node(in_minus), node(out)};
  return add_component(std::move(c));
}

Circuit& Circuit::add_opamp(const std::string& name,
                            const std::string& in_plus,
                            const std::string& in_minus,
                            const std::string& out, const OpAmpModel& model) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kOpAmp;
  c.nodes = {node(in_plus), node(in_minus), node(out)};
  c.opamp = model;
  return add_component(std::move(c));
}

bool Circuit::has_component(const std::string& name) const {
  return component_index_.contains(name);
}

const Component& Circuit::component(const std::string& name) const {
  const auto it = component_index_.find(name);
  if (it == component_index_.end()) {
    throw CircuitError("unknown component '" + name + "'");
  }
  return components_[it->second];
}

Component& Circuit::mutable_component(const std::string& name) {
  const auto it = component_index_.find(name);
  if (it == component_index_.end()) {
    throw CircuitError("unknown component '" + name + "'");
  }
  return components_[it->second];
}

std::vector<std::string> Circuit::names_of(ComponentKind kind) const {
  std::vector<std::string> out;
  for (const auto& c : components_) {
    if (c.kind == kind) out.push_back(c.name);
  }
  return out;
}

std::vector<std::string> Circuit::passive_names() const {
  std::vector<std::string> out;
  for (const auto& c : components_) {
    if (is_passive(c.kind)) out.push_back(c.name);
  }
  return out;
}

void Circuit::set_value(const std::string& name, double value) {
  Component& c = mutable_component(name);
  switch (c.kind) {
    case ComponentKind::kResistor:
    case ComponentKind::kCapacitor:
    case ComponentKind::kInductor:
    case ComponentKind::kVcvs:
    case ComponentKind::kVccs:
    case ComponentKind::kCccs:
    case ComponentKind::kCcvs:
      c.value = value;
      return;
    default:
      throw CircuitError(str::format("component '%s' (%s) has no primary value",
                                     name.c_str(), kind_name(c.kind)));
  }
}

void Circuit::scale_value(const std::string& name, double factor) {
  set_value(name, value_of(name) * factor);
}

double Circuit::value_of(const std::string& name) const {
  const Component& c = component(name);
  switch (c.kind) {
    case ComponentKind::kResistor:
    case ComponentKind::kCapacitor:
    case ComponentKind::kInductor:
    case ComponentKind::kVcvs:
    case ComponentKind::kVccs:
    case ComponentKind::kCccs:
    case ComponentKind::kCcvs:
      return c.value;
    default:
      throw CircuitError(str::format("component '%s' (%s) has no primary value",
                                     name.c_str(), kind_name(c.kind)));
  }
}

void Circuit::set_opamp_param(const std::string& name, OpAmpParam param,
                              double value) {
  Component& c = mutable_component(name);
  if (c.kind != ComponentKind::kOpAmp) {
    throw CircuitError("component '" + name + "' is not a macro-model op-amp");
  }
  switch (param) {
    case OpAmpParam::kDcGain: c.opamp.dc_gain = value; return;
    case OpAmpParam::kGbw: c.opamp.gbw_hz = value; return;
    case OpAmpParam::kRin: c.opamp.rin = value; return;
    case OpAmpParam::kRout: c.opamp.rout = value; return;
  }
}

double Circuit::opamp_param(const std::string& name, OpAmpParam param) const {
  const Component& c = component(name);
  if (c.kind != ComponentKind::kOpAmp) {
    throw CircuitError("component '" + name + "' is not a macro-model op-amp");
  }
  switch (param) {
    case OpAmpParam::kDcGain: return c.opamp.dc_gain;
    case OpAmpParam::kGbw: return c.opamp.gbw_hz;
    case OpAmpParam::kRin: return c.opamp.rin;
    case OpAmpParam::kRout: return c.opamp.rout;
  }
  FTDIAG_ASSERT(false, "unknown op-amp parameter");
  return 0.0;
}

std::vector<std::string> Circuit::validate() const {
  std::vector<std::string> problems;

  // Value sanity.
  for (const auto& c : components_) {
    if (is_passive(c.kind) && !(c.value > 0.0)) {
      problems.push_back(str::format("%s '%s' has non-positive value %g",
                                     kind_name(c.kind), c.name.c_str(),
                                     c.value));
    }
    if (c.kind == ComponentKind::kOpAmp) {
      if (!(c.opamp.dc_gain > 0.0) || !(c.opamp.gbw_hz > 0.0) ||
          !(c.opamp.rin > 0.0) || !(c.opamp.rout >= 0.0)) {
        problems.push_back("opamp '" + c.name + "' has invalid macro-model");
      }
    }
    if ((c.kind == ComponentKind::kCccs || c.kind == ComponentKind::kCcvs)) {
      if (!has_component(c.control) ||
          component(c.control).kind != ComponentKind::kVoltageSource) {
        problems.push_back(str::format(
            "%s '%s' controlling source '%s' is not a voltage source",
            kind_name(c.kind), c.name.c_str(), c.control.c_str()));
      }
    }
  }

  // Terminal counts per node.
  std::vector<std::size_t> touch(node_count(), 0);
  for (const auto& c : components_) {
    for (NodeId n : c.nodes) ++touch[n];
  }
  for (NodeId n = 1; n < node_count(); ++n) {
    if (touch[n] == 0) {
      problems.push_back("node '" + node_name(n) + "' is not connected");
    } else if (touch[n] == 1) {
      problems.push_back("node '" + node_name(n) + "' is dangling (1 terminal)");
    }
  }

  // Connectivity: every node reachable from ground through components.
  // Controlled-source sensing terminals do not conduct, but output
  // terminals and op-amp outputs do.
  if (node_count() > 1) {
    std::vector<std::vector<NodeId>> adjacency(node_count());
    auto link = [&](NodeId a, NodeId b) {
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
    };
    for (const auto& c : components_) {
      switch (c.kind) {
        case ComponentKind::kResistor:
        case ComponentKind::kCapacitor:
        case ComponentKind::kInductor:
        case ComponentKind::kVoltageSource:
        case ComponentKind::kCurrentSource:
        case ComponentKind::kCccs:
        case ComponentKind::kCcvs:
          link(c.nodes[0], c.nodes[1]);
          break;
        case ComponentKind::kVcvs:
        case ComponentKind::kVccs:
          link(c.nodes[0], c.nodes[1]);
          break;
        case ComponentKind::kIdealOpAmp:
        case ComponentKind::kOpAmp:
          // The output drives against ground.
          link(c.nodes[2], kGround);
          break;
      }
    }
    std::vector<bool> seen(node_count(), false);
    std::queue<NodeId> frontier;
    frontier.push(kGround);
    seen[kGround] = true;
    while (!frontier.empty()) {
      const NodeId at = frontier.front();
      frontier.pop();
      for (NodeId next : adjacency[at]) {
        if (!seen[next]) {
          seen[next] = true;
          frontier.push(next);
        }
      }
    }
    for (NodeId n = 1; n < node_count(); ++n) {
      if (!seen[n] && touch[n] > 0) {
        problems.push_back("node '" + node_name(n) +
                           "' has no conductive path to ground");
      }
    }
  }

  return problems;
}

void Circuit::validate_or_throw() const {
  const auto problems = validate();
  if (!problems.empty()) throw CircuitError(problems.front());
}

bool Circuit::has_macro_opamps() const {
  return std::any_of(components_.begin(), components_.end(), [](const auto& c) {
    return c.kind == ComponentKind::kOpAmp;
  });
}

Circuit Circuit::elaborated() const {
  if (!has_macro_opamps()) return *this;

  Circuit out;
  out.set_title(title_);
  // Recreate all nodes first so ids used by plain components stay valid
  // name-wise (ids may differ; we go through names).
  for (const auto& c : components_) {
    if (c.kind != ComponentKind::kOpAmp) {
      Component copy = c;
      copy.nodes.clear();
      for (NodeId n : c.nodes) copy.nodes.push_back(out.node(node_name(n)));
      out.add_component(std::move(copy));
      continue;
    }
    // Expansion of the single-pole macro model.  Internal pole resistance is
    // fixed; gm follows from the requested DC gain.
    const std::string in_p = node_name(c.nodes[0]);
    const std::string in_n = node_name(c.nodes[1]);
    const std::string out_node = node_name(c.nodes[2]);
    const std::string pole = c.name + ":pole";
    const std::string buf = c.name + ":buf";

    constexpr double kPoleResistance = 100.0e3;
    const double gm = c.opamp.dc_gain / kPoleResistance;
    const double pole_hz = c.opamp.pole_hz();
    const double pole_cap =
        1.0 / (2.0 * 3.14159265358979323846 * pole_hz * kPoleResistance);

    out.add_resistor(c.name + ":rin", in_p, in_n, c.opamp.rin);
    // G-element convention: positive current flows node+ -> node- through
    // the source.  Driving (gnd -> pole) makes v_pole = +gm*Rp*(v+ - v-),
    // i.e. a non-inverting first stage as the macro model requires.
    out.add_vccs(c.name + ":gm", "0", pole, in_p, in_n, gm);
    out.add_resistor(c.name + ":rp", pole, "0", kPoleResistance);
    out.add_capacitor(c.name + ":cp", pole, "0", pole_cap);
    out.add_vcvs(c.name + ":buffer", buf, "0", pole, "0", 1.0);
    if (c.opamp.rout > 0.0) {
      out.add_resistor(c.name + ":rout", buf, out_node, c.opamp.rout);
    } else {
      // Degenerate zero output resistance: tie buffer directly via a VCVS
      // sensing the pole node.  Model as a tiny resistance to keep the
      // topology uniform.
      out.add_resistor(c.name + ":rout", buf, out_node, 1e-3);
    }
  }
  return out;
}

}  // namespace ftdiag::netlist
