#include "netlist/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::netlist {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw ParseError(str::format("line %zu: %s", line_no, message.c_str()));
}

double parse_value(std::size_t line_no, const std::string& token) {
  const auto v = units::try_parse(token);
  if (!v) fail(line_no, "invalid value '" + token + "'");
  return *v;
}

/// Parse `[DC v] [AC mag [phase]]` source tails in any order.
void parse_source_tail(std::size_t line_no,
                       const std::vector<std::string>& tokens,
                       std::size_t start, Component& component) {
  std::size_t i = start;
  bool saw_plain_value = false;
  while (i < tokens.size()) {
    const std::string key = str::to_lower(tokens[i]);
    if (key == "dc") {
      if (i + 1 >= tokens.size()) fail(line_no, "DC needs a value");
      component.dc = parse_value(line_no, tokens[i + 1]);
      i += 2;
    } else if (key == "ac") {
      if (i + 1 >= tokens.size()) fail(line_no, "AC needs a magnitude");
      component.ac_magnitude = parse_value(line_no, tokens[i + 1]);
      i += 2;
      if (i < tokens.size() && units::try_parse(tokens[i]) &&
          !str::iequals(tokens[i], "dc") && !str::iequals(tokens[i], "ac")) {
        component.ac_phase_deg = parse_value(line_no, tokens[i]);
        ++i;
      }
    } else if (!saw_plain_value && units::try_parse(tokens[i])) {
      // Bare value == DC value, SPICE style: "V1 1 0 5".
      component.dc = parse_value(line_no, tokens[i]);
      saw_plain_value = true;
      ++i;
    } else {
      fail(line_no, "unexpected token '" + tokens[i] + "' in source card");
    }
  }
}

/// Parse `KEY=value` pairs for op-amp models.
void parse_opamp_params(std::size_t line_no,
                        const std::vector<std::string>& tokens,
                        std::size_t start, OpAmpModel& model) {
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const auto pos = tokens[i].find('=');
    if (pos == std::string::npos) {
      fail(line_no, "expected KEY=value, got '" + tokens[i] + "'");
    }
    const std::string key = str::to_lower(tokens[i].substr(0, pos));
    const double value = parse_value(line_no, tokens[i].substr(pos + 1));
    if (key == "ad0" || key == "gain") {
      model.dc_gain = value;
    } else if (key == "gbw") {
      model.gbw_hz = value;
    } else if (key == "rin") {
      model.rin = value;
    } else if (key == "rout") {
      model.rout = value;
    } else {
      fail(line_no, "unknown op-amp parameter '" + key + "'");
    }
  }
}

bool is_comment(std::string_view line) {
  return line.empty() || line.front() == '*' || line.front() == ';' ||
         str::starts_with(line, "//");
}

/// True if the line looks like a component/dot card (used to decide whether
/// the first line is a title).
bool looks_like_card(const std::string& line) {
  if (line.empty()) return false;
  const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(line.front())));
  if (c == '.') return true;
  static constexpr char kPrefixes[] = {'r', 'c', 'l', 'v', 'i',
                                       'e', 'g', 'f', 'h', 'x'};
  for (char p : kPrefixes) {
    if (c == p) {
      // Needs at least 3 whitespace-separated tokens to be a card.
      return str::split_ws(line).size() >= 3;
    }
  }
  return false;
}

}  // namespace

Circuit parse_netlist(const std::string& text) {
  Circuit circuit;
  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_no = 0;
  bool first_content_line = true;
  bool ended = false;

  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string line{str::trim(raw_line)};
    // Strip trailing comments.
    if (const auto pos = line.find(';'); pos != std::string::npos) {
      line = std::string(str::trim(line.substr(0, pos)));
    }
    if (is_comment(line)) continue;
    if (ended) fail(line_no, "content after .end");

    if (first_content_line && !looks_like_card(line)) {
      circuit.set_title(line);
      first_content_line = false;
      continue;
    }
    first_content_line = false;

    const std::vector<std::string> tokens = str::split_ws(line);
    const std::string head = tokens.front();
    const char type = static_cast<char>(
        std::tolower(static_cast<unsigned char>(head.front())));

    if (type == '.') {
      const std::string directive = str::to_lower(head);
      if (directive == ".end") {
        ended = true;
      } else if (directive == ".title") {
        circuit.set_title(
            str::join({tokens.begin() + 1, tokens.end()}, " "));
      } else {
        fail(line_no, "unsupported directive '" + head + "'");
      }
      continue;
    }

    Component component;
    component.name = head;
    auto node_at = [&](std::size_t i) -> NodeId {
      if (i >= tokens.size()) fail(line_no, "missing node in '" + line + "'");
      return circuit.node(tokens[i]);
    };

    switch (type) {
      case 'r':
      case 'c':
      case 'l': {
        if (tokens.size() != 4) fail(line_no, "R/C/L cards need 3 operands");
        component.kind = type == 'r'   ? ComponentKind::kResistor
                         : type == 'c' ? ComponentKind::kCapacitor
                                       : ComponentKind::kInductor;
        component.nodes = {node_at(1), node_at(2)};
        component.value = parse_value(line_no, tokens[3]);
        break;
      }
      case 'v':
      case 'i': {
        component.kind = type == 'v' ? ComponentKind::kVoltageSource
                                     : ComponentKind::kCurrentSource;
        component.nodes = {node_at(1), node_at(2)};
        parse_source_tail(line_no, tokens, 3, component);
        break;
      }
      case 'e':
      case 'g': {
        if (tokens.size() != 6) fail(line_no, "E/G cards need 5 operands");
        component.kind =
            type == 'e' ? ComponentKind::kVcvs : ComponentKind::kVccs;
        component.nodes = {node_at(1), node_at(2), node_at(3), node_at(4)};
        component.value = parse_value(line_no, tokens[5]);
        break;
      }
      case 'f':
      case 'h': {
        if (tokens.size() != 5) fail(line_no, "F/H cards need 4 operands");
        component.kind =
            type == 'f' ? ComponentKind::kCccs : ComponentKind::kCcvs;
        component.nodes = {node_at(1), node_at(2)};
        component.control = tokens[3];
        component.value = parse_value(line_no, tokens[4]);
        break;
      }
      case 'x': {
        if (tokens.size() < 5) {
          fail(line_no, "X cards need: in+ in- out MODEL [params]");
        }
        const std::string model = str::to_lower(tokens[4]);
        if (model == "ideal" || model == "opamp_ideal") {
          component.kind = ComponentKind::kIdealOpAmp;
          component.nodes = {node_at(1), node_at(2), node_at(3)};
          if (tokens.size() > 5) fail(line_no, "IDEAL op-amp takes no params");
        } else if (model == "opamp") {
          component.kind = ComponentKind::kOpAmp;
          component.nodes = {node_at(1), node_at(2), node_at(3)};
          parse_opamp_params(line_no, tokens, 5, component.opamp);
        } else {
          fail(line_no, "unknown subcircuit model '" + tokens[4] + "'");
        }
        break;
      }
      default:
        fail(line_no, "unknown card type '" + head + "'");
    }
    try {
      circuit.add_component(std::move(component));
    } catch (const CircuitError& e) {
      fail(line_no, e.what());
    }
  }
  return circuit;
}

Circuit parse_netlist_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open netlist file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_netlist(ss.str());
}

std::string write_netlist(const Circuit& circuit) {
  std::ostringstream os;
  if (!circuit.title().empty()) os << ".title " << circuit.title() << '\n';
  // SPICE dispatches on the first letter of a card, so an op-amp whose
  // in-memory name lacks the X prefix is written as "X<name>".
  auto xname = [](const std::string& name) {
    return (name.empty() || (name.front() != 'x' && name.front() != 'X'))
               ? "X" + name
               : name;
  };
  for (const auto& c : circuit.components()) {
    auto node = [&](std::size_t i) { return circuit.node_name(c.nodes[i]); };
    switch (c.kind) {
      case ComponentKind::kResistor:
      case ComponentKind::kCapacitor:
      case ComponentKind::kInductor:
        os << c.name << ' ' << node(0) << ' ' << node(1) << ' '
           << str::format("%.10g", c.value) << '\n';
        break;
      case ComponentKind::kVoltageSource:
      case ComponentKind::kCurrentSource:
        os << c.name << ' ' << node(0) << ' ' << node(1)
           << str::format(" DC %.10g AC %.10g %.10g", c.dc, c.ac_magnitude,
                          c.ac_phase_deg)
           << '\n';
        break;
      case ComponentKind::kVcvs:
      case ComponentKind::kVccs:
        os << c.name << ' ' << node(0) << ' ' << node(1) << ' ' << node(2)
           << ' ' << node(3) << ' ' << str::format("%.10g", c.value) << '\n';
        break;
      case ComponentKind::kCccs:
      case ComponentKind::kCcvs:
        os << c.name << ' ' << node(0) << ' ' << node(1) << ' ' << c.control
           << ' ' << str::format("%.10g", c.value) << '\n';
        break;
      case ComponentKind::kIdealOpAmp:
        os << xname(c.name) << ' ' << node(0) << ' ' << node(1) << ' '
           << node(2) << " IDEAL\n";
        break;
      case ComponentKind::kOpAmp:
        os << xname(c.name) << ' ' << node(0) << ' ' << node(1) << ' ' << node(2)
           << str::format(" OPAMP AD0=%.10g GBW=%.10g RIN=%.10g ROUT=%.10g",
                          c.opamp.dc_gain, c.opamp.gbw_hz, c.opamp.rin,
                          c.opamp.rout)
           << '\n';
        break;
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace ftdiag::netlist
