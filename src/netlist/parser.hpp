/// \file parser.hpp
/// \brief SPICE-subset netlist parser.
///
/// Supported card types (case-insensitive, SPICE unit suffixes allowed):
///
/// ```
/// * comment                      ; also lines starting with ';' or '//'
/// Rname n+ n- value
/// Cname n+ n- value
/// Lname n+ n- value
/// Vname n+ n- [DC v] [AC mag [phase]]
/// Iname n+ n- [DC v] [AC mag [phase]]
/// Ename n+ n- nc+ nc- gain       ; VCVS
/// Gname n+ n- nc+ nc- gm         ; VCCS
/// Fname n+ n- vcontrol gain      ; CCCS
/// Hname n+ n- vcontrol rm        ; CCVS
/// Xname in+ in- out OPAMP [AD0=v] [GBW=v] [RIN=v] [ROUT=v]
/// Xname in+ in- out IDEAL        ; nullor op-amp
/// .title any text                ; or a leading first-line title
/// .end
/// ```
///
/// The first line is treated as a title if it does not parse as a card.
#pragma once

#include <string>

#include "netlist/circuit.hpp"

namespace ftdiag::netlist {

/// Parse netlist source text. \throws ftdiag::ParseError with a line number
/// on malformed input; the returned circuit is *not* auto-validated.
[[nodiscard]] Circuit parse_netlist(const std::string& text);

/// Read a file and parse it. \throws ftdiag::ParseError if unreadable.
[[nodiscard]] Circuit parse_netlist_file(const std::string& path);

/// Serialize a circuit back to netlist text (round-trips through
/// parse_netlist up to formatting).  Elaborated op-amp internals are written
/// as their primitive elements.  Op-amps whose names lack the SPICE "X"
/// prefix are emitted as "X<name>" so the text stays parseable.
[[nodiscard]] std::string write_netlist(const Circuit& circuit);

}  // namespace ftdiag::netlist
