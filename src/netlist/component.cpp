#include "netlist/component.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ftdiag::netlist {

const char* kind_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kResistor: return "resistor";
    case ComponentKind::kCapacitor: return "capacitor";
    case ComponentKind::kInductor: return "inductor";
    case ComponentKind::kVoltageSource: return "vsource";
    case ComponentKind::kCurrentSource: return "isource";
    case ComponentKind::kVcvs: return "vcvs";
    case ComponentKind::kVccs: return "vccs";
    case ComponentKind::kCccs: return "cccs";
    case ComponentKind::kCcvs: return "ccvs";
    case ComponentKind::kIdealOpAmp: return "ideal-opamp";
    case ComponentKind::kOpAmp: return "opamp";
  }
  return "?";
}

bool is_passive(ComponentKind kind) {
  return kind == ComponentKind::kResistor ||
         kind == ComponentKind::kCapacitor ||
         kind == ComponentKind::kInductor;
}

const char* opamp_param_name(OpAmpParam param) {
  switch (param) {
    case OpAmpParam::kDcGain: return "ad0";
    case OpAmpParam::kGbw: return "gbw";
    case OpAmpParam::kRin: return "rin";
    case OpAmpParam::kRout: return "rout";
  }
  return "?";
}

std::size_t Component::terminal_count(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kResistor:
    case ComponentKind::kCapacitor:
    case ComponentKind::kInductor:
    case ComponentKind::kVoltageSource:
    case ComponentKind::kCurrentSource:
    case ComponentKind::kCccs:
    case ComponentKind::kCcvs:
      return 2;
    case ComponentKind::kIdealOpAmp:
    case ComponentKind::kOpAmp:
      return 3;
    case ComponentKind::kVcvs:
    case ComponentKind::kVccs:
      return 4;
  }
  FTDIAG_ASSERT(false, "unknown component kind");
  return 0;
}

std::string Component::describe() const {
  std::string out = str::format("%s %s", kind_name(kind), name.c_str());
  switch (kind) {
    case ComponentKind::kResistor:
    case ComponentKind::kCapacitor:
    case ComponentKind::kInductor:
    case ComponentKind::kVcvs:
    case ComponentKind::kVccs:
    case ComponentKind::kCccs:
    case ComponentKind::kCcvs:
      out += " value=" + units::format_si(value);
      break;
    case ComponentKind::kVoltageSource:
    case ComponentKind::kCurrentSource:
      out += str::format(" dc=%s ac=%s/%.1fdeg", units::format_si(dc).c_str(),
                         units::format_si(ac_magnitude).c_str(), ac_phase_deg);
      break;
    case ComponentKind::kIdealOpAmp:
      break;
    case ComponentKind::kOpAmp:
      out += str::format(" ad0=%s gbw=%s rin=%s rout=%s",
                         units::format_si(opamp.dc_gain).c_str(),
                         units::format_si(opamp.gbw_hz).c_str(),
                         units::format_si(opamp.rin).c_str(),
                         units::format_si(opamp.rout).c_str());
      break;
  }
  return out;
}

}  // namespace ftdiag::netlist
