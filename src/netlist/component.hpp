/// \file component.hpp
/// \brief Element model of the netlist layer.
///
/// The library targets linear(ized) analog networks — the circuit class the
/// fault-trajectory method addresses.  Supported elements: R, L, C,
/// independent V/I sources, the four controlled sources (E/G/F/H), an ideal
/// op-amp (nullor), and a single-pole op-amp macro model whose parameters
/// are faultable per the FFM fault model of Calvano et al. (JETTA 2001).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdiag::netlist {

/// Node identifier inside one Circuit; 0 is always ground.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

enum class ComponentKind : std::uint8_t {
  kResistor,        ///< nodes {a, b}, value = ohms
  kCapacitor,       ///< nodes {a, b}, value = farads
  kInductor,        ///< nodes {a, b}, value = henries
  kVoltageSource,   ///< nodes {+, -}, dc + ac phasor
  kCurrentSource,   ///< nodes {+, -}, current flows + -> - through source
  kVcvs,            ///< E: nodes {+, -, c+, c-}, value = voltage gain
  kVccs,            ///< G: nodes {+, -, c+, c-}, value = transconductance
  kCccs,            ///< F: nodes {+, -}, control = V-source name, value = gain
  kCcvs,            ///< H: nodes {+, -}, control = V-source name, value = ohms
  kIdealOpAmp,      ///< nodes {in+, in-, out}: nullor
  kOpAmp,           ///< nodes {in+, in-, out}: single-pole macro model
};

/// Human-readable kind name ("resistor", "vcvs", ...).
[[nodiscard]] const char* kind_name(ComponentKind kind);

/// True for R, L, C — the passive set the paper's fault universe targets.
[[nodiscard]] bool is_passive(ComponentKind kind);

/// Single-pole op-amp macro model.
///
/// Elaborated into primitives as: Rin across the inputs; a VCCS into an
/// internal RC pole (gm * rp = dc_gain, pole at gbw_hz / dc_gain); a unity
/// VCVS buffering the pole node through Rout to the output.
struct OpAmpModel {
  double dc_gain = 2.0e5;   ///< Ad0, open-loop DC voltage gain
  double gbw_hz = 1.0e6;    ///< gain-bandwidth product [Hz]
  double rin = 2.0e6;       ///< differential input resistance [ohm]
  double rout = 75.0;       ///< output resistance [ohm]

  /// Open-loop pole frequency [Hz]: gbw / Ad0.
  [[nodiscard]] double pole_hz() const { return gbw_hz / dc_gain; }

  [[nodiscard]] bool operator==(const OpAmpModel&) const = default;
};

/// Names of the faultable macro-model parameters.
enum class OpAmpParam : std::uint8_t { kDcGain, kGbw, kRin, kRout };

[[nodiscard]] const char* opamp_param_name(OpAmpParam param);

/// One netlist element.  Plain data; the Circuit owns the collection and
/// enforces the structural invariants.
struct Component {
  std::string name;
  ComponentKind kind = ComponentKind::kResistor;
  std::vector<NodeId> nodes;

  /// Primary value: ohms / farads / henries / gain / transconductance.
  /// Unused for sources (see dc/ac_*) and op-amps (see opamp).
  double value = 0.0;

  // Independent-source excitation.
  double dc = 0.0;            ///< DC value (V or A)
  double ac_magnitude = 0.0;  ///< AC phasor magnitude (V or A)
  double ac_phase_deg = 0.0;  ///< AC phasor phase [degrees]

  /// For F/H elements: name of the voltage source whose current controls.
  std::string control;

  /// For kOpAmp.
  OpAmpModel opamp;

  /// Number of terminals this kind requires.
  [[nodiscard]] static std::size_t terminal_count(ComponentKind kind);

  /// One-line description for diagnostics.
  [[nodiscard]] std::string describe() const;
};

}  // namespace ftdiag::netlist
