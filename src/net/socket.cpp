#include "net/socket.hpp"

#include <utility>

#include "chaos/chaos.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FTDIAG_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define FTDIAG_HAS_SOCKETS 0
#endif

namespace ftdiag::net {

bool sockets_supported() { return FTDIAG_HAS_SOCKETS != 0; }

#if FTDIAG_HAS_SOCKETS

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only ("127.0.0.1", "0.0.0.0"...): the serving harness has
  // no need for resolver round trips, and inet_pton keeps this dependency
  // free.  "localhost" is accepted as an alias for the loopback address.
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw NetError("cannot parse host address '" + host +
                   "' (use a numeric IPv4 address)");
  }
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#ifdef SO_NOSIGPIPE
  // Platforms without MSG_NOSIGNAL (macOS) suppress SIGPIPE per socket
  // instead — either way a dead peer surfaces as EPIPE, never a signal.
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

using SocketClock = std::chrono::steady_clock;

/// Poll until the descriptor is ready for \p events or \p deadline
/// passes.  EINTR-safe: the remaining budget is recomputed from the
/// deadline, so signals never extend the bound.  \throws TimeoutError on
/// expiry.  Error revents (POLLERR/POLLHUP) return normally — the next
/// recv/send reports the precise failure.
void wait_ready(int fd, short events, SocketClock::time_point deadline,
                const char* direction) {
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - SocketClock::now());
    if (remaining.count() <= 0) {
      throw TimeoutError(std::string(direction) + " timed out");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc > 0) return;
    if (rc == 0) {
      throw TimeoutError(std::string(direction) + " timed out");
    }
    if (errno == EINTR) continue;
    throw_errno(std::string(direction) + " poll failed");
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      recv_timeout_ms_(other.recv_timeout_ms_),
      send_timeout_ms_(other.send_timeout_ms_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    recv_timeout_ms_ = other.recv_timeout_ms_;
    send_timeout_ms_ = other.send_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(std::string_view bytes) {
  if (chaos::Injector::global().enabled()) {
    chaos::hit("net.send_delay");
    if (chaos::hit("net.drop_conn")) {
      shutdown_both();
      throw NetError("injected connection drop (chaos)");
    }
  }
  const bool bounded = send_timeout_ms_ > 0;
  const SocketClock::time_point deadline =
      SocketClock::now() + std::chrono::milliseconds(send_timeout_ms_);
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE (per-connection error isolation depends on it).
    int flags = 0;
#ifdef MSG_NOSIGNAL
    flags |= MSG_NOSIGNAL;
#endif
    // Under a bound the send must not block in the kernel (a blocking
    // stream send can queue the whole buffer before returning): ask for
    // what fits now, poll with the remaining budget for the rest.
    if (bounded) flags |= MSG_DONTWAIT;
    const ssize_t n = ::send(fd_, data, left, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_ready(fd_, POLLOUT, deadline, "send");
        continue;
      }
      throw_errno("send failed");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(char* out, std::size_t n) {
  if (chaos::Injector::global().enabled()) {
    chaos::hit("net.recv_delay");
    if (chaos::hit("net.drop_conn")) {
      shutdown_both();
      throw NetError("injected connection drop (chaos)");
    }
  }
  const bool bounded = recv_timeout_ms_ > 0;
  const SocketClock::time_point deadline =
      SocketClock::now() + std::chrono::milliseconds(recv_timeout_ms_);
  std::size_t got = 0;
  while (got < n) {
    if (bounded) wait_ready(fd_, POLLIN, deadline, "recv");
    const ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv failed");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean close between frames
      throw NetError("peer disconnected mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind(const std::string& host, std::uint16_t port,
                        int backlog) {
  const sockaddr_in addr = make_address(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(str::format("cannot bind %s:%u", host.c_str(), port));
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot listen");
  }
  Listener listener;
  listener.fd_.store(fd);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listener.port_ = ntohs(bound.sin_port);
  } else {
    listener.port_ = port;
  }
  return listener;
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
    other.port_ = 0;
  }
  return *this;
}

Socket Listener::accept() {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) break;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      set_nodelay(client);
      return Socket(client);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    break;  // listener closed (EBADF/EINVAL) or fatal: signal shutdown
  }
  return Socket();
}

void Listener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first so a concurrently blocked accept() wakes up even on
    // platforms where close() alone does not interrupt it.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  const sockaddr_in addr = make_address(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create socket");

  if (timeout_ms > 0) {
    // Bounded connect: flip non-blocking, start the handshake, poll for
    // writability with the budget, then read back SO_ERROR for the verdict.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno(str::format("cannot connect to %s:%u", host.c_str(), port));
    }
    try {
      wait_ready(fd, POLLOUT,
                 SocketClock::now() + std::chrono::milliseconds(timeout_ms),
                 "connect");
    } catch (...) {
      ::close(fd);
      throw;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      ::close(fd);
      errno = soerr;
      throw_errno(str::format("cannot connect to %s:%u", host.c_str(), port));
    }
    ::fcntl(fd, F_SETFL, flags);
  } else {
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno(str::format("cannot connect to %s:%u", host.c_str(), port));
    }
  }
  set_nodelay(fd);
  return Socket(fd);
}

#else  // !FTDIAG_HAS_SOCKETS

namespace {
[[noreturn]] void no_sockets() {
  throw ConfigError("this build has no socket support");
}
}  // namespace

Socket::~Socket() = default;
Socket::Socket(Socket&&) noexcept {}
Socket& Socket::operator=(Socket&&) noexcept { return *this; }
void Socket::send_all(std::string_view) { no_sockets(); }
bool Socket::recv_exact(char*, std::size_t) { no_sockets(); }
void Socket::shutdown_both() {}
void Socket::shutdown_read() {}
void Socket::close() {}

Listener Listener::bind(const std::string&, std::uint16_t, int) {
  no_sockets();
}
Listener::~Listener() = default;
Listener::Listener(Listener&&) noexcept {}
Listener& Listener::operator=(Listener&&) noexcept { return *this; }
Socket Listener::accept() { no_sockets(); }
void Listener::close() {}

Socket connect_tcp(const std::string&, std::uint16_t, int) { no_sockets(); }

#endif  // FTDIAG_HAS_SOCKETS

}  // namespace ftdiag::net
