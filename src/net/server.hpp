/// \file server.hpp
/// \brief The ftdiag network server: accepts concurrent connections,
/// decodes wire frames, dispatches into a process-wide DiagnosisService.
///
/// Threading model — per connection, two threads:
///  * a *reader* that pulls frames off the socket, decodes them, submits
///    diagnose requests to the service, and appends the resulting futures
///    to an ordered outbox (bounded by max_inflight for backpressure);
///  * a *writer* that drains the outbox in FIFO order, waits each future,
///    and serializes every socket write — replies leave in the order the
///    requests arrived, which is what makes client pipelining simple.
///
/// Error isolation: a malformed payload, unknown message type, unknown
/// circuit, or service failure answers with an error frame on *that*
/// connection — the server never crashes and the peer is not dropped.
/// Only an unrecoverable stream (bad magic / bad version / oversized
/// length prefix) closes the connection, after a best-effort error frame.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "service/diagnosis_service.hpp"

namespace ftdiag::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral, read back via Server::port()
  std::size_t max_connections = 64;
  /// Requests a single connection may have in flight (submitted but not
  /// yet replied).  The reader blocks past this — per-connection
  /// backpressure that bounds outbox memory.
  std::size_t max_inflight = 128;
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Bound on reading the *rest* of a frame once its header arrived.  An
  /// idle connection may sit silent forever, but a peer that starts a
  /// frame and stalls mid-payload is holding a reader thread hostage —
  /// past this bound the connection is dropped.  0 = wait forever.
  int payload_recv_timeout_ms = 30000;
  /// Bound on any single reply write.  A peer that stops *reading* while
  /// we flush replies would otherwise block the writer thread forever
  /// once the socket buffer fills.  0 = wait forever.
  int send_timeout_ms = 30000;
};

/// Monotonic serving counters (connections_open is a gauge).  On a
/// connection that drains cleanly, every received diagnose frame is
/// answered exactly once, so `requests_received == replies_sent +
/// error_frames_sent` once `connections_open` returns to 0.  The same
/// counters are exported process-wide as `ftdiag_net_*` through an
/// `obs::Registry` collector.
struct ServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_rejected = 0;  ///< over max_connections
  std::size_t connections_open = 0;
  /// Diagnose frames received, malformed payloads included — each one
  /// produces exactly one reply or error frame.
  std::size_t requests_received = 0;
  std::size_t replies_sent = 0;
  /// Error frames sent, kOverloaded frames included — the counter
  /// identity `requests_received == replies_sent + error_frames_sent`
  /// holds with shedding active.
  std::size_t error_frames_sent = 0;
  std::size_t overloaded_sent = 0;  ///< kOverloaded sheds (also in errors)
  std::size_t protocol_errors = 0;  ///< unrecoverable streams closed
  std::size_t disconnects = 0;      ///< connections that ended
};

/// A running server.  Construction binds + listens and starts the accept
/// loop; stop() (or the destructor) closes the listener, unblocks every
/// connection, and joins all threads.  The referenced DiagnosisService
/// must outlive the server.
class Server {
public:
  Server(service::DiagnosisService& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the actual one when options.port was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

  [[nodiscard]] ServerStats stats() const;

  /// Graceful shutdown: close the listener, stop *reading* every
  /// connection (shutdown of the read direction — a blocked reader wakes
  /// with a clean EOF), but let the writers flush every reply already in
  /// flight.  Waits up to \p grace for the connections to drain on their
  /// own, then falls through to stop() for whatever is left.  Idempotent,
  /// and composes with stop().
  void drain(std::chrono::milliseconds grace = std::chrono::seconds(10));

  /// Stop accepting, close every connection, join all threads.
  /// Idempotent.
  void stop();

private:
  struct Connection;

  void accept_loop();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  void reap_finished(bool all);

  service::DiagnosisService& service_;
  ServerOptions options_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  /// Instance-owned obs primitives backing the public ServerStats view;
  /// the collector below mirrors them into Registry::global() snapshots.
  struct Counters {
    obs::Counter connections_accepted;
    obs::Counter connections_rejected;
    obs::Gauge connections_open;
    obs::Counter requests_received;
    obs::Counter replies_sent;
    obs::Counter error_frames_sent;
    obs::Counter overloaded_sent;
    obs::Counter protocol_errors;
    obs::Counter disconnects;
  };
  mutable Counters counters_;
  obs::Registry::CollectorHandle collector_;
};

}  // namespace ftdiag::net
