#include "net/server.hpp"

#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <utility>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ftdiag::net {

namespace {
std::string next_instance_label() {
  static std::atomic<std::uint64_t> seq{0};
  return std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

/// One queued item for the writer thread: either a frame that is already
/// encoded (pong, error) or a pending diagnosis whose future the writer
/// waits on.  FIFO order in this queue *is* the reply order on the wire.
struct Outgoing {
  std::string ready_frame;  ///< non-empty: send as-is
  std::uint64_t request_id = 0;
  std::future<service::DiagnosisReply> pending;  ///< valid when not ready
};

struct Server::Connection {
  Socket socket;
  std::thread reader;
  std::thread writer;

  std::mutex mutex;
  std::condition_variable cv;        ///< writer: outbox non-empty / closing
  std::condition_variable space_cv;  ///< reader: inflight below the bound
  std::deque<Outgoing> outbox;
  bool reader_done = false;  ///< no more outbox entries will arrive
  bool broken = false;       ///< socket write failed; stop replying
  std::atomic<bool> finished{false};  ///< both threads about to exit
};

Server::Server(service::DiagnosisService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.max_inflight == 0) {
    throw ConfigError("net server max_inflight must be positive");
  }
  if (options_.max_connections == 0) {
    throw ConfigError("net server max_connections must be positive");
  }
  listener_ = Listener::bind(options_.host, options_.port);
  port_ = listener_.port();
  const obs::Labels labels{{"instance", next_instance_label()}};
  collector_ = obs::Registry::global().add_collector(
      [this, labels](obs::SampleSink& sink) {
        const ServerStats s = stats();
        sink.counter("ftdiag_net_connections_accepted_total",
                     static_cast<double>(s.connections_accepted), labels,
                     "connections accepted");
        sink.counter("ftdiag_net_connections_rejected_total",
                     static_cast<double>(s.connections_rejected), labels,
                     "connections rejected over max_connections");
        sink.gauge("ftdiag_net_connections_open",
                   static_cast<double>(s.connections_open), labels,
                   "connections open right now");
        sink.counter("ftdiag_net_requests_received_total",
                     static_cast<double>(s.requests_received), labels,
                     "diagnose frames received, malformed included");
        sink.counter("ftdiag_net_replies_sent_total",
                     static_cast<double>(s.replies_sent), labels,
                     "diagnosis reply frames sent");
        sink.counter("ftdiag_net_error_frames_sent_total",
                     static_cast<double>(s.error_frames_sent), labels,
                     "error frames sent, kOverloaded sheds included");
        sink.counter("ftdiag_net_overloaded_sent_total",
                     static_cast<double>(s.overloaded_sent), labels,
                     "requests answered with a kOverloaded shed frame");
        sink.counter("ftdiag_net_protocol_errors_total",
                     static_cast<double>(s.protocol_errors), labels,
                     "unrecoverable streams closed");
        sink.counter("ftdiag_net_disconnects_total",
                     static_cast<double>(s.disconnects), labels,
                     "connections that ended");
      });
  accept_thread_ = std::thread([this] { accept_loop(); });
  log::info("net: listening",
            {{"host", options_.host}, {"port", std::uint64_t{port_}}});
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket socket = listener_.accept();
    if (!socket.valid()) break;  // listener closed: shutting down
    reap_finished(false);

    std::size_t open;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      open = connections_.size();
    }
    if (open >= options_.max_connections) {
      counters_.connections_rejected.inc();
      log::warn("net: connection rejected",
                {{"open", open}, {"limit", options_.max_connections}});
      try {
        socket.send_all(encode_frame(
            MessageType::kError,
            encode_error(0, str::format("server is at its %zu connection "
                                        "limit; retry later",
                                        options_.max_connections))));
      } catch (const NetError&) {
      }
      continue;  // socket closes on scope exit
    }

    counters_.connections_accepted.inc();
    counters_.connections_open.add(1);
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(socket);
    // The reader arms/disarms the recv bound itself around payload
    // reads; the send bound guards every writer flush.
    conn->socket.set_send_timeout(options_.send_timeout_ms);
    Connection& ref = *conn;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.writer = std::thread([this, &ref] { writer_loop(ref); });
  }
}

void Server::reader_loop(Connection& conn) {
  char header_bytes[kFrameHeaderBytes];
  std::string payload;

  auto enqueue = [&](Outgoing item) {
    std::unique_lock<std::mutex> lock(conn.mutex);
    conn.space_cv.wait(lock, [&] {
      return conn.outbox.size() < options_.max_inflight || conn.broken ||
             stopping_.load(std::memory_order_acquire);
    });
    conn.outbox.push_back(std::move(item));
    conn.cv.notify_one();
  };
  auto enqueue_error = [&](std::uint64_t id, const std::string& message) {
    Outgoing item;
    item.ready_frame = encode_frame(MessageType::kError,
                                    encode_error(id, message));
    enqueue(std::move(item));
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    try {
      if (!conn.socket.recv_exact(header_bytes, kFrameHeaderBytes)) {
        break;  // clean close between frames
      }
    } catch (const NetError&) {
      break;  // reset / mid-frame disconnect: nothing to answer
    }

    FrameHeader header;
    try {
      header = decode_frame_header({header_bytes, kFrameHeaderBytes},
                                   options_.max_payload_bytes);
    } catch (const Error& error) {
      // Bad magic, bad version, reserved flags, oversized length prefix:
      // the byte stream cannot be resynchronized.  Answer once, close.
      counters_.protocol_errors.inc();
      log::debug("net: protocol error", {{"error", error.what()}});
      enqueue_error(0, error.what());
      break;
    }

    // kNetRecv covers payload read + decode + submit for diagnose
    // frames; other frame types cancel the span below.
    obs::Span recv_span(obs::Stage::kNetRecv);
    payload.resize(header.payload_size);
    try {
      if (header.payload_size > 0) {
        // The payload must follow its header promptly — a mid-frame
        // stall is indistinguishable from a hung peer and would pin this
        // reader thread forever.  Idle time *between* frames stays
        // unbounded (the recv above runs with no bound).
        conn.socket.set_recv_timeout(options_.payload_recv_timeout_ms);
        const bool complete =
            conn.socket.recv_exact(payload.data(), payload.size());
        conn.socket.set_recv_timeout(0);
        if (!complete) {
          recv_span.cancel();
          break;
        }
      }
    } catch (const NetError&) {
      conn.socket.set_recv_timeout(0);
      recv_span.cancel();
      break;  // peer vanished (or stalled past the bound) mid-payload
    }

    // From here the stream is framed correctly, so every failure is
    // answerable in-band and the connection survives it.
    switch (header.type) {
      case static_cast<std::uint8_t>(MessageType::kPing): {
        recv_span.cancel();
        Outgoing item;
        item.ready_frame = encode_frame(MessageType::kPong, payload);
        enqueue(std::move(item));
        break;
      }
      case static_cast<std::uint8_t>(MessageType::kStats): {
        recv_span.cancel();
        try {
          const StatsFormat format = decode_stats_request(payload);
          const std::string rendered =
              format == StatsFormat::kPrometheus
                  ? obs::render_prometheus(obs::Registry::global())
                  : obs::render_json(obs::Registry::global());
          Outgoing item;
          item.ready_frame = encode_frame(MessageType::kStatsReply,
                                          encode_stats_reply(rendered));
          enqueue(std::move(item));
        } catch (const Error& error) {
          enqueue_error(0, error.what());
        }
        break;
      }
      case static_cast<std::uint8_t>(MessageType::kDiagnose): {
        // Counted before decoding so malformed payloads are received
        // requests too — the invariant `requests_received == replies_sent
        // + error_frames_sent` holds over whole connections.
        counters_.requests_received.inc();
        std::uint64_t request_id = 0;
        try {
          DecodedDiagnose decoded = decode_diagnose(payload, header.version);
          request_id = decoded.request_id;
          Outgoing item;
          item.request_id = request_id;
          item.pending = service_.submit(std::move(decoded.request));
          enqueue(std::move(item));
          recv_span.finish();
        } catch (const OverloadError& error) {
          // Admission control shed the request before it was queued: a
          // polite, explicitly retryable kOverloaded answer.
          recv_span.cancel();
          Outgoing item;
          item.ready_frame = encode_frame(
              MessageType::kOverloaded, encode_error(request_id, error.what()));
          enqueue(std::move(item));
        } catch (const Error& error) {
          // Malformed payload or a submit-side rejection (empty request,
          // deadline expired at admission, service shut down): this
          // request fails, the peer stays.
          recv_span.cancel();
          enqueue_error(request_id, error.what());
        }
        break;
      }
      default:
        recv_span.cancel();
        enqueue_error(
            0, str::format("unsupported message type %u",
                           static_cast<unsigned>(header.type)));
        break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.reader_done = true;
    conn.cv.notify_one();
  }
}

void Server::writer_loop(Connection& conn) {
  for (;;) {
    Outgoing item;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock,
                   [&] { return !conn.outbox.empty() || conn.reader_done; });
      if (conn.outbox.empty()) break;  // reader done and outbox drained
      item = std::move(conn.outbox.front());
      conn.outbox.pop_front();
      conn.space_cv.notify_one();
    }

    std::string frame;
    bool is_reply = false;
    bool is_error = false;
    bool is_overloaded = false;
    // kReplySend: encoding + writing a diagnosis reply.  The future wait
    // above it is solve/score time and is traced in the service, so the
    // span starts only once the reply is in hand.
    std::optional<obs::Span> send_span;
    if (!item.ready_frame.empty()) {
      frame = std::move(item.ready_frame);
      is_overloaded = frame.size() > 5 &&
                      frame[5] == static_cast<char>(MessageType::kOverloaded);
      // kOverloaded counts toward error_frames_sent so the identity
      // `requests_received == replies_sent + error_frames_sent` holds
      // with shedding active.
      is_error = is_overloaded ||
                 (frame.size() > 5 &&
                  frame[5] == static_cast<char>(MessageType::kError));
    } else {
      try {
        const service::DiagnosisReply reply = item.pending.get();
        send_span.emplace(obs::Stage::kReplySend, item.request_id);
        frame = encode_frame(MessageType::kDiagnoseReply,
                             encode_reply(item.request_id, reply));
        is_reply = true;
      } catch (const std::exception& error) {
        frame = encode_frame(MessageType::kError,
                             encode_error(item.request_id, error.what()));
        is_error = true;
      }
    }

    bool broken;
    {
      std::lock_guard<std::mutex> lock(conn.mutex);
      broken = conn.broken;
    }
    if (broken) {
      if (send_span) send_span->cancel();
      continue;  // keep draining futures, stop writing
    }

    try {
      conn.socket.send_all(frame);
      if (send_span) send_span->finish();
      if (is_reply) {
        counters_.replies_sent.inc();
      } else if (is_error) {
        counters_.error_frames_sent.inc();
        if (is_overloaded) counters_.overloaded_sent.inc();
      }
    } catch (const NetError&) {
      if (send_span) send_span->cancel();
      std::lock_guard<std::mutex> lock(conn.mutex);
      conn.broken = true;
      conn.space_cv.notify_all();  // unblock a reader stuck on inflight
    }
  }

  // The writer exits last for this connection's protocol work: shut the
  // socket so a reader still blocked in recv wakes up, then mark the
  // connection reapable.
  conn.socket.shutdown_both();
  counters_.disconnects.inc();
  counters_.connections_open.sub(1);
  conn.finished.store(true, std::memory_order_release);
}

void Server::reap_finished(bool all) {
  std::list<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        doomed.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : doomed) {
    if (all) {
      // Force both threads out of any blocking call.
      conn->socket.shutdown_both();
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->cv.notify_all();
      conn->space_cv.notify_all();
    }
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted = counters_.connections_accepted.value();
  stats.connections_rejected = counters_.connections_rejected.value();
  stats.connections_open =
      static_cast<std::size_t>(counters_.connections_open.value());
  stats.requests_received = counters_.requests_received.value();
  stats.replies_sent = counters_.replies_sent.value();
  stats.error_frames_sent = counters_.error_frames_sent.value();
  stats.overloaded_sent = counters_.overloaded_sent.value();
  stats.protocol_errors = counters_.protocol_errors.value();
  stats.disconnects = counters_.disconnects.value();
  return stats;
}

void Server::drain(std::chrono::milliseconds grace) {
  log::info("net: draining", {{"grace_ms", std::uint64_t(grace.count())}});
  // No new connections...
  listener_.close();
  // ...and no new requests: shutting down the read direction wakes every
  // blocked reader with a clean EOF while leaving the write direction —
  // and therefore every queued reply — intact.  Readers mid-frame drop
  // that frame; everything already submitted is answered.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->socket.shutdown_read();
  }
  const auto deadline = std::chrono::steady_clock::now() + grace;
  while (std::chrono::steady_clock::now() < deadline) {
    reap_finished(false);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Whatever outlived the grace period is cut off the hard way.
  stop();
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    reap_finished(true);
    return;
  }
  listener_.close();  // wakes the blocked accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_finished(true);
  collector_.release();
  const ServerStats s = stats();
  log::info("net: server stopped",
            {{"requests", s.requests_received},
             {"replies", s.replies_sent},
             {"errors", s.error_frames_sent},
             {"disconnects", s.disconnects}});
}

}  // namespace ftdiag::net
