/// \file socket.hpp
/// \brief Minimal RAII wrappers over portable POSIX TCP sockets — just
/// enough surface for the frame protocol: bind/listen/accept, connect,
/// send-all, receive-exact.  No third-party dependency.
///
/// Platforms without BSD sockets compile a stub where every constructor
/// throws ConfigError and sockets_supported() is false, so the library
/// links everywhere and callers can gate cleanly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ftdiag::net {

/// True when this build has a working socket implementation.
[[nodiscard]] bool sockets_supported();

/// A connected TCP stream (move-only RAII over the file descriptor).
///
/// Timeouts are poll-based and per-call: when a bound is set, every
/// send_all / recv_exact call is limited to that many milliseconds *in
/// total* (not per byte), EINTR-safe, and throws TimeoutError — a
/// NetError subclass, so existing transport-error handling catches it —
/// when the bound expires.  A zero bound (the default) blocks forever,
/// preserving the original behavior and paying no poll() cost.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Bound every subsequent recv_exact / send_all call to this many
  /// milliseconds (0 = no bound).  Not thread-safe against a concurrent
  /// call on the same direction — set a direction's bound only from the
  /// thread that uses that direction.
  void set_recv_timeout(int timeout_ms) { recv_timeout_ms_ = timeout_ms; }
  void set_send_timeout(int timeout_ms) { send_timeout_ms_ = timeout_ms; }

  /// Write the whole buffer (retrying short writes / EINTR).
  /// \throws NetError when the peer is gone, TimeoutError past the bound.
  void send_all(std::string_view bytes);

  /// Read exactly \p n bytes.  Returns false on a clean EOF *before the
  /// first byte* (the peer closed between frames); \throws NetError on a
  /// mid-read EOF (a frame was cut off) or any transport error,
  /// TimeoutError past the bound.
  [[nodiscard]] bool recv_exact(char* out, std::size_t n);

  /// Unblock any thread stuck in recv/send on this socket (shutdown both
  /// directions); safe to call from another thread and repeatedly.
  void shutdown_both();

  /// Close only the read direction: a peer's in-flight data is discarded,
  /// a blocked recv wakes with EOF, but queued replies still flush.  The
  /// drain path uses this to stop *accepting* work without dropping work
  /// already answered.
  void shutdown_read();

  void close();

private:
  int fd_ = -1;
  int recv_timeout_ms_ = 0;
  int send_timeout_ms_ = 0;
};

/// A listening TCP socket.
class Listener {
public:
  /// Bind + listen.  Port 0 picks an ephemeral port (read it back with
  /// port()).  \throws NetError on failure, ConfigError without sockets.
  [[nodiscard]] static Listener bind(const std::string& host,
                                     std::uint16_t port, int backlog = 64);

  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] bool valid() const { return fd_.load() >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Block for the next connection.  Returns an invalid Socket once the
  /// listener has been close()d (the accept loop's stop signal);
  /// transient per-connection failures are retried internally.
  [[nodiscard]] Socket accept();

  /// Stop accepting; any blocked accept() returns an invalid Socket.
  /// Safe to call from another thread while accept() blocks.
  void close();

private:
  /// Atomic because close() races with the accept-loop thread by design.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Open a TCP connection (with TCP_NODELAY for request/reply latency).
/// With a positive \p timeout_ms the connect itself is bounded (poll-based
/// non-blocking connect) and throws TimeoutError when it expires; 0 blocks
/// until the kernel gives up.  \throws NetError when the host cannot be
/// resolved or reached.
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port,
                                 int timeout_ms = 0);

}  // namespace ftdiag::net
