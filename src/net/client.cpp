#include "net/client.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::net {

Client::Client(const std::string& host, std::uint16_t port,
               std::uint32_t max_payload_bytes)
    : socket_(connect_tcp(host, port)),
      max_payload_bytes_(max_payload_bytes) {}

FrameHeader Client::read_frame(std::string& payload) {
  char header_bytes[kFrameHeaderBytes];
  if (!socket_.recv_exact(header_bytes, kFrameHeaderBytes)) {
    throw NetError("server closed the connection");
  }
  const FrameHeader header = decode_frame_header(
      {header_bytes, kFrameHeaderBytes}, max_payload_bytes_);
  payload.resize(header.payload_size);
  if (header.payload_size > 0 &&
      !socket_.recv_exact(payload.data(), payload.size())) {
    throw NetError("server closed the connection mid-frame");
  }
  return header;
}

std::uint64_t Client::send(const service::DiagnosisRequest& request) {
  const std::uint64_t id = next_request_id_++;
  socket_.send_all(
      encode_frame(MessageType::kDiagnose, encode_diagnose(id, request)));
  return id;
}

DecodedReply Client::receive() {
  std::string payload;
  const FrameHeader header = read_frame(payload);
  switch (header.type) {
    case static_cast<std::uint8_t>(MessageType::kDiagnoseReply):
      return decode_reply(payload);
    case static_cast<std::uint8_t>(MessageType::kError): {
      const DecodedError error = decode_error(payload);
      throw RemoteError(error.message);
    }
    default:
      throw ParseError(str::format("unexpected message type %u from server",
                                   static_cast<unsigned>(header.type)));
  }
}

service::DiagnosisReply Client::diagnose(
    const service::DiagnosisRequest& request) {
  (void)send(request);
  return std::move(receive().reply);
}

std::vector<service::DiagnosisReply> Client::diagnose_pipelined(
    const std::vector<service::DiagnosisRequest>& requests,
    std::size_t window) {
  if (window == 0) window = 1;
  std::vector<service::DiagnosisReply> replies;
  replies.reserve(requests.size());
  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < requests.size()) {
    while (sent < requests.size() && sent - received < window) {
      (void)send(requests[sent]);
      ++sent;
    }
    try {
      replies.push_back(std::move(receive().reply));
    } catch (const RemoteError& error) {
      throw RemoteError(str::format("request %zu of %zu failed: %s",
                                    received + 1, requests.size(),
                                    error.what()));
    }
    ++received;
  }
  return replies;
}

void Client::ping() {
  socket_.send_all(encode_frame(MessageType::kPing, ""));
  std::string payload;
  const FrameHeader header = read_frame(payload);
  if (header.type != static_cast<std::uint8_t>(MessageType::kPong)) {
    throw ParseError(str::format("expected pong, got message type %u",
                                 static_cast<unsigned>(header.type)));
  }
}

std::string Client::stats(StatsFormat format) {
  socket_.send_all(
      encode_frame(MessageType::kStats, encode_stats_request(format)));
  std::string payload;
  const FrameHeader header = read_frame(payload);
  switch (header.type) {
    case static_cast<std::uint8_t>(MessageType::kStatsReply):
      return decode_stats_reply(payload);
    case static_cast<std::uint8_t>(MessageType::kError): {
      const DecodedError error = decode_error(payload);
      throw RemoteError(error.message);
    }
    default:
      throw ParseError(
          str::format("expected stats reply, got message type %u",
                      static_cast<unsigned>(header.type)));
  }
}

void Client::close() { socket_.close(); }

}  // namespace ftdiag::net
