#include "net/client.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ftdiag::net {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               std::uint32_t max_payload_bytes)
    : Client(host, port, [&] {
        ClientOptions options;
        options.max_payload_bytes = max_payload_bytes;
        return options;
      }()) {}

Client::Client(const std::string& host, std::uint16_t port,
               ClientOptions options)
    : host_(host),
      port_(port),
      options_(options),
      max_payload_bytes_(options.max_payload_bytes),
      jitter_state_(options.retry_seed) {
  socket_ = open_socket();
}

Socket Client::open_socket() const {
  Socket socket = connect_tcp(
      host_, port_, static_cast<int>(options_.connect_timeout.count()));
  // The request bound covers both directions: a peer that stops reading
  // is as gone as one that stops answering.
  const int timeout_ms = static_cast<int>(options_.request_timeout.count());
  socket.set_recv_timeout(timeout_ms);
  socket.set_send_timeout(timeout_ms);
  return socket;
}

FrameHeader Client::read_frame(std::string& payload) {
  char header_bytes[kFrameHeaderBytes];
  if (!socket_.recv_exact(header_bytes, kFrameHeaderBytes)) {
    throw NetError("server closed the connection");
  }
  const FrameHeader header = decode_frame_header(
      {header_bytes, kFrameHeaderBytes}, max_payload_bytes_);
  payload.resize(header.payload_size);
  if (header.payload_size > 0 &&
      !socket_.recv_exact(payload.data(), payload.size())) {
    throw NetError("server closed the connection mid-frame");
  }
  return header;
}

std::uint64_t Client::send(const service::DiagnosisRequest& request) {
  const std::uint64_t id = next_request_id_++;
  // Stamp the configured deadline / shedding class unless the caller set
  // its own — the wire deadline is what lets the server stop working on
  // requests this client already timed out on.
  if ((request.deadline_ms == 0 && options_.request_timeout.count() > 0) ||
      (request.priority == 0 && options_.priority != 0)) {
    service::DiagnosisRequest stamped = request;
    if (stamped.deadline_ms == 0 && options_.request_timeout.count() > 0) {
      stamped.deadline_ms =
          static_cast<std::uint32_t>(options_.request_timeout.count());
    }
    if (stamped.priority == 0) stamped.priority = options_.priority;
    socket_.send_all(
        encode_frame(MessageType::kDiagnose, encode_diagnose(id, stamped)));
  } else {
    socket_.send_all(
        encode_frame(MessageType::kDiagnose, encode_diagnose(id, request)));
  }
  return id;
}

DecodedReply Client::receive() {
  std::string payload;
  const FrameHeader header = read_frame(payload);
  switch (header.type) {
    case static_cast<std::uint8_t>(MessageType::kDiagnoseReply):
      return decode_reply(payload);
    case static_cast<std::uint8_t>(MessageType::kOverloaded): {
      const DecodedError error = decode_error(payload);
      throw OverloadedError(error.message);
    }
    case static_cast<std::uint8_t>(MessageType::kError): {
      const DecodedError error = decode_error(payload);
      throw RemoteError(error.message);
    }
    default:
      throw ParseError(str::format("unexpected message type %u from server",
                                   static_cast<unsigned>(header.type)));
  }
}

void Client::backoff_or_rethrow(std::size_t attempt) {
  if (attempt >= options_.retry.max_attempts ||
      retries_used_ >= options_.retry.budget) {
    throw;  // rethrow the in-flight transport/overload error
  }
  ++retries_used_;
  const auto exponent = std::min<std::size_t>(attempt - 1, 20);
  auto backoff = options_.retry.initial_backoff *
                 static_cast<std::int64_t>(std::size_t{1} << exponent);
  backoff = std::min(backoff, options_.retry.max_backoff);
  const double jitter = std::clamp(options_.retry.jitter, 0.0, 1.0);
  if (jitter > 0.0 && backoff.count() > 0) {
    const double unit = static_cast<double>(splitmix64(jitter_state_) >> 11) *
                        (1.0 / 9007199254740992.0);
    const double factor = 1.0 - jitter + 2.0 * jitter * unit;
    backoff = std::chrono::milliseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * factor));
  }
  if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
}

service::DiagnosisReply Client::diagnose(
    const service::DiagnosisRequest& request) {
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      if (!socket_.valid()) socket_ = open_socket();
      (void)send(request);
      return std::move(receive().reply);
    } catch (const OverloadedError&) {
      // A polite shed: the request was never admitted and the connection
      // is intact — back off and try again on the same socket.
      backoff_or_rethrow(attempt);
    } catch (const NetError&) {
      // Transport failure (timeouts included): the connection is in an
      // unknown state, so drop it and reconnect on the next attempt.
      socket_.close();
      backoff_or_rethrow(attempt);
    }
  }
}

std::vector<service::DiagnosisReply> Client::diagnose_pipelined(
    const std::vector<service::DiagnosisRequest>& requests,
    std::size_t window) {
  if (window == 0) window = 1;
  std::vector<service::DiagnosisReply> replies;
  replies.reserve(requests.size());
  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < requests.size()) {
    while (sent < requests.size() && sent - received < window) {
      (void)send(requests[sent]);
      ++sent;
    }
    try {
      replies.push_back(std::move(receive().reply));
    } catch (const RemoteError& error) {
      throw RemoteError(str::format("request %zu of %zu failed: %s",
                                    received + 1, requests.size(),
                                    error.what()));
    }
    ++received;
  }
  return replies;
}

void Client::ping() {
  socket_.send_all(encode_frame(MessageType::kPing, ""));
  std::string payload;
  const FrameHeader header = read_frame(payload);
  if (header.type != static_cast<std::uint8_t>(MessageType::kPong)) {
    throw ParseError(str::format("expected pong, got message type %u",
                                 static_cast<unsigned>(header.type)));
  }
}

std::string Client::stats(StatsFormat format) {
  socket_.send_all(
      encode_frame(MessageType::kStats, encode_stats_request(format)));
  std::string payload;
  const FrameHeader header = read_frame(payload);
  switch (header.type) {
    case static_cast<std::uint8_t>(MessageType::kStatsReply):
      return decode_stats_reply(payload);
    case static_cast<std::uint8_t>(MessageType::kError): {
      const DecodedError error = decode_error(payload);
      throw RemoteError(error.message);
    }
    default:
      throw ParseError(
          str::format("expected stats reply, got message type %u",
                      static_cast<unsigned>(header.type)));
  }
}

void Client::close() { socket_.close(); }

}  // namespace ftdiag::net
