#include "net/wire.hpp"

#include <cstring>

#include "io/binary.hpp"
#include "util/strings.hpp"

namespace ftdiag::net {

namespace {

using io::ByteReader;

/// Counts are validated against the bytes actually present before any
/// container is sized from them, so a hostile count can never out-allocate
/// the (already bounded) payload it arrived in.
void require_count(ByteReader& reader, std::size_t count,
                   std::size_t min_bytes_each, const char* what) {
  if (min_bytes_each != 0 && count > reader.remaining() / min_bytes_each) {
    throw ParseError(std::string("frame payload declares more ") + what +
                     " than it carries");
  }
}

void put_point(std::string& out, const core::Point& point) {
  io::put_u32(out, static_cast<std::uint32_t>(point.size()));
  for (double c : point) io::put_f64(out, c);
}

core::Point get_point(ByteReader& reader) {
  const std::uint32_t dim = reader.get_u32();
  require_count(reader, dim, 8, "point coordinates");
  core::Point point(dim);
  for (double& c : point) c = reader.get_f64();
  return point;
}

void put_response(std::string& out, const mna::AcResponse& response) {
  io::put_u32(out, static_cast<std::uint32_t>(response.size()));
  for (std::size_t i = 0; i < response.size(); ++i) {
    io::put_f64(out, response.frequency(i));
    io::put_f64(out, response.value(i).real());
    io::put_f64(out, response.value(i).imag());
  }
}

mna::AcResponse get_response(ByteReader& reader) {
  const std::uint32_t n = reader.get_u32();
  require_count(reader, n, 24, "response samples");
  std::vector<double> freqs(n);
  std::vector<mna::Complex> values(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    freqs[i] = reader.get_f64();
    const double re = reader.get_f64();
    const double im = reader.get_f64();
    values[i] = {re, im};
  }
  return mna::AcResponse(std::move(freqs), std::move(values));
}

}  // namespace

bool is_known_message_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MessageType::kDiagnose) &&
         raw <= static_cast<std::uint8_t>(MessageType::kOverloaded);
}

std::string encode_frame(MessageType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  io::put_u8(out, kWireVersion);
  io::put_u8(out, static_cast<std::uint8_t>(type));
  io::put_u16(out, 0);  // reserved flags
  io::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

FrameHeader decode_frame_header(std::string_view header_bytes,
                                std::uint32_t max_payload_bytes) {
  ByteReader reader(header_bytes, "frame header");
  const char* magic = reader.need(sizeof(kFrameMagic));
  if (std::memcmp(magic, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw ParseError("not an ftdiag frame (bad magic)");
  }
  FrameHeader header;
  header.version = reader.get_u8();
  if (header.version < kMinWireVersion || header.version > kWireVersion) {
    throw ParseError(str::format(
        "unsupported wire protocol version %u (this build speaks %u-%u)",
        header.version, kMinWireVersion, kWireVersion));
  }
  header.type = reader.get_u8();
  if (const std::uint16_t flags = reader.get_u16(); flags != 0) {
    throw ParseError(
        str::format("frame uses reserved flag bits 0x%04x", flags));
  }
  header.payload_size = reader.get_u32();
  if (header.payload_size > max_payload_bytes) {
    throw ParseError(str::format(
        "frame payload of %u bytes exceeds the %u byte limit",
        header.payload_size, max_payload_bytes));
  }
  return header;
}

std::string encode_diagnose(std::uint64_t request_id,
                            const service::DiagnosisRequest& request) {
  std::string out;
  io::put_u64(out, request_id);
  io::put_u32(out, request.deadline_ms);
  io::put_u8(out, request.priority);
  io::put_str(out, request.circuit);
  io::put_u32(out, static_cast<std::uint32_t>(request.points.size()));
  for (const auto& point : request.points) put_point(out, point);
  io::put_u32(out, static_cast<std::uint32_t>(request.measured.size()));
  for (const auto& measured : request.measured) put_response(out, measured);
  return out;
}

DecodedDiagnose decode_diagnose(std::string_view payload,
                                std::uint8_t version) {
  ByteReader reader(payload, "diagnose frame payload");
  DecodedDiagnose decoded;
  decoded.request_id = reader.get_u64();
  if (version >= 2) {
    decoded.request.deadline_ms = reader.get_u32();
    decoded.request.priority = reader.get_u8();
  }
  decoded.request.circuit = reader.get_str();
  const std::uint32_t n_points = reader.get_u32();
  require_count(reader, n_points, 4, "points");
  decoded.request.points.reserve(n_points);
  for (std::uint32_t i = 0; i < n_points; ++i) {
    decoded.request.points.push_back(get_point(reader));
  }
  const std::uint32_t n_measured = reader.get_u32();
  require_count(reader, n_measured, 4, "measurements");
  decoded.request.measured.reserve(n_measured);
  for (std::uint32_t i = 0; i < n_measured; ++i) {
    decoded.request.measured.push_back(get_response(reader));
  }
  return decoded;
}

std::string encode_reply(std::uint64_t request_id,
                         const service::DiagnosisReply& reply) {
  std::string out;
  io::put_u64(out, request_id);
  io::put_u32(out, static_cast<std::uint32_t>(reply.results.size()));
  for (const auto& diagnosis : reply.results) {
    io::put_u32(out, static_cast<std::uint32_t>(diagnosis.ranking.size()));
    for (const auto& match : diagnosis.ranking) {
      io::put_str(out, match.site);
      io::put_f64(out, match.distance);
      io::put_u64(out, match.segment_index);
      io::put_f64(out, match.t);
      io::put_f64(out, match.estimated_deviation);
    }
  }
  return out;
}

DecodedReply decode_reply(std::string_view payload) {
  ByteReader reader(payload, "reply frame payload");
  DecodedReply decoded;
  decoded.request_id = reader.get_u64();
  const std::uint32_t n_results = reader.get_u32();
  require_count(reader, n_results, 4, "results");
  decoded.reply.results.reserve(n_results);
  for (std::uint32_t r = 0; r < n_results; ++r) {
    core::Diagnosis diagnosis;
    const std::uint32_t n_matches = reader.get_u32();
    require_count(reader, n_matches, 4 + 8 * 4, "ranking entries");
    diagnosis.ranking.reserve(n_matches);
    for (std::uint32_t m = 0; m < n_matches; ++m) {
      core::TrajectoryMatch match;
      match.site = reader.get_str();
      match.distance = reader.get_f64();
      match.segment_index = static_cast<std::size_t>(reader.get_u64());
      match.t = reader.get_f64();
      match.estimated_deviation = reader.get_f64();
      diagnosis.ranking.push_back(std::move(match));
    }
    decoded.reply.results.push_back(std::move(diagnosis));
  }
  return decoded;
}

std::string encode_error(std::uint64_t request_id, std::string_view message) {
  std::string out;
  io::put_u64(out, request_id);
  io::put_str(out, message);
  return out;
}

DecodedError decode_error(std::string_view payload) {
  ByteReader reader(payload, "error frame payload");
  DecodedError decoded;
  decoded.request_id = reader.get_u64();
  decoded.message = reader.get_str();
  return decoded;
}

std::string encode_stats_request(StatsFormat format) {
  std::string out;
  io::put_u8(out, static_cast<std::uint8_t>(format));
  return out;
}

StatsFormat decode_stats_request(std::string_view payload) {
  if (payload.empty()) return StatsFormat::kJson;
  ByteReader reader(payload, "stats request payload");
  const std::uint8_t raw = reader.get_u8();
  switch (raw) {
    case static_cast<std::uint8_t>(StatsFormat::kJson):
      return StatsFormat::kJson;
    case static_cast<std::uint8_t>(StatsFormat::kPrometheus):
      return StatsFormat::kPrometheus;
    default:
      throw ParseError(str::format("unknown stats format %u", raw));
  }
}

std::string encode_stats_reply(std::string_view rendered) {
  return std::string(rendered);
}

std::string decode_stats_reply(std::string_view payload) {
  return std::string(payload);
}

}  // namespace ftdiag::net
