/// \file wire.hpp
/// \brief The ftdiag network wire protocol: length-prefixed little-endian
/// binary frames carrying the service layer's request/reply structs.
///
/// Every frame is a fixed 12-byte header followed by a payload:
///
/// ```
/// offset  field
/// 0       magic "FTDN" (4 bytes)
/// 4       u8   protocol version (= 1)
/// 5       u8   message type
/// 6       u16  flags (reserved, must be 0)
/// 8       u32  payload size in bytes (bounded by max_payload_bytes)
/// 12      payload
/// ```
///
/// All integers are little-endian; doubles travel as IEEE-754 u64 bit
/// patterns, so a diagnosis served over the wire is bit-identical to the
/// in-process result.  Requests carry a client-chosen u64 request id that
/// the matching reply (or error) echoes, which is what makes pipelining
/// safe.  See src/net/README.md for the full spec and error semantics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/diagnosis_service.hpp"
#include "util/error.hpp"

namespace ftdiag::net {

/// Transport-level failure: connection refused/reset, short writes, a
/// peer that vanished mid-frame.
class NetError : public Error {
public:
  explicit NetError(const std::string& what) : Error("net error: " + what) {}
};

/// A socket operation exceeded its configured bound.  Subclass of
/// NetError: a timed-out connection is in an unknown state and must be
/// treated exactly like a transport failure (drop + reconnect), but
/// callers that care can distinguish it.
class TimeoutError : public NetError {
public:
  explicit TimeoutError(const std::string& what) : NetError(what) {}
};

/// A failure the *server* reported through an error frame (unknown
/// circuit, malformed request, service shutdown...).  The connection is
/// still usable after one of these.
class RemoteError : public Error {
public:
  explicit RemoteError(const std::string& what)
      : Error("remote error: " + what) {}
};

/// The server shed the request with a polite kOverloaded frame before
/// admitting it.  Subclass of RemoteError (the connection survives), but
/// — unlike every other RemoteError — explicitly retryable: nothing was
/// computed, so a backed-off retry is safe by construction.
class OverloadedError : public RemoteError {
public:
  explicit OverloadedError(const std::string& what) : RemoteError(what) {}
};

inline constexpr char kFrameMagic[4] = {'F', 'T', 'D', 'N'};
/// Protocol version this build *speaks*.  v2 adds the diagnose frame's
/// deadline_ms + priority fields and the kOverloaded message type;
/// receivers still accept v1 frames (kMinWireVersion) with both fields
/// defaulted, so old clients keep working against new servers.
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::uint8_t kMinWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Default bound on a single frame's payload.  A header declaring more
/// than the receiver's bound is rejected *before* any allocation — an
/// adversarial length prefix cannot balloon memory.
inline constexpr std::uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/// Wire message types (stable byte values — part of protocol version 1;
/// kStats/kStatsReply and kOverloaded are additive extensions, old peers
/// answer them with an error frame as for any unknown type).
enum class MessageType : std::uint8_t {
  kDiagnose = 1,       ///< client -> server: DiagnosisRequest
  kDiagnoseReply = 2,  ///< server -> client: DiagnosisReply
  kError = 3,          ///< server -> client: request or connection error
  kPing = 4,           ///< client -> server: liveness probe
  kPong = 5,           ///< server -> client: liveness answer
  kStats = 6,          ///< client -> server: metrics snapshot request
  kStatsReply = 7,     ///< server -> client: rendered metrics snapshot
  kOverloaded = 8,     ///< server -> client: request shed, retry later
};

/// Rendering requested by a kStats frame.
enum class StatsFormat : std::uint8_t {
  kJson = 0,
  kPrometheus = 1,
};

[[nodiscard]] bool is_known_message_type(std::uint8_t raw);

/// A decoded frame header.  `type` is the raw byte: receivers decide how
/// to treat unknown types (the server answers with an error frame rather
/// than dropping the connection).
struct FrameHeader {
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint32_t payload_size = 0;
};

/// Frame a payload for the wire.
[[nodiscard]] std::string encode_frame(MessageType type,
                                       std::string_view payload);

/// Validate the fixed 12-byte header: magic, version, reserved flags and
/// the payload bound.  \throws ParseError on any violation (the stream is
/// unrecoverable past this point — close the connection).
[[nodiscard]] FrameHeader decode_frame_header(
    std::string_view header_bytes,
    std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

// ------------------------------------------------------- payload codecs
//
// Every decode is bounds-checked; malformed payloads throw ParseError
// without unbounded allocation (counts are validated against the payload
// size before any reserve).

/// kDiagnose: request id + (v2) deadline_ms + priority + circuit +
/// signature points + raw measurements.  Encoders always write the v2
/// layout; decoders take the frame header's version and read the v1
/// layout (no deadline/priority fields) when it says 1.
[[nodiscard]] std::string encode_diagnose(
    std::uint64_t request_id, const service::DiagnosisRequest& request);

struct DecodedDiagnose {
  std::uint64_t request_id = 0;
  service::DiagnosisRequest request;
};
[[nodiscard]] DecodedDiagnose decode_diagnose(
    std::string_view payload, std::uint8_t version = kWireVersion);

/// kDiagnoseReply: request id + one ranked diagnosis per observation.
[[nodiscard]] std::string encode_reply(std::uint64_t request_id,
                                       const service::DiagnosisReply& reply);

struct DecodedReply {
  std::uint64_t request_id = 0;
  service::DiagnosisReply reply;
};
[[nodiscard]] DecodedReply decode_reply(std::string_view payload);

/// kError: the id of the failed request (0 when the error is not tied to
/// a decodable request) + a human-readable message.
[[nodiscard]] std::string encode_error(std::uint64_t request_id,
                                       std::string_view message);

struct DecodedError {
  std::uint64_t request_id = 0;
  std::string message;
};
[[nodiscard]] DecodedError decode_error(std::string_view payload);

/// kStats: a single format byte.  An empty payload means kJson, so the
/// simplest possible prober (`printf 'FTDN...'`) still gets an answer.
[[nodiscard]] std::string encode_stats_request(StatsFormat format);
[[nodiscard]] StatsFormat decode_stats_request(std::string_view payload);

/// kStatsReply: the rendered exposition text, UTF-8, no framing beyond
/// the payload length.  The format is whatever the request asked for.
[[nodiscard]] std::string encode_stats_reply(std::string_view rendered);
[[nodiscard]] std::string decode_stats_reply(std::string_view payload);

}  // namespace ftdiag::net
