/// \file client.hpp
/// \brief Client side of the ftdiag wire protocol: blocking request/reply
/// plus a pipelined batch API that keeps a window of requests in flight.
///
/// A Client owns one connection and is *not* thread-safe — serving
/// harnesses open one client per load thread.  Request ids are assigned
/// internally (monotonic per connection); the server replies in FIFO
/// order, so the low-level send()/receive() pair composes into arbitrary
/// pipelining schemes while diagnose()/diagnose_pipelined() cover the
/// common cases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/diagnosis_service.hpp"

namespace ftdiag::net {

class Client {
public:
  /// Connect to a running net::Server.  \throws NetError on failure.
  Client(const std::string& host, std::uint16_t port,
         std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Fire one request and wait for its answer.
  /// \throws RemoteError when the server answered with an error frame,
  /// NetError when the connection failed, ParseError on a bad frame.
  [[nodiscard]] service::DiagnosisReply diagnose(
      const service::DiagnosisRequest& request);

  /// Run \p requests through the connection keeping up to \p window of
  /// them in flight (window 1 degenerates to sequential diagnose calls).
  /// Replies come back in request order; a per-request server error is
  /// rethrown as RemoteError after tagging which index failed.
  [[nodiscard]] std::vector<service::DiagnosisReply> diagnose_pipelined(
      const std::vector<service::DiagnosisRequest>& requests,
      std::size_t window = 16);

  /// Round-trip a ping frame (liveness / warm-up).
  void ping();

  /// Fetch the server's metrics snapshot rendered as JSON or Prometheus
  /// text.  Call with no diagnose requests in flight — the reply shares
  /// the connection's FIFO stream.  \throws RemoteError when the server
  /// answered with an error frame (e.g. an old peer without kStats).
  [[nodiscard]] std::string stats(StatsFormat format = StatsFormat::kJson);

  // Low-level pipelining primitives ------------------------------------

  /// Send one diagnose frame without waiting; returns its request id.
  std::uint64_t send(const service::DiagnosisRequest& request);

  /// Block for the next reply frame.  \throws RemoteError for an error
  /// frame (the connection survives), NetError / ParseError otherwise.
  [[nodiscard]] DecodedReply receive();

  void close();

private:
  /// Read one frame; validates the header against max_payload_bytes_.
  [[nodiscard]] FrameHeader read_frame(std::string& payload);

  Socket socket_;
  std::uint32_t max_payload_bytes_ = kDefaultMaxPayloadBytes;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace ftdiag::net
