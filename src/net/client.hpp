/// \file client.hpp
/// \brief Client side of the ftdiag wire protocol: blocking request/reply
/// plus a pipelined batch API that keeps a window of requests in flight.
///
/// A Client owns one connection and is *not* thread-safe — serving
/// harnesses open one client per load thread.  Request ids are assigned
/// internally (monotonic per connection); the server replies in FIFO
/// order, so the low-level send()/receive() pair composes into arbitrary
/// pipelining schemes while diagnose()/diagnose_pipelined() cover the
/// common cases.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/diagnosis_service.hpp"

namespace ftdiag::net {

/// When and how diagnose() retries.  Retries fire only on *transport*
/// errors (NetError, timeouts included — the connection is reopened) and
/// on an explicit kOverloaded shed (OverloadedError — the connection
/// survives, the request was never admitted).  Request-level RemoteErrors
/// never retry: the server computed an answer, it was "no".  Safe by
/// construction: a diagnose is a pure read, and a retried request is a
/// fresh request id, so a duplicate can at worst waste a solve.
struct RetryPolicy {
  /// Total tries per diagnose() call; 1 = no retry (the default).
  std::size_t max_attempts = 1;
  /// First backoff; doubles each retry up to max_backoff.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{2000};
  /// Uniform jitter: the backoff is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter], decorrelating a thundering herd.
  double jitter = 0.5;
  /// Retries available over the client's lifetime.  A hard cap that keeps
  /// a flapping server from turning every caller into a retry storm.
  std::size_t budget = 64;
};

struct ClientOptions {
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Bound on establishing the TCP connection (0 = kernel default).
  std::chrono::milliseconds connect_timeout{0};
  /// Per-call bound on waiting for a reply, and — when positive — also
  /// stamped on the wire as the request's deadline_ms so the server sheds
  /// work the client has stopped waiting for.  0 = wait forever.
  std::chrono::milliseconds request_timeout{0};
  /// Shedding class for diagnose frames (see DiagnosisRequest::priority).
  std::uint8_t priority = 0;
  RetryPolicy retry;
  /// Seed of the jitter stream (deterministic backoff in tests).
  std::uint64_t retry_seed = 0x5bd1e995u;
};

class Client {
public:
  /// Connect to a running net::Server.  \throws NetError on failure.
  Client(const std::string& host, std::uint16_t port,
         std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  /// Connect with resilience options (timeouts + retry policy).
  Client(const std::string& host, std::uint16_t port, ClientOptions options);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] const ClientOptions& options() const { return options_; }

  /// Retries consumed from RetryPolicy::budget so far.
  [[nodiscard]] std::size_t retries_used() const { return retries_used_; }

  /// Fire one request and wait for its answer, applying the configured
  /// RetryPolicy (transport failures reconnect; kOverloaded sheds back
  /// off on the live connection).
  /// \throws RemoteError when the server answered with an error frame,
  /// OverloadedError when every attempt was shed, NetError (TimeoutError
  /// included) when the connection failed past the last attempt,
  /// ParseError on a bad frame.
  [[nodiscard]] service::DiagnosisReply diagnose(
      const service::DiagnosisRequest& request);

  /// Run \p requests through the connection keeping up to \p window of
  /// them in flight (window 1 degenerates to sequential diagnose calls).
  /// Replies come back in request order; a per-request server error is
  /// rethrown as RemoteError after tagging which index failed.
  [[nodiscard]] std::vector<service::DiagnosisReply> diagnose_pipelined(
      const std::vector<service::DiagnosisRequest>& requests,
      std::size_t window = 16);

  /// Round-trip a ping frame (liveness / warm-up).
  void ping();

  /// Fetch the server's metrics snapshot rendered as JSON or Prometheus
  /// text.  Call with no diagnose requests in flight — the reply shares
  /// the connection's FIFO stream.  \throws RemoteError when the server
  /// answered with an error frame (e.g. an old peer without kStats).
  [[nodiscard]] std::string stats(StatsFormat format = StatsFormat::kJson);

  // Low-level pipelining primitives ------------------------------------

  /// Send one diagnose frame without waiting; returns its request id.
  std::uint64_t send(const service::DiagnosisRequest& request);

  /// Block for the next reply frame.  \throws RemoteError for an error
  /// frame (the connection survives), NetError / ParseError otherwise.
  [[nodiscard]] DecodedReply receive();

  void close();

private:
  /// Read one frame; validates the header against max_payload_bytes_.
  [[nodiscard]] FrameHeader read_frame(std::string& payload);

  [[nodiscard]] Socket open_socket() const;

  /// Sleep the jittered exponential backoff for retry number \p attempt
  /// (1-based) and account the budget.  \throws the pending error when
  /// the policy or budget is exhausted.
  void backoff_or_rethrow(std::size_t attempt);

  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  Socket socket_;
  std::uint32_t max_payload_bytes_ = kDefaultMaxPayloadBytes;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t jitter_state_ = 0;
  std::size_t retries_used_ = 0;
};

}  // namespace ftdiag::net
