#include "ga/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::ga {

namespace {

/// Chunk size for streaming independent genomes through the batch
/// objective: wide enough to saturate the evaluation fan-out, small enough
/// to keep peak memory flat on multi-million-point grids.
constexpr std::size_t kBatchChunk = 1024;

/// Append a history sample every `stride` evaluations so convergence plots
/// have comparable granularity across searchers.
class HistoryRecorder {
public:
  HistoryRecorder(OptimizerResult& result, std::size_t stride)
      : result_(result), stride_(stride == 0 ? 1 : stride) {}

  void observe(double fitness) {
    best_ = std::max(best_, fitness);
    sum_ += fitness;
    worst_ = std::min(worst_, fitness);
    ++since_last_;
    if (since_last_ >= stride_) flush();
  }

  void flush() {
    if (since_last_ == 0) return;
    GenerationStats stats;
    stats.generation = result_.history.size();
    stats.best = best_;
    stats.mean = sum_ / static_cast<double>(since_last_);
    stats.worst = worst_;
    stats.evaluations = result_.evaluations;
    result_.history.push_back(stats);
    sum_ = 0.0;
    worst_ = 1.0;
    since_last_ = 0;
    // best_ is cumulative on purpose: "best so far" curves.
  }

private:
  OptimizerResult& result_;
  std::size_t stride_;
  double best_ = 0.0;
  double worst_ = 1.0;
  double sum_ = 0.0;
  std::size_t since_last_ = 0;
};

}  // namespace

RandomSearch::RandomSearch(std::size_t budget) : budget_(budget) {
  if (budget_ == 0) throw ConfigError("random search budget must be > 0");
}

OptimizerResult RandomSearch::optimize(const BatchObjective& objective,
                                       std::size_t dimensions,
                                       const GeneBounds& bounds,
                                       Rng& rng) const {
  OptimizerResult result;
  HistoryRecorder recorder(result, budget_ / 16);
  std::size_t remaining = budget_;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, kBatchChunk);
    std::vector<std::vector<double>> genomes;
    genomes.reserve(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      Rng stream = rng.fork();
      std::vector<double> genes(dimensions);
      for (double& g : genes) g = stream.uniform(bounds.lo, bounds.hi);
      genomes.push_back(std::move(genes));
    }
    const std::vector<double> scores = objective.evaluate(genomes);
    for (std::size_t i = 0; i < chunk; ++i) {
      ++result.evaluations;
      recorder.observe(scores[i]);
      if (scores[i] > result.best.fitness || result.best.genes.empty()) {
        result.best = {std::move(genomes[i]), scores[i]};
      }
    }
    remaining -= chunk;
  }
  recorder.flush();
  return result;
}

GridSearch::GridSearch(std::size_t points_per_axis)
    : points_per_axis_(points_per_axis) {
  if (points_per_axis_ < 2) {
    throw ConfigError("grid search needs >= 2 points per axis");
  }
}

OptimizerResult GridSearch::optimize(const BatchObjective& objective,
                                     std::size_t dimensions,
                                     const GeneBounds& bounds,
                                     Rng& rng) const {
  (void)rng;  // deterministic
  OptimizerResult result;
  std::size_t total = 1;
  for (std::size_t d = 0; d < dimensions; ++d) {
    total *= points_per_axis_;
    if (total > 2'000'000) {
      throw ConfigError("grid search would exceed 2e6 evaluations");
    }
  }
  HistoryRecorder recorder(result, total / 16);

  const double step =
      bounds.span() / static_cast<double>(points_per_axis_ - 1);
  auto genome_at = [&](std::size_t flat) {
    std::vector<double> genes(dimensions);
    std::size_t rem = flat;
    for (std::size_t d = 0; d < dimensions; ++d) {
      genes[d] = bounds.lo +
                 step * static_cast<double>(rem % points_per_axis_);
      rem /= points_per_axis_;
    }
    return genes;
  };

  for (std::size_t base = 0; base < total; base += kBatchChunk) {
    const std::size_t chunk = std::min(kBatchChunk, total - base);
    std::vector<std::vector<double>> genomes;
    genomes.reserve(chunk);
    for (std::size_t i = 0; i < chunk; ++i) genomes.push_back(genome_at(base + i));
    const std::vector<double> scores = objective.evaluate(genomes);
    for (std::size_t i = 0; i < chunk; ++i) {
      ++result.evaluations;
      recorder.observe(scores[i]);
      if (scores[i] > result.best.fitness || result.best.genes.empty()) {
        result.best = {std::move(genomes[i]), scores[i]};
      }
    }
  }
  recorder.flush();
  return result;
}

HillClimb::HillClimb(std::size_t budget, std::size_t restarts,
                     double initial_step)
    : budget_(budget), restarts_(restarts), initial_step_(initial_step) {
  if (budget_ == 0 || restarts_ == 0) {
    throw ConfigError("hill climb needs positive budget and restarts");
  }
  if (!(initial_step_ > 0.0)) {
    throw ConfigError("hill climb step must be positive");
  }
}

OptimizerResult HillClimb::optimize(const BatchObjective& objective,
                                    std::size_t dimensions,
                                    const GeneBounds& bounds, Rng& rng) const {
  OptimizerResult result;
  HistoryRecorder recorder(result, budget_ / 16);
  const std::size_t per_restart = budget_ / restarts_;

  // One independent chain per restart, all advancing in lockstep: every
  // step evaluates one proposal per chain in a single batch.
  struct Chain {
    Rng stream;
    std::vector<double> current;
    double current_fitness = 0.0;
    double step = 0.0;
  };
  std::vector<Chain> chains;
  chains.reserve(restarts_);
  std::vector<std::vector<double>> proposals;
  proposals.reserve(restarts_);
  for (std::size_t r = 0; r < restarts_; ++r) {
    Chain chain{rng.fork(), std::vector<double>(dimensions), 0.0,
                initial_step_};
    for (double& g : chain.current) {
      g = chain.stream.uniform(bounds.lo, bounds.hi);
    }
    proposals.push_back(chain.current);
    chains.push_back(std::move(chain));
  }

  auto track_best = [&](const Chain& chain) {
    if (chain.current_fitness > result.best.fitness ||
        result.best.genes.empty()) {
      result.best = {chain.current, chain.current_fitness};
    }
  };

  const std::vector<double> initial_scores = objective.evaluate(proposals);
  for (std::size_t r = 0; r < restarts_; ++r) {
    chains[r].current_fitness = initial_scores[r];
    ++result.evaluations;
    recorder.observe(initial_scores[r]);
    track_best(chains[r]);
  }

  for (std::size_t i = 1; i < per_restart; ++i) {
    proposals.clear();
    for (auto& chain : chains) {
      std::vector<double> next = chain.current;
      for (double& g : next) {
        g = bounds.clamp(g + chain.stream.normal(0.0, chain.step));
      }
      proposals.push_back(std::move(next));
    }
    const std::vector<double> scores = objective.evaluate(proposals);
    for (std::size_t r = 0; r < restarts_; ++r) {
      ++result.evaluations;
      recorder.observe(scores[r]);
      Chain& chain = chains[r];
      if (scores[r] >= chain.current_fitness) {
        chain.current = std::move(proposals[r]);
        chain.current_fitness = scores[r];
        track_best(chain);
      } else {
        chain.step *= 0.98;  // slowly focus the search on rejection
      }
    }
  }
  recorder.flush();
  return result;
}

SimulatedAnnealing::SimulatedAnnealing(std::size_t budget,
                                       double initial_temperature,
                                       double cooling, double step)
    : budget_(budget),
      initial_temperature_(initial_temperature),
      cooling_(cooling),
      step_(step) {
  if (budget_ == 0) throw ConfigError("annealing budget must be > 0");
  if (!(initial_temperature_ > 0.0) || !(step_ > 0.0)) {
    throw ConfigError("annealing temperature and step must be positive");
  }
  if (!(cooling_ > 0.0) || !(cooling_ < 1.0)) {
    throw ConfigError("annealing cooling factor must lie in (0, 1)");
  }
}

OptimizerResult SimulatedAnnealing::optimize(const BatchObjective& objective,
                                             std::size_t dimensions,
                                             const GeneBounds& bounds,
                                             Rng& rng) const {
  OptimizerResult result;
  HistoryRecorder recorder(result, budget_ / 16);

  // Each proposal depends on the previous accept/reject, so the chain is
  // fundamentally serial: singleton batches.
  auto evaluate_one = [&](const std::vector<double>& genes) {
    const std::vector<double> scores = objective.evaluate({genes});
    ++result.evaluations;
    recorder.observe(scores.front());
    return scores.front();
  };

  std::vector<double> current(dimensions);
  for (double& g : current) g = rng.uniform(bounds.lo, bounds.hi);
  double current_fitness = evaluate_one(current);
  result.best = {current, current_fitness};

  double temperature = initial_temperature_;
  for (std::size_t i = 1; i < budget_; ++i) {
    std::vector<double> next = current;
    for (double& g : next) g = bounds.clamp(g + rng.normal(0.0, step_));
    const double next_fitness = evaluate_one(next);

    const double delta = next_fitness - current_fitness;
    if (delta >= 0.0 || rng.uniform() < std::exp(delta / temperature)) {
      current = std::move(next);
      current_fitness = next_fitness;
      if (current_fitness > result.best.fitness) {
        result.best = {current, current_fitness};
      }
    }
    temperature *= cooling_;
  }
  recorder.flush();
  return result;
}

}  // namespace ftdiag::ga
