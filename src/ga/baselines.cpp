#include "ga/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ftdiag::ga {

namespace {

/// Append a history sample every `stride` evaluations so convergence plots
/// have comparable granularity across searchers.
class HistoryRecorder {
public:
  HistoryRecorder(OptimizerResult& result, std::size_t stride)
      : result_(result), stride_(stride == 0 ? 1 : stride) {}

  void observe(double fitness) {
    best_ = std::max(best_, fitness);
    sum_ += fitness;
    worst_ = std::min(worst_, fitness);
    ++since_last_;
    if (since_last_ >= stride_) flush();
  }

  void flush() {
    if (since_last_ == 0) return;
    GenerationStats stats;
    stats.generation = result_.history.size();
    stats.best = best_;
    stats.mean = sum_ / static_cast<double>(since_last_);
    stats.worst = worst_;
    stats.evaluations = result_.evaluations;
    result_.history.push_back(stats);
    sum_ = 0.0;
    worst_ = 1.0;
    since_last_ = 0;
    // best_ is cumulative on purpose: "best so far" curves.
  }

private:
  OptimizerResult& result_;
  std::size_t stride_;
  double best_ = 0.0;
  double worst_ = 1.0;
  double sum_ = 0.0;
  std::size_t since_last_ = 0;
};

}  // namespace

RandomSearch::RandomSearch(std::size_t budget) : budget_(budget) {
  if (budget_ == 0) throw ConfigError("random search budget must be > 0");
}

OptimizerResult RandomSearch::optimize(const Objective& objective,
                                       std::size_t dimensions,
                                       const GeneBounds& bounds,
                                       Rng& rng) const {
  OptimizerResult result;
  HistoryRecorder recorder(result, budget_ / 16);
  for (std::size_t i = 0; i < budget_; ++i) {
    std::vector<double> genes(dimensions);
    for (double& g : genes) g = rng.uniform(bounds.lo, bounds.hi);
    const double fitness = objective(genes);
    ++result.evaluations;
    recorder.observe(fitness);
    if (fitness > result.best.fitness || result.best.genes.empty()) {
      result.best = {std::move(genes), fitness};
    }
  }
  recorder.flush();
  return result;
}

GridSearch::GridSearch(std::size_t points_per_axis)
    : points_per_axis_(points_per_axis) {
  if (points_per_axis_ < 2) {
    throw ConfigError("grid search needs >= 2 points per axis");
  }
}

OptimizerResult GridSearch::optimize(const Objective& objective,
                                     std::size_t dimensions,
                                     const GeneBounds& bounds,
                                     Rng& rng) const {
  (void)rng;  // deterministic
  OptimizerResult result;
  std::size_t total = 1;
  for (std::size_t d = 0; d < dimensions; ++d) {
    total *= points_per_axis_;
    if (total > 2'000'000) {
      throw ConfigError("grid search would exceed 2e6 evaluations");
    }
  }
  HistoryRecorder recorder(result, total / 16);

  std::vector<std::size_t> index(dimensions, 0);
  std::vector<double> genes(dimensions);
  const double step =
      bounds.span() / static_cast<double>(points_per_axis_ - 1);
  for (std::size_t flat = 0; flat < total; ++flat) {
    std::size_t rem = flat;
    for (std::size_t d = 0; d < dimensions; ++d) {
      index[d] = rem % points_per_axis_;
      rem /= points_per_axis_;
      genes[d] = bounds.lo + step * static_cast<double>(index[d]);
    }
    const double fitness = objective(genes);
    ++result.evaluations;
    recorder.observe(fitness);
    if (fitness > result.best.fitness || result.best.genes.empty()) {
      result.best = {genes, fitness};
    }
  }
  recorder.flush();
  return result;
}

HillClimb::HillClimb(std::size_t budget, std::size_t restarts,
                     double initial_step)
    : budget_(budget), restarts_(restarts), initial_step_(initial_step) {
  if (budget_ == 0 || restarts_ == 0) {
    throw ConfigError("hill climb needs positive budget and restarts");
  }
  if (!(initial_step_ > 0.0)) {
    throw ConfigError("hill climb step must be positive");
  }
}

OptimizerResult HillClimb::optimize(const Objective& objective,
                                    std::size_t dimensions,
                                    const GeneBounds& bounds, Rng& rng) const {
  OptimizerResult result;
  HistoryRecorder recorder(result, budget_ / 16);
  const std::size_t per_restart = budget_ / restarts_;

  for (std::size_t restart = 0; restart < restarts_; ++restart) {
    std::vector<double> current(dimensions);
    for (double& g : current) g = rng.uniform(bounds.lo, bounds.hi);
    double current_fitness = objective(current);
    ++result.evaluations;
    recorder.observe(current_fitness);
    if (current_fitness > result.best.fitness || result.best.genes.empty()) {
      result.best = {current, current_fitness};
    }

    double step = initial_step_;
    for (std::size_t i = 1; i < per_restart; ++i) {
      std::vector<double> next = current;
      for (double& g : next) g = bounds.clamp(g + rng.normal(0.0, step));
      const double next_fitness = objective(next);
      ++result.evaluations;
      recorder.observe(next_fitness);
      if (next_fitness >= current_fitness) {
        current = std::move(next);
        current_fitness = next_fitness;
        if (current_fitness > result.best.fitness) {
          result.best = {current, current_fitness};
        }
      } else {
        step *= 0.98;  // slowly focus the search on rejection
      }
    }
  }
  recorder.flush();
  return result;
}

SimulatedAnnealing::SimulatedAnnealing(std::size_t budget,
                                       double initial_temperature,
                                       double cooling, double step)
    : budget_(budget),
      initial_temperature_(initial_temperature),
      cooling_(cooling),
      step_(step) {
  if (budget_ == 0) throw ConfigError("annealing budget must be > 0");
  if (!(initial_temperature_ > 0.0) || !(step_ > 0.0)) {
    throw ConfigError("annealing temperature and step must be positive");
  }
  if (!(cooling_ > 0.0) || !(cooling_ < 1.0)) {
    throw ConfigError("annealing cooling factor must lie in (0, 1)");
  }
}

OptimizerResult SimulatedAnnealing::optimize(const Objective& objective,
                                             std::size_t dimensions,
                                             const GeneBounds& bounds,
                                             Rng& rng) const {
  OptimizerResult result;
  HistoryRecorder recorder(result, budget_ / 16);

  std::vector<double> current(dimensions);
  for (double& g : current) g = rng.uniform(bounds.lo, bounds.hi);
  double current_fitness = objective(current);
  ++result.evaluations;
  recorder.observe(current_fitness);
  result.best = {current, current_fitness};

  double temperature = initial_temperature_;
  for (std::size_t i = 1; i < budget_; ++i) {
    std::vector<double> next = current;
    for (double& g : next) g = bounds.clamp(g + rng.normal(0.0, step_));
    const double next_fitness = objective(next);
    ++result.evaluations;
    recorder.observe(next_fitness);

    const double delta = next_fitness - current_fitness;
    if (delta >= 0.0 || rng.uniform() < std::exp(delta / temperature)) {
      current = std::move(next);
      current_fitness = next_fitness;
      if (current_fitness > result.best.fitness) {
        result.best = {current, current_fitness};
      }
    }
    temperature *= cooling_;
  }
  recorder.flush();
  return result;
}

}  // namespace ftdiag::ga
