/// \file genetic_algorithm.hpp
/// \brief The paper's GA (§2.4): 128 individuals, 15 generations,
/// 50 % reproduction rate, 40 % mutation rate, roulette-wheel selection,
/// generation count as the stop criterion.
///
/// The GA is batch-first: each generation it constructs every offspring
/// genome up front (selection, crossover and mutation drawn from a
/// per-genome forked RNG stream, in slot order) and hands the whole slice
/// to the BatchObjective in one call.  Scores are consumed in slot order,
/// so the result is bit-identical however the objective parallelizes.
#pragma once

#include "ga/operators.hpp"
#include "ga/optimizer.hpp"

namespace ftdiag::ga {

struct GaConfig {
  std::size_t population_size = 128;
  std::size_t generations = 15;
  /// Fraction of the next generation produced by crossover; the remainder
  /// is filled with the best survivors (generational with elitist refill).
  double reproduction_rate = 0.5;
  /// Probability that an offspring undergoes mutation.
  double mutation_rate = 0.4;
  /// Gaussian mutation step in gene units (decades of frequency).
  double mutation_sigma = 0.25;
  SelectionKind selection = SelectionKind::kRoulette;
  CrossoverKind crossover = CrossoverKind::kArithmetic;
  MutationKind mutation = MutationKind::kGaussian;
  /// Individuals copied unchanged to the next generation.  Must leave room
  /// for at least one non-elite individual.
  std::size_t elite_count = 1;
  /// Optional early stop: quit once this fitness is reached (0 disables).
  double target_fitness = 0.0;
  /// Genomes injected into the initial population (e.g. from sensitivity
  /// screening); the remainder is random.  Extra seeds are dropped.
  std::vector<std::vector<double>> seed_genomes;

  /// The configuration published in the paper.
  [[nodiscard]] static GaConfig paper() { return GaConfig{}; }

  /// \throws ConfigError on out-of-range rates, a zero population, a
  /// non-positive mutation sigma, or elite_count >= population_size.
  void check() const;

  /// Like check(), and additionally rejects seed genomes whose dimension
  /// does not match the search.  \throws ConfigError.
  void check(std::size_t dimensions) const;
};

class GeneticAlgorithm final : public FrequencyOptimizer {
public:
  explicit GeneticAlgorithm(GaConfig config = GaConfig::paper());

  using FrequencyOptimizer::optimize;

  [[nodiscard]] OptimizerResult optimize(const BatchObjective& objective,
                                         std::size_t dimensions,
                                         const GeneBounds& bounds,
                                         Rng& rng) const override;

  [[nodiscard]] std::string name() const override { return "ga"; }

  [[nodiscard]] const GaConfig& config() const { return config_; }

private:
  GaConfig config_;
};

}  // namespace ftdiag::ga
