#include "ga/genetic_algorithm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ftdiag::ga {

void GaConfig::check() const {
  if (population_size == 0) throw ConfigError("GA population must be > 0");
  if (generations == 0) throw ConfigError("GA generations must be > 0");
  if (reproduction_rate < 0.0 || reproduction_rate > 1.0) {
    throw ConfigError("GA reproduction rate must lie in [0, 1]");
  }
  if (mutation_rate < 0.0 || mutation_rate > 1.0) {
    throw ConfigError("GA mutation rate must lie in [0, 1]");
  }
  if (!(mutation_sigma > 0.0)) {
    throw ConfigError("GA mutation sigma must be positive");
  }
  if (elite_count > population_size) {
    throw ConfigError("GA elite count exceeds the population");
  }
}

GeneticAlgorithm::GeneticAlgorithm(GaConfig config) : config_(config) {
  config_.check();
}

OptimizerResult GeneticAlgorithm::optimize(const Objective& objective,
                                           std::size_t dimensions,
                                           const GeneBounds& bounds,
                                           Rng& rng) const {
  FTDIAG_ASSERT(dimensions >= 1, "GA needs at least one gene");
  OptimizerResult result;

  auto evaluate = [&](std::vector<double> genes) {
    Candidate c;
    c.genes = std::move(genes);
    c.fitness = objective(c.genes);
    ++result.evaluations;
    return c;
  };

  // Initial population: injected seed genomes first, random fill after.
  std::vector<Candidate> population;
  population.reserve(config_.population_size);
  for (const auto& seed : config_.seed_genomes) {
    if (population.size() >= config_.population_size) break;
    FTDIAG_ASSERT(seed.size() == dimensions,
                  "seed genome dimension mismatch");
    std::vector<double> genes = seed;
    for (double& g : genes) g = bounds.clamp(g);
    population.push_back(evaluate(std::move(genes)));
  }
  while (population.size() < config_.population_size) {
    std::vector<double> genes(dimensions);
    for (double& g : genes) g = rng.uniform(bounds.lo, bounds.hi);
    population.push_back(evaluate(std::move(genes)));
  }

  auto by_fitness_desc = [](const Candidate& a, const Candidate& b) {
    return a.fitness > b.fitness;
  };

  auto record_generation = [&](std::size_t generation) {
    GenerationStats stats;
    stats.generation = generation;
    stats.evaluations = result.evaluations;
    stats.best = 0.0;
    stats.worst = 1.0;
    double sum = 0.0;
    for (const auto& c : population) {
      stats.best = std::max(stats.best, c.fitness);
      stats.worst = std::min(stats.worst, c.fitness);
      sum += c.fitness;
    }
    stats.mean = sum / static_cast<double>(population.size());
    result.history.push_back(stats);
  };

  std::sort(population.begin(), population.end(), by_fitness_desc);
  record_generation(0);

  const std::size_t offspring_count = static_cast<std::size_t>(
      config_.reproduction_rate * static_cast<double>(config_.population_size));

  for (std::size_t gen = 1; gen <= config_.generations; ++gen) {
    if (config_.target_fitness > 0.0 &&
        population.front().fitness >= config_.target_fitness) {
      break;
    }
    std::vector<Candidate> next;
    next.reserve(config_.population_size);

    // Elites survive unchanged (population is sorted best-first).
    for (std::size_t e = 0; e < config_.elite_count; ++e) {
      next.push_back(population[e]);
    }

    // Offspring by selection + crossover + mutation.
    while (next.size() < config_.elite_count + offspring_count &&
           next.size() < config_.population_size) {
      const std::size_t ia = select_parent(population, config_.selection, rng);
      const std::size_t ib = select_parent(population, config_.selection, rng);
      std::vector<double> genes = crossover(
          population[ia].genes, population[ib].genes, config_.crossover, rng);
      if (rng.bernoulli(config_.mutation_rate)) {
        // The paper quotes a whole-individual mutation rate; apply a
        // per-gene gaussian nudge once an individual is chosen to mutate.
        mutate(genes, config_.mutation, 1.0, config_.mutation_sigma, bounds,
               rng);
      }
      for (double& g : genes) g = bounds.clamp(g);
      next.push_back(evaluate(std::move(genes)));
    }

    // Refill with the best remaining survivors.
    for (std::size_t i = config_.elite_count;
         next.size() < config_.population_size && i < population.size(); ++i) {
      next.push_back(population[i]);
    }
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_fitness_desc);
    record_generation(gen);
  }

  result.best = population.front();
  return result;
}

}  // namespace ftdiag::ga
