#include "ga/genetic_algorithm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ftdiag::ga {

void GaConfig::check() const {
  if (population_size == 0) throw ConfigError("GA population must be > 0");
  if (generations == 0) throw ConfigError("GA generations must be > 0");
  if (reproduction_rate < 0.0 || reproduction_rate > 1.0) {
    throw ConfigError("GA reproduction rate must lie in [0, 1]");
  }
  if (mutation_rate < 0.0 || mutation_rate > 1.0) {
    throw ConfigError("GA mutation rate must lie in [0, 1]");
  }
  if (!(mutation_sigma > 0.0)) {
    throw ConfigError("GA mutation sigma must be positive");
  }
  if (elite_count >= population_size) {
    throw ConfigError(
        "GA elite count must leave room for at least one non-elite "
        "individual (elite_count < population_size)");
  }
}

void GaConfig::check(std::size_t dimensions) const {
  check();
  for (const auto& seed : seed_genomes) {
    if (seed.size() != dimensions) {
      throw ConfigError("GA seed genome has dimension " +
                        std::to_string(seed.size()) + ", search expects " +
                        std::to_string(dimensions));
    }
  }
}

GeneticAlgorithm::GeneticAlgorithm(GaConfig config) : config_(config) {
  config_.check();
}

OptimizerResult GeneticAlgorithm::optimize(const BatchObjective& objective,
                                           std::size_t dimensions,
                                           const GeneBounds& bounds,
                                           Rng& rng) const {
  FTDIAG_ASSERT(dimensions >= 1, "GA needs at least one gene");
  config_.check(dimensions);
  OptimizerResult result;

  // Score a slice of genomes in one objective call; candidates come back
  // in slot order, so the outcome cannot depend on evaluation scheduling.
  auto evaluate_batch = [&](std::vector<std::vector<double>> genomes) {
    const std::vector<double> scores = objective.evaluate(genomes);
    FTDIAG_ASSERT(scores.size() == genomes.size(),
                  "batch objective returned a mismatched score count");
    result.evaluations += genomes.size();
    std::vector<Candidate> out;
    out.reserve(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      out.push_back({std::move(genomes[i]), scores[i]});
    }
    return out;
  };

  // Initial population: injected seed genomes first, random fill after.
  // Each random genome draws from its own forked stream so its
  // construction is independent of every other slot.
  std::vector<std::vector<double>> genomes;
  genomes.reserve(config_.population_size);
  for (const auto& seed : config_.seed_genomes) {
    if (genomes.size() >= config_.population_size) break;
    std::vector<double> genes = seed;
    for (double& g : genes) g = bounds.clamp(g);
    genomes.push_back(std::move(genes));
  }
  while (genomes.size() < config_.population_size) {
    Rng stream = rng.fork();
    std::vector<double> genes(dimensions);
    for (double& g : genes) g = stream.uniform(bounds.lo, bounds.hi);
    genomes.push_back(std::move(genes));
  }
  std::vector<Candidate> population = evaluate_batch(std::move(genomes));

  auto by_fitness_desc = [](const Candidate& a, const Candidate& b) {
    return a.fitness > b.fitness;
  };

  auto record_generation = [&](std::size_t generation) {
    GenerationStats stats;
    stats.generation = generation;
    stats.evaluations = result.evaluations;
    stats.best = 0.0;
    stats.worst = 1.0;
    double sum = 0.0;
    for (const auto& c : population) {
      stats.best = std::max(stats.best, c.fitness);
      stats.worst = std::min(stats.worst, c.fitness);
      sum += c.fitness;
    }
    stats.mean = sum / static_cast<double>(population.size());
    result.history.push_back(stats);
  };

  std::sort(population.begin(), population.end(), by_fitness_desc);
  record_generation(0);

  const std::size_t offspring_target = static_cast<std::size_t>(
      config_.reproduction_rate * static_cast<double>(config_.population_size));

  for (std::size_t gen = 1; gen <= config_.generations; ++gen) {
    if (config_.target_fitness > 0.0 &&
        population.front().fitness >= config_.target_fitness) {
      break;
    }

    // Construct every offspring genome up front.  Selection, crossover and
    // mutation for slot k draw from a stream forked in slot order, so the
    // genomes are a pure function of (population, rng) — ready for one
    // batched evaluation.
    const std::size_t offspring_count =
        std::min(offspring_target, config_.population_size - config_.elite_count);
    const SelectionContext selection(population, config_.selection);
    std::vector<std::vector<double>> offspring;
    offspring.reserve(offspring_count);
    for (std::size_t k = 0; k < offspring_count; ++k) {
      Rng stream = rng.fork();
      const std::size_t ia = selection.select(stream);
      const std::size_t ib = selection.select(stream);
      std::vector<double> genes = crossover(
          population[ia].genes, population[ib].genes, config_.crossover, stream);
      if (stream.bernoulli(config_.mutation_rate)) {
        // The paper quotes a whole-individual mutation rate; apply a
        // per-gene gaussian nudge once an individual is chosen to mutate.
        mutate(genes, config_.mutation, 1.0, config_.mutation_sigma, bounds,
               stream);
      }
      for (double& g : genes) g = bounds.clamp(g);
      offspring.push_back(std::move(genes));
    }
    std::vector<Candidate> scored = evaluate_batch(std::move(offspring));

    // Elites survive unchanged (population is sorted best-first), then the
    // offspring, then the best remaining survivors refill.
    std::vector<Candidate> next;
    next.reserve(config_.population_size);
    for (std::size_t e = 0; e < config_.elite_count; ++e) {
      next.push_back(population[e]);
    }
    for (auto& c : scored) next.push_back(std::move(c));
    for (std::size_t i = config_.elite_count;
         next.size() < config_.population_size && i < population.size(); ++i) {
      next.push_back(population[i]);
    }
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_fitness_desc);
    record_generation(gen);
  }

  result.best = population.front();
  return result;
}

}  // namespace ftdiag::ga
