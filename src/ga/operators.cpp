#include "ga/operators.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace ftdiag::ga {

SelectionContext::SelectionContext(const std::vector<Candidate>& population,
                                   SelectionKind kind,
                                   std::size_t tournament_size)
    : population_(population), kind_(kind), tournament_size_(tournament_size) {
  FTDIAG_ASSERT(!population_.empty(), "selection from an empty population");
  switch (kind_) {
    case SelectionKind::kRoulette: {
      weights_.resize(population_.size());
      for (std::size_t i = 0; i < population_.size(); ++i) {
        weights_[i] = std::max(population_[i].fitness, 0.0);
      }
      break;
    }
    case SelectionKind::kTournament:
      FTDIAG_ASSERT(tournament_size_ >= 1, "tournament size must be >= 1");
      break;
    case SelectionKind::kRank: {
      // Weight = rank position (worst = 1 .. best = n).
      std::vector<std::size_t> order(population_.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return population_[a].fitness < population_[b].fitness;
      });
      weights_.resize(population_.size());
      for (std::size_t rank = 0; rank < order.size(); ++rank) {
        weights_[order[rank]] = static_cast<double>(rank + 1);
      }
      break;
    }
  }
}

std::size_t SelectionContext::select(Rng& rng) const {
  switch (kind_) {
    case SelectionKind::kRoulette:
    case SelectionKind::kRank:
      return rng.weighted_index(weights_);
    case SelectionKind::kTournament: {
      std::size_t best = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(population_.size()) - 1));
      for (std::size_t k = 1; k < tournament_size_; ++k) {
        const std::size_t challenger = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(population_.size()) - 1));
        if (population_[challenger].fitness > population_[best].fitness) {
          best = challenger;
        }
      }
      return best;
    }
  }
  FTDIAG_ASSERT(false, "unknown selection kind");
  return 0;
}

std::size_t select_parent(const std::vector<Candidate>& population,
                          SelectionKind kind, Rng& rng,
                          std::size_t tournament_size) {
  return SelectionContext(population, kind, tournament_size).select(rng);
}

std::vector<double> crossover(const std::vector<double>& a,
                              const std::vector<double>& b, CrossoverKind kind,
                              Rng& rng, double blend_alpha) {
  FTDIAG_ASSERT(a.size() == b.size(), "crossover parents of different length");
  std::vector<double> child(a.size());
  switch (kind) {
    case CrossoverKind::kArithmetic: {
      const double w = rng.uniform();
      for (std::size_t i = 0; i < a.size(); ++i) {
        child[i] = w * a[i] + (1.0 - w) * b[i];
      }
      break;
    }
    case CrossoverKind::kUniform: {
      for (std::size_t i = 0; i < a.size(); ++i) {
        child[i] = rng.bernoulli(0.5) ? a[i] : b[i];
      }
      break;
    }
    case CrossoverKind::kBlend: {
      // BLX-alpha: sample uniformly in the interval extended by alpha.
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double lo = std::min(a[i], b[i]);
        const double hi = std::max(a[i], b[i]);
        const double pad = blend_alpha * (hi - lo);
        child[i] = rng.uniform(lo - pad, hi + pad);
      }
      break;
    }
  }
  return child;
}

void mutate(std::vector<double>& genes, MutationKind kind, double per_gene_rate,
            double gaussian_sigma, const GeneBounds& bounds, Rng& rng) {
  for (double& gene : genes) {
    if (!rng.bernoulli(per_gene_rate)) continue;
    switch (kind) {
      case MutationKind::kGaussian:
        gene = bounds.clamp(gene + rng.normal(0.0, gaussian_sigma));
        break;
      case MutationKind::kUniformReset:
        gene = rng.uniform(bounds.lo, bounds.hi);
        break;
    }
  }
}

}  // namespace ftdiag::ga
