/// \file optimizer.hpp
/// \brief Common interface for the test-frequency optimizers: the paper's
/// GA and the baseline searchers it is benchmarked against.
///
/// Genomes are real vectors in log10-frequency space (one gene per test
/// frequency), bounded by the CUT's recommended band.  Working in decades
/// makes mutation steps scale-free across the audio band.
///
/// Since PR 3 the primary evaluation interface is *batched*: optimizers
/// hand a whole population slice to a BatchObjective per generation, which
/// lets the evaluation layer (core::EvaluationPipeline) fan the genomes out
/// over a thread pool and share cached signature samples between them.  The
/// old scalar Objective survives as a deprecated shim adapted on the fly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ftdiag::ga {

/// Objective: maps a genome (log10 frequencies) to a fitness (larger is
/// better, in (0, 1]).
/// \deprecated Prefer implementing BatchObjective; scalar objectives are
/// adapted (and evaluated serially) through ScalarBatchAdapter.
using Objective = std::function<double(const std::vector<double>&)>;

/// Batch evaluation interface: scores a whole slice of genomes at once.
/// Implementations must be pure (same genomes -> same scores, regardless of
/// batch composition or call history) and safe to call from the optimizer's
/// driving thread; internal parallelism is the implementation's business.
class BatchObjective {
public:
  virtual ~BatchObjective() = default;

  /// Score genomes[i] into slot i of the returned vector (same size as
  /// \p genomes).  Genome i must be evaluated independently of genome j.
  [[nodiscard]] virtual std::vector<double> evaluate(
      const std::vector<std::vector<double>>& genomes) const = 0;
};

/// Adapts a scalar Objective to the batch interface (serial loop).  This is
/// the shim behind the deprecated FrequencyOptimizer::optimize(Objective)
/// overload.
class ScalarBatchAdapter final : public BatchObjective {
public:
  explicit ScalarBatchAdapter(Objective objective)
      : objective_(std::move(objective)) {}

  [[nodiscard]] std::vector<double> evaluate(
      const std::vector<std::vector<double>>& genomes) const override {
    std::vector<double> scores;
    scores.reserve(genomes.size());
    for (const auto& genome : genomes) scores.push_back(objective_(genome));
    return scores;
  }

private:
  Objective objective_;
};

/// Inclusive per-gene bounds in log10(Hz).
struct GeneBounds {
  double lo = 1.0;  ///< 10 Hz
  double hi = 5.0;  ///< 100 kHz

  [[nodiscard]] double clamp(double gene) const;
  [[nodiscard]] double span() const { return hi - lo; }
};

/// One scored genome.
struct Candidate {
  std::vector<double> genes;
  double fitness = 0.0;

  [[nodiscard]] bool operator==(const Candidate&) const = default;
};

/// Per-generation (or per-batch) statistics for convergence plots.
struct GenerationStats {
  std::size_t generation = 0;
  double best = 0.0;
  double mean = 0.0;
  double worst = 0.0;
  std::size_t evaluations = 0;  ///< cumulative objective calls so far

  [[nodiscard]] bool operator==(const GenerationStats&) const = default;
};

struct OptimizerResult {
  Candidate best;
  std::size_t evaluations = 0;
  std::vector<GenerationStats> history;

  [[nodiscard]] bool operator==(const OptimizerResult&) const = default;
};

/// Interface all searchers implement.
///
/// Determinism contract: for a fixed seed the result depends only on the
/// objective's values, never on how the BatchObjective schedules its work —
/// optimizers draw all randomness on the calling thread (forking a
/// per-genome stream where construction is independent) and consume batch
/// scores in slot order.
class FrequencyOptimizer {
public:
  virtual ~FrequencyOptimizer() = default;

  /// Run the search.  \p dimensions is the number of test frequencies.
  [[nodiscard]] virtual OptimizerResult optimize(
      const BatchObjective& objective, std::size_t dimensions,
      const GeneBounds& bounds, Rng& rng) const = 0;

  /// Scalar entry point.  \deprecated Kept for existing callers; wraps the
  /// objective in a ScalarBatchAdapter (serial evaluation, no sharing).
  [[nodiscard]] OptimizerResult optimize(const Objective& objective,
                                         std::size_t dimensions,
                                         const GeneBounds& bounds,
                                         Rng& rng) const {
    return optimize(ScalarBatchAdapter(objective), dimensions, bounds, rng);
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ftdiag::ga
