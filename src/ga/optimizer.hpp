/// \file optimizer.hpp
/// \brief Common interface for the test-frequency optimizers: the paper's
/// GA and the baseline searchers it is benchmarked against.
///
/// Genomes are real vectors in log10-frequency space (one gene per test
/// frequency), bounded by the CUT's recommended band.  Working in decades
/// makes mutation steps scale-free across the audio band.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ftdiag::ga {

/// Objective: maps a genome (log10 frequencies) to a fitness (larger is
/// better, in (0, 1]).
using Objective = std::function<double(const std::vector<double>&)>;

/// Inclusive per-gene bounds in log10(Hz).
struct GeneBounds {
  double lo = 1.0;  ///< 10 Hz
  double hi = 5.0;  ///< 100 kHz

  [[nodiscard]] double clamp(double gene) const;
  [[nodiscard]] double span() const { return hi - lo; }
};

/// One scored genome.
struct Candidate {
  std::vector<double> genes;
  double fitness = 0.0;
};

/// Per-generation (or per-batch) statistics for convergence plots.
struct GenerationStats {
  std::size_t generation = 0;
  double best = 0.0;
  double mean = 0.0;
  double worst = 0.0;
  std::size_t evaluations = 0;  ///< cumulative objective calls so far
};

struct OptimizerResult {
  Candidate best;
  std::size_t evaluations = 0;
  std::vector<GenerationStats> history;
};

/// Interface all searchers implement.
class FrequencyOptimizer {
public:
  virtual ~FrequencyOptimizer() = default;

  /// Run the search.  \p dimensions is the number of test frequencies.
  [[nodiscard]] virtual OptimizerResult optimize(const Objective& objective,
                                                 std::size_t dimensions,
                                                 const GeneBounds& bounds,
                                                 Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ftdiag::ga
