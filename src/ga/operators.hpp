/// \file operators.hpp
/// \brief Genetic operators: selection, crossover, mutation.
///
/// The paper's GA uses roulette-wheel selection; tournament and rank
/// selection are provided for ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/optimizer.hpp"
#include "util/rng.hpp"

namespace ftdiag::ga {

enum class SelectionKind : std::uint8_t { kRoulette, kTournament, kRank };
enum class CrossoverKind : std::uint8_t { kArithmetic, kUniform, kBlend };
enum class MutationKind : std::uint8_t { kGaussian, kUniformReset };

/// Pick one parent index from a scored population.
[[nodiscard]] std::size_t select_parent(const std::vector<Candidate>& population,
                                        SelectionKind kind, Rng& rng,
                                        std::size_t tournament_size = 3);

/// Reusable selection state over one fixed (already scored) population:
/// the roulette/rank weight tables are computed once, so a whole
/// generation of offspring can draw parents without rebuilding them per
/// call.  Draw-for-draw identical to select_parent.  The population must
/// outlive the context and stay unmodified while it is used.
class SelectionContext {
public:
  SelectionContext(const std::vector<Candidate>& population,
                   SelectionKind kind, std::size_t tournament_size = 3);

  /// One parent index, consuming draws from \p rng exactly as
  /// select_parent would.
  [[nodiscard]] std::size_t select(Rng& rng) const;

private:
  const std::vector<Candidate>& population_;
  SelectionKind kind_;
  std::size_t tournament_size_;
  std::vector<double> weights_;  ///< roulette / rank tables (else empty)
};

/// Produce one child genome from two parents.
[[nodiscard]] std::vector<double> crossover(const std::vector<double>& a,
                                            const std::vector<double>& b,
                                            CrossoverKind kind, Rng& rng,
                                            double blend_alpha = 0.5);

/// Mutate a genome in place.  Each gene mutates independently with
/// probability \p per_gene_rate.
void mutate(std::vector<double>& genes, MutationKind kind, double per_gene_rate,
            double gaussian_sigma, const GeneBounds& bounds, Rng& rng);

}  // namespace ftdiag::ga
