#include "ga/optimizer.hpp"

#include <algorithm>

namespace ftdiag::ga {

double GeneBounds::clamp(double gene) const {
  return std::clamp(gene, lo, hi);
}

}  // namespace ftdiag::ga
