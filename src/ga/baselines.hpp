/// \file baselines.hpp
/// \brief Baseline frequency searchers the GA is compared against in the
/// Ext-A benchmark: random search, exhaustive grid, stochastic hill
/// climbing and simulated annealing — all under the same evaluation budget.
///
/// All baselines run on the batch interface: random and grid search stream
/// chunks of independent genomes through the BatchObjective; hill climbing
/// advances its restart chains in lockstep so every step evaluates one
/// genome per chain in a single batch.  Simulated annealing is inherently
/// sequential (each proposal depends on the previous accept/reject) and
/// evaluates singleton batches.
#pragma once

#include "ga/optimizer.hpp"

namespace ftdiag::ga {

/// Uniform random sampling of the gene box; keeps the best.  Genomes are
/// drawn from per-genome forked streams and evaluated in chunked batches.
class RandomSearch final : public FrequencyOptimizer {
public:
  explicit RandomSearch(std::size_t budget = 2048);
  using FrequencyOptimizer::optimize;
  [[nodiscard]] OptimizerResult optimize(const BatchObjective& objective,
                                         std::size_t dimensions,
                                         const GeneBounds& bounds,
                                         Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "random"; }

private:
  std::size_t budget_;
};

/// Full factorial grid over the gene box (points_per_axis^dimensions
/// evaluations).  For 2 frequencies this is the exhaustive "frequency
/// sweep" the paper calls unfeasible on silicon but which is a legitimate
/// software baseline.
class GridSearch final : public FrequencyOptimizer {
public:
  explicit GridSearch(std::size_t points_per_axis = 45);
  using FrequencyOptimizer::optimize;
  [[nodiscard]] OptimizerResult optimize(const BatchObjective& objective,
                                         std::size_t dimensions,
                                         const GeneBounds& bounds,
                                         Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "grid"; }

private:
  std::size_t points_per_axis_;
};

/// Random-restart stochastic hill climbing with a decaying step.  The
/// restart chains advance in lockstep (one batched evaluation per step,
/// one genome per chain), each chain on its own forked RNG stream.
class HillClimb final : public FrequencyOptimizer {
public:
  HillClimb(std::size_t budget = 2048, std::size_t restarts = 8,
            double initial_step = 0.5);
  using FrequencyOptimizer::optimize;
  [[nodiscard]] OptimizerResult optimize(const BatchObjective& objective,
                                         std::size_t dimensions,
                                         const GeneBounds& bounds,
                                         Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "hillclimb"; }

private:
  std::size_t budget_;
  std::size_t restarts_;
  double initial_step_;
};

/// Simulated annealing with geometric cooling.  Inherently sequential:
/// evaluates one genome per batch.
class SimulatedAnnealing final : public FrequencyOptimizer {
public:
  SimulatedAnnealing(std::size_t budget = 2048, double initial_temperature = 0.3,
                     double cooling = 0.995, double step = 0.3);
  using FrequencyOptimizer::optimize;
  [[nodiscard]] OptimizerResult optimize(const BatchObjective& objective,
                                         std::size_t dimensions,
                                         const GeneBounds& bounds,
                                         Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "anneal"; }

private:
  std::size_t budget_;
  double initial_temperature_;
  double cooling_;
  double step_;
};

}  // namespace ftdiag::ga
