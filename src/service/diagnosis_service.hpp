/// \file diagnosis_service.hpp
/// \brief Thread-safe diagnosis front end: bounded MPMC request queue,
/// same-circuit micro-batching, futures out.
///
/// One process holds one expensive artifact per circuit (the dictionary,
/// via Session / DictionaryStore); the service turns that into a serving
/// system: any number of producer threads submit() DiagnosisRequests, a
/// small dispatcher pool drains the queue, coalesces requests that hit the
/// same circuit into one Session::diagnose_batch call (bounded by
/// ServiceOptions::max_batch and max_linger), fans the batched points over
/// util::parallel, and completes each request's future.  Batched results
/// are bit-identical to serial Session::diagnose calls for any thread
/// count and any batching configuration — batching only changes *when*
/// work runs, never *what* is computed.
///
///   service::DiagnosisService service;            // options.service knobs
///   service.add_session("tow_thomas", session);   // vector installed
///   auto reply = service.submit({.circuit = "tow_thomas",
///                                .points = {observed}}).get();
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/diagnosis.hpp"
#include "mna/response.hpp"
#include "obs/metrics.hpp"
#include "service/options.hpp"
#include "session.hpp"

namespace ftdiag::service {

/// One unit of serving work: which circuit, and the observations to
/// diagnose — signature points and/or raw measured responses (sampled at
/// the session's active test vector).
struct DiagnosisRequest {
  /// Key of a session registered with add_session.  May be left "" when
  /// exactly one session is registered.
  std::string circuit;
  std::vector<core::Point> points;
  std::vector<mna::AcResponse> measured;

  /// Remaining time budget in milliseconds, stamped relative to *arrival*
  /// (the service starts the clock at submit()).  Enforced at queue
  /// admission and again pre-solve, so an expired request fails with
  /// DeadlineError instead of consuming a solve.  0 = no deadline.
  std::uint32_t deadline_ms = 0;

  /// Shedding class: when the queue crosses ServiceOptions::
  /// shed_high_water, priority-0 requests are rejected with OverloadError
  /// while higher priorities are still admitted.  Not a scheduling
  /// priority — admitted requests are served FIFO regardless.
  std::uint8_t priority = 0;

  [[nodiscard]] std::size_t observation_count() const {
    return points.size() + measured.size();
  }
};

/// One diagnosis per observation, points first then measured, in request
/// order.
struct DiagnosisReply {
  std::vector<core::Diagnosis> results;
};

/// Monotonic serving counters (see also DictionaryStore::stats for the
/// artifact tiers).  Latency percentiles are tracked with a
/// fixed-boundary `obs::Histogram` over 1-2-5 microsecond decades, so
/// p50/p95/p99 are interpolated estimates within the matching bucket
/// rather than power-of-two bucket upper bounds.  The same counters are
/// published process-wide as `ftdiag_service_*` through a registry
/// collector (see `src/obs/README.md`).
struct ServiceStats {
  std::size_t submitted = 0;        ///< requests accepted into the queue
  std::size_t completed = 0;        ///< requests answered successfully
  std::size_t failed = 0;           ///< requests completed with an error
  std::size_t batches = 0;          ///< micro-batches dispatched
  std::size_t batched_requests = 0; ///< requests across those batches
  std::size_t largest_batch = 0;    ///< most requests coalesced at once
  std::size_t queue_full_waits = 0; ///< submits that hit backpressure
  std::size_t shed = 0;             ///< submits rejected over the high-water mark
  std::size_t deadline_expired = 0; ///< requests failed on an expired deadline
  std::size_t queue_depth = 0;      ///< requests waiting right now (gauge)
  double mean_batch = 0.0;          ///< batched_requests / batches
  double p50_latency_us = 0.0;      ///< submit -> reply, median
  double p95_latency_us = 0.0;      ///< submit -> reply, tail
  double p99_latency_us = 0.0;      ///< submit -> reply, far tail
};

class DiagnosisService {
public:
  /// Starts the dispatcher pool.  \throws ConfigError on bad options.
  explicit DiagnosisService(ServiceOptions options = {});

  /// Drains the queue and joins the dispatchers (graceful shutdown()).
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Register (or replace) the session serving \p circuit.  Sessions are
  /// cheap shared handles; the service keeps its own copy.  The session
  /// should have an active test vector — requests against one without it
  /// fail with ConfigError through their future.
  void add_session(const std::string& circuit, Session session);

  /// Registered circuit keys (sorted).
  [[nodiscard]] std::vector<std::string> circuits() const;

  /// Enqueue a request; blocks while the queue is at capacity
  /// (backpressure).  The future carries the reply or the error.
  /// \throws ConfigError for an empty request or a shut-down service,
  /// OverloadError when shedding is configured and the queue is past the
  /// high-water mark (priority 0 only), DeadlineError when the request's
  /// deadline expires while waiting for queue space.
  [[nodiscard]] std::future<DiagnosisReply> submit(DiagnosisRequest request);

  /// Synchronous convenience: submit + wait.  Errors rethrow here.
  [[nodiscard]] DiagnosisReply diagnose(DiagnosisRequest request);

  [[nodiscard]] ServiceStats stats() const;

  /// Stop accepting requests, serve everything already queued, join the
  /// dispatcher pool.  Idempotent; called by the destructor.
  void shutdown();

private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    DiagnosisRequest request;
    std::promise<DiagnosisReply> promise;
    Clock::time_point enqueued;
    /// Absolute expiry computed from request.deadline_ms at submit;
    /// nullopt when the request carries no deadline.
    std::optional<Clock::time_point> deadline;
  };

  void worker_loop();
  void process_batch(std::vector<Pending> batch);
  [[nodiscard]] std::optional<Session> find_session(
      const std::string& circuit) const;
  /// Completes `pending`'s future.  When `latency_sink` is given the
  /// latency sample goes into that batch-local accumulator instead of
  /// straight into `latency_us_` (one atomic pass per batch, not per
  /// request).
  void finish(Pending& pending, DiagnosisReply reply,
              obs::HistogramBatch* latency_sink = nullptr);
  void fail(Pending& pending, std::exception_ptr error);

  ServiceOptions options_;
  std::size_t worker_count_ = 1;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, Session> sessions_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;  ///< consumers: work or shutdown
  std::condition_variable space_cv_;  ///< producers: capacity freed
  std::deque<Pending> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  /// submit -> reply latency in microseconds; lock-free observe, shared
  /// between the public percentile fields and the obs collector.
  obs::Histogram latency_us_{obs::Histogram::latency_us_bounds()};
  /// Publishes this instance's stats into Registry::global() snapshots;
  /// released on shutdown so a dead service stops exporting.
  obs::Registry::CollectorHandle collector_;
};

}  // namespace ftdiag::service
