#include "service/dictionary_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <future>
#include <map>
#include <sstream>
#include <system_error>
#include <utility>

#include "io/dictionary_io.hpp"
#include "io/durable_file.hpp"
#include "io/mapped_file.hpp"
#include "obs/trace.hpp"
#include "session.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ftdiag::service {

namespace {

/// Process-wide store metrics (`ftdiag_store_*`), accumulated across
/// every DictionaryStore in the process; the per-instance StoreStats
/// struct keeps its exact local counts.
struct StoreMetrics {
  obs::Counter& memory_hits;
  obs::Counter& disk_hits;
  obs::Counter& builds;
  obs::Counter& quarantine_tier;
  obs::Counter& shared_waits;
  obs::Counter& evictions;
  obs::Counter& persisted;
  obs::Counter& invalid_files;
  obs::Counter& quarantined;
  obs::Gauge& bytes_resident;

  static StoreMetrics& get() {
    static StoreMetrics* m = [] {
      obs::Registry& reg = obs::Registry::global();
      const char* help = "dictionary fetches answered by this tier";
      return new StoreMetrics{
          reg.counter("ftdiag_store_requests_total", {{"tier", "memory"}},
                      help),
          reg.counter("ftdiag_store_requests_total", {{"tier", "disk"}},
                      help),
          reg.counter("ftdiag_store_requests_total", {{"tier", "build"}},
                      help),
          reg.counter("ftdiag_store_requests_total", {{"tier", "quarantine"}},
                      help),
          reg.counter("ftdiag_store_shared_waits_total", {},
                      "fetches that joined another in-flight load"),
          reg.counter("ftdiag_store_evictions_total", {},
                      "dictionaries evicted by the per-shard LRU"),
          reg.counter("ftdiag_store_persisted_total", {},
                      "dictionaries written to the disk tier"),
          reg.counter("ftdiag_store_invalid_files_total", {},
                      "on-disk artifacts rejected during validation"),
          reg.counter("ftdiag_store_quarantined_total", {},
                      "rejected artifacts quarantined to *.corrupt"),
          reg.gauge("ftdiag_store_bytes_resident", {},
                    "approximate bytes of dictionaries held in memory"),
      };
    }();
    return *m;
  }
};

/// Response-plane payload estimate: (faults + golden) x frequencies
/// complex doubles.  Labels/metadata are noise next to the planes.
std::int64_t approx_bytes(const faults::FaultDictionary& dictionary) {
  return static_cast<std::int64_t>(
      (dictionary.fault_count() + 1) * dictionary.frequencies().size() * 2 *
      sizeof(double));
}

}  // namespace

void StoreOptions::check() const {
  if (capacity == 0) {
    throw ConfigError("dictionary store capacity must be >= 1");
  }
  if (shards == 0) {
    throw ConfigError("dictionary store needs at least one shard");
  }
}

using DictionaryPtr = std::shared_ptr<const faults::FaultDictionary>;

/// One concurrency shard: its own mutex, LRU-ordered entries, and the
/// in-flight loads other get()s of the same key join instead of repeating.
struct DictionaryStore::Shard {
  struct Entry {
    DictionaryPtr dictionary;
    std::uint64_t tick = 0;  ///< last-touch stamp; smallest tick evicts first
  };

  std::mutex mutex;
  std::map<std::string, Entry> entries;
  std::map<std::string, std::shared_future<DictionaryPtr>> inflight;
  std::uint64_t clock = 0;
};

DictionaryStore::DictionaryStore(StoreOptions options)
    : options_(std::move(options)) {
  options_.check();
  per_shard_capacity_ =
      std::max<std::size_t>(1, options_.capacity / options_.shards);
  shards_ = std::make_unique<Shard[]>(options_.shards);
  if (!options_.root_dir.empty()) {
    // Debris from a writer that crashed between tmp write and rename is
    // never a valid artifact — sweep it before serving from this root.
    const std::size_t removed = io::remove_stale_tmp_files(options_.root_dir);
    if (removed > 0) {
      log::warn("store: removed stale tmp artifacts",
                {{"dir", options_.root_dir}, {"count", removed}});
    }
  }
}

DictionaryStore::~DictionaryStore() = default;

DictionaryStore::Shard& DictionaryStore::shard_for(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % options_.shards];
}

std::string DictionaryStore::path_for(const std::string& key) const {
  if (options_.root_dir.empty()) return "";
  // Keys embed the CUT name, which for netlist sessions is a file *path*
  // ("boards/filter.cir#<hash>") — flatten anything that is not a safe
  // filename character so every artifact lands directly under root_dir.
  // The trailing hash keeps flattened names collision-free, and the exact
  // key stored in the header is verified on load regardless.
  std::string file;
  file.reserve(key.size());
  for (char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_' || c == '#';
    file.push_back(safe ? c : '_');
  }
  return options_.root_dir + "/" + file + ".fdx";
}

DictionaryPtr DictionaryStore::get(const circuits::CircuitUnderTest& cut,
                                   const faults::DeviationSpec& spec,
                                   const faults::SimOptions& sim) {
  const std::string key = dictionary_cache_key(cut, spec, sim);
  Shard& shard = shard_for(key);
  // Whole-fetch span: a memory hit records microseconds, a cold build
  // records the full simulate-and-persist time under the same stage.
  obs::Span fetch_span(obs::Stage::kDictFetch);

  std::promise<DictionaryPtr> promise;
  std::shared_future<DictionaryPtr> joined;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      it->second.tick = ++shard.clock;
      StoreMetrics::get().memory_hits.inc();
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.memory_hits;
      return it->second.dictionary;
    }
    auto inflight = shard.inflight.find(key);
    if (inflight != shard.inflight.end()) {
      joined = inflight->second;
      StoreMetrics::get().shared_waits.inc();
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.shared_waits;
    } else {
      shard.inflight.emplace(key, promise.get_future().share());
    }
  }
  if (joined.valid()) return joined.get();

  // We own the load/build for this key; every concurrent get() of the
  // same key is now parked on our future.
  try {
    DictionaryPtr dictionary = load_or_build(key, cut, spec, sim);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      insert(shard, key, dictionary);
      shard.inflight.erase(key);
    }
    promise.set_value(dictionary);
    return dictionary;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

DictionaryPtr DictionaryStore::load_or_build(
    const std::string& key, const circuits::CircuitUnderTest& cut,
    const faults::DeviationSpec& spec, const faults::SimOptions& sim) {
  const std::string path = path_for(key);

  // Tier 2: the on-disk artifact.  Anything wrong with the file — bad
  // magic, failed checksum, truncation, a key minted by a different
  // (circuit, universe, grid, sim) signature — demotes to a rebuild; a
  // stale or corrupt artifact must never poison diagnosis results.
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      // Attach via mmap: the image is validated in place (header
      // negotiation, block bounds, checksums) without a read copy, and
      // every process loading the same artifact shares its page cache.
      const auto view = io::DictionaryView::map(path);
      if (!view.header().key.empty() && view.header().key != key) {
        throw ParseError("dictionary file was written under another key");
      }
      auto dictionary = std::make_shared<const faults::FaultDictionary>(
          view.materialize());
      StoreMetrics::get().disk_hits.inc();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.disk_hits;
      }
      log::info("store: loaded dictionary",
                {{"path", path}, {"faults", dictionary->fault_count()}});
      return dictionary;
    } catch (const Error& e) {
      StoreMetrics::get().invalid_files.inc();
      StoreMetrics::get().quarantine_tier.inc();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.invalid_files;
      }
      // Quarantine rather than silently rebuild over the evidence: the
      // corrupt image is moved to `<name>.fdx.corrupt` (replacing any
      // older quarantine) so a crash / bitrot incident stays inspectable,
      // and the rebuild below publishes a fresh artifact under the
      // original name.
      const std::string quarantine = path + ".corrupt";
      std::error_code ec;
      std::filesystem::remove(quarantine, ec);
      std::filesystem::rename(path, quarantine, ec);
      if (!ec) {
        StoreMetrics::get().quarantined.inc();
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.quarantined;
      }
      log::warn("store: quarantined invalid artifact",
                {{"path", path},
                 {"quarantine", ec ? "failed: " + ec.message() : quarantine},
                 {"error", e.what()}});
    }
  }

  // Tier 3: simulate from scratch, then persist for the next process.
  auto dictionary = std::make_shared<const faults::FaultDictionary>(
      faults::FaultDictionary::build(
          cut, faults::FaultUniverse::over_testable(cut, spec), sim));
  StoreMetrics::get().builds.inc();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.builds;
  }
  if (!path.empty() && options_.persist) {
    try {
      std::filesystem::create_directories(options_.root_dir);
      // Durable write-then-rename (tmp + fsync file + rename + fsync
      // directory) so a crash can neither expose a partial file nor
      // publish un-synced pages under the final name; builds are
      // bit-identical, so a last-writer race is benign.
      std::ostringstream image;
      io::save_dictionary_binary(image, *dictionary, key);
      if (!image) throw Error("failed serializing dictionary for '" + path + "'");
      io::write_file_durable(path, image.view());
      StoreMetrics::get().persisted.inc();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.persisted;
      }
      log::info("store: persisted dictionary", {{"path", path}});
    } catch (const std::exception& e) {
      // Persistence is an optimization for the next process; failing to
      // write must not fail this request.
      log::warn("store: could not persist dictionary",
                {{"path", path}, {"error", e.what()}});
    }
  }
  return dictionary;
}

void DictionaryStore::insert(Shard& shard, const std::string& key,
                             DictionaryPtr dictionary) {
  StoreMetrics::get().bytes_resident.add(approx_bytes(*dictionary));
  shard.entries[key] = {std::move(dictionary), ++shard.clock};
  while (shard.entries.size() > per_shard_capacity_) {
    auto victim = shard.entries.begin();
    for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
      if (it->second.tick < victim->second.tick) victim = it;
    }
    StoreMetrics::get().bytes_resident.sub(
        approx_bytes(*victim->second.dictionary));
    shard.entries.erase(victim);
    StoreMetrics::get().evictions.inc();
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.evictions;
  }
}

std::size_t DictionaryStore::cached_count() const {
  std::size_t count = 0;
  for (std::size_t s = 0; s < options_.shards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    count += shards_[s].entries.size();
  }
  return count;
}

StoreStats DictionaryStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void DictionaryStore::clear() {
  for (std::size_t s = 0; s < options_.shards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    for (const auto& [key, entry] : shards_[s].entries) {
      StoreMetrics::get().bytes_resident.sub(approx_bytes(*entry.dictionary));
    }
    shards_[s].entries.clear();
  }
}

DictionaryStore& DictionaryStore::process_wide() {
  static DictionaryStore store([] {
    StoreOptions options;
    if (const char* dir = std::getenv("FTDIAG_STORE_DIR")) {
      options.root_dir = dir;
    }
    return options;
  }());
  return store;
}

}  // namespace ftdiag::service
