#include "service/diagnosis_service.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <utility>

#include "chaos/chaos.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/threads.hpp"

namespace ftdiag::service {

namespace {
/// Distinguishes collector output when several services coexist in one
/// process (tests, benches).
std::string next_instance_label() {
  static std::atomic<std::uint64_t> seq{0};
  return std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

std::size_t ServiceOptions::resolved_workers() const {
  if (workers != 0) return workers;
  return std::max<std::size_t>(1, util::resolve_threads(0) / 2);
}

void ServiceOptions::check() const {
  if (queue_capacity == 0) {
    throw ConfigError("service queue capacity must be >= 1");
  }
  if (max_batch == 0) {
    throw ConfigError("service max_batch must be >= 1");
  }
  if (max_linger.count() < 0) {
    throw ConfigError("service max_linger must be >= 0");
  }
  if (shed_high_water > queue_capacity) {
    throw ConfigError("service shed_high_water must be <= queue_capacity");
  }
}

DiagnosisService::DiagnosisService(ServiceOptions options)
    : options_(options) {
  options_.check();
  worker_count_ = options_.resolved_workers();
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  const obs::Labels labels{{"instance", next_instance_label()}};
  collector_ = obs::Registry::global().add_collector(
      [this, labels](obs::SampleSink& sink) {
        const ServiceStats s = stats();
        sink.counter("ftdiag_service_submitted_total",
                     static_cast<double>(s.submitted), labels,
                     "requests accepted into the service queue");
        sink.counter("ftdiag_service_completed_total",
                     static_cast<double>(s.completed), labels,
                     "requests answered successfully");
        sink.counter("ftdiag_service_failed_total",
                     static_cast<double>(s.failed), labels,
                     "requests completed with an error");
        sink.counter("ftdiag_service_batches_total",
                     static_cast<double>(s.batches), labels,
                     "micro-batches dispatched");
        sink.counter("ftdiag_service_batched_requests_total",
                     static_cast<double>(s.batched_requests), labels,
                     "requests coalesced across all batches");
        sink.counter("ftdiag_service_queue_full_waits_total",
                     static_cast<double>(s.queue_full_waits), labels,
                     "submits that hit queue backpressure");
        sink.counter("ftdiag_service_shed_total",
                     static_cast<double>(s.shed), labels,
                     "submits shed over the overload high-water mark");
        sink.counter("ftdiag_service_deadline_expired_total",
                     static_cast<double>(s.deadline_expired), labels,
                     "requests failed on an expired deadline");
        sink.gauge("ftdiag_service_queue_depth",
                   static_cast<double>(s.queue_depth), labels,
                   "requests waiting in the queue right now");
        sink.gauge("ftdiag_service_largest_batch",
                   static_cast<double>(s.largest_batch), labels,
                   "most requests coalesced into one batch");
        sink.gauge("ftdiag_service_mean_batch", s.mean_batch, labels,
                   "batched_requests / batches");
        sink.histogram("ftdiag_service_latency_us", latency_us_.snapshot(),
                       labels, "submit -> reply latency in microseconds");
      });
  log::debug("service: started",
             {{"workers", worker_count_},
              {"queue_capacity", options_.queue_capacity},
              {"max_batch", options_.max_batch}});
}

DiagnosisService::~DiagnosisService() { shutdown(); }

void DiagnosisService::add_session(const std::string& circuit,
                                   Session session) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.insert_or_assign(circuit, std::move(session));
}

std::vector<std::string> DiagnosisService::circuits() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  std::vector<std::string> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) keys.push_back(key);
  return keys;
}

std::future<DiagnosisReply> DiagnosisService::submit(
    DiagnosisRequest request) {
  if (request.observation_count() == 0) {
    throw ConfigError("diagnosis request has no observations");
  }
  const Clock::time_point arrival = Clock::now();
  std::optional<Clock::time_point> deadline;
  if (request.deadline_ms > 0) {
    deadline = arrival + std::chrono::milliseconds(request.deadline_ms);
  }
  std::future<DiagnosisReply> future;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stopping_) throw ConfigError("diagnosis service is shut down");
    // Admission control: past the high-water mark the lowest priority is
    // shed immediately — a cheap, explicit "retry later" beats making
    // every caller queue into a deadline it can no longer meet.
    if (options_.shed_high_water > 0 &&
        queue_.size() >= options_.shed_high_water && request.priority == 0) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.shed;
      }
      throw OverloadError(
          "service queue is over its high-water mark; retry later");
    }
    if (queue_.size() >= options_.queue_capacity) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.queue_full_waits;
      }
      const auto admitted = [&] {
        return stopping_ || queue_.size() < options_.queue_capacity;
      };
      // A deadlined request must not block for space past its budget —
      // failing at admission is the whole point of carrying the deadline.
      if (deadline) {
        if (!space_cv_.wait_until(lock, *deadline, admitted)) {
          {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.deadline_expired;
          }
          throw DeadlineError("request expired waiting for queue space");
        }
      } else {
        space_cv_.wait(lock, admitted);
      }
      if (stopping_) throw ConfigError("diagnosis service is shut down");
    }
    Pending pending{std::move(request), {}, arrival, deadline};
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.submitted;
  }
  return future;
}

DiagnosisReply DiagnosisService::diagnose(DiagnosisRequest request) {
  return submit(std::move(request)).get();
}

void DiagnosisService::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained

    std::vector<Pending> batch;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    const std::string circuit = batch.front().request.circuit;
    // Covers scoop + linger: how long assembling this batch delayed its
    // first request.
    obs::Span coalesce_span(obs::Stage::kBatchCoalesce);

    // Coalesce every queued request for the same circuit, newest included,
    // up to the batch bound.
    auto scoop = [&] {
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        if (it->request.circuit == circuit) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    };
    scoop();

    // Linger briefly for stragglers — but never while unrelated requests
    // sit in the queue (they belong to another batch, and holding them
    // hostage would trade their latency for our batch size).
    if (batch.size() < options_.max_batch && options_.max_linger.count() > 0) {
      const auto deadline = Clock::now() + options_.max_linger;
      while (batch.size() < options_.max_batch && !stopping_ &&
             queue_.empty()) {
        if (queue_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          scoop();
          break;
        }
        scoop();
      }
    }

    // If other circuits' requests remain queued, we may have absorbed the
    // notify that announced them — pass the baton to an idle worker
    // before spending time on our batch.
    const bool leftover = !queue_.empty();
    lock.unlock();
    coalesce_span.finish();
    space_cv_.notify_all();
    if (leftover) queue_cv_.notify_one();
    process_batch(std::move(batch));
  }
}

std::optional<Session> DiagnosisService::find_session(
    const std::string& circuit) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (circuit.empty() && sessions_.size() == 1) {
    return sessions_.begin()->second;
  }
  auto it = sessions_.find(circuit);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

void DiagnosisService::process_batch(std::vector<Pending> batch) {
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.largest_batch = std::max(stats_.largest_batch, batch.size());
  }
  if (obs::enabled()) {
    // One sample per batch, for the batch's *oldest* request (the one
    // popped first, so it waited longest).  This is the batch's
    // worst-case queue delay — the tail signal we care about — at a
    // fraction of the per-request recording cost.
    obs::Tracer::global().record(
        obs::Stage::kQueueWait,
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  batch.front().enqueued)
            .count());
  }

  const std::optional<Session> session =
      find_session(batch.front().request.circuit);
  if (!session) {
    auto error = std::make_exception_ptr(ConfigError(
        "no session registered for circuit '" +
        batch.front().request.circuit + "'"));
    for (auto& pending : batch) fail(pending, error);
    return;
  }

  // Flatten every observation into one point list; each request keeps its
  // [begin, begin+count) span so the batched results split back exactly.
  struct Span {
    std::size_t begin = 0;
    std::size_t count = 0;
    bool failed = false;
  };
  std::vector<core::Point> all_points;
  std::vector<Span> spans;
  spans.reserve(batch.size());
  const Clock::time_point pre_solve = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t begin = all_points.size();
    try {
      // Pre-solve deadline gate: a request that expired in the queue
      // fails here instead of consuming its share of the solve.
      if (batch[i].deadline && pre_solve > *batch[i].deadline) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++stats_.deadline_expired;
        }
        throw DeadlineError("request expired in the queue before its solve");
      }
      for (const auto& point : batch[i].request.points) {
        all_points.push_back(point);
      }
      for (const auto& measured : batch[i].request.measured) {
        all_points.push_back(session->observe(measured));
      }
      spans.push_back({begin, all_points.size() - begin, false});
    } catch (...) {
      all_points.resize(begin);  // drop the half-converted request
      fail(batch[i], std::current_exception());
      spans.push_back({begin, 0, true});
    }
  }
  if (all_points.empty()) return;  // every request failed conversion

  std::vector<core::Diagnosis> results;
  try {
    obs::Span solve_span(obs::Stage::kSolve);
    if (chaos::Injector::global().enabled()) {
      chaos::hit("engine.solve_delay");
      if (chaos::hit("engine.solve_fail")) {
        throw NumericError("injected solve failure (chaos)");
      }
    }
    results = session->diagnose_batch(all_points, options_.batch_threads);
  } catch (...) {
    auto error = std::current_exception();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!spans[i].failed) fail(batch[i], error);
    }
    return;
  }

  obs::Span score_span(obs::Stage::kScore);
  // Replies for a batch land back to back, so the per-request latency
  // observations are accumulated locally and merged into the histogram
  // with one atomic pass when the accumulator goes out of scope.
  obs::HistogramBatch latency_batch(latency_us_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (spans[i].failed) continue;
    DiagnosisReply reply;
    reply.results.assign(
        results.begin() + static_cast<std::ptrdiff_t>(spans[i].begin),
        results.begin() +
            static_cast<std::ptrdiff_t>(spans[i].begin + spans[i].count));
    finish(batch[i], std::move(reply), &latency_batch);
  }
}

void DiagnosisService::finish(Pending& pending, DiagnosisReply reply,
                              obs::HistogramBatch* latency_sink) {
  const double us = std::chrono::duration<double, std::micro>(
                        Clock::now() - pending.enqueued)
                        .count();
  if (latency_sink != nullptr) {
    latency_sink->observe(us > 0.0 ? us : 0.0);
  } else {
    latency_us_.observe(us > 0.0 ? us : 0.0);
  }
  {
    // Count before completing the future, so a caller that joined its
    // reply always observes the request in the counters.
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.completed;
  }
  pending.promise.set_value(std::move(reply));
}

void DiagnosisService::fail(Pending& pending, std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.failed;
  }
  pending.promise.set_exception(std::move(error));
}

ServiceStats DiagnosisService::stats() const {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    depth = queue_.size();
  }
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  snapshot.queue_depth = depth;
  if (snapshot.batches > 0) {
    snapshot.mean_batch = static_cast<double>(snapshot.batched_requests) /
                          static_cast<double>(snapshot.batches);
  }
  const obs::HistogramSnapshot latency = latency_us_.snapshot();
  if (latency.count > 0) {
    snapshot.p50_latency_us = latency.quantile(0.50);
    snapshot.p95_latency_us = latency.quantile(0.95);
    snapshot.p99_latency_us = latency.quantile(0.99);
  }
  return snapshot;
}

void DiagnosisService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Stop exporting once dead; the public stats() keeps working.
  collector_.release();
  const ServiceStats s = stats();
  log::debug("service: shutdown",
             {{"completed", s.completed},
              {"failed", s.failed},
              {"batches", s.batches},
              {"mean_batch", s.mean_batch}});
}

}  // namespace ftdiag::service
