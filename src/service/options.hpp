/// \file options.hpp
/// \brief Typed configuration of the ftdiag serving layer.
///
/// Kept separate from diagnosis_service.hpp so the Session facade can
/// embed ServiceOptions (SessionBuilder::service) without pulling the
/// whole service into every translation unit that includes session.hpp.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>

namespace ftdiag::service {

/// Configuration of the persistent dictionary store.
struct StoreOptions {
  /// Directory for `.fdx` artifacts; "" disables persistence (the store
  /// degrades to a pure in-memory LRU cache).
  std::string root_dir;

  /// Dictionaries kept in memory across all shards; older entries are
  /// evicted LRU (clients holding the shared_ptr keep theirs alive).
  std::size_t capacity = 16;

  /// Concurrency shards; keys hash to a shard so unrelated circuits never
  /// serialize on one mutex.  1 makes the whole-store LRU order exact.
  std::size_t shards = 4;

  /// Persist dictionaries the store builds (cold misses) to root_dir.
  bool persist = true;

  /// \throws ConfigError on a zero capacity or shard count.
  void check() const;
};

/// Configuration of the concurrent diagnosis front end.
struct ServiceOptions {
  /// Bounded MPMC request queue; submit() blocks while full (backpressure
  /// instead of unbounded memory growth).
  std::size_t queue_capacity = 1024;

  /// Dispatcher threads draining the queue; 0 means "auto" (half of
  /// util::resolve_threads(0) — which honors FTDIAG_THREADS — at least 1;
  /// the batch fan-out uses the rest).
  std::size_t workers = 0;

  /// The effective dispatcher count (resolves 0 as documented above).
  [[nodiscard]] std::size_t resolved_workers() const;

  /// Most requests coalesced into one diagnosis micro-batch.
  std::size_t max_batch = 64;

  /// How long a dispatcher lingers for more same-circuit requests before
  /// running a non-full batch.  0 disables coalescing waits entirely.
  std::chrono::microseconds max_linger{200};

  /// Worker threads for the point fan-out inside one batch
  /// (Session::diagnose_batch); 0 means "auto".  Never changes results.
  std::size_t batch_threads = 1;

  /// Overload shedding high-water mark: once the queue holds this many
  /// requests, further priority-0 submits are rejected with OverloadError
  /// instead of blocking (higher priorities still ride the normal
  /// queue-full backpressure up to queue_capacity).  0 disables shedding —
  /// every submit blocks, the pre-resilience behavior.
  std::size_t shed_high_water = 0;

  /// \throws ConfigError on a zero queue capacity or max_batch, or a
  /// shed_high_water above queue_capacity.
  void check() const;
};

}  // namespace ftdiag::service
