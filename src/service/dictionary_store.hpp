/// \file dictionary_store.hpp
/// \brief Persistent, process-wide fault-dictionary store.
///
/// The dictionary is the simulate-once artifact of the whole flow; the
/// store makes it survive the process.  A get() resolves in three tiers:
///
///   1. **memory** — a sharded LRU cache of shared_ptr<const FaultDictionary>
///      keyed exactly like the Session dictionary cache (circuit, fault
///      universe, grid, sim options — see ftdiag::dictionary_cache_key);
///   2. **disk** — a versioned binary `.fdx` file under root_dir named by
///      that key, loaded with contiguous block reads and checksum-verified
///      (corrupt or mismatched files are quarantined to `*.corrupt` and
///      rebuilt, never trusted);
///   3. **build** — faults::SimulationEngine simulates the universe, and
///      the result is persisted back to disk so the *next* process starts
///      at tier 2.
///
/// Concurrent get()s of the same key share one build/load via an in-flight
/// future, so a thundering herd pays for one simulation; different keys
/// hash to different shards and never serialize on each other.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "circuits/cut.hpp"
#include "faults/dictionary.hpp"
#include "faults/fault_universe.hpp"
#include "faults/simulation_engine.hpp"
#include "service/options.hpp"

namespace ftdiag::service {

/// Where get()s were served from (monotonic, process lifetime).
struct StoreStats {
  std::size_t memory_hits = 0;   ///< served from the LRU cache
  std::size_t disk_hits = 0;     ///< loaded from a `.fdx` file
  std::size_t builds = 0;        ///< cold misses simulated from scratch
  std::size_t shared_waits = 0;  ///< joined another get()'s load/build
  std::size_t evictions = 0;     ///< LRU entries dropped over capacity
  std::size_t persisted = 0;     ///< `.fdx` files written
  std::size_t invalid_files = 0; ///< corrupt/mismatched files rejected
  std::size_t quarantined = 0;   ///< rejected files moved to `*.corrupt`
};

class DictionaryStore {
public:
  /// \throws ConfigError on invalid options.
  explicit DictionaryStore(StoreOptions options = {});
  ~DictionaryStore();

  DictionaryStore(const DictionaryStore&) = delete;
  DictionaryStore& operator=(const DictionaryStore&) = delete;

  [[nodiscard]] const StoreOptions& options() const { return options_; }

  /// Fetch-or-load-or-build the dictionary for (cut, spec, sim).  The
  /// returned pointer is immutable and safe to retain past the store.
  /// \throws ConfigError / CircuitError / NumericError from the build.
  [[nodiscard]] std::shared_ptr<const faults::FaultDictionary> get(
      const circuits::CircuitUnderTest& cut,
      const faults::DeviationSpec& spec = faults::DeviationSpec::paper(),
      const faults::SimOptions& sim = {});

  /// The `.fdx` path a key maps to ("" when persistence is disabled).
  [[nodiscard]] std::string path_for(const std::string& key) const;

  /// Dictionaries currently resident in the memory tier.
  [[nodiscard]] std::size_t cached_count() const;

  [[nodiscard]] StoreStats stats() const;

  /// Drop every memory-tier entry (disk artifacts stay; outstanding
  /// shared_ptrs stay valid).
  void clear();

  /// The process-wide store, lazily constructed with default options the
  /// first time (root_dir from $FTDIAG_STORE_DIR when set).  One instance
  /// per process mirrors the Session dictionary cache's scope.
  [[nodiscard]] static DictionaryStore& process_wide();

private:
  struct Shard;

  [[nodiscard]] Shard& shard_for(const std::string& key) const;
  [[nodiscard]] std::shared_ptr<const faults::FaultDictionary> load_or_build(
      const std::string& key, const circuits::CircuitUnderTest& cut,
      const faults::DeviationSpec& spec, const faults::SimOptions& sim);
  void insert(Shard& shard, const std::string& key,
              std::shared_ptr<const faults::FaultDictionary> dictionary);

  StoreOptions options_;
  std::size_t per_shard_capacity_ = 1;
  std::unique_ptr<Shard[]> shards_;

  mutable std::mutex stats_mutex_;
  StoreStats stats_;
};

}  // namespace ftdiag::service
