/// ftdiag_cli — drive the fault-trajectory flow from the command line.
///
/// ```
/// ftdiag_cli <netlist.cir> --input V1 --output out --testable R1,R2,C1
///            [--fitness hybrid] [--report run.md]
/// ftdiag_cli builtin:nf_biquad --report run.md     # registry circuits
/// ```
#include <cstdio>
#include <fstream>
#include <iostream>

#include "ftdiag.hpp"
#include "io/dictionary_io.hpp"
#include "io/exporters.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace ftdiag;

Session open_session(const args::Parser& cli) {
  NetlistAccess access;
  access.input_source = cli.get("input");
  access.output_node = cli.get("output");
  if (const std::string testable = cli.get("testable");
      !testable.empty() && testable != "passives") {
    for (const auto& name : str::split(testable, ',')) {
      access.testable.push_back(std::string(str::trim(name)));
    }
  }
  access.band_low_hz = cli.get_double("band-low");
  access.band_high_hz = cli.get_double("band-high");
  access.grid_points = cli.get_size("grid-points");

  SearchOptions search;
  search.n_frequencies = cli.get_size("frequencies");
  search.fitness = core::parse_fitness_kind(cli.get("fitness"));
  search.seed = cli.get_size("seed");

  faults::DeviationSpec deviations;
  deviations.step_fraction = cli.get_double("step") / 100.0;
  deviations.min_fraction = -cli.get_double("range") / 100.0;
  deviations.max_fraction = cli.get_double("range") / 100.0;

  return SessionBuilder::from_source(cli.positional_value("netlist"), access)
      .search(search)
      .deviations(deviations)
      .build();
}

int run(const args::Parser& cli) {
  Session session = open_session(cli);
  std::printf("CUT '%s': %zu-fault dictionary built.\n",
              session.cut().name.c_str(), session.dictionary()->fault_count());

  const TestGenResult result = session.generate_tests();
  io::print_atpg_report(std::cout, result);

  if (const std::string path = cli.get("report"); !path.empty()) {
    io::RunReportOptions options;
    options.include_trajectories = cli.has("verbose");
    io::write_file(path, io::render_run_report(session, result, options));
    std::printf("\nmarkdown report written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get("export-trajectories");
      !path.empty()) {
    std::ofstream csv(path, std::ios::binary);
    if (!csv) throw Error("cannot open '" + path + "'");
    io::write_trajectories_csv(
        csv, session.evaluator().trajectories(result.best.vector));
    std::printf("trajectories written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get("save-dictionary"); !path.empty()) {
    io::save_dictionary_file(path, *session.dictionary());
    std::printf("fault dictionary written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  args::Parser cli("ftdiag_cli",
                   "fault-trajectory test generation and diagnosis "
                   "(Savioli et al., DATE'05)");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit")
      .option("input", "stimulus source name (netlist mode)", "V1")
      .option("output", "observed node (netlist mode)", "out")
      .option("testable",
              "comma-separated component names, or 'passives'", "passives")
      .option("band-low", "search band lower edge [Hz]", "10")
      .option("band-high", "search band upper edge [Hz]", "100k")
      .option("grid-points", "dictionary grid points", "240")
      .option("frequencies", "test-vector size", "2")
      .option("fitness", "paper | separation | hybrid", "paper")
      .option("step", "deviation step [%]", "10")
      .option("range", "deviation range [+/- %]", "40")
      .option("seed", "GA seed", "42")
      .option("report", "write a markdown run report to this path", "")
      .option("export-trajectories", "write trajectory CSV to this path", "")
      .option("save-dictionary",
              "write the full fault dictionary (lossless CSV) to this path",
              "")
      .flag("verbose", "include per-point trajectories in the report");

  try {
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.usage().c_str(), stdout);
      return 0;
    }
    return run(cli);
  } catch (const ftdiag::Error& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(), cli.usage().c_str());
    return 1;
  }
}
