/// ftdiag_cli — drive the fault-trajectory flow from the command line.
///
/// Three modes:
///
/// ```
/// # one-shot flow (the original mode): build dictionary, search, report
/// ftdiag_cli <netlist.cir> --input V1 --output out --testable R1,R2,C1
///            [--fitness hybrid] [--report run.md]
/// ftdiag_cli builtin:nf_biquad --report run.md     # registry circuits
///
/// # simulate once: build the dictionary and persist it (.fdx binary)
/// ftdiag_cli build-dict builtin:state_variable --store-dir ./dicts \
///            [--out dict.fdx] [--dict-format {csv,binary,auto}]
///
/// # diagnose many times: serve a directory of measurement CSVs
/// ftdiag_cli serve-batch builtin:state_variable --measurements ./boards \
///            --store-dir ./dicts [--workers 4] [--max-batch 32]
///
/// # diagnose over the network: TCP server + client load harness
/// ftdiag_cli serve builtin:state_variable,builtin:tow_thomas --port 4850 \
///            --store-dir ./dicts [--stats-interval 10] \
///            [--shed-high-water 256] [--chaos net.recv_delay:20ms]
/// ftdiag_cli load builtin:state_variable,builtin:tow_thomas --port 4850 \
///            [--threads 4] [--requests 2000] [--pipeline 8] \
///            [--timeout 5000] [--retries 3]
///
/// # scrape a running server's metrics registry (see src/obs/README.md)
/// ftdiag_cli stats 127.0.0.1:4850 [--format {json,prom}]
/// ```
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "ftdiag.hpp"
#include "io/dictionary_io.hpp"
#include "io/exporters.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace ftdiag;

// ------------------------------------------------------- shared options

void declare_access_options(args::Parser& cli) {
  cli.option("input", "stimulus source name (netlist mode)", "V1")
      .option("output", "observed node (netlist mode)", "out")
      .option("testable",
              "comma-separated component names, or 'passives'", "passives")
      .option("band-low", "search band lower edge [Hz]", "10")
      .option("band-high", "search band upper edge [Hz]", "100k")
      .option("grid-points", "dictionary grid points", "240")
      .option("step", "deviation step [%]", "10")
      .option("range", "deviation range [+/- %]", "40");
}

NetlistAccess access_from(const args::Parser& cli) {
  NetlistAccess access;
  access.input_source = cli.get("input");
  access.output_node = cli.get("output");
  if (const std::string testable = cli.get("testable");
      !testable.empty() && testable != "passives") {
    for (const auto& name : str::split(testable, ',')) {
      access.testable.push_back(std::string(str::trim(name)));
    }
  }
  access.band_low_hz = cli.get_double("band-low");
  access.band_high_hz = cli.get_double("band-high");
  access.grid_points = cli.get_size("grid-points");
  return access;
}

faults::DeviationSpec deviations_from(const args::Parser& cli) {
  faults::DeviationSpec deviations;
  deviations.step_fraction = cli.get_double("step") / 100.0;
  deviations.min_fraction = -cli.get_double("range") / 100.0;
  deviations.max_fraction = cli.get_double("range") / 100.0;
  return deviations;
}

std::shared_ptr<service::DictionaryStore> store_from(const args::Parser& cli) {
  const std::string dir = cli.get("store-dir");
  if (dir.empty()) return nullptr;
  service::StoreOptions options;
  options.root_dir = dir;
  return std::make_shared<service::DictionaryStore>(options);
}

void print_store_stats(const service::DictionaryStore& store) {
  const auto stats = store.stats();
  std::printf("store: %zu memory hits, %zu disk hits, %zu builds, "
              "%zu persisted, %zu invalid files ignored\n",
              stats.memory_hits, stats.disk_hits, stats.builds,
              stats.persisted, stats.invalid_files);
}

// ------------------------------------------------------------ build-dict

int run_build_dict(int argc, char** argv) {
  args::Parser cli("ftdiag_cli build-dict",
                   "build the fault dictionary once and persist it");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit");
  declare_access_options(cli);
  cli.option("out", "also write the dictionary to this path", "")
      .option("dict-format",
              "csv | binary | auto (auto: .fdx extension = binary)", "auto")
      .option("store-dir",
              "persistent dictionary store directory (.fdx per key)", "");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  auto store = store_from(cli);
  SessionBuilder builder =
      SessionBuilder::from_source(cli.positional_value("netlist"),
                                  access_from(cli))
          .deviations(deviations_from(cli));
  if (store) builder.store(store);
  Session session = builder.build();

  const auto dictionary = session.dictionary();
  const std::string key = dictionary_cache_key(
      session.cut(), session.options().deviations, session.options().sim);
  std::printf("CUT '%s': %zu-fault dictionary ready (key %s)\n",
              session.cut().name.c_str(), dictionary->fault_count(),
              key.c_str());
  if (store) {
    std::printf("store artifact: %s\n", store->path_for(key).c_str());
    print_store_stats(*store);
  }
  if (const std::string path = cli.get("out"); !path.empty()) {
    io::save_dictionary_file(path, *dictionary,
                             io::parse_dictionary_format(cli.get("dict-format")),
                             key);
    std::printf("dictionary written to %s\n", path.c_str());
  }
  return 0;
}

// ----------------------------------------------------------- serve-batch

int run_serve_batch(int argc, char** argv) {
  args::Parser cli("ftdiag_cli serve-batch",
                   "diagnose a directory of measurement CSVs concurrently");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit");
  declare_access_options(cli);
  cli.option("measurements",
             "directory of measurement CSVs (freq_hz,re,im per row)", "")
      .option("store-dir",
              "persistent dictionary store directory (.fdx per key)", "")
      .option("frequencies", "test-vector size", "2")
      .option("fitness", "paper | separation | hybrid", "paper")
      .option("seed", "GA seed", "42")
      .option("workers", "service dispatcher threads (0 = auto)", "0")
      .option("max-batch", "requests coalesced per micro-batch", "64")
      .option("linger-us", "micro-batch linger [us]", "200")
      .option("batch-threads", "diagnosis fan-out threads (0 = auto)", "0")
      .option("synthesize",
              "if the directory has no CSVs, emulate this many faulty-board "
              "measurements first", "0")
      .option("results", "write a results CSV to this path", "");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const std::string dir = cli.get("measurements");
  if (dir.empty()) throw ConfigError("serve-batch needs --measurements <dir>");

  SearchOptions search;
  search.n_frequencies = cli.get_size("frequencies");
  search.fitness = core::parse_fitness_kind(cli.get("fitness"));
  search.seed = cli.get_size("seed");

  ServiceOptions service_options;
  service_options.workers = cli.get_size("workers");
  service_options.max_batch = cli.get_size("max-batch");
  service_options.max_linger =
      std::chrono::microseconds(cli.get_size("linger-us"));
  service_options.batch_threads = cli.get_size("batch-threads");

  auto store = store_from(cli);
  SessionBuilder builder =
      SessionBuilder::from_source(cli.positional_value("netlist"),
                                  access_from(cli))
          .search(search)
          .deviations(deviations_from(cli))
          .service(service_options);
  if (store) builder.store(store);
  Session session = builder.build();

  const TestGenResult program = session.generate_tests();
  std::printf("CUT '%s': serving with %s (fitness %.4f, %zu faults)\n",
              session.cut().name.c_str(),
              program.best.vector.label().c_str(), program.best.fitness,
              program.dictionary_faults);

  // Collect the measurement files (sorted for reproducible output).
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  auto list_measurements = [&] {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".csv") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  };
  std::vector<std::string> files = list_measurements();

  if (files.empty()) {
    const std::size_t synthesize = cli.get_size("synthesize");
    if (synthesize == 0) {
      throw ConfigError("no .csv measurements in '" + dir +
                        "' (use --synthesize N to emulate faulty boards)");
    }
    // Emulate bench measurements of random dictionary faults on the full
    // measurement grid, so serve-batch has realistic inputs.
    const auto dictionary = session.dictionary();
    Rng rng(search.seed);
    for (std::size_t i = 0; i < synthesize; ++i) {
      const auto& entry = dictionary->entries()[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(
                              dictionary->fault_count() - 1)))];
      const mna::AcResponse measured = session.measure(entry.fault, i + 1);
      io::write_measurement_csv_file(
          str::format("%s/board_%04zu.csv", dir.c_str(), i), measured);
    }
    std::printf("synthesized %zu measurements into %s\n", synthesize,
                dir.c_str());
    files = list_measurements();
  }

  // Serve: one request per file, all in flight at once; the dispatchers
  // coalesce them into micro-batches.
  service::DiagnosisService service(session.options().service);
  service.add_session(session.cut().name, session);
  std::vector<std::future<service::DiagnosisReply>> replies;
  replies.reserve(files.size());
  for (const auto& file : files) {
    service::DiagnosisRequest request;
    request.circuit = session.cut().name;
    request.measured.push_back(io::load_measurement_csv_file(file));
    replies.push_back(service.submit(std::move(request)));
  }

  std::ostringstream results_csv;
  results_csv << "file,site,estimated_deviation,distance,confidence\n";
  std::printf("%-28s %-10s %10s %12s %10s\n", "file", "site", "est dev %",
              "distance", "confidence");
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string name = fs::path(files[i]).filename().string();
    try {
      const auto reply = replies[i].get();
      const core::TrajectoryMatch& best = reply.results.front().best();
      std::printf("%-28s %-10s %+10.1f %12.4e %10.2f\n", name.c_str(),
                  best.site.c_str(), best.estimated_deviation * 100.0,
                  best.distance, reply.results.front().confidence());
      results_csv << name << ',' << best.site << ','
                  << str::format("%.17g", best.estimated_deviation) << ','
                  << str::format("%.17g", best.distance) << ','
                  << str::format("%.17g", reply.results.front().confidence())
                  << '\n';
    } catch (const Error& e) {
      std::printf("%-28s FAILED: %s\n", name.c_str(), e.what());
      results_csv << name << ",ERROR,,,\n";
    }
  }

  const auto stats = service.stats();
  std::printf("\nserved %zu requests in %zu batches (largest %zu, "
              "mean %.2f), queue depth %zu, p50 %.0f us, p95 %.0f us, "
              "p99 %.0f us\n",
              stats.completed, stats.batches, stats.largest_batch,
              stats.mean_batch, stats.queue_depth, stats.p50_latency_us,
              stats.p95_latency_us, stats.p99_latency_us);
  log::info("serve-batch: done",
            {{"completed", stats.completed},
             {"failed", stats.failed},
             {"batches", stats.batches},
             {"mean_batch", stats.mean_batch},
             {"p99_us", stats.p99_latency_us}});
  if (store) print_store_stats(*store);

  if (const std::string path = cli.get("results"); !path.empty()) {
    io::write_file(path, results_csv.str());
    std::printf("results written to %s\n", path.c_str());
  }
  return 0;
}

// ------------------------------------------------------------ serve/load

std::atomic<bool> g_stop{false};
std::atomic<bool> g_drain{false};
void handle_stop_signal(int) { g_stop.store(true); }
void handle_drain_signal(int) { g_drain.store(true); }

void declare_search_options(args::Parser& cli) {
  cli.option("frequencies", "test-vector size", "2")
      .option("fitness", "paper | separation | hybrid", "paper")
      .option("seed", "GA seed", "42");
}

SearchOptions search_from(const args::Parser& cli) {
  SearchOptions search;
  search.n_frequencies = cli.get_size("frequencies");
  search.fitness = core::parse_fitness_kind(cli.get("fitness"));
  search.seed = cli.get_size("seed");
  return search;
}

/// Build one ready-to-serve session (dictionary + installed test vector)
/// per comma-separated source in the positional.  serve and load run the
/// same deterministic setup, which is what makes the load harness's
/// signature points valid traffic for the server's sessions.
std::vector<Session> build_serving_sessions(const args::Parser& cli) {
  auto store = store_from(cli);
  std::vector<Session> sessions;
  for (const auto& raw : str::split(cli.positional_value("netlists"), ',')) {
    const std::string source(str::trim(raw));
    if (source.empty()) continue;
    SessionBuilder builder =
        SessionBuilder::from_source(source, access_from(cli))
            .search(search_from(cli))
            .deviations(deviations_from(cli));
    if (store) builder.store(store);
    Session session = builder.build();
    const TestGenResult program = session.generate_tests();
    std::printf("CUT '%s': %s ready (%zu faults)\n",
                session.cut().name.c_str(),
                program.best.vector.label().c_str(),
                program.dictionary_faults);
    sessions.push_back(std::move(session));
  }
  if (sessions.empty()) throw ConfigError("no circuits to serve");
  return sessions;
}

/// Periodic serving dump: one structured log line per subsystem so the
/// stream stays grep-able (`key=value` fields, FTDIAG_LOG-controlled)
/// while `ftdiag_cli stats` serves the full registry over the wire.
void log_serving_stats(const net::Server& server,
                       const service::DiagnosisService& service) {
  const auto net_stats = server.stats();
  const auto svc = service.stats();
  log::info("net: serving",
            {{"open", net_stats.connections_open},
             {"accepted", net_stats.connections_accepted},
             {"rejected", net_stats.connections_rejected},
             {"requests", net_stats.requests_received},
             {"replies", net_stats.replies_sent},
             {"error_frames", net_stats.error_frames_sent},
             {"protocol_errors", net_stats.protocol_errors}});
  log::info("service: serving",
            {{"queue_depth", svc.queue_depth},
             {"mean_batch", svc.mean_batch},
             {"p50_us", svc.p50_latency_us},
             {"p95_us", svc.p95_latency_us},
             {"p99_us", svc.p99_latency_us}});
}

int run_serve(int argc, char** argv) {
  args::Parser cli("ftdiag_cli serve",
                   "serve diagnoses over TCP until SIGINT/SIGTERM");
  cli.positional("netlists",
                 "comma-separated netlist files or builtin:<name> entries");
  declare_access_options(cli);
  declare_search_options(cli);
  cli.option("host", "bind address (numeric IPv4)", "127.0.0.1")
      .option("port", "TCP port (0 = pick an ephemeral port)", "4850")
      .option("store-dir",
              "persistent dictionary store directory (.fdx per key)", "")
      .option("workers", "service dispatcher threads (0 = auto)", "0")
      .option("max-batch", "requests coalesced per micro-batch", "64")
      .option("linger-us", "micro-batch linger [us]", "200")
      .option("batch-threads", "diagnosis fan-out threads (0 = auto)", "0")
      .option("max-connections", "concurrent client connections", "64")
      .option("max-inflight", "pipelined requests per connection", "128")
      .option("shed-high-water",
              "queue depth past which priority-0 requests are shed with a "
              "polite kOverloaded frame (0 = never shed)", "0")
      .option("chaos",
              "fault-injection spec, e.g. net.recv_delay:50ms,io.torn_write:"
              "0.1 (same syntax as FTDIAG_CHAOS)", "")
      .option("stats-interval",
              "seconds between stats lines (0 = only on shutdown)", "10");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (!net::sockets_supported()) {
    throw ConfigError("this build has no socket support");
  }
  // Serving is the one mode where lifecycle messages are the primary UI:
  // default to info unless the operator chose a level via FTDIAG_LOG.
  if (std::getenv("FTDIAG_LOG") == nullptr) {
    log::set_level(log::Level::kInfo);
  }

  if (const std::string spec = cli.get("chaos"); !spec.empty()) {
    chaos::Injector::global().configure(spec);
    log::warn("chaos: fault injection armed", {{"spec", spec}});
  }

  ServiceOptions service_options;
  service_options.workers = cli.get_size("workers");
  service_options.max_batch = cli.get_size("max-batch");
  service_options.max_linger =
      std::chrono::microseconds(cli.get_size("linger-us"));
  service_options.batch_threads = cli.get_size("batch-threads");
  service_options.shed_high_water = cli.get_size("shed-high-water");

  std::vector<Session> sessions = build_serving_sessions(cli);
  service::DiagnosisService service(service_options);
  for (auto& session : sessions) {
    service.add_session(session.cut().name, session);
  }

  net::ServerOptions server_options;
  server_options.host = cli.get("host");
  server_options.port = static_cast<std::uint16_t>(cli.get_size("port"));
  server_options.max_connections = cli.get_size("max-connections");
  server_options.max_inflight = cli.get_size("max-inflight");
  net::Server server(service, server_options);
  std::printf("listening on %s:%u (%zu circuits), Ctrl-C to stop\n",
              server_options.host.c_str(), server.port(), sessions.size());

  // SIGINT stops hard; SIGTERM drains — in-flight replies are flushed
  // before the process exits, which is what lets an orchestrator roll the
  // server without failing the requests it already accepted.  A peer that
  // vanishes mid-write must surface as an EPIPE errno on that socket, not
  // kill the process.
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_drain_signal);
  const std::size_t interval = cli.get_size("stats-interval");
  auto last_print = std::chrono::steady_clock::now();
  while (!g_stop.load() && !g_drain.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (interval > 0 && std::chrono::steady_clock::now() - last_print >=
                            std::chrono::seconds(interval)) {
      log_serving_stats(server, service);
      last_print = std::chrono::steady_clock::now();
    }
  }

  if (g_drain.load()) {
    log::info("net: draining (SIGTERM)");
    server.drain();
  } else {
    log::info("net: shutting down");
    server.stop();
  }
  log_serving_stats(server, service);
  return 0;
}

int run_load(int argc, char** argv) {
  args::Parser cli("ftdiag_cli load",
                   "drive a running `serve` instance with mixed-circuit "
                   "traffic and report latency percentiles");
  cli.positional("netlists",
                 "the circuits the server was started with (traffic is "
                 "synthesized from the same deterministic sessions)");
  declare_access_options(cli);
  declare_search_options(cli);
  cli.option("host", "server address (numeric IPv4)", "127.0.0.1")
      .option("port", "server TCP port", "4850")
      .option("store-dir",
              "dictionary store directory (reuse the server's artifacts)",
              "")
      .option("threads", "client connections driven in parallel", "4")
      .option("requests", "total diagnose requests across all threads",
              "2000")
      .option("pipeline", "requests kept in flight per connection", "8")
      .option("points", "observations per request", "1")
      .option("samples", "faulty boards synthesized per circuit", "32")
      .option("timeout",
              "per-request deadline [ms], stamped on the wire and enforced "
              "on the socket (0 = wait forever)", "0")
      .option("retries",
              "retries per request on transport errors / kOverloaded sheds "
              "(forces pipeline 1)", "0")
      .option("priority", "shedding class stamped on each request", "0");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (!net::sockets_supported()) {
    throw ConfigError("this build has no socket support");
  }
  const std::string host = cli.get("host");
  const std::uint16_t port =
      static_cast<std::uint16_t>(cli.get_size("port"));
  const std::size_t n_threads = std::max<std::size_t>(1, cli.get_size("threads"));
  const std::size_t n_requests = cli.get_size("requests");
  const std::size_t points_per_request =
      std::max<std::size_t>(1, cli.get_size("points"));

  net::ClientOptions client_options;
  client_options.request_timeout =
      std::chrono::milliseconds(cli.get_size("timeout"));
  client_options.connect_timeout = client_options.request_timeout;
  client_options.priority =
      static_cast<std::uint8_t>(cli.get_size("priority"));
  client_options.retry.max_attempts = cli.get_size("retries") + 1;
  // Retries need the request/reply pairing of diagnose(); pipelined
  // traffic cannot re-associate a failed frame with its request.
  const bool use_retry_path = client_options.retry.max_attempts > 1;
  const std::size_t window =
      use_retry_path ? 1
                     : std::max<std::size_t>(1, cli.get_size("pipeline"));

  // Synthesize an observation pool per circuit: measure faulty boards with
  // deterministic seeds and map them to signature points.
  struct Traffic {
    std::string circuit;
    std::vector<core::Point> pool;
  };
  std::vector<Traffic> traffic;
  for (Session& session : build_serving_sessions(cli)) {
    Traffic t;
    t.circuit = session.cut().name;
    const auto dictionary = session.dictionary();
    const std::size_t n_samples =
        std::min(std::max<std::size_t>(1, cli.get_size("samples")),
                 dictionary->fault_count());
    for (std::size_t i = 0; i < n_samples; ++i) {
      const auto& entry =
          dictionary->entries()[i * dictionary->fault_count() / n_samples];
      t.pool.push_back(
          session.observe(session.measure(entry.fault, 1000 + i)));
    }
    traffic.push_back(std::move(t));
  }

  // Each thread owns one connection and walks the circuits round-robin
  // (staggered by thread id so concurrent requests mix circuits), keeping
  // `window` requests pipelined and timing submit -> reply per request.
  using Clock = std::chrono::steady_clock;
  struct ThreadResult {
    std::vector<double> latencies_us;
    std::size_t failures = 0;
    std::size_t retries = 0;
  };
  std::vector<ThreadResult> results(n_threads);
  const auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t tid = 0; tid < n_threads; ++tid) {
      threads.emplace_back([&, tid] {
        ThreadResult& result = results[tid];
        const std::size_t quota =
            n_requests / n_threads + (tid < n_requests % n_threads ? 1 : 0);
        result.latencies_us.reserve(quota);
        try {
          net::Client client(host, port, client_options);
          auto make_request = [&](std::size_t index) {
            const Traffic& t = traffic[(tid + index) % traffic.size()];
            service::DiagnosisRequest request;
            request.circuit = t.circuit;
            for (std::size_t p = 0; p < points_per_request; ++p) {
              request.points.push_back(
                  t.pool[(index + p) % t.pool.size()]);
            }
            return request;
          };
          if (use_retry_path) {
            // One request at a time through the resilient path: timeouts
            // reconnect, kOverloaded sheds back off, per RetryPolicy.
            for (std::size_t i = 0; i < quota; ++i) {
              const auto sent_at = Clock::now();
              try {
                (void)client.diagnose(make_request(i));
              } catch (const net::RemoteError&) {
                ++result.failures;
              } catch (const net::NetError&) {
                ++result.failures;
              }
              result.latencies_us.push_back(
                  std::chrono::duration<double, std::micro>(Clock::now() -
                                                            sent_at)
                      .count());
            }
            result.retries = client.retries_used();
            return;
          }
          std::deque<Clock::time_point> sent_at;
          std::size_t sent = 0;
          std::size_t received = 0;
          while (received < quota) {
            while (sent < quota && sent - received < window) {
              sent_at.push_back(Clock::now());
              (void)client.send(make_request(sent));
              ++sent;
            }
            try {
              (void)client.receive();
            } catch (const net::RemoteError&) {
              ++result.failures;
            }
            const auto elapsed = Clock::now() - sent_at.front();
            sent_at.pop_front();
            result.latencies_us.push_back(
                std::chrono::duration<double, std::micro>(elapsed).count());
            ++received;
          }
        } catch (const Error& e) {
          log::error("load: thread failed",
                     {{"thread", tid}, {"error", e.what()}});
          result.failures += quota - result.latencies_us.size();
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  std::size_t failures = 0;
  std::size_t retries = 0;
  for (const auto& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    failures += result.failures;
    retries += result.retries;
  }
  if (latencies.empty()) throw Error("load run produced no replies");
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double fraction) {
    const std::size_t index = static_cast<std::size_t>(
        fraction * static_cast<double>(latencies.size() - 1));
    return latencies[index];
  };

  const std::size_t diagnoses = latencies.size() * points_per_request;
  std::printf("load: %zu requests (%zu diagnoses) over %zu connections "
              "in %.2f s, pipeline %zu\n",
              latencies.size(), diagnoses, n_threads, seconds, window);
  std::printf("throughput: %.0f diagnoses/sec\n",
              static_cast<double>(diagnoses) / seconds);
  std::printf("latency: p50 %.0f us, p95 %.0f us, p99 %.0f us, max %.0f us\n",
              percentile(0.50), percentile(0.95), percentile(0.99),
              latencies.back());
  if (failures > 0) std::printf("failures: %zu\n", failures);
  if (retries > 0) std::printf("retries: %zu\n", retries);
  return 0;
}

// ----------------------------------------------------------------- stats

/// Scrape a running `serve` instance's metrics registry over the wire
/// (kStats frame) and print the rendered snapshot to stdout.
int run_stats(int argc, char** argv) {
  args::Parser cli("ftdiag_cli stats",
                   "fetch a running server's metrics snapshot");
  cli.positional("endpoint", "server address as host:port (numeric IPv4)");
  cli.option("format", "json | prom (Prometheus text exposition)", "json");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (!net::sockets_supported()) {
    throw ConfigError("this build has no socket support");
  }

  const std::string endpoint = cli.positional_value("endpoint");
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw ConfigError("stats needs an endpoint like 127.0.0.1:4850");
  }
  const std::string host = endpoint.substr(0, colon);
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(endpoint.c_str() + colon + 1, nullptr, 10));

  const std::string format = cli.get("format");
  net::StatsFormat wire_format;
  if (format == "json") {
    wire_format = net::StatsFormat::kJson;
  } else if (format == "prom" || format == "prometheus") {
    wire_format = net::StatsFormat::kPrometheus;
  } else {
    throw ConfigError("unknown stats format '" + format +
                      "' (expected json or prom)");
  }

  net::Client client(host, port);
  const std::string body = client.stats(wire_format);
  std::fputs(body.c_str(), stdout);
  if (!body.empty() && body.back() != '\n') std::fputc('\n', stdout);
  return 0;
}

// ---------------------------------------------------------- legacy flow

Session open_session(const args::Parser& cli) {
  SearchOptions search;
  search.n_frequencies = cli.get_size("frequencies");
  search.fitness = core::parse_fitness_kind(cli.get("fitness"));
  search.seed = cli.get_size("seed");

  return SessionBuilder::from_source(cli.positional_value("netlist"),
                                     access_from(cli))
      .search(search)
      .deviations(deviations_from(cli))
      .build();
}

int run(const args::Parser& cli) {
  Session session = open_session(cli);
  std::printf("CUT '%s': %zu-fault dictionary built.\n",
              session.cut().name.c_str(), session.dictionary()->fault_count());

  const TestGenResult result = session.generate_tests();
  io::print_atpg_report(std::cout, result);

  if (const std::string path = cli.get("report"); !path.empty()) {
    io::RunReportOptions options;
    options.include_trajectories = cli.has("verbose");
    io::write_file(path, io::render_run_report(session, result, options));
    std::printf("\nmarkdown report written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get("export-trajectories");
      !path.empty()) {
    std::ofstream csv(path, std::ios::binary);
    if (!csv) throw Error("cannot open '" + path + "'");
    io::write_trajectories_csv(
        csv, session.evaluator().trajectories(result.best.vector));
    std::printf("trajectories written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get("save-dictionary"); !path.empty()) {
    io::save_dictionary_file(
        path, *session.dictionary(),
        io::parse_dictionary_format(cli.get("dict-format")),
        dictionary_cache_key(session.cut(), session.options().deviations,
                             session.options().sim));
    std::printf("fault dictionary written to %s\n", path.c_str());
  }
  return 0;
}

int run_legacy(int argc, char** argv) {
  args::Parser cli("ftdiag_cli",
                   "fault-trajectory test generation and diagnosis "
                   "(Savioli et al., DATE'05); subcommands: build-dict, "
                   "serve-batch, serve, load, stats");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit");
  declare_access_options(cli);
  cli.option("frequencies", "test-vector size", "2")
      .option("fitness", "paper | separation | hybrid", "paper")
      .option("seed", "GA seed", "42")
      .option("report", "write a markdown run report to this path", "")
      .option("export-trajectories", "write trajectory CSV to this path", "")
      .option("save-dictionary",
              "write the full fault dictionary to this path", "")
      .option("dict-format",
              "csv | binary | auto (auto: .fdx extension = binary)", "auto")
      .flag("verbose", "include per-point trajectories in the report");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  return run(cli);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  try {
    if (mode == "build-dict") return run_build_dict(argc - 1, argv + 1);
    if (mode == "serve-batch") return run_serve_batch(argc - 1, argv + 1);
    if (mode == "serve") return run_serve(argc - 1, argv + 1);
    if (mode == "load") return run_load(argc - 1, argv + 1);
    if (mode == "stats") return run_stats(argc - 1, argv + 1);
    return run_legacy(argc, argv);
  } catch (const ftdiag::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
