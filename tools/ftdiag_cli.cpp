/// ftdiag_cli — drive the fault-trajectory flow from the command line.
///
/// Three modes:
///
/// ```
/// # one-shot flow (the original mode): build dictionary, search, report
/// ftdiag_cli <netlist.cir> --input V1 --output out --testable R1,R2,C1
///            [--fitness hybrid] [--report run.md]
/// ftdiag_cli builtin:nf_biquad --report run.md     # registry circuits
///
/// # simulate once: build the dictionary and persist it (.fdx binary)
/// ftdiag_cli build-dict builtin:state_variable --store-dir ./dicts \
///            [--out dict.fdx] [--dict-format {csv,binary,auto}]
///
/// # diagnose many times: serve a directory of measurement CSVs
/// ftdiag_cli serve-batch builtin:state_variable --measurements ./boards \
///            --store-dir ./dicts [--workers 4] [--max-batch 32]
/// ```
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ftdiag.hpp"
#include "io/dictionary_io.hpp"
#include "io/exporters.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace ftdiag;

// ------------------------------------------------------- shared options

void declare_access_options(args::Parser& cli) {
  cli.option("input", "stimulus source name (netlist mode)", "V1")
      .option("output", "observed node (netlist mode)", "out")
      .option("testable",
              "comma-separated component names, or 'passives'", "passives")
      .option("band-low", "search band lower edge [Hz]", "10")
      .option("band-high", "search band upper edge [Hz]", "100k")
      .option("grid-points", "dictionary grid points", "240")
      .option("step", "deviation step [%]", "10")
      .option("range", "deviation range [+/- %]", "40");
}

NetlistAccess access_from(const args::Parser& cli) {
  NetlistAccess access;
  access.input_source = cli.get("input");
  access.output_node = cli.get("output");
  if (const std::string testable = cli.get("testable");
      !testable.empty() && testable != "passives") {
    for (const auto& name : str::split(testable, ',')) {
      access.testable.push_back(std::string(str::trim(name)));
    }
  }
  access.band_low_hz = cli.get_double("band-low");
  access.band_high_hz = cli.get_double("band-high");
  access.grid_points = cli.get_size("grid-points");
  return access;
}

faults::DeviationSpec deviations_from(const args::Parser& cli) {
  faults::DeviationSpec deviations;
  deviations.step_fraction = cli.get_double("step") / 100.0;
  deviations.min_fraction = -cli.get_double("range") / 100.0;
  deviations.max_fraction = cli.get_double("range") / 100.0;
  return deviations;
}

std::shared_ptr<service::DictionaryStore> store_from(const args::Parser& cli) {
  const std::string dir = cli.get("store-dir");
  if (dir.empty()) return nullptr;
  service::StoreOptions options;
  options.root_dir = dir;
  return std::make_shared<service::DictionaryStore>(options);
}

void print_store_stats(const service::DictionaryStore& store) {
  const auto stats = store.stats();
  std::printf("store: %zu memory hits, %zu disk hits, %zu builds, "
              "%zu persisted, %zu invalid files ignored\n",
              stats.memory_hits, stats.disk_hits, stats.builds,
              stats.persisted, stats.invalid_files);
}

// ------------------------------------------------------------ build-dict

int run_build_dict(int argc, char** argv) {
  args::Parser cli("ftdiag_cli build-dict",
                   "build the fault dictionary once and persist it");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit");
  declare_access_options(cli);
  cli.option("out", "also write the dictionary to this path", "")
      .option("dict-format",
              "csv | binary | auto (auto: .fdx extension = binary)", "auto")
      .option("store-dir",
              "persistent dictionary store directory (.fdx per key)", "");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  auto store = store_from(cli);
  SessionBuilder builder =
      SessionBuilder::from_source(cli.positional_value("netlist"),
                                  access_from(cli))
          .deviations(deviations_from(cli));
  if (store) builder.store(store);
  Session session = builder.build();

  const auto dictionary = session.dictionary();
  const std::string key = dictionary_cache_key(
      session.cut(), session.options().deviations, session.options().sim);
  std::printf("CUT '%s': %zu-fault dictionary ready (key %s)\n",
              session.cut().name.c_str(), dictionary->fault_count(),
              key.c_str());
  if (store) {
    std::printf("store artifact: %s\n", store->path_for(key).c_str());
    print_store_stats(*store);
  }
  if (const std::string path = cli.get("out"); !path.empty()) {
    io::save_dictionary_file(path, *dictionary,
                             io::parse_dictionary_format(cli.get("dict-format")),
                             key);
    std::printf("dictionary written to %s\n", path.c_str());
  }
  return 0;
}

// ----------------------------------------------------------- serve-batch

int run_serve_batch(int argc, char** argv) {
  args::Parser cli("ftdiag_cli serve-batch",
                   "diagnose a directory of measurement CSVs concurrently");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit");
  declare_access_options(cli);
  cli.option("measurements",
             "directory of measurement CSVs (freq_hz,re,im per row)", "")
      .option("store-dir",
              "persistent dictionary store directory (.fdx per key)", "")
      .option("frequencies", "test-vector size", "2")
      .option("fitness", "paper | separation | hybrid", "paper")
      .option("seed", "GA seed", "42")
      .option("workers", "service dispatcher threads (0 = auto)", "0")
      .option("max-batch", "requests coalesced per micro-batch", "64")
      .option("linger-us", "micro-batch linger [us]", "200")
      .option("batch-threads", "diagnosis fan-out threads (0 = auto)", "0")
      .option("synthesize",
              "if the directory has no CSVs, emulate this many faulty-board "
              "measurements first", "0")
      .option("results", "write a results CSV to this path", "");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const std::string dir = cli.get("measurements");
  if (dir.empty()) throw ConfigError("serve-batch needs --measurements <dir>");

  SearchOptions search;
  search.n_frequencies = cli.get_size("frequencies");
  search.fitness = core::parse_fitness_kind(cli.get("fitness"));
  search.seed = cli.get_size("seed");

  ServiceOptions service_options;
  service_options.workers = cli.get_size("workers");
  service_options.max_batch = cli.get_size("max-batch");
  service_options.max_linger =
      std::chrono::microseconds(cli.get_size("linger-us"));
  service_options.batch_threads = cli.get_size("batch-threads");

  auto store = store_from(cli);
  SessionBuilder builder =
      SessionBuilder::from_source(cli.positional_value("netlist"),
                                  access_from(cli))
          .search(search)
          .deviations(deviations_from(cli))
          .service(service_options);
  if (store) builder.store(store);
  Session session = builder.build();

  const TestGenResult program = session.generate_tests();
  std::printf("CUT '%s': serving with %s (fitness %.4f, %zu faults)\n",
              session.cut().name.c_str(),
              program.best.vector.label().c_str(), program.best.fitness,
              program.dictionary_faults);

  // Collect the measurement files (sorted for reproducible output).
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  auto list_measurements = [&] {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".csv") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  };
  std::vector<std::string> files = list_measurements();

  if (files.empty()) {
    const std::size_t synthesize = cli.get_size("synthesize");
    if (synthesize == 0) {
      throw ConfigError("no .csv measurements in '" + dir +
                        "' (use --synthesize N to emulate faulty boards)");
    }
    // Emulate bench measurements of random dictionary faults on the full
    // measurement grid, so serve-batch has realistic inputs.
    const auto dictionary = session.dictionary();
    Rng rng(search.seed);
    for (std::size_t i = 0; i < synthesize; ++i) {
      const auto& entry = dictionary->entries()[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(
                              dictionary->fault_count() - 1)))];
      const mna::AcResponse measured = session.measure(entry.fault, i + 1);
      io::write_measurement_csv_file(
          str::format("%s/board_%04zu.csv", dir.c_str(), i), measured);
    }
    std::printf("synthesized %zu measurements into %s\n", synthesize,
                dir.c_str());
    files = list_measurements();
  }

  // Serve: one request per file, all in flight at once; the dispatchers
  // coalesce them into micro-batches.
  service::DiagnosisService service(session.options().service);
  service.add_session(session.cut().name, session);
  std::vector<std::future<service::DiagnosisReply>> replies;
  replies.reserve(files.size());
  for (const auto& file : files) {
    service::DiagnosisRequest request;
    request.circuit = session.cut().name;
    request.measured.push_back(io::load_measurement_csv_file(file));
    replies.push_back(service.submit(std::move(request)));
  }

  std::ostringstream results_csv;
  results_csv << "file,site,estimated_deviation,distance,confidence\n";
  std::printf("%-28s %-10s %10s %12s %10s\n", "file", "site", "est dev %",
              "distance", "confidence");
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string name = fs::path(files[i]).filename().string();
    try {
      const auto reply = replies[i].get();
      const core::TrajectoryMatch& best = reply.results.front().best();
      std::printf("%-28s %-10s %+10.1f %12.4e %10.2f\n", name.c_str(),
                  best.site.c_str(), best.estimated_deviation * 100.0,
                  best.distance, reply.results.front().confidence());
      results_csv << name << ',' << best.site << ','
                  << str::format("%.17g", best.estimated_deviation) << ','
                  << str::format("%.17g", best.distance) << ','
                  << str::format("%.17g", reply.results.front().confidence())
                  << '\n';
    } catch (const Error& e) {
      std::printf("%-28s FAILED: %s\n", name.c_str(), e.what());
      results_csv << name << ",ERROR,,,\n";
    }
  }

  const auto stats = service.stats();
  std::printf("\nserved %zu requests in %zu batches (largest %zu), "
              "p50 %.0f us, p95 %.0f us\n",
              stats.completed, stats.batches, stats.largest_batch,
              stats.p50_latency_us, stats.p95_latency_us);
  if (store) print_store_stats(*store);

  if (const std::string path = cli.get("results"); !path.empty()) {
    io::write_file(path, results_csv.str());
    std::printf("results written to %s\n", path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------- legacy flow

Session open_session(const args::Parser& cli) {
  SearchOptions search;
  search.n_frequencies = cli.get_size("frequencies");
  search.fitness = core::parse_fitness_kind(cli.get("fitness"));
  search.seed = cli.get_size("seed");

  return SessionBuilder::from_source(cli.positional_value("netlist"),
                                     access_from(cli))
      .search(search)
      .deviations(deviations_from(cli))
      .build();
}

int run(const args::Parser& cli) {
  Session session = open_session(cli);
  std::printf("CUT '%s': %zu-fault dictionary built.\n",
              session.cut().name.c_str(), session.dictionary()->fault_count());

  const TestGenResult result = session.generate_tests();
  io::print_atpg_report(std::cout, result);

  if (const std::string path = cli.get("report"); !path.empty()) {
    io::RunReportOptions options;
    options.include_trajectories = cli.has("verbose");
    io::write_file(path, io::render_run_report(session, result, options));
    std::printf("\nmarkdown report written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get("export-trajectories");
      !path.empty()) {
    std::ofstream csv(path, std::ios::binary);
    if (!csv) throw Error("cannot open '" + path + "'");
    io::write_trajectories_csv(
        csv, session.evaluator().trajectories(result.best.vector));
    std::printf("trajectories written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get("save-dictionary"); !path.empty()) {
    io::save_dictionary_file(
        path, *session.dictionary(),
        io::parse_dictionary_format(cli.get("dict-format")),
        dictionary_cache_key(session.cut(), session.options().deviations,
                             session.options().sim));
    std::printf("fault dictionary written to %s\n", path.c_str());
  }
  return 0;
}

int run_legacy(int argc, char** argv) {
  args::Parser cli("ftdiag_cli",
                   "fault-trajectory test generation and diagnosis "
                   "(Savioli et al., DATE'05); subcommands: build-dict, "
                   "serve-batch");
  cli.positional("netlist",
                 "netlist file, or builtin:<name> for a registry circuit");
  declare_access_options(cli);
  cli.option("frequencies", "test-vector size", "2")
      .option("fitness", "paper | separation | hybrid", "paper")
      .option("seed", "GA seed", "42")
      .option("report", "write a markdown run report to this path", "")
      .option("export-trajectories", "write trajectory CSV to this path", "")
      .option("save-dictionary",
              "write the full fault dictionary to this path", "")
      .option("dict-format",
              "csv | binary | auto (auto: .fdx extension = binary)", "auto")
      .flag("verbose", "include per-point trajectories in the report");

  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  return run(cli);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  try {
    if (mode == "build-dict") return run_build_dict(argc - 1, argv + 1);
    if (mode == "serve-batch") return run_serve_batch(argc - 1, argv + 1);
    return run_legacy(argc, argv);
  } catch (const ftdiag::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
