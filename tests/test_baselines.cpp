#include "ga/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ftdiag::ga {
namespace {

double bump(const std::vector<double>& genes) {
  double acc = 1.0;
  for (double g : genes) acc *= std::exp(-(g - 3.0) * (g - 3.0));
  return acc;
}

TEST(RandomSearch, UsesExactBudget) {
  const RandomSearch rs(300);
  Rng rng(1);
  const auto result = rs.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_EQ(result.evaluations, 300u);
  EXPECT_GT(result.best.fitness, 0.3);
  EXPECT_FALSE(result.history.empty());
}

TEST(RandomSearch, ZeroBudgetRejected) {
  EXPECT_THROW(RandomSearch(0), ConfigError);
}

TEST(RandomSearch, BestNeverWorseThanAnyHistoryPoint) {
  const RandomSearch rs(512);
  Rng rng(2);
  const auto result = rs.optimize(bump, 2, {0.0, 5.0}, rng);
  for (const auto& h : result.history) {
    EXPECT_GE(result.best.fitness + 1e-12, h.best);
  }
}

TEST(GridSearch, ExhaustiveOverTheBox) {
  const GridSearch grid(11);
  Rng rng(3);
  const auto result = grid.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_EQ(result.evaluations, 121u);
  // Grid point 3.0 exists exactly (0, 0.5, ..., 5.0).
  EXPECT_NEAR(result.best.genes[0], 3.0, 1e-12);
  EXPECT_NEAR(result.best.genes[1], 3.0, 1e-12);
  EXPECT_NEAR(result.best.fitness, 1.0, 1e-12);
}

TEST(GridSearch, DeterministicRegardlessOfRng) {
  const GridSearch grid(9);
  Rng rng_a(1), rng_b(999);
  const auto a = grid.optimize(bump, 2, {0.0, 5.0}, rng_a);
  const auto b = grid.optimize(bump, 2, {0.0, 5.0}, rng_b);
  EXPECT_EQ(a.best.genes, b.best.genes);
}

TEST(GridSearch, GuardsAgainstExplosion) {
  const GridSearch grid(2000);
  Rng rng(1);
  EXPECT_THROW(grid.optimize(bump, 3, {0.0, 5.0}, rng), ConfigError);
}

TEST(GridSearch, TooFewPointsRejected) { EXPECT_THROW(GridSearch(1), ConfigError); }

TEST(HillClimb, ConvergesOnSmoothObjective) {
  const HillClimb hc(2000, 8, 0.5);
  Rng rng(4);
  const auto result = hc.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_GT(result.best.fitness, 0.9);
  EXPECT_LE(result.evaluations, 2000u);
}

TEST(HillClimb, InvalidParamsRejected) {
  EXPECT_THROW(HillClimb(0, 4, 0.5), ConfigError);
  EXPECT_THROW(HillClimb(100, 0, 0.5), ConfigError);
  EXPECT_THROW(HillClimb(100, 4, 0.0), ConfigError);
}

TEST(SimulatedAnnealing, ConvergesOnSmoothObjective) {
  const SimulatedAnnealing sa(3000, 0.3, 0.995, 0.3);
  Rng rng(5);
  const auto result = sa.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_GT(result.best.fitness, 0.9);
  EXPECT_EQ(result.evaluations, 3000u);
}

TEST(SimulatedAnnealing, InvalidParamsRejected) {
  EXPECT_THROW(SimulatedAnnealing(0, 0.3, 0.99, 0.3), ConfigError);
  EXPECT_THROW(SimulatedAnnealing(100, 0.0, 0.99, 0.3), ConfigError);
  EXPECT_THROW(SimulatedAnnealing(100, 0.3, 1.5, 0.3), ConfigError);
  EXPECT_THROW(SimulatedAnnealing(100, 0.3, 0.99, 0.0), ConfigError);
}

TEST(AllBaselines, RespectBoundsAndReportNames) {
  const GeneBounds bounds{1.0, 2.0};
  auto check = [&](const FrequencyOptimizer& opt) {
    Rng rng(6);
    const auto result = opt.optimize(
        [&](const std::vector<double>& genes) {
          for (double g : genes) {
            EXPECT_GE(g, bounds.lo - 1e-12) << opt.name();
            EXPECT_LE(g, bounds.hi + 1e-12) << opt.name();
          }
          return bump(genes);
        },
        2, bounds, rng);
    EXPECT_FALSE(result.best.genes.empty()) << opt.name();
    EXPECT_FALSE(opt.name().empty());
  };
  check(RandomSearch(128));
  check(GridSearch(8));
  check(HillClimb(128, 4, 0.2));
  check(SimulatedAnnealing(128, 0.2, 0.99, 0.1));
}

}  // namespace
}  // namespace ftdiag::ga
