#include "faults/dictionary.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "util/error.hpp"

namespace ftdiag::faults {
namespace {

class DictionaryTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cut_ = new circuits::CircuitUnderTest(circuits::make_paper_cut());
    dict_ = new FaultDictionary(
        FaultDictionary::build(*cut_, FaultUniverse::over_testable(*cut_)));
  }
  static void TearDownTestSuite() {
    delete dict_;
    delete cut_;
    dict_ = nullptr;
    cut_ = nullptr;
  }
  static circuits::CircuitUnderTest* cut_;
  static FaultDictionary* dict_;
};

circuits::CircuitUnderTest* DictionaryTest::cut_ = nullptr;
FaultDictionary* DictionaryTest::dict_ = nullptr;

TEST_F(DictionaryTest, SizesMatchUniverse) {
  EXPECT_EQ(dict_->fault_count(), 56u);  // 7 sites x 8 deviations
  EXPECT_EQ(dict_->site_labels().size(), 7u);
  EXPECT_EQ(dict_->entries().size(), 56u);
}

TEST_F(DictionaryTest, GoldenOnDictionaryGrid) {
  EXPECT_EQ(dict_->golden().frequencies(), dict_->frequencies());
  EXPECT_EQ(dict_->golden().size(),
            cut_->dictionary_grid.frequencies().size());
}

TEST_F(DictionaryTest, EntriesShareTheGrid) {
  for (const auto& entry : dict_->entries()) {
    EXPECT_EQ(entry.response.frequencies(), dict_->frequencies());
  }
}

TEST_F(DictionaryTest, PerSiteIndexOrderedByDeviation) {
  for (const auto& site : dict_->site_labels()) {
    const auto& indices = dict_->entries_for(site);
    EXPECT_EQ(indices.size(), 8u);
    double prev = -1.0;
    for (std::size_t idx : indices) {
      const auto& fault = dict_->entries()[idx].fault;
      EXPECT_EQ(fault.site.label(), site);
      EXPECT_GT(fault.deviation, prev);
      prev = fault.deviation;
    }
  }
}

TEST_F(DictionaryTest, UnknownSiteThrows) {
  // Regression for the hashed site index: misses must throw, and near-miss
  // labels (prefixes, different case, empty) must not alias a real site.
  EXPECT_THROW((void)dict_->entries_for("R99"), ConfigError);
  EXPECT_THROW((void)dict_->entries_for(""), ConfigError);
  const std::string first = dict_->site_labels().front();
  EXPECT_THROW((void)dict_->entries_for(first.substr(0, first.size() - 1)),
               ConfigError);
  EXPECT_THROW((void)dict_->entries_for(first + "x"), ConfigError);
}

TEST_F(DictionaryTest, FromPartsRebuildsTheSiteIndex) {
  // Round-trip through from_parts with entries in reversed order: the
  // per-site index must still resolve every site (deviations ascending)
  // and reject unknown labels.
  std::vector<DictionaryEntry> reversed(dict_->entries().rbegin(),
                                        dict_->entries().rend());
  const auto rebuilt =
      FaultDictionary::from_parts(dict_->golden(), std::move(reversed));
  ASSERT_EQ(rebuilt.site_labels().size(), dict_->site_labels().size());
  for (const auto& site : dict_->site_labels()) {
    const auto& indices = rebuilt.entries_for(site);
    ASSERT_EQ(indices.size(), 8u);
    double prev = -1.0;
    for (std::size_t idx : indices) {
      EXPECT_EQ(rebuilt.entries()[idx].fault.site.label(), site);
      EXPECT_GT(rebuilt.entries()[idx].fault.deviation, prev);
      prev = rebuilt.entries()[idx].fault.deviation;
    }
  }
  EXPECT_THROW((void)rebuilt.entries_for("missing_site"), ConfigError);
}

TEST_F(DictionaryTest, LargerDeviationMovesResponseFurther) {
  // |response - golden| should grow with |deviation| for a smooth circuit.
  const auto& indices = dict_->entries_for("C1");
  const auto& small = dict_->entries()[indices[4]];   // +10%
  const auto& large = dict_->entries()[indices[7]];   // +40%
  ASSERT_DOUBLE_EQ(small.fault.deviation, 0.10);
  ASSERT_DOUBLE_EQ(large.fault.deviation, 0.40);
  EXPECT_GT(large.response.max_deviation(dict_->golden()),
            small.response.max_deviation(dict_->golden()));
}

TEST_F(DictionaryTest, ExplicitGridOverload) {
  const std::vector<double> freqs = {100.0, 1000.0, 10000.0};
  const auto small_dict = FaultDictionary::build(
      *cut_, FaultUniverse::over_testable(*cut_), freqs);
  EXPECT_EQ(small_dict.frequencies(), freqs);
  EXPECT_EQ(small_dict.fault_count(), 56u);
}

TEST(Dictionary, NominalIncludedUniverseKeepsGoldenPoint) {
  const auto cut = circuits::make_paper_cut();
  DeviationSpec spec;
  spec.include_nominal = true;
  const auto dict = FaultDictionary::build(
      cut, FaultUniverse::over_testable(cut, spec),
      std::vector<double>{100.0, 1000.0});
  EXPECT_EQ(dict.fault_count(), 7u * 9u);
  // The 0% entry equals the golden response.
  const auto& indices = dict.entries_for("Ra");
  const auto& nominal_entry = dict.entries()[indices[4]];
  ASSERT_TRUE(nominal_entry.fault.is_nominal());
  EXPECT_NEAR(nominal_entry.response.max_deviation(dict.golden()), 0.0, 1e-12);
}

}  // namespace
}  // namespace ftdiag::faults
