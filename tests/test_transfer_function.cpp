#include "mna/transfer_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/ladders.hpp"
#include "circuits/mfb.hpp"
#include "circuits/sallen_key.hpp"
#include "mna/ac_analysis.hpp"

namespace ftdiag::mna {
namespace {

AcResponse sweep_cut(const circuits::CircuitUnderTest& cut) {
  AcAnalysis ac(cut.circuit);
  return ac.sweep(cut.dictionary_grid, cut.output_node);
}

TEST(Lowpass, MeasuresDcGainAndCutoff) {
  circuits::SallenKeyDesign design;
  design.f0_hz = 2.5e3;
  const auto summary = measure_lowpass(sweep_cut(
      circuits::make_sallen_key_lowpass(design)));
  EXPECT_NEAR(summary.dc_gain, 1.0, 1e-3);
  EXPECT_NEAR(summary.dc_gain_db, 0.0, 0.01);
  // Butterworth: -3 dB exactly at f0.
  EXPECT_NEAR(summary.f_3db_hz, 2.5e3, 2.5e3 * 0.01);
  EXPECT_LT(summary.stop_gain_db, -60.0);
}

TEST(Lowpass, NoCrossingYieldsZeroCutoff) {
  // A flat response (resistive divider) never drops 3 dB.
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_resistor("R2", "out", "0", 1e3);
  AcAnalysis ac(c);
  const auto summary =
      measure_lowpass(ac.sweep(FrequencyGrid::log_sweep(10, 1e5, 50), "out"));
  EXPECT_DOUBLE_EQ(summary.f_3db_hz, 0.0);
  EXPECT_NEAR(summary.dc_gain, 0.5, 1e-9);
}

TEST(Bandpass, PeakAndQ) {
  circuits::MfbDesign design;
  design.f0_hz = 1e3;
  design.q = 5.0;
  design.gain = 2.0;
  const auto summary =
      measure_bandpass(sweep_cut(circuits::make_mfb_bandpass(design)));
  EXPECT_NEAR(summary.f_peak_hz, 1e3, 1e3 * 0.02);
  EXPECT_NEAR(summary.peak_gain, 2.0, 0.05);
  EXPECT_NEAR(summary.q, 5.0, 0.3);
}

TEST(Bandpass, BandwidthConsistentWithQ) {
  circuits::MfbDesign design;
  design.q = 3.0;
  const auto summary =
      measure_bandpass(sweep_cut(circuits::make_mfb_bandpass(design)));
  EXPECT_NEAR(summary.bandwidth_hz, summary.f_peak_hz / summary.q, 1.0);
}

TEST(Crossing, FindsDropFromReference) {
  const auto response = sweep_cut(circuits::make_sallen_key_lowpass({}));
  const auto f20 = find_crossing_db(response, 0.0, 20.0);
  ASSERT_TRUE(f20.has_value());
  // 2nd-order Butterworth: -20 dB near sqrt(10^(20/20/2)... empirically
  // |H| = 0.1 at f where (f/f0)^2 ~ 10 (asymptote ~ -40 dB/dec).
  EXPECT_GT(*f20, 1.0e3);
  EXPECT_LT(*f20, 10.0e3);
}

TEST(Crossing, NulloptWhenNeverCrossed) {
  const auto response = sweep_cut(circuits::make_sallen_key_lowpass({}));
  EXPECT_FALSE(find_crossing_db(response, 0.0, 500.0).has_value());
}

TEST(Notch, TwinTDepthAndFrequency) {
  circuits::TwinTDesign design;
  design.notch_hz = 1e3;
  const auto summary = measure_notch(sweep_cut(circuits::make_twin_t(design)));
  EXPECT_NEAR(summary.f_notch_hz, 1e3, 1e3 * 0.05);
  EXPECT_LT(summary.depth_db, -30.0);  // deep notch under light load
}

TEST(Highpass, MirrorsLowpassMeasurements) {
  const auto response = sweep_cut(circuits::make_sallen_key_highpass({}));
  // Passband sits at the top of the sweep for a high-pass.
  EXPECT_NEAR(response.magnitude(response.size() - 1), 1.0, 1e-3);
  EXPECT_LT(response.magnitude_db(0), -60.0);
}

}  // namespace
}  // namespace ftdiag::mna
