#include "core/diagnosis.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "core/test_vector.hpp"
#include "faults/fault_simulator.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

FaultTrajectory ray(const std::string& site, double dx, double dy) {
  std::vector<TrajectoryPoint> pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts.push_back({d, {d * dx, d * dy}});
  }
  return FaultTrajectory(site, std::move(pts));
}

TEST(Engine, RequiresTrajectories) {
  EXPECT_THROW(DiagnosisEngine({}), ConfigError);
}

TEST(Diagnosis, EmptyRankingThrowsInsteadOfUb) {
  // Regression: best() on a default-constructed Diagnosis used to be
  // undefined behaviour (ranking.front() on an empty vector).
  const Diagnosis empty;
  EXPECT_THROW(empty.best(), ConfigError);
  EXPECT_THROW(empty.confidence(), ConfigError);
  EXPECT_TRUE(empty.ambiguity_set().empty());
}

TEST(Diagnosis, EngineAlwaysRanksEveryTrajectory) {
  // diagnose() guarantees one match per trajectory — never empty.
  DiagnosisEngine engine({ray("X", 1, 0), ray("Y", 0, 1)});
  const Diagnosis d = engine.diagnose({0.05, 0.07});
  ASSERT_EQ(d.ranking.size(), 2u);
  EXPECT_NO_THROW(d.best());
}

TEST(Engine, RejectsMixedDimensions) {
  std::vector<TrajectoryPoint> three_d = {{-0.1, {0, 0, 0}}, {0.1, {1, 1, 1}}};
  std::vector<FaultTrajectory> trajs;
  trajs.push_back(ray("A", 1, 0));
  trajs.push_back(FaultTrajectory("B", std::move(three_d)));
  EXPECT_THROW(DiagnosisEngine(std::move(trajs)), ConfigError);
}

TEST(Engine, PointOnTrajectoryDiagnosesExactly) {
  DiagnosisEngine engine({ray("X", 1, 0), ray("Y", 0, 1)});
  const Diagnosis d = engine.diagnose({0.3, 0.0});
  EXPECT_EQ(d.best().site, "X");
  EXPECT_NEAR(d.best().distance, 0.0, 1e-12);
  EXPECT_NEAR(d.best().estimated_deviation, 0.3, 1e-12);
}

TEST(Engine, NegativeBranchDeviationEstimated) {
  DiagnosisEngine engine({ray("X", 1, 0), ray("Y", 0, 1)});
  const Diagnosis d = engine.diagnose({-0.25, 0.0});
  EXPECT_EQ(d.best().site, "X");
  EXPECT_NEAR(d.best().estimated_deviation, -0.25, 1e-12);
}

TEST(Engine, PerpendicularAssignmentMatchesPaperFig3) {
  // An observed point near X's pathway but off it: nearest-segment wins.
  DiagnosisEngine engine({ray("M", 1, 0), ray("N", 0, 1)});
  const Diagnosis d = engine.diagnose({0.05, 0.30});
  EXPECT_EQ(d.best().site, "N");
  EXPECT_EQ(d.ranking.size(), 2u);
  EXPECT_EQ(d.ranking[1].site, "M");
  EXPECT_LT(d.best().distance, d.ranking[1].distance);
}

TEST(Engine, RankingSortedByDistance) {
  DiagnosisEngine engine(
      {ray("A", 1, 0), ray("B", 0, 1), ray("C", 1, 1)});
  const Diagnosis d = engine.diagnose({0.2, 0.05});
  for (std::size_t i = 1; i < d.ranking.size(); ++i) {
    EXPECT_LE(d.ranking[i - 1].distance, d.ranking[i].distance);
  }
}

TEST(Engine, DimensionMismatchRejected) {
  DiagnosisEngine engine({ray("A", 1, 0)});
  EXPECT_THROW(engine.diagnose({1.0, 2.0, 3.0}), ConfigError);
}

TEST(Confidence, HighWhenUnambiguous) {
  DiagnosisEngine engine({ray("A", 1, 0), ray("B", 0, 1)});
  // On A, far from B.
  const Diagnosis clear = engine.diagnose({0.35, 0.0});
  EXPECT_GT(clear.confidence(), 0.9);
}

TEST(Confidence, LowWhenEquidistant) {
  DiagnosisEngine engine({ray("A", 1, 0), ray("B", 0, 1)});
  // Diagonal point equidistant from both axes.
  const Diagnosis murky = engine.diagnose({0.2, 0.2});
  EXPECT_LT(murky.confidence(), 0.05);
}

TEST(Confidence, SingleCandidateIsCertain) {
  DiagnosisEngine engine({ray("A", 1, 0)});
  EXPECT_DOUBLE_EQ(engine.diagnose({0.1, 0.1}).confidence(), 1.0);
}

TEST(AmbiguitySet, ContainsNearTies) {
  DiagnosisEngine engine({ray("A", 1, 0), ray("B", 0, 1), ray("C", -1, 0)});
  const Diagnosis d = engine.diagnose({0.15, 0.14});
  const auto ambiguous = d.ambiguity_set(1.25);
  EXPECT_GE(ambiguous.size(), 2u);
  EXPECT_EQ(ambiguous.front(), d.best().site);
}

TEST(AmbiguitySet, TightFactorKeepsOnlyBest) {
  DiagnosisEngine engine({ray("A", 1, 0), ray("B", 0, 1)});
  const Diagnosis d = engine.diagnose({0.3, 0.01});
  EXPECT_EQ(d.ambiguity_set(1.0).size(), 1u);
}

TEST(EndToEnd, DictionaryFaultsDiagnoseThemselves) {
  // Every dictionary fault, observed exactly, must diagnose to its own
  // site with ~zero distance (self-consistency of the whole pipeline).
  const auto cut = circuits::make_paper_cut();
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
  const TestVector tv{{400.0, 1300.0}};
  const TestVectorEvaluator evaluator(dict);
  const DiagnosisEngine engine = evaluator.make_engine(tv);
  const SpectralSampler& sampler = evaluator.sampler();

  for (const auto& entry : dict.entries()) {
    const Point observed =
        sampler.sample(entry.response, tv.frequencies_hz);
    const Diagnosis d = engine.diagnose(observed);
    EXPECT_NEAR(d.best().distance, 0.0, 1e-9) << entry.fault.label();
    EXPECT_EQ(d.best().site, entry.fault.site.label()) << entry.fault.label();
    EXPECT_NEAR(d.best().estimated_deviation, entry.fault.deviation, 0.05)
        << entry.fault.label();
  }
}

}  // namespace
}  // namespace ftdiag::core
