/// Differential tests of the parallel fault-simulation engine: for every
/// registry circuit the engine's responses must match the naive serial
/// inject-and-sweep path — bit-exactly with factorization reuse off, and
/// within a tight relative bound with Sherman–Morrison reuse on — and must
/// be bit-identical for any thread count.
#include "faults/simulation_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuits/ladders.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/registry.hpp"
#include "faults/dictionary.hpp"
#include "faults/fault_simulator.hpp"
#include "faults/fault_universe.hpp"
#include "mna/frequency_grid.hpp"
#include "util/error.hpp"

namespace ftdiag::faults {
namespace {

/// Reduced grid so the whole-registry differential sweep stays fast.
std::vector<double> test_grid(const circuits::CircuitUnderTest& cut) {
  return mna::FrequencyGrid::log_sweep(cut.band_low_hz, cut.band_high_hz, 40)
      .frequencies();
}

struct Reference {
  mna::AcResponse golden;
  std::vector<mna::AcResponse> responses;
};

/// The naive serial path, written out independently of the engine: one
/// full assemble + factorize + solve per fault x frequency.
Reference naive_reference(const circuits::CircuitUnderTest& cut,
                          const std::vector<ParametricFault>& faults,
                          const std::vector<double>& frequencies_hz) {
  const FaultSimulator simulator(cut);
  Reference reference{simulator.golden(frequencies_hz), {}};
  reference.responses.reserve(faults.size());
  for (const auto& fault : faults) {
    reference.responses.push_back(simulator.simulate(fault, frequencies_hz));
  }
  return reference;
}

/// Bit-exact equality of two responses.
void expect_identical(const mna::AcResponse& a, const mna::AcResponse& b,
                      const std::string& context) {
  ASSERT_EQ(a.frequencies(), b.frequencies()) << context;
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.value(i).real(), b.value(i).real())
        << context << " @ grid index " << i;
    EXPECT_EQ(a.value(i).imag(), b.value(i).imag())
        << context << " @ grid index " << i;
  }
}

/// Element-wise closeness with a floor tied to the response scale, so
/// near-zero samples (e.g. a notch) are judged against the overall
/// magnitude rather than their own cancellation-dominated value.
void expect_close(const mna::AcResponse& engine, const mna::AcResponse& naive,
                  double scale, const std::string& context) {
  constexpr double kRelTol = 1e-9;
  ASSERT_EQ(engine.frequencies(), naive.frequencies()) << context;
  for (std::size_t i = 0; i < naive.size(); ++i) {
    const double bound = kRelTol * (std::abs(naive.value(i)) + scale);
    EXPECT_LE(std::abs(engine.value(i) - naive.value(i)), bound)
        << context << " @ grid index " << i << " (f="
        << naive.frequency(i) << " Hz)";
  }
}

double response_scale(const mna::AcResponse& golden) {
  double scale = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    scale = std::max(scale, std::abs(golden.value(i)));
  }
  return scale;
}

TEST(SimulationEngine, ReuseOffMatchesNaiveBitExactlyAtAnyThreadCount) {
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    const auto freqs = test_grid(cut);
    const auto faults = FaultUniverse::over_testable(cut).enumerate();
    const Reference reference = naive_reference(cut, faults, freqs);

    for (std::size_t threads : {1u, 2u, 8u}) {
      SimOptions options;
      options.threads = threads;
      options.reuse_factorization = false;
      const BatchResult batch =
          SimulationEngine(cut, options).simulate_all(faults, freqs);
      const std::string context =
          name + " reuse=off threads=" + std::to_string(threads);
      expect_identical(batch.golden, reference.golden, context + " golden");
      ASSERT_EQ(batch.responses.size(), faults.size());
      for (std::size_t i = 0; i < faults.size(); ++i) {
        expect_identical(batch.responses[i], reference.responses[i],
                         context + " " + faults[i].label());
      }
      EXPECT_EQ(batch.stats.rank1_solves, 0u) << context;
      EXPECT_EQ(batch.stats.full_solves, faults.size() * freqs.size())
          << context;
    }
  }
}

TEST(SimulationEngine, ReuseOnMatchesNaiveWithinTightBound) {
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    const auto freqs = test_grid(cut);
    const auto faults = FaultUniverse::over_testable(cut).enumerate();
    const Reference reference = naive_reference(cut, faults, freqs);
    const double scale = response_scale(reference.golden);

    const BatchResult batch =
        SimulationEngine(cut, SimOptions{}).simulate_all(faults, freqs);
    const std::string context = name + " reuse=on";
    // The golden sweep never goes through Sherman–Morrison, but it runs
    // on the batched SIMD LU, whose |.|^2 pivot compare and conj/|.|^2
    // complex division differ from the scalar LU by rounding only — so
    // tight closeness, not bit equality, is the contract here.
    expect_close(batch.golden, reference.golden, scale, context + " golden");
    ASSERT_EQ(batch.responses.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      expect_close(batch.responses[i], reference.responses[i], scale,
                   context + " " + faults[i].label());
    }
    // Every registry universe deviates passives only, so reuse must have
    // carried essentially the whole batch.
    EXPECT_GT(batch.stats.rank1_solves, 0u) << context;
    EXPECT_EQ(batch.stats.fallback_faults, 0u) << context;
  }
}

TEST(SimulationEngine, ReuseOnIsBitStableAcrossThreadCounts) {
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    const auto freqs = test_grid(cut);
    const auto faults = FaultUniverse::over_testable(cut).enumerate();

    SimOptions one;
    one.threads = 1;
    const BatchResult single =
        SimulationEngine(cut, one).simulate_all(faults, freqs);
    for (std::size_t threads : {2u, 8u}) {
      SimOptions options;
      options.threads = threads;
      const BatchResult batch =
          SimulationEngine(cut, options).simulate_all(faults, freqs);
      const std::string context =
          name + " threads=" + std::to_string(threads) + " vs 1";
      expect_identical(batch.golden, single.golden, context + " golden");
      for (std::size_t i = 0; i < faults.size(); ++i) {
        expect_identical(batch.responses[i], single.responses[i],
                         context + " " + faults[i].label());
      }
      EXPECT_EQ(batch.stats.rank1_solves, single.stats.rank1_solves);
      EXPECT_EQ(batch.stats.full_solves, single.stats.full_solves);
    }
  }
}

TEST(SimulationEngine, OpAmpParamFaultsTakeTheFallbackPathBitExactly) {
  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  const auto cut = circuits::make_nf_biquad(design);
  const auto freqs = test_grid(cut);
  const auto faults = FaultUniverse::over_opamp_params(cut).enumerate();
  const Reference reference = naive_reference(cut, faults, freqs);

  const BatchResult batch =
      SimulationEngine(cut, SimOptions{}).simulate_all(faults, freqs);
  // Macro-parameter faults perturb several stamps at once, so even with
  // reuse on they must refactorize — and thereby stay bit-identical.
  EXPECT_EQ(batch.stats.fallback_faults, faults.size());
  EXPECT_EQ(batch.stats.rank1_solves, 0u);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    expect_identical(batch.responses[i], reference.responses[i],
                     faults[i].label());
  }
}

TEST(SimulationEngine, MixedUniverseSplitsBetweenReuseAndFallback) {
  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  const auto cut = circuits::make_nf_biquad(design);
  const auto freqs = test_grid(cut);

  auto sites = FaultUniverse::over_testable(cut).sites();
  const auto active = FaultUniverse::over_opamp_params(cut).sites();
  sites.insert(sites.end(), active.begin(), active.end());
  const FaultUniverse combined(sites, DeviationSpec::paper());
  const auto faults = combined.enumerate();

  const BatchResult batch =
      SimulationEngine(cut, SimOptions{}).simulate_all(faults, freqs);
  EXPECT_EQ(batch.stats.fallback_faults,
            active.size() * DeviationSpec::paper().deviations().size());
  EXPECT_GT(batch.stats.rank1_solves, 0u);

  const Reference reference = naive_reference(cut, faults, freqs);
  const double scale = response_scale(reference.golden);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    expect_close(batch.responses[i], reference.responses[i], scale,
                 faults[i].label());
  }
}

TEST(SimulationEngine, DictionaryBuildGoesThroughTheEngine) {
  const auto cut = circuits::make_paper_cut();
  const auto universe = FaultUniverse::over_testable(cut);
  const auto freqs = test_grid(cut);

  SimOptions serial;
  serial.threads = 1;
  serial.reuse_factorization = false;
  const FaultDictionary naive =
      FaultDictionary::build(cut, universe, freqs, serial);

  SimOptions parallel;
  parallel.threads = 8;
  parallel.reuse_factorization = false;
  const FaultDictionary engine =
      FaultDictionary::build(cut, universe, freqs, parallel);

  expect_identical(engine.golden(), naive.golden(), "dictionary golden");
  ASSERT_EQ(engine.fault_count(), naive.fault_count());
  for (std::size_t i = 0; i < naive.entries().size(); ++i) {
    EXPECT_EQ(engine.entries()[i].fault, naive.entries()[i].fault);
    expect_identical(engine.entries()[i].response,
                     naive.entries()[i].response,
                     naive.entries()[i].fault.label());
  }
  EXPECT_EQ(engine.site_labels(), naive.site_labels());
}

TEST(SimulationEngine, SimulateBatchMatchesSingleFaultSimulation) {
  const auto cut = circuits::make_paper_cut();
  const auto freqs = test_grid(cut);
  const auto faults = FaultUniverse::over_testable(cut).enumerate();

  const FaultSimulator simulator(cut);
  const BatchResult batch = simulator.simulate_batch(faults, freqs);
  // The batched golden comes from the SIMD frequency-block LU, which
  // pivots on |.|^2 and divides via conj/|.|^2 — rounding-level
  // differences from the scalar sweep, not bit identity.
  const double scale = response_scale(batch.golden);
  expect_close(batch.golden, simulator.golden(freqs), scale, "batch golden");
  for (std::size_t i = 0; i < faults.size(); ++i) {
    expect_close(batch.responses[i], simulator.simulate(faults[i], freqs),
                 scale, faults[i].label());
  }
}

TEST(SimulationEngine, LargeLadderBuildsThroughSparseReusePath) {
  // The acceptance workload: a 1000-section RC ladder (1002 unknowns) must
  // take the Sherman–Morrison reuse path on the sparse backend — no size
  // gate, no fallback — and agree with a forced-dense build to 1e-9.
  circuits::RcLadderDesign design;
  design.sections = 1000;
  design.testable_stride = 250;  // bounded fault universe: 8 sites
  const auto cut = circuits::make_rc_ladder(design);
  const auto freqs =
      mna::FrequencyGrid::log_sweep(cut.band_low_hz, cut.band_high_hz, 16)
          .frequencies();
  const auto faults = FaultUniverse::over_testable(cut).enumerate();

  const BatchResult sparse =
      SimulationEngine(cut, SimOptions{}).simulate_all(faults, freqs);
  EXPECT_GT(sparse.stats.rank1_solves, 0u);
  EXPECT_EQ(sparse.stats.fallback_faults, 0u);

  SimOptions dense_options;
  dense_options.backend = mna::SolverBackend::kDense;
  const BatchResult dense =
      SimulationEngine(cut, dense_options).simulate_all(faults, freqs);
  EXPECT_GT(dense.stats.rank1_solves, 0u);

  const double scale = response_scale(dense.golden);
  expect_close(sparse.golden, dense.golden, scale, "large-ladder golden");
  ASSERT_EQ(sparse.responses.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    expect_close(sparse.responses[i], dense.responses[i], scale,
                 "large-ladder " + faults[i].label());
  }
}

TEST(SimulationEngine, RejectsBadOptions) {
  SimOptions options;
  options.max_growth = 1.0;
  EXPECT_THROW(options.check(), ConfigError);
  EXPECT_THROW(SimulationEngine(circuits::make_paper_cut(), options),
               ConfigError);
  EXPECT_GE(SimOptions{}.resolved_threads(), 1u);
}

}  // namespace
}  // namespace ftdiag::faults
